#include "runner/link_stats.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace m2hew::runner {

const LinkLatency& LinkLatencyReport::slowest() const {
  M2HEW_CHECK_MSG(!links.empty() && completed > 0,
                  "slowest() on an empty report");
  return *std::max_element(links.begin(), links.end(),
                           [](const LinkLatency& a, const LinkLatency& b) {
                             return a.mean_first_coverage <
                                    b.mean_first_coverage;
                           });
}

LinkLatencyReport measure_link_latencies(const net::Network& network,
                                         const sim::SyncPolicyFactory& factory,
                                         const sim::SlotEngineConfig& engine,
                                         std::size_t trials,
                                         std::uint64_t seed) {
  const auto links = network.links();
  LinkLatencyReport report;
  report.trials = trials;
  report.links.reserve(links.size());
  for (const net::Link link : links) {
    LinkLatency entry;
    entry.link = link;
    entry.span_ratio = network.span_ratio(link);
    report.links.push_back(entry);
  }

  std::vector<util::RunningStats> per_link(links.size());
  const util::SeedSequence seeds(seed);
  for (std::size_t t = 0; t < trials; ++t) {
    sim::SlotEngineConfig config = engine;
    config.seed = seeds.derive(t);
    const auto result = sim::run_slot_engine(network, factory, config);
    if (!result.complete) continue;
    ++report.completed;
    for (std::size_t i = 0; i < links.size(); ++i) {
      per_link[i].add(result.state.first_coverage_time(links[i]));
    }
  }

  std::vector<double> inverse_ratio;
  std::vector<double> mean_times;
  for (std::size_t i = 0; i < links.size(); ++i) {
    report.links[i].mean_first_coverage = per_link[i].mean();
    report.links[i].max_first_coverage = per_link[i].max();
    inverse_ratio.push_back(1.0 / report.links[i].span_ratio);
    mean_times.push_back(per_link[i].mean());
  }
  if (links.size() >= 2 && report.completed > 0) {
    report.inverse_ratio_correlation =
        util::pearson_correlation(inverse_ratio, mean_times);
  }
  return report;
}

}  // namespace m2hew::runner
