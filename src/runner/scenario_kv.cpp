#include "runner/scenario_kv.hpp"

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

#include "util/check.hpp"
#include "util/ini.hpp"

namespace m2hew::runner {

namespace {

// The parse helpers return nullopt on malformed input; whether that is a
// recoverable error or an abort is decided once, in the applier, by the
// presence of an error sink.

[[nodiscard]] std::optional<double> parse_double(std::string_view value) {
  const std::string text(value);
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return std::nullopt;
  return parsed;
}

[[nodiscard]] std::optional<std::uint64_t> parse_unsigned(
    std::string_view value) {
  const std::string text(value);
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return std::nullopt;
  return parsed;
}

[[nodiscard]] std::optional<TopologyKind> parse_topology(
    std::string_view value) {
  if (value == "line") return TopologyKind::kLine;
  if (value == "ring") return TopologyKind::kRing;
  if (value == "grid") return TopologyKind::kGrid;
  if (value == "star") return TopologyKind::kStar;
  if (value == "clique") return TopologyKind::kClique;
  if (value == "erdos-renyi") return TopologyKind::kErdosRenyi;
  if (value == "unit-disk") return TopologyKind::kUnitDisk;
  if (value == "watts-strogatz") return TopologyKind::kWattsStrogatz;
  if (value == "barabasi-albert") return TopologyKind::kBarabasiAlbert;
  return std::nullopt;
}

[[nodiscard]] std::optional<ChannelKind> parse_channels(
    std::string_view value) {
  if (value == "homogeneous") return ChannelKind::kHomogeneous;
  if (value == "uniform") return ChannelKind::kUniformRandom;
  if (value == "variable") return ChannelKind::kVariableRandom;
  if (value == "chain") return ChannelKind::kChainOverlap;
  if (value == "primary-users") return ChannelKind::kPrimaryUsers;
  return std::nullopt;
}

[[nodiscard]] std::optional<PropagationKind> parse_propagation(
    std::string_view value) {
  if (value == "full") return PropagationKind::kFull;
  if (value == "random") return PropagationKind::kRandomMask;
  if (value == "lowpass") return PropagationKind::kLowpass;
  return std::nullopt;
}

[[nodiscard]] std::optional<sim::AdversaryAttack> parse_attack(
    std::string_view value) {
  if (value == "jam") return sim::AdversaryAttack::kJam;
  if (value == "byzantine") return sim::AdversaryAttack::kByzantine;
  if (value == "non-responder") return sim::AdversaryAttack::kNonResponder;
  if (value == "mix") return sim::AdversaryAttack::kMix;
  return std::nullopt;
}

/// Recoverable typed reads over one INI section. Unlike the aborting
/// IniFile typed getters, a malformed value records a one-line message
/// (first failure wins) and returns the default, so the long-lived sweep
/// daemon can reject the spec instead of dying on it.
class SectionReader {
 public:
  SectionReader(const util::IniFile& ini, std::string_view section)
      : ini_(ini), section_(section) {}

  [[nodiscard]] double get_double(std::string_view key, double def) {
    if (!ini_.has(section_, key)) return def;
    const auto parsed = parse_double(ini_.get(section_, key));
    if (!parsed.has_value()) {
      note_malformed(key, "a number");
      return def;
    }
    return *parsed;
  }

  [[nodiscard]] std::uint64_t get_unsigned(std::string_view key,
                                           std::uint64_t def) {
    if (!ini_.has(section_, key)) return def;
    const auto parsed = parse_unsigned(ini_.get(section_, key));
    if (!parsed.has_value()) {
      note_malformed(key, "an unsigned integer");
      return def;
    }
    return *parsed;
  }

  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Records a section-scoped failure (range violations, bad enum names).
  void fail(std::string message) {
    if (error_.empty()) {
      error_ = "[" + std::string(section_) + "] " + std::move(message);
    }
  }

 private:
  void note_malformed(std::string_view key, const char* expected) {
    fail("key '" + std::string(key) + "' expects " + expected + " (got '" +
         ini_.get(section_, key) + "')");
  }

  const util::IniFile& ini_;
  std::string section_;
  std::string error_;
};

/// Flushes a SectionReader verdict into the caller's error sink.
[[nodiscard]] bool finish_section(const SectionReader& reader,
                                  std::string* error) {
  if (reader.ok()) return true;
  if (error != nullptr) *error = reader.error();
  return false;
}

}  // namespace

bool apply_scenario_setting(ScenarioConfig& config, std::string_view key,
                            std::string_view value, std::string* error) {
  // Typed fetchers: on malformed input they record a message and leave the
  // config untouched. `bad` distinguishes a parse failure (key was known,
  // value was not) from the unknown-key `return false` at the bottom.
  bool bad = false;
  const auto fail = [&](const char* what) {
    bad = true;
    const std::string message = "scenario key '" + std::string(key) +
                                "': " + what + " (got '" +
                                std::string(value) + "')";
    if (error == nullptr) M2HEW_CHECK_MSG(false, message.c_str());
    *error = message;
  };
  const auto as_double = [&]() -> double {
    const auto parsed = parse_double(value);
    if (!parsed.has_value()) {
      fail("expected a number");
      return 0.0;
    }
    return *parsed;
  };
  const auto as_unsigned = [&]() -> std::uint64_t {
    const auto parsed = parse_unsigned(value);
    if (!parsed.has_value()) {
      fail("expected an unsigned integer");
      return 0;
    }
    return *parsed;
  };

  if (key == "topology") {
    const auto parsed = parse_topology(value);
    if (!parsed.has_value()) {
      fail("unknown topology name");
    } else {
      config.topology = *parsed;
    }
  } else if (key == "n") {
    config.n = static_cast<net::NodeId>(as_unsigned());
  } else if (key == "grid-rows") {
    config.grid_rows = static_cast<net::NodeId>(as_unsigned());
  } else if (key == "er-p") {
    config.er_edge_probability = as_double();
  } else if (key == "ud-side") {
    config.ud_side = as_double();
  } else if (key == "ud-radius") {
    config.ud_radius = as_double();
  } else if (key == "ws-k") {
    config.ws_k = static_cast<net::NodeId>(as_unsigned());
  } else if (key == "ws-beta") {
    config.ws_beta = as_double();
  } else if (key == "ba-m") {
    config.ba_m = static_cast<net::NodeId>(as_unsigned());
  } else if (key == "channels") {
    const auto parsed = parse_channels(value);
    if (!parsed.has_value()) {
      fail("unknown channel kind");
    } else {
      config.channels = *parsed;
    }
  } else if (key == "universe") {
    config.universe = static_cast<net::ChannelId>(as_unsigned());
  } else if (key == "set-size") {
    config.set_size = static_cast<net::ChannelId>(as_unsigned());
  } else if (key == "min-size") {
    config.min_size = static_cast<net::ChannelId>(as_unsigned());
  } else if (key == "max-size") {
    config.max_size = static_cast<net::ChannelId>(as_unsigned());
  } else if (key == "overlap") {
    config.chain_overlap = static_cast<net::ChannelId>(as_unsigned());
  } else if (key == "pu-count") {
    config.pu_count = as_unsigned();
  } else if (key == "pu-min-radius") {
    config.pu_min_radius = as_double();
  } else if (key == "pu-max-radius") {
    config.pu_max_radius = as_double();
  } else if (key == "asymmetric-drop") {
    config.asymmetric_drop = as_double();
  } else if (key == "propagation") {
    const auto parsed = parse_propagation(value);
    if (!parsed.has_value()) {
      fail("unknown propagation kind");
    } else {
      config.propagation = *parsed;
    }
  } else if (key == "prop-keep") {
    config.prop_keep = as_double();
  } else if (key == "require-nonempty-spans") {
    config.require_nonempty_spans = value == "true" || value == "1";
  } else {
    if (error != nullptr) {
      *error = "unknown scenario key '" + std::string(key) + "'";
    }
    return false;
  }
  return !bad;
}

bool apply_scenario_setting(ScenarioConfig& config, std::string_view key,
                            std::string_view value) {
  return apply_scenario_setting(config, key, value, nullptr);
}

bool parse_faults_section(const util::IniFile& ini,
                          sim::SlotFaultPlan& faults, std::string* error) {
  if (!ini.has_section("faults")) return true;
  static constexpr const char* kKnown[] = {
      "crash-prob", "crash-from", "crash-until",       "down-min",
      "down-max",   "burst-loss", "reset-on-recovery", "burst-p-gb",
      "burst-p-bg", "burst-loss-good"};
  for (const std::string& key : ini.keys("faults")) {
    bool known = false;
    for (const char* k : kKnown) known |= key == k;
    if (!known) {
      if (error != nullptr) *error = "unknown [faults] key '" + key + "'";
      return false;
    }
  }
  SectionReader reader(ini, "faults");
  const double crash_prob = reader.get_double("crash-prob", 0.0);
  if (crash_prob > 0.0) {
    faults.churn.crash_probability = crash_prob;
    faults.churn.earliest_crash = reader.get_unsigned("crash-from", 200);
    faults.churn.latest_crash = reader.get_unsigned("crash-until", 2000);
    faults.churn.min_down = reader.get_unsigned("down-min", 100);
    faults.churn.max_down = reader.get_unsigned("down-max", 1000);
    faults.churn.reset_policy_on_recovery =
        reader.get_unsigned("reset-on-recovery", 1) != 0;
  }
  const double burst_bad = reader.get_double("burst-loss", 0.0);
  if (burst_bad > 0.0) {
    faults.burst_loss.enabled = true;
    faults.burst_loss.loss_bad = burst_bad;
    faults.burst_loss.p_good_to_bad = reader.get_double("burst-p-gb", 0.01);
    faults.burst_loss.p_bad_to_good = reader.get_double("burst-p-bg", 0.1);
    faults.burst_loss.loss_good = reader.get_double("burst-loss-good", 0.0);
  }
  return finish_section(reader, error);
}

bool parse_mobility_section(const util::IniFile& ini, MobilitySpec& mobility,
                            std::string* error) {
  if (!ini.has_section("mobility")) return true;
  static constexpr const char* kKnown[] = {
      "epochs",       "epoch-slots", "speed-min", "speed-max",
      "pause-epochs", "duty-on",     "duty-period"};
  for (const std::string& key : ini.keys("mobility")) {
    bool known = false;
    for (const char* k : kKnown) known |= key == k;
    if (!known) {
      if (error != nullptr) *error = "unknown [mobility] key '" + key + "'";
      return false;
    }
  }
  SectionReader reader(ini, "mobility");
  mobility.enabled = true;
  mobility.epochs = static_cast<std::size_t>(reader.get_unsigned("epochs", 8));
  mobility.epoch_slots = reader.get_unsigned("epoch-slots", 500);
  mobility.speed_min = reader.get_double("speed-min", 0.0);
  mobility.speed_max = reader.get_double("speed-max", 0.05);
  mobility.pause_epochs = reader.get_unsigned("pause-epochs", 0);
  mobility.duty_on = reader.get_unsigned("duty-on", 1);
  mobility.duty_period = reader.get_unsigned("duty-period", 1);
  if (reader.ok() && (mobility.epochs < 1 || mobility.epoch_slots < 1)) {
    reader.fail("epochs and epoch-slots must be >= 1");
  }
  if (reader.ok() &&
      (mobility.speed_min < 0.0 || mobility.speed_max < mobility.speed_min)) {
    reader.fail("need 0 <= speed-min <= speed-max");
  }
  if (reader.ok() &&
      (mobility.duty_on < 1 || mobility.duty_on > mobility.duty_period)) {
    reader.fail("need 1 <= duty-on <= duty-period");
  }
  return finish_section(reader, error);
}

bool parse_adversary_section(const util::IniFile& ini,
                             sim::AdversarySpec& adversary,
                             core::TrustConfig& trust, std::string* error) {
  if (!ini.has_section("adversary")) return true;
  static constexpr const char* kKnown[] = {
      "fraction",          "attack",
      "byzantine-tx",      "victim-fraction",
      "trust",             "trust-threshold",
      "trust-reward",      "trust-rate-penalty",
      "trust-decay",       "trust-rate-window",
      "trust-max-per-window", "trust-block-slots",
      "trust-entry-window"};
  for (const std::string& key : ini.keys("adversary")) {
    bool known = false;
    for (const char* k : kKnown) known |= key == k;
    if (!known) {
      if (error != nullptr) *error = "unknown [adversary] key '" + key + "'";
      return false;
    }
  }
  SectionReader reader(ini, "adversary");
  adversary.fraction = reader.get_double("fraction", adversary.fraction);
  if (ini.has("adversary", "attack")) {
    const auto parsed = parse_attack(ini.get("adversary", "attack"));
    if (!parsed.has_value()) {
      reader.fail("attack must be jam | byzantine | non-responder | mix "
                  "(got '" +
                  ini.get("adversary", "attack") + "')");
    } else {
      adversary.attack = *parsed;
    }
  }
  adversary.byzantine_tx =
      reader.get_double("byzantine-tx", adversary.byzantine_tx);
  adversary.victim_fraction =
      reader.get_double("victim-fraction", adversary.victim_fraction);
  trust.enabled = reader.get_unsigned("trust", trust.enabled ? 1 : 0) != 0;
  trust.threshold = reader.get_double("trust-threshold", trust.threshold);
  trust.reward = reader.get_double("trust-reward", trust.reward);
  trust.rate_penalty =
      reader.get_double("trust-rate-penalty", trust.rate_penalty);
  trust.decay = reader.get_double("trust-decay", trust.decay);
  trust.rate_window =
      reader.get_unsigned("trust-rate-window", trust.rate_window);
  trust.max_per_window =
      reader.get_unsigned("trust-max-per-window", trust.max_per_window);
  trust.block_slots =
      reader.get_unsigned("trust-block-slots", trust.block_slots);
  trust.entry_window =
      reader.get_unsigned("trust-entry-window", trust.entry_window);

  // Recoverable mirrors of validate_fault_plan / validate_trust_config —
  // a daemon-submitted spec must never reach the aborting checks.
  if (reader.ok() &&
      (adversary.fraction < 0.0 || adversary.fraction > 1.0)) {
    reader.fail("fraction must be in [0, 1]");
  }
  if (reader.ok() &&
      (adversary.byzantine_tx <= 0.0 || adversary.byzantine_tx > 1.0)) {
    reader.fail("byzantine-tx must be in (0, 1]");
  }
  if (reader.ok() &&
      (adversary.victim_fraction < 0.0 || adversary.victim_fraction > 1.0)) {
    reader.fail("victim-fraction must be in [0, 1]");
  }
  if (reader.ok() &&
      (trust.threshold < 0.0 || trust.threshold >= 1.0)) {
    reader.fail("trust-threshold must be in [0, 1)");
  }
  if (reader.ok() && trust.reward < 0.0) {
    reader.fail("trust-reward must be >= 0");
  }
  if (reader.ok() && trust.rate_penalty <= 0.0) {
    reader.fail("trust-rate-penalty must be > 0");
  }
  if (reader.ok() && (trust.decay <= 0.0 || trust.decay > 1.0)) {
    reader.fail("trust-decay must be in (0, 1]");
  }
  if (reader.ok() &&
      (trust.rate_window < 1 || trust.max_per_window < 1 ||
       trust.block_slots < 1 || trust.entry_window < 1)) {
    reader.fail("trust windows and block duration must be >= 1 slot");
  }
  return finish_section(reader, error);
}

}  // namespace m2hew::runner
