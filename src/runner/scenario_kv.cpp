#include "runner/scenario_kv.hpp"

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

#include "util/check.hpp"
#include "util/ini.hpp"

namespace m2hew::runner {

namespace {

// The parse helpers return nullopt on malformed input; whether that is a
// recoverable error or an abort is decided once, in the applier, by the
// presence of an error sink.

[[nodiscard]] std::optional<double> parse_double(std::string_view value) {
  const std::string text(value);
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return std::nullopt;
  return parsed;
}

[[nodiscard]] std::optional<std::uint64_t> parse_unsigned(
    std::string_view value) {
  const std::string text(value);
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return std::nullopt;
  return parsed;
}

[[nodiscard]] std::optional<TopologyKind> parse_topology(
    std::string_view value) {
  if (value == "line") return TopologyKind::kLine;
  if (value == "ring") return TopologyKind::kRing;
  if (value == "grid") return TopologyKind::kGrid;
  if (value == "star") return TopologyKind::kStar;
  if (value == "clique") return TopologyKind::kClique;
  if (value == "erdos-renyi") return TopologyKind::kErdosRenyi;
  if (value == "unit-disk") return TopologyKind::kUnitDisk;
  if (value == "watts-strogatz") return TopologyKind::kWattsStrogatz;
  if (value == "barabasi-albert") return TopologyKind::kBarabasiAlbert;
  return std::nullopt;
}

[[nodiscard]] std::optional<ChannelKind> parse_channels(
    std::string_view value) {
  if (value == "homogeneous") return ChannelKind::kHomogeneous;
  if (value == "uniform") return ChannelKind::kUniformRandom;
  if (value == "variable") return ChannelKind::kVariableRandom;
  if (value == "chain") return ChannelKind::kChainOverlap;
  if (value == "primary-users") return ChannelKind::kPrimaryUsers;
  return std::nullopt;
}

[[nodiscard]] std::optional<PropagationKind> parse_propagation(
    std::string_view value) {
  if (value == "full") return PropagationKind::kFull;
  if (value == "random") return PropagationKind::kRandomMask;
  if (value == "lowpass") return PropagationKind::kLowpass;
  return std::nullopt;
}

}  // namespace

bool apply_scenario_setting(ScenarioConfig& config, std::string_view key,
                            std::string_view value, std::string* error) {
  // Typed fetchers: on malformed input they record a message and leave the
  // config untouched. `bad` distinguishes a parse failure (key was known,
  // value was not) from the unknown-key `return false` at the bottom.
  bool bad = false;
  const auto fail = [&](const char* what) {
    bad = true;
    const std::string message = "scenario key '" + std::string(key) +
                                "': " + what + " (got '" +
                                std::string(value) + "')";
    if (error == nullptr) M2HEW_CHECK_MSG(false, message.c_str());
    *error = message;
  };
  const auto as_double = [&]() -> double {
    const auto parsed = parse_double(value);
    if (!parsed.has_value()) {
      fail("expected a number");
      return 0.0;
    }
    return *parsed;
  };
  const auto as_unsigned = [&]() -> std::uint64_t {
    const auto parsed = parse_unsigned(value);
    if (!parsed.has_value()) {
      fail("expected an unsigned integer");
      return 0;
    }
    return *parsed;
  };

  if (key == "topology") {
    const auto parsed = parse_topology(value);
    if (!parsed.has_value()) {
      fail("unknown topology name");
    } else {
      config.topology = *parsed;
    }
  } else if (key == "n") {
    config.n = static_cast<net::NodeId>(as_unsigned());
  } else if (key == "grid-rows") {
    config.grid_rows = static_cast<net::NodeId>(as_unsigned());
  } else if (key == "er-p") {
    config.er_edge_probability = as_double();
  } else if (key == "ud-side") {
    config.ud_side = as_double();
  } else if (key == "ud-radius") {
    config.ud_radius = as_double();
  } else if (key == "ws-k") {
    config.ws_k = static_cast<net::NodeId>(as_unsigned());
  } else if (key == "ws-beta") {
    config.ws_beta = as_double();
  } else if (key == "ba-m") {
    config.ba_m = static_cast<net::NodeId>(as_unsigned());
  } else if (key == "channels") {
    const auto parsed = parse_channels(value);
    if (!parsed.has_value()) {
      fail("unknown channel kind");
    } else {
      config.channels = *parsed;
    }
  } else if (key == "universe") {
    config.universe = static_cast<net::ChannelId>(as_unsigned());
  } else if (key == "set-size") {
    config.set_size = static_cast<net::ChannelId>(as_unsigned());
  } else if (key == "min-size") {
    config.min_size = static_cast<net::ChannelId>(as_unsigned());
  } else if (key == "max-size") {
    config.max_size = static_cast<net::ChannelId>(as_unsigned());
  } else if (key == "overlap") {
    config.chain_overlap = static_cast<net::ChannelId>(as_unsigned());
  } else if (key == "pu-count") {
    config.pu_count = as_unsigned();
  } else if (key == "pu-min-radius") {
    config.pu_min_radius = as_double();
  } else if (key == "pu-max-radius") {
    config.pu_max_radius = as_double();
  } else if (key == "asymmetric-drop") {
    config.asymmetric_drop = as_double();
  } else if (key == "propagation") {
    const auto parsed = parse_propagation(value);
    if (!parsed.has_value()) {
      fail("unknown propagation kind");
    } else {
      config.propagation = *parsed;
    }
  } else if (key == "prop-keep") {
    config.prop_keep = as_double();
  } else if (key == "require-nonempty-spans") {
    config.require_nonempty_spans = value == "true" || value == "1";
  } else {
    if (error != nullptr) {
      *error = "unknown scenario key '" + std::string(key) + "'";
    }
    return false;
  }
  return !bad;
}

bool apply_scenario_setting(ScenarioConfig& config, std::string_view key,
                            std::string_view value) {
  return apply_scenario_setting(config, key, value, nullptr);
}

bool parse_faults_section(const util::IniFile& ini,
                          sim::SlotFaultPlan& faults, std::string* error) {
  if (!ini.has_section("faults")) return true;
  static constexpr const char* kKnown[] = {
      "crash-prob", "crash-from", "crash-until",       "down-min",
      "down-max",   "burst-loss", "reset-on-recovery", "burst-p-gb",
      "burst-p-bg", "burst-loss-good"};
  for (const std::string& key : ini.keys("faults")) {
    bool known = false;
    for (const char* k : kKnown) known |= key == k;
    if (!known) {
      if (error != nullptr) *error = "unknown [faults] key '" + key + "'";
      return false;
    }
  }
  const double crash_prob = ini.get_double("faults", "crash-prob", 0.0);
  if (crash_prob > 0.0) {
    faults.churn.crash_probability = crash_prob;
    faults.churn.earliest_crash =
        static_cast<std::uint64_t>(ini.get_int("faults", "crash-from", 200));
    faults.churn.latest_crash = static_cast<std::uint64_t>(
        ini.get_int("faults", "crash-until", 2000));
    faults.churn.min_down =
        static_cast<std::uint64_t>(ini.get_int("faults", "down-min", 100));
    faults.churn.max_down =
        static_cast<std::uint64_t>(ini.get_int("faults", "down-max", 1000));
    faults.churn.reset_policy_on_recovery =
        ini.get_int("faults", "reset-on-recovery", 1) != 0;
  }
  const double burst_bad = ini.get_double("faults", "burst-loss", 0.0);
  if (burst_bad > 0.0) {
    faults.burst_loss.enabled = true;
    faults.burst_loss.loss_bad = burst_bad;
    faults.burst_loss.p_good_to_bad =
        ini.get_double("faults", "burst-p-gb", 0.01);
    faults.burst_loss.p_bad_to_good =
        ini.get_double("faults", "burst-p-bg", 0.1);
    faults.burst_loss.loss_good =
        ini.get_double("faults", "burst-loss-good", 0.0);
  }
  return true;
}

bool parse_mobility_section(const util::IniFile& ini, MobilitySpec& mobility,
                            std::string* error) {
  if (!ini.has_section("mobility")) return true;
  static constexpr const char* kKnown[] = {
      "epochs",       "epoch-slots", "speed-min", "speed-max",
      "pause-epochs", "duty-on",     "duty-period"};
  for (const std::string& key : ini.keys("mobility")) {
    bool known = false;
    for (const char* k : kKnown) known |= key == k;
    if (!known) {
      if (error != nullptr) *error = "unknown [mobility] key '" + key + "'";
      return false;
    }
  }
  mobility.enabled = true;
  mobility.epochs =
      static_cast<std::size_t>(ini.get_int("mobility", "epochs", 8));
  mobility.epoch_slots =
      static_cast<std::uint64_t>(ini.get_int("mobility", "epoch-slots", 500));
  mobility.speed_min = ini.get_double("mobility", "speed-min", 0.0);
  mobility.speed_max = ini.get_double("mobility", "speed-max", 0.05);
  mobility.pause_epochs =
      static_cast<std::uint64_t>(ini.get_int("mobility", "pause-epochs", 0));
  mobility.duty_on =
      static_cast<std::uint64_t>(ini.get_int("mobility", "duty-on", 1));
  mobility.duty_period =
      static_cast<std::uint64_t>(ini.get_int("mobility", "duty-period", 1));
  if (mobility.epochs < 1 || mobility.epoch_slots < 1) {
    if (error != nullptr) {
      *error = "[mobility] epochs and epoch-slots must be >= 1";
    }
    return false;
  }
  if (mobility.speed_min < 0.0 || mobility.speed_max < mobility.speed_min) {
    if (error != nullptr) {
      *error = "[mobility] need 0 <= speed-min <= speed-max";
    }
    return false;
  }
  if (mobility.duty_on < 1 || mobility.duty_on > mobility.duty_period) {
    if (error != nullptr) {
      *error = "[mobility] need 1 <= duty-on <= duty-period";
    }
    return false;
  }
  return true;
}

}  // namespace m2hew::runner
