#include "runner/scenario_kv.hpp"

#include <cstdlib>
#include <string>

#include "util/check.hpp"

namespace m2hew::runner {

namespace {

[[nodiscard]] double parse_double(std::string_view value) {
  const std::string text(value);
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  M2HEW_CHECK_MSG(end != text.c_str() && *end == '\0',
                  "scenario value is not a number");
  return parsed;
}

[[nodiscard]] std::uint64_t parse_unsigned(std::string_view value) {
  const std::string text(value);
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  M2HEW_CHECK_MSG(end != text.c_str() && *end == '\0',
                  "scenario value is not an unsigned integer");
  return parsed;
}

[[nodiscard]] TopologyKind parse_topology(std::string_view value) {
  if (value == "line") return TopologyKind::kLine;
  if (value == "ring") return TopologyKind::kRing;
  if (value == "grid") return TopologyKind::kGrid;
  if (value == "star") return TopologyKind::kStar;
  if (value == "clique") return TopologyKind::kClique;
  if (value == "erdos-renyi") return TopologyKind::kErdosRenyi;
  if (value == "unit-disk") return TopologyKind::kUnitDisk;
  if (value == "watts-strogatz") return TopologyKind::kWattsStrogatz;
  if (value == "barabasi-albert") return TopologyKind::kBarabasiAlbert;
  M2HEW_CHECK_MSG(false, "unknown topology name");
  return TopologyKind::kClique;
}

[[nodiscard]] ChannelKind parse_channels(std::string_view value) {
  if (value == "homogeneous") return ChannelKind::kHomogeneous;
  if (value == "uniform") return ChannelKind::kUniformRandom;
  if (value == "variable") return ChannelKind::kVariableRandom;
  if (value == "chain") return ChannelKind::kChainOverlap;
  if (value == "primary-users") return ChannelKind::kPrimaryUsers;
  M2HEW_CHECK_MSG(false, "unknown channel kind");
  return ChannelKind::kHomogeneous;
}

[[nodiscard]] PropagationKind parse_propagation(std::string_view value) {
  if (value == "full") return PropagationKind::kFull;
  if (value == "random") return PropagationKind::kRandomMask;
  if (value == "lowpass") return PropagationKind::kLowpass;
  M2HEW_CHECK_MSG(false, "unknown propagation kind");
  return PropagationKind::kFull;
}

}  // namespace

bool apply_scenario_setting(ScenarioConfig& config, std::string_view key,
                            std::string_view value) {
  if (key == "topology") {
    config.topology = parse_topology(value);
  } else if (key == "n") {
    config.n = static_cast<net::NodeId>(parse_unsigned(value));
  } else if (key == "grid-rows") {
    config.grid_rows = static_cast<net::NodeId>(parse_unsigned(value));
  } else if (key == "er-p") {
    config.er_edge_probability = parse_double(value);
  } else if (key == "ud-side") {
    config.ud_side = parse_double(value);
  } else if (key == "ud-radius") {
    config.ud_radius = parse_double(value);
  } else if (key == "ws-k") {
    config.ws_k = static_cast<net::NodeId>(parse_unsigned(value));
  } else if (key == "ws-beta") {
    config.ws_beta = parse_double(value);
  } else if (key == "ba-m") {
    config.ba_m = static_cast<net::NodeId>(parse_unsigned(value));
  } else if (key == "channels") {
    config.channels = parse_channels(value);
  } else if (key == "universe") {
    config.universe = static_cast<net::ChannelId>(parse_unsigned(value));
  } else if (key == "set-size") {
    config.set_size = static_cast<net::ChannelId>(parse_unsigned(value));
  } else if (key == "min-size") {
    config.min_size = static_cast<net::ChannelId>(parse_unsigned(value));
  } else if (key == "max-size") {
    config.max_size = static_cast<net::ChannelId>(parse_unsigned(value));
  } else if (key == "overlap") {
    config.chain_overlap = static_cast<net::ChannelId>(parse_unsigned(value));
  } else if (key == "pu-count") {
    config.pu_count = parse_unsigned(value);
  } else if (key == "pu-min-radius") {
    config.pu_min_radius = parse_double(value);
  } else if (key == "pu-max-radius") {
    config.pu_max_radius = parse_double(value);
  } else if (key == "asymmetric-drop") {
    config.asymmetric_drop = parse_double(value);
  } else if (key == "propagation") {
    config.propagation = parse_propagation(value);
  } else if (key == "prop-keep") {
    config.prop_keep = parse_double(value);
  } else if (key == "require-nonempty-spans") {
    config.require_nonempty_spans = value == "true" || value == "1";
  } else {
    return false;
  }
  return true;
}

}  // namespace m2hew::runner
