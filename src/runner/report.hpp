// Reporting helpers shared by the bench binaries: a standard banner, a
// paper-vs-measured verdict line, robustness-metric lines, and CSV output
// under results/.
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "runner/trials.hpp"

namespace m2hew::runner {

/// Prints the experiment banner (id, claim, scenario description).
void print_banner(std::string_view experiment_id, std::string_view claim,
                  std::string_view scenario);

/// Prints a PASS/FAIL verdict with context; returns `ok` for chaining.
bool print_verdict(bool ok, std::string_view what);

/// Prints the fault-robustness block (surviving-neighbor recall, ghost
/// entries, time-to-rediscovery) for a trial run. No-op when the run
/// carried no fault plan, so callers can invoke it unconditionally.
void print_robustness(const RobustnessStats& robustness);

/// Prints the encounter block (contacts detected, detection latency vs
/// contact duration, missed fraction, energy per detected contact) for a
/// mobility run. No-op when the run tracked no contacts.
void print_encounters(const EncounterStats& encounters);

/// Opens results/<name>.csv (creating results/ if needed) for a bench to
/// stream rows into. Throws on failure.
[[nodiscard]] std::ofstream open_results_csv(std::string_view name);

/// Directory where benches drop CSVs ("results").
[[nodiscard]] std::string results_dir();

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(std::string_view text);

/// A (name, value) scenario parameter embedded in a bench JSON document.
using BenchJsonParam = std::pair<std::string, std::string>;

/// Writes the machine-readable result document shared by the bench
/// binaries (results/BENCH_<id>.json) and the sweep service's cached
/// artifacts: {"bench", "params", "runs", "throughput"}. One serializer
/// produces both, so results/ tooling and the CI bench-smoke validator
/// accept daemon output unchanged — the schema cannot drift apart.
void write_bench_json_doc(std::ostream& out, std::string_view bench_id,
                          std::span<const BenchJsonParam> params,
                          std::span<const TrialRunRecord> runs,
                          const TrialThroughput& throughput,
                          std::size_t default_threads);

}  // namespace m2hew::runner
