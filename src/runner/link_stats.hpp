// Per-link discovery latency analytics.
//
// The paper's bounds are driven by the minimum span-ratio ρ; the mechanism
// is that low-span-ratio links have proportionally lower per-round
// coverage probability and therefore dominate the completion time. This
// module measures that mechanism directly: per-link first-coverage times
// across trials, with the correlation between a link's 1/span-ratio and
// its mean latency (bench E7 prints it).
#pragma once

#include <vector>

#include "net/network.hpp"
#include "sim/slot_engine.hpp"
#include "util/stats.hpp"

namespace m2hew::runner {

struct LinkLatency {
  net::Link link;
  double span_ratio = 0.0;
  /// Mean/max first-coverage slot over the trials in which the run
  /// completed.
  double mean_first_coverage = 0.0;
  double max_first_coverage = 0.0;
};

struct LinkLatencyReport {
  std::size_t trials = 0;
  std::size_t completed = 0;
  std::vector<LinkLatency> links;  ///< ordered as network.links()
  /// Pearson correlation between per-link 1/span-ratio and mean
  /// first-coverage time; the paper's analysis predicts it is strongly
  /// positive on heterogeneous networks (0 when all ratios are equal).
  double inverse_ratio_correlation = 0.0;

  /// The link with the largest mean first-coverage time. Requires a
  /// non-empty completed report.
  [[nodiscard]] const LinkLatency& slowest() const;
};

/// Runs `trials` independent discoveries and aggregates per-link
/// first-coverage times (only trials that complete within the engine
/// budget contribute).
[[nodiscard]] LinkLatencyReport measure_link_latencies(
    const net::Network& network, const sim::SyncPolicyFactory& factory,
    const sim::SlotEngineConfig& engine, std::size_t trials,
    std::uint64_t seed);

}  // namespace m2hew::runner
