// Textual key=value configuration of ScenarioConfig — the shared vocabulary
// of the experiment-definition files (tools/m2hew_experiment) and sweep
// keys. Keys mirror the CLI flag names.
#pragma once

#include <string_view>

#include "runner/scenario.hpp"

namespace m2hew::runner {

/// Applies one setting; returns false (leaving the config untouched) if the
/// key is unknown. Aborts (CHECK) if the key is known but the value does
/// not parse or names an unknown enum member.
///
/// Keys: topology, n, grid-rows, er-p, ud-side, ud-radius, ws-k, ws-beta,
/// ba-m, channels, universe, set-size, min-size, max-size, overlap,
/// pu-count, pu-min-radius, pu-max-radius, asymmetric-drop, propagation,
/// prop-keep, require-nonempty-spans.
[[nodiscard]] bool apply_scenario_setting(ScenarioConfig& config,
                                          std::string_view key,
                                          std::string_view value);

}  // namespace m2hew::runner
