// Textual key=value configuration of ScenarioConfig — the shared vocabulary
// of the experiment-definition files (tools/m2hew_experiment) and sweep
// keys. Keys mirror the CLI flag names.
#pragma once

#include <string>
#include <string_view>

#include "core/trust.hpp"
#include "runner/scenario.hpp"
#include "sim/fault_plan.hpp"

namespace m2hew::util {
class IniFile;
}

namespace m2hew::runner {

/// Applies one setting; returns false (leaving the config untouched) if the
/// key is unknown. Aborts (CHECK) if the key is known but the value does
/// not parse or names an unknown enum member.
///
/// Keys: topology, n, grid-rows, er-p, ud-side, ud-radius, ws-k, ws-beta,
/// ba-m, channels, universe, set-size, min-size, max-size, overlap,
/// pu-count, pu-min-radius, pu-max-radius, asymmetric-drop, propagation,
/// prop-keep, require-nonempty-spans.
[[nodiscard]] bool apply_scenario_setting(ScenarioConfig& config,
                                          std::string_view key,
                                          std::string_view value);

/// Recoverable form for long-lived callers (the sweep daemon must not be
/// killed by one bad spec): with a non-null `error`, malformed values and
/// unknown keys report a one-line message through it and return false
/// instead of aborting. Passing nullptr restores the aborting behavior.
[[nodiscard]] bool apply_scenario_setting(ScenarioConfig& config,
                                          std::string_view key,
                                          std::string_view value,
                                          std::string* error);

/// Parses an optional `[faults]` INI section into a slot-time fault plan —
/// the format documented in tools/m2hew_experiment.cpp and read unchanged
/// by the sweep daemon's specs. Returns false with a one-line message in
/// `*error` on an unknown key; a missing section is a no-op success.
///
/// Keys: crash-prob, crash-from, crash-until, down-min, down-max,
/// reset-on-recovery, burst-loss, burst-p-gb, burst-p-bg, burst-loss-good.
[[nodiscard]] bool parse_faults_section(const util::IniFile& ini,
                                        sim::SlotFaultPlan& faults,
                                        std::string* error);

/// Parses an optional `[mobility]` INI section into a MobilitySpec (and
/// sets `enabled` when the section is present). Returns false with a
/// one-line message in `*error` on an unknown key or out-of-range value;
/// a missing section is a no-op success.
///
/// Keys: epochs, epoch-slots, speed-min, speed-max, pause-epochs, duty-on,
/// duty-period.
[[nodiscard]] bool parse_mobility_section(const util::IniFile& ini,
                                         MobilitySpec& mobility,
                                         std::string* error);

/// Parses an optional `[adversary]` INI section into the fault plan's
/// AdversarySpec plus the trust-maintenance config that defends against
/// it. Returns false with a one-line message in `*error` on an unknown
/// key, malformed value, or out-of-range parameter; a missing section is
/// a no-op success. Unlike the aborting validate_* helpers this is fully
/// recoverable, so the sweep daemon survives a bad spec.
///
/// Keys: fraction, attack (jam | byzantine | non-responder | mix),
/// byzantine-tx, victim-fraction, trust (0/1), trust-threshold,
/// trust-reward, trust-rate-penalty, trust-decay, trust-rate-window,
/// trust-max-per-window, trust-block-slots, trust-entry-window.
[[nodiscard]] bool parse_adversary_section(const util::IniFile& ini,
                                           sim::AdversarySpec& adversary,
                                           core::TrustConfig& trust,
                                           std::string* error);

}  // namespace m2hew::runner
