// Streaming trial reduction and the worker wire format.
//
// The sweep service shards a trial range across worker processes; each
// worker streams one TrialOutcomeRecord line per finished trial back over
// a pipe. Records arrive in whatever order the workers' scheduling
// produces, but the aggregate must be bit-identical to the batch runner,
// whose reduction walks outcomes in trial order. StreamingSyncReducer
// restores that order with a reorder buffer: records are folded into the
// running SyncTrialStats the moment the next-in-trial-order record is
// available, and out-of-order arrivals wait in a map keyed by trial
// index. Memory is O(out-of-orderness) — with K workers interleaving
// round-robin shards, a handful of records — never O(trials) outcome
// vectors (the retained completion/robustness Samples the batch runner
// also keeps are the aggregate itself, not a buffer).
//
// The wire format is line-oriented ASCII with C99 hexfloat ("%a") doubles,
// so every value round-trips bit-exactly through the pipe. See
// docs/OPERATIONS.md "Worker protocol" for the framing contract.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runner/trials.hpp"
#include "sim/fault_plan.hpp"

namespace m2hew::runner {

/// One trial's contribution to the aggregate — everything the batch
/// reduction reads from a SlotEngineResult, and nothing else. Robustness
/// fields not consumed by fold_robustness (crashed_nodes, max_rediscovery,
/// down_at_end) are deliberately not carried.
struct TrialOutcomeRecord {
  std::size_t trial = 0;
  bool complete = false;
  double completion_slot = 0.0;

  bool fault_enabled = false;  ///< RobustnessReport::enabled
  std::size_t surviving_links = 0;
  std::size_t covered_surviving_links = 0;
  std::size_t ghost_entries = 0;
  std::size_t recovered_links = 0;
  std::size_t rediscovered_links = 0;
  double mean_rediscovery = 0.0;

  bool adversary = false;  ///< RobustnessReport::adversary
  std::size_t real_entries = 0;
  std::size_t fake_entries = 0;
  std::size_t isolated_fakes = 0;
  std::size_t honest_isolated = 0;
  double mean_isolation = 0.0;
};

/// Builds the record for trial `trial` from an engine/kernel result pair
/// (the two fields every slotted result type exposes) and its robustness
/// report.
[[nodiscard]] TrialOutcomeRecord make_outcome_record(
    std::size_t trial, bool complete, std::uint64_t completion_slot,
    const sim::RobustnessReport& robustness);

/// The robustness view fold_robustness needs, reconstructed from a record.
/// surviving_recall() is recomputed from the same integer counts the
/// sending side had, so the resulting double is bit-identical.
[[nodiscard]] sim::RobustnessReport to_robustness_report(
    const TrialOutcomeRecord& record);

/// One wire line (no trailing newline): "R <trial> <complete> <slot:%a>
/// <fault> <surv> <cov> <ghost> <rec> <red> <mean:%a> <adv> <real>
/// <fake> <isolated> <honest> <isolation:%a>".
[[nodiscard]] std::string encode_outcome_record(
    const TrialOutcomeRecord& record);

/// Parses a wire line; nullopt on anything malformed (wrong tag, missing
/// fields, trailing garbage). Malformed lines are a protocol violation
/// the caller surfaces as a worker failure, never silently skipped data.
[[nodiscard]] std::optional<TrialOutcomeRecord> decode_outcome_record(
    std::string_view line);

/// End-of-shard marker: "E <shard> <records-emitted>". A worker that dies
/// mid-shard never writes it, which is how the parent tells a crash from
/// a clean finish even when the exit status is unavailable.
[[nodiscard]] std::string encode_end_marker(std::size_t shard,
                                            std::size_t emitted);
[[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>>
decode_end_marker(std::string_view line);

/// Order-restoring streaming aggregator. offer() accepts records in any
/// arrival order; the fold into SyncTrialStats happens strictly in trial
/// order through runner::fold_robustness — the same code path, in the
/// same order, as the batch runner's reduction loop.
class StreamingSyncReducer {
 public:
  /// `trials` is the total trial count of the run being reduced.
  explicit StreamingSyncReducer(std::size_t trials);

  /// Folds (or buffers) one record. Returns false — without touching the
  /// aggregate — for a duplicate or out-of-range trial index, so a
  /// respawned worker re-covering ground stays harmless.
  bool offer(const TrialOutcomeRecord& record);

  [[nodiscard]] std::size_t trials() const noexcept { return trials_; }
  /// Records accepted so far (folded + buffered).
  [[nodiscard]] std::size_t received() const noexcept { return received_; }
  /// Buffered records still waiting for an earlier trial (reorder window).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] bool all_received() const noexcept {
    return received_ == trials_;
  }
  /// Trial indices not yet offered — what a recovery worker must re-run
  /// after a crash.
  [[nodiscard]] std::vector<std::size_t> missing_trials() const;

  /// Finalizes and returns the aggregate (CHECKs all_received()), stamping
  /// wall-clock and worker count and appending to the process trial-run
  /// log exactly like run_sync_trials does.
  [[nodiscard]] SyncTrialStats finish(double elapsed_seconds,
                                      std::size_t workers);

 private:
  void drain();

  std::size_t trials_;
  std::size_t received_ = 0;
  std::size_t next_ = 0;  // next trial index to fold
  std::map<std::size_t, TrialOutcomeRecord> pending_;
  std::vector<bool> seen_;
  SyncTrialStats stats_;
};

}  // namespace m2hew::runner
