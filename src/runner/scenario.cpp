#include "runner/scenario.hpp"

#include <algorithm>
#include <utility>

#include "net/channel_assign.hpp"
#include "net/primary_user.hpp"
#include "net/propagation.hpp"
#include "net/topology_gen.hpp"
#include "runner/trials.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace m2hew::runner {

namespace {

struct BuiltTopology {
  net::Topology topology;
  std::vector<net::Point> positions;  // empty unless geometric
};

[[nodiscard]] BuiltTopology build_topology(const ScenarioConfig& c,
                                           util::Rng& rng) {
  switch (c.topology) {
    case TopologyKind::kLine:
      return {net::make_line(c.n), {}};
    case TopologyKind::kRing:
      return {net::make_ring(c.n), {}};
    case TopologyKind::kGrid: {
      const net::NodeId rows = c.grid_rows != 0 ? c.grid_rows : 2;
      M2HEW_CHECK_MSG(c.n % rows == 0, "grid: n must be divisible by rows");
      return {net::make_grid(rows, c.n / rows), {}};
    }
    case TopologyKind::kStar:
      return {net::make_star(c.n), {}};
    case TopologyKind::kClique:
      return {net::make_clique(c.n), {}};
    case TopologyKind::kErdosRenyi:
      return {net::make_erdos_renyi(c.n, c.er_edge_probability, rng), {}};
    case TopologyKind::kUnitDisk: {
      auto g = net::make_connected_unit_disk(c.n, c.ud_side, c.ud_radius, rng);
      return {std::move(g.topology), std::move(g.positions)};
    }
    case TopologyKind::kWattsStrogatz:
      return {net::make_watts_strogatz(c.n, c.ws_k, c.ws_beta, rng), {}};
    case TopologyKind::kBarabasiAlbert:
      return {net::make_barabasi_albert(c.n, c.ba_m, rng), {}};
  }
  M2HEW_CHECK_MSG(false, "unknown topology kind");
  return {};
}

[[nodiscard]] net::ChannelAssignment build_channels(
    const ScenarioConfig& c, const BuiltTopology& built, util::Rng& rng) {
  switch (c.channels) {
    case ChannelKind::kHomogeneous:
      return net::homogeneous_assignment(c.n, c.universe, c.set_size);
    case ChannelKind::kUniformRandom: {
      auto gen = [&] {
        return net::uniform_random_assignment(c.n, c.universe, c.set_size,
                                              rng);
      };
      if (c.require_nonempty_spans) {
        return net::generate_with_nonempty_spans(built.topology, 100, gen);
      }
      return gen();
    }
    case ChannelKind::kVariableRandom: {
      auto gen = [&] {
        return net::variable_size_random_assignment(c.n, c.universe,
                                                    c.min_size, c.max_size,
                                                    rng);
      };
      if (c.require_nonempty_spans) {
        return net::generate_with_nonempty_spans(built.topology, 100, gen);
      }
      return gen();
    }
    case ChannelKind::kChainOverlap:
      return net::chain_overlap_assignment(c.n, c.set_size, c.chain_overlap)
          .assignment;
    case ChannelKind::kPrimaryUsers: {
      M2HEW_CHECK_MSG(!built.positions.empty(),
                      "primary-user channels need a geometric topology");
      for (int attempt = 0; attempt < 100; ++attempt) {
        const auto field = net::PrimaryUserField::random(
            c.universe, c.pu_count, c.ud_side, c.pu_min_radius,
            c.pu_max_radius, rng);
        auto assignment = field.assignment_for(built.positions);
        // Reject fields that silence a node completely, and optionally
        // fields that break an edge's span.
        bool ok = true;
        for (const auto& a : assignment) {
          if (a.empty()) {
            ok = false;
            break;
          }
        }
        if (ok && c.require_nonempty_spans) {
          for (const auto& [u, v] : built.topology.edges()) {
            if (assignment[u].intersection_size(assignment[v]) == 0) {
              ok = false;
              break;
            }
          }
        }
        if (ok) return assignment;
      }
      M2HEW_CHECK_MSG(false,
                      "primary-user field rejected 100 times; loosen config");
      return {};
    }
  }
  M2HEW_CHECK_MSG(false, "unknown channel kind");
  return {};
}

}  // namespace

net::Network build_scenario(const ScenarioConfig& config, std::uint64_t seed) {
  M2HEW_CHECK(config.n >= 1);
  if (config.channels == ChannelKind::kChainOverlap) {
    M2HEW_CHECK_MSG(config.topology == TopologyKind::kLine,
                    "chain overlap is exact only on line topologies");
  }
  util::Rng rng(util::SeedSequence(seed).derive(0xBEEF));
  BuiltTopology built = build_topology(config, rng);
  net::ChannelAssignment assignment = build_channels(config, built, rng);

  net::Topology topology = std::move(built.topology);
  if (config.asymmetric_drop > 0.0) {
    topology = net::make_asymmetric(topology, config.asymmetric_drop, rng);
  }

  const net::ChannelId universe = assignment.front().universe_size();
  switch (config.propagation) {
    case PropagationKind::kFull:
      return net::Network(std::move(topology), std::move(assignment));
    case PropagationKind::kRandomMask:
      return net::Network(std::move(topology), std::move(assignment),
                          net::random_propagation_filter(
                              universe, config.prop_keep,
                              util::SeedSequence(seed).derive(0xF17E)));
    case PropagationKind::kLowpass:
      return net::Network(std::move(topology), std::move(assignment),
                          net::distance_lowpass_filter(universe, config.n));
  }
  M2HEW_CHECK_MSG(false, "unknown propagation kind");
  return net::Network(std::move(topology), std::move(assignment));
}

std::unique_ptr<net::EpochTopologyProvider> build_mobility_provider(
    const ScenarioConfig& config, const MobilitySpec& mobility,
    std::uint64_t seed) {
  M2HEW_CHECK_MSG(mobility.enabled, "mobility spec is disabled");
  M2HEW_CHECK_MSG(config.topology == TopologyKind::kUnitDisk,
                  "mobility needs a unit-disk scenario");
  M2HEW_CHECK_MSG(config.channels == ChannelKind::kHomogeneous ||
                      config.channels == ChannelKind::kUniformRandom ||
                      config.channels == ChannelKind::kVariableRandom,
                  "mobility needs a position-independent channel kind");
  M2HEW_CHECK(mobility.epoch_slots >= 1);
  M2HEW_CHECK_MSG(
      mobility.duty_on >= 1 && mobility.duty_on <= mobility.duty_period,
      "need 1 <= duty_on <= duty_period");

  // Same assignment stream as build_scenario (derive(0xBEEF)); positions
  // come from the mobility model, so the topology draw is skipped.
  util::Rng rng(util::SeedSequence(seed).derive(0xBEEF));
  net::ChannelAssignment assignment;
  switch (config.channels) {
    case ChannelKind::kHomogeneous:
      assignment =
          net::homogeneous_assignment(config.n, config.universe,
                                      config.set_size);
      break;
    case ChannelKind::kUniformRandom:
      assignment = net::uniform_random_assignment(config.n, config.universe,
                                                  config.set_size, rng);
      break;
    case ChannelKind::kVariableRandom:
      assignment = net::variable_size_random_assignment(
          config.n, config.universe, config.min_size, config.max_size, rng);
      break;
    default:
      M2HEW_CHECK_MSG(false, "unreachable channel kind");
  }

  net::MobilityConfig mc;
  mc.nodes = config.n;
  mc.side = config.ud_side;
  mc.radius = config.ud_radius;
  mc.speed_min = mobility.speed_min;
  mc.speed_max = mobility.speed_max;
  mc.pause_epochs = mobility.pause_epochs;
  mc.epochs = mobility.epochs;
  return std::make_unique<net::EpochTopologyProvider>(
      mc, std::move(assignment), seed);
}

std::string describe_mobility(const MobilitySpec& mobility) {
  if (!mobility.enabled) return "";
  std::string text =
      " mobility=rwp(epochs=" + std::to_string(mobility.epochs) +
      ",epoch_slots=" + std::to_string(mobility.epoch_slots) +
      ",speed=" + std::to_string(mobility.speed_min) + ".." +
      std::to_string(mobility.speed_max);
  if (mobility.pause_epochs > 0) {
    text += ",pause<=" + std::to_string(mobility.pause_epochs);
  }
  text += ")";
  if (mobility.duty_period > mobility.duty_on) {
    text += " duty=" + std::to_string(mobility.duty_on) + "/" +
            std::to_string(mobility.duty_period);
  }
  return text;
}

std::string describe(const ScenarioConfig& c) {
  auto topo = [&]() -> std::string {
    switch (c.topology) {
      case TopologyKind::kLine:
        return "line";
      case TopologyKind::kRing:
        return "ring";
      case TopologyKind::kGrid:
        return "grid";
      case TopologyKind::kStar:
        return "star";
      case TopologyKind::kClique:
        return "clique";
      case TopologyKind::kErdosRenyi:
        return "erdos-renyi(p=" + std::to_string(c.er_edge_probability) + ")";
      case TopologyKind::kUnitDisk:
        return "unit-disk(r=" + std::to_string(c.ud_radius) + ")";
      case TopologyKind::kWattsStrogatz:
        return "watts-strogatz(k=" + std::to_string(c.ws_k) +
               ",beta=" + std::to_string(c.ws_beta) + ")";
      case TopologyKind::kBarabasiAlbert:
        return "barabasi-albert(m=" + std::to_string(c.ba_m) + ")";
    }
    return "?";
  }();
  auto chan = [&]() -> std::string {
    switch (c.channels) {
      case ChannelKind::kHomogeneous:
        return "homogeneous";
      case ChannelKind::kUniformRandom:
        return "uniform-random";
      case ChannelKind::kVariableRandom:
        return "variable-random";
      case ChannelKind::kChainOverlap:
        return "chain-overlap(k=" + std::to_string(c.chain_overlap) + ")";
      case ChannelKind::kPrimaryUsers:
        return "primary-users(" + std::to_string(c.pu_count) + ")";
    }
    return "?";
  }();
  std::string text = topo + " n=" + std::to_string(c.n) + " " + chan +
                     " |U|=" + std::to_string(c.universe) +
                     " |A|=" + std::to_string(c.set_size);
  if (c.asymmetric_drop > 0.0) {
    text += " asym=" + std::to_string(c.asymmetric_drop);
  }
  if (c.propagation == PropagationKind::kRandomMask) {
    text += " prop=random(" + std::to_string(c.prop_keep) + ")";
  } else if (c.propagation == PropagationKind::kLowpass) {
    text += " prop=lowpass";
  }
  return text;
}

namespace {

template <typename Time>
[[nodiscard]] std::string describe_engine_knobs(
    const sim::EngineCommon<Time>& engine) {
  std::string text;
  if (engine.loss_probability > 0.0) {
    text += " loss=" + std::to_string(engine.loss_probability);
  }
  if (!engine.starts.empty()) {
    Time max_start = Time{};
    for (const Time start : engine.starts) {
      max_start = std::max(max_start, start);
    }
    text += " starts=var(max=" + std::to_string(max_start) + ")";
  }
  if (engine.interference) {
    text += " interference=dynamic";
  }
  if (!engine.indexed_reception) {
    text += " reception=reference";
  }
  if (engine.faults.any()) {
    text += " faults=";
    std::string parts;
    if (engine.faults.churn.enabled()) {
      parts += "churn(p=" +
               std::to_string(engine.faults.churn.crash_probability) + ")";
    }
    if (engine.faults.burst_loss.enabled) {
      if (!parts.empty()) parts += "+";
      parts += "burst-loss";
    }
    if (!engine.faults.spectrum.empty()) {
      if (!parts.empty()) parts += "+";
      parts += "spectrum(" +
               std::to_string(engine.faults.spectrum.size()) + ")";
    }
    if (engine.faults.drift_wander.enabled) {
      if (!parts.empty()) parts += "+";
      parts += "drift-wander";
    }
    text += parts;
  }
  return text;
}

}  // namespace

std::string describe(const ScenarioConfig& config,
                     const sim::EngineCommon<std::uint64_t>& engine) {
  return describe(config) + describe_engine_knobs(engine);
}

std::string describe(const ScenarioConfig& config,
                     const sim::EngineCommon<double>& engine) {
  return describe(config) + describe_engine_knobs(engine);
}

std::string describe(const ScenarioConfig& config,
                     const sim::EngineCommon<std::uint64_t>& engine,
                     SyncKernel kernel, std::size_t process_workers) {
  std::string text = describe(config, engine);
  if (kernel == SyncKernel::kSoa) text += " kernel=soa";
  if (process_workers > 0) {
    text += " workers=" + std::to_string(process_workers);
  }
  return text;
}

std::string describe_policy(std::string_view algorithm,
                            std::size_t delta_est) {
  const std::string name(algorithm);
  const std::string with_delta =
      " (delta_est=" + std::to_string(delta_est) + ")";
  if (algorithm == "alg1") {
    return name + ": paper Algorithm 1, staged" + with_delta;
  }
  if (algorithm == "alg2") {
    return name + ": paper Algorithm 2, escalating estimate d+=1";
  }
  if (algorithm == "alg2x") {
    return name + ": paper Algorithm 2, doubling-estimate ablation";
  }
  if (algorithm == "alg3") {
    return name + ": paper Algorithm 3, constant probability" + with_delta;
  }
  if (algorithm == "alg4") {
    return name + ": paper Algorithm 4, asynchronous frames" + with_delta;
  }
  if (algorithm == "baseline") {
    return name + ": universal-channel round-robin strawman";
  }
  if (algorithm == "deterministic") {
    return name + ": TDMA-by-identifier deterministic baseline";
  }
  if (algorithm == "adaptive") {
    return name + ": collision-feedback adaptive-degree extension";
  }
  if (algorithm == "mcdis") {
    return name + ": competitor Mc-Dis prime-pair duty cycling "
                  "(arXiv:1307.3630)";
  }
  if (algorithm == "rendezvous") {
    return name + ": competitor deterministic blind rendezvous, jump-stay "
                  "(arXiv:1401.7313)";
  }
  if (algorithm == "consistent-hop") {
    return name + ": competitor consistent channel hopping "
                  "(arXiv:2506.18381)";
  }
  return name + " (unknown policy)";
}

}  // namespace m2hew::runner
