// Scenario: a reproducible recipe for generating M²HeW networks. Benches,
// tests and examples all build their workloads through this one module so
// that a scenario is describable in EXPERIMENTS.md by its config alone.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "net/network.hpp"
#include "net/topology_provider.hpp"
#include "net/types.hpp"
#include "sim/engine_common.hpp"

namespace m2hew::runner {

enum class TopologyKind {
  kLine,
  kRing,
  kGrid,
  kStar,
  kClique,
  kErdosRenyi,
  kUnitDisk,
  kWattsStrogatz,
  kBarabasiAlbert,
};

/// §V extension (c): per-arc channel usability model.
enum class PropagationKind {
  kFull,        ///< every channel propagates on every arc (base model)
  kRandomMask,  ///< i.i.d. per-(pair, channel) keep with prob `prop_keep`
  kLowpass,     ///< only low channels propagate between distant node ids
};

enum class ChannelKind {
  kHomogeneous,     ///< all nodes share {0..set_size-1}; ρ = 1
  kUniformRandom,   ///< per-node uniform subsets of size set_size
  kVariableRandom,  ///< per-node subsets, sizes uniform in [min, max]
  kChainOverlap,    ///< exact-ρ block construction (line topologies)
  kPrimaryUsers,    ///< CR spectrum field (requires kUnitDisk topology)
};

struct ScenarioConfig {
  TopologyKind topology = TopologyKind::kClique;
  net::NodeId n = 8;

  // Topology-specific knobs.
  net::NodeId grid_rows = 0;       ///< kGrid (grid_rows × n/grid_rows)
  double er_edge_probability = 0.3;  ///< kErdosRenyi
  double ud_side = 1.0;            ///< kUnitDisk deployment square side
  double ud_radius = 0.35;         ///< kUnitDisk radio range
  net::NodeId ws_k = 4;            ///< kWattsStrogatz lattice degree (even)
  double ws_beta = 0.2;            ///< kWattsStrogatz rewiring probability
  net::NodeId ba_m = 2;            ///< kBarabasiAlbert attachments per node

  /// §V extension (a): probability that an undirected edge loses one
  /// direction (0 = the paper's symmetric base model).
  double asymmetric_drop = 0.0;

  ChannelKind channels = ChannelKind::kHomogeneous;
  net::ChannelId universe = 8;
  net::ChannelId set_size = 4;     ///< kHomogeneous / kUniformRandom / chain S
  net::ChannelId min_size = 2;     ///< kVariableRandom
  net::ChannelId max_size = 6;     ///< kVariableRandom
  net::ChannelId chain_overlap = 2;  ///< kChainOverlap: |span| = overlap
  std::size_t pu_count = 12;       ///< kPrimaryUsers
  double pu_min_radius = 0.2;      ///< kPrimaryUsers
  double pu_max_radius = 0.5;      ///< kPrimaryUsers

  /// For random channel kinds: retry generation until every edge has a
  /// non-empty span (so ground truth covers the whole topology). Checked
  /// before asymmetrization and propagation masking.
  bool require_nonempty_spans = true;

  // §V extension (c): propagation model.
  PropagationKind propagation = PropagationKind::kFull;
  double prop_keep = 0.7;  ///< kRandomMask keep probability
};

/// Builds a network from the recipe; a given (config, seed) pair always
/// yields the same network.
[[nodiscard]] net::Network build_scenario(const ScenarioConfig& config,
                                          std::uint64_t seed);

/// Mobility workload riding on a scenario (ROADMAP open item 4): random
/// waypoint over the scenario's unit-disk square, link set recomputed
/// every `epoch_slots` slots, plus an optional duty-cycle schedule for
/// the policies. Requires TopologyKind::kUnitDisk and a
/// position-independent channel kind (homogeneous / uniform-random /
/// variable-random) — build_mobility_provider CHECKs both.
struct MobilitySpec {
  bool enabled = false;
  std::size_t epochs = 8;           ///< epochs in the topology schedule
  std::uint64_t epoch_slots = 500;  ///< slots per epoch
  double speed_min = 0.0;           ///< units per epoch
  double speed_max = 0.05;          ///< units per epoch
  std::uint64_t pause_epochs = 0;   ///< max pause at a reached waypoint
  /// Duty cycle: nodes run the policy during the first `duty_on` slots of
  /// every `duty_period` window and sleep otherwise. 1/1 = always on.
  std::uint64_t duty_on = 1;
  std::uint64_t duty_period = 1;
};

/// Builds the epoch topology provider for a mobile scenario: waypoint
/// trajectories from (seed, net::kMobilityStreamSalt) streams, one channel
/// assignment drawn exactly like build_scenario's (same derive(0xBEEF)
/// stream), per-epoch unit-disk link sets. Engines must then be run on
/// provider->union_network() with config.topology/epoch_length set.
/// Unlike build_scenario there is no nonempty-span retry: an arc whose
/// span is empty simply never becomes a discovery link, in any epoch.
[[nodiscard]] std::unique_ptr<net::EpochTopologyProvider>
build_mobility_provider(const ScenarioConfig& config,
                        const MobilitySpec& mobility, std::uint64_t seed);

/// One-line human-readable description for bench output.
[[nodiscard]] std::string describe(const ScenarioConfig& config);

/// Same, but also reporting the engine knobs that change the channel
/// model — message loss, variable start schedules, dynamic interference
/// and the reference reception path — so a bench line fully identifies
/// its workload. Overloaded for the slotted and async time axes.
[[nodiscard]] std::string describe(
    const ScenarioConfig& config,
    const sim::EngineCommon<std::uint64_t>& engine);
[[nodiscard]] std::string describe(const ScenarioConfig& config,
                                   const sim::EngineCommon<double>& engine);

enum class SyncKernel;  // runner/trials.hpp

/// Same again for slotted runs, additionally naming the execution knobs:
/// the sync inner loop when it is not the default (`kernel=soa`) and, when
/// nonzero, the process-worker fan-out of a daemon-sharded run
/// (`workers=K`). Neither knob changes results — both are pinned
/// bit-identical by the equivalence suites — but a report line should say
/// which machinery produced it.
[[nodiscard]] std::string describe(
    const ScenarioConfig& config,
    const sim::EngineCommon<std::uint64_t>& engine, SyncKernel kernel,
    std::size_t process_workers = 0);

/// Mobility suffix for report lines (" mobility=rwp(...) duty=a/b");
/// empty when the spec is disabled, so callers append unconditionally.
[[nodiscard]] std::string describe_mobility(const MobilitySpec& mobility);

/// One-line description of a policy/algorithm name as the front ends
/// spell it (--algorithm=/--policy= values, INI `algorithm =`): the
/// paper's algorithms, the repo baselines, and the competitor policies
/// from the related literature (core/competitors.hpp). Unknown names
/// come back as "<name> (unknown policy)" so report lines never lie.
[[nodiscard]] std::string describe_policy(std::string_view algorithm,
                                          std::size_t delta_est);

}  // namespace m2hew::runner
