#include "runner/report.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace m2hew::runner {

void print_banner(std::string_view experiment_id, std::string_view claim,
                  std::string_view scenario) {
  std::printf("\n=== %.*s ===\n", static_cast<int>(experiment_id.size()),
              experiment_id.data());
  std::printf("claim:    %.*s\n", static_cast<int>(claim.size()),
              claim.data());
  std::printf("scenario: %.*s\n\n", static_cast<int>(scenario.size()),
              scenario.data());
}

bool print_verdict(bool ok, std::string_view what) {
  std::printf("[%s] %.*s\n", ok ? "PASS" : "FAIL",
              static_cast<int>(what.size()), what.data());
  return ok;
}

void print_robustness(const RobustnessStats& robustness) {
  if (!robustness.enabled()) return;
  const util::Summary recall = robustness.surviving_recall.summarize();
  const util::Summary ghosts = robustness.ghost_entries.summarize();
  std::printf("robustness over %zu faulted trial(s):\n",
              robustness.fault_trials);
  std::printf("  surviving-neighbor recall: mean %.4f  min %.4f\n",
              recall.mean, recall.min);
  std::printf("  ghost neighbor entries:    mean %.2f  max %.0f\n",
              ghosts.mean, ghosts.max);
  if (robustness.recovered_links > 0) {
    std::printf("  rediscovered links:        %zu / %zu (%.1f%%)\n",
                robustness.rediscovered_links, robustness.recovered_links,
                100.0 * robustness.rediscovery_rate());
  }
  if (robustness.rediscovery_times.count() > 0) {
    const util::Summary redisc = robustness.rediscovery_times.summarize();
    std::printf("  time-to-rediscovery:       mean %.1f  p90 %.1f\n",
                redisc.mean, redisc.p90);
  }
}

std::string results_dir() { return "results"; }

std::ofstream open_results_csv(std::string_view name) {
  std::filesystem::create_directories(results_dir());
  const std::string path =
      results_dir() + "/" + std::string(name) + ".csv";
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  return out;
}

}  // namespace m2hew::runner
