#include "runner/report.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace m2hew::runner {

void print_banner(std::string_view experiment_id, std::string_view claim,
                  std::string_view scenario) {
  std::printf("\n=== %.*s ===\n", static_cast<int>(experiment_id.size()),
              experiment_id.data());
  std::printf("claim:    %.*s\n", static_cast<int>(claim.size()),
              claim.data());
  std::printf("scenario: %.*s\n\n", static_cast<int>(scenario.size()),
              scenario.data());
}

bool print_verdict(bool ok, std::string_view what) {
  std::printf("[%s] %.*s\n", ok ? "PASS" : "FAIL",
              static_cast<int>(what.size()), what.data());
  return ok;
}

void print_robustness(const RobustnessStats& robustness) {
  if (!robustness.enabled()) return;
  const util::Summary recall = robustness.surviving_recall.summarize();
  const util::Summary ghosts = robustness.ghost_entries.summarize();
  std::printf("robustness over %zu faulted trial(s):\n",
              robustness.fault_trials);
  std::printf("  surviving-neighbor recall: mean %.4f  min %.4f\n",
              recall.mean, recall.min);
  std::printf("  ghost neighbor entries:    mean %.2f  max %.0f\n",
              ghosts.mean, ghosts.max);
  if (robustness.recovered_links > 0) {
    std::printf("  rediscovered links:        %zu / %zu (%.1f%%)\n",
                robustness.rediscovered_links, robustness.recovered_links,
                100.0 * robustness.rediscovery_rate());
  }
  if (robustness.rediscovery_times.count() > 0) {
    const util::Summary redisc = robustness.rediscovery_times.summarize();
    std::printf("  time-to-rediscovery:       mean %.1f  p90 %.1f\n",
                redisc.mean, redisc.p90);
  }
  if (robustness.adversarial()) {
    const util::Summary precision =
        robustness.precision_under_attack.summarize();
    std::printf("adversary over %zu attacked trial(s):\n",
                robustness.adversary_trials);
    std::printf("  precision under attack:    mean %.4f  min %.4f\n",
                precision.mean, precision.min);
    std::printf("  fake entries surviving:    %zu  isolated: %zu (%.1f%%)"
                "  honest blocked: %zu\n",
                robustness.fake_entries, robustness.isolated_fakes,
                100.0 * robustness.isolation_rate(),
                robustness.honest_isolated);
    if (robustness.isolation_times.count() > 0) {
      const util::Summary isolation =
          robustness.isolation_times.summarize();
      std::printf("  time-to-isolation:         mean %.1f  p90 %.1f\n",
                  isolation.mean, isolation.p90);
    }
  }
}

void print_encounters(const EncounterStats& encounters) {
  if (!encounters.enabled()) return;
  std::printf("encounters over %zu trial(s): %llu contacts, %llu detected "
              "(%.1f%%)\n",
              encounters.trials,
              static_cast<unsigned long long>(encounters.contacts),
              static_cast<unsigned long long>(encounters.detected),
              100.0 * encounters.detection_rate());
  if (encounters.detection_latency.count() > 0) {
    const util::Summary latency = encounters.detection_latency.summarize();
    const util::Summary fraction =
        encounters.latency_over_duration.summarize();
    std::printf("  detection latency:   mean %.1f  p90 %.1f slots "
                "(%.1f%% of contact duration)\n",
                latency.mean, latency.p90, 100.0 * fraction.mean);
  }
  if (encounters.missed_fraction.count() > 0) {
    std::printf("  missed contacts:     mean %.1f%% per trial\n",
                100.0 * encounters.missed_fraction.summarize().mean);
  }
  if (encounters.energy_per_detected.count() > 0) {
    std::printf("  energy per detected: mean %.1f units\n",
                encounters.energy_per_detected.summarize().mean);
  }
}

std::string results_dir() { return "results"; }

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_bench_json_doc(std::ostream& out, std::string_view bench_id,
                          std::span<const BenchJsonParam> params,
                          std::span<const TrialRunRecord> runs,
                          const TrialThroughput& throughput,
                          std::size_t default_threads) {
  out << "{\n  \"bench\": \"" << json_escape(bench_id) << "\",\n";
  out << "  \"params\": {";
  bool first = true;
  for (const BenchJsonParam& p : params) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(p.first)
        << "\": \"" << json_escape(p.second) << "\"";
    first = false;
  }
  out << (first ? "},\n" : "\n  },\n");
  char buf[512];
  out << "  \"runs\": [";
  first = true;
  for (const TrialRunRecord& run : runs) {
    std::snprintf(buf, sizeof buf,
                  "{\"async\": %s, \"trials\": %zu, \"completed\": %zu, "
                  "\"success_rate\": %.6g, \"mean_completion\": %.6g, "
                  "\"p90_completion\": %.6g, \"elapsed_seconds\": %.6g, "
                  "\"threads\": %zu}",
                  run.async ? "true" : "false", run.trials, run.completed,
                  run.success_rate(), run.mean_completion,
                  run.p90_completion, run.elapsed_seconds, run.threads_used);
    out << (first ? "\n" : ",\n") << "    " << buf;
    if (run.fault_trials > 0) {
      // Robustness block for faulted runs: rewrite the closing brace into
      // a nested object so fault-free documents stay byte-stable.
      out.seekp(-1, std::ios_base::cur);
      std::snprintf(buf, sizeof buf,
                    ", \"robustness\": {\"fault_trials\": %zu, "
                    "\"mean_surviving_recall\": %.6g, "
                    "\"mean_ghost_entries\": %.6g, "
                    "\"mean_rediscovery\": %.6g, "
                    "\"recovered_links\": %zu, "
                    "\"rediscovered_links\": %zu}}",
                    run.fault_trials, run.mean_surviving_recall,
                    run.mean_ghost_entries, run.mean_rediscovery,
                    run.recovered_links, run.rediscovered_links);
      out << buf;
    }
    if (run.adversary_trials > 0) {
      // Adversary block for attacked runs, same brace-rewrite scheme.
      out.seekp(-1, std::ios_base::cur);
      std::snprintf(buf, sizeof buf,
                    ", \"adversary\": {\"trials\": %zu, "
                    "\"mean_precision_under_attack\": %.6g, "
                    "\"mean_isolation\": %.6g, "
                    "\"fake_entries\": %zu, "
                    "\"isolated_fakes\": %zu, "
                    "\"honest_isolated\": %zu}}",
                    run.adversary_trials, run.mean_precision_under_attack,
                    run.mean_isolation, run.fake_entries,
                    run.isolated_fakes, run.honest_isolated);
      out << buf;
    }
    if (run.encounter_trials > 0) {
      // Encounter block for mobility runs, same brace-rewrite scheme.
      out.seekp(-1, std::ios_base::cur);
      std::snprintf(
          buf, sizeof buf,
          ", \"encounters\": {\"trials\": %zu, \"contacts\": %llu, "
          "\"detected\": %llu, \"mean_detection_latency\": %.6g, "
          "\"p90_detection_latency\": %.6g, "
          "\"mean_latency_fraction\": %.6g, "
          "\"mean_missed_fraction\": %.6g, "
          "\"mean_energy_per_detected\": %.6g}}",
          run.encounter_trials,
          static_cast<unsigned long long>(run.contacts),
          static_cast<unsigned long long>(run.detected_contacts),
          run.mean_detection_latency, run.p90_detection_latency,
          run.mean_latency_fraction, run.mean_missed_fraction,
          run.mean_energy_per_detected);
      out << buf;
    }
    first = false;
  }
  out << (first ? "],\n" : "\n  ],\n");
  std::snprintf(buf, sizeof buf,
                "  \"throughput\": {\"runs\": %zu, \"trials\": %zu, "
                "\"busy_seconds\": %.6g, \"trials_per_second\": %.6g, "
                "\"default_threads\": %zu}\n",
                throughput.runs, throughput.trials, throughput.busy_seconds,
                throughput.trials_per_second(), default_threads);
  out << buf << "}\n";
}

std::ofstream open_results_csv(std::string_view name) {
  std::filesystem::create_directories(results_dir());
  const std::string path =
      results_dir() + "/" + std::string(name) + ".csv";
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  return out;
}

}  // namespace m2hew::runner
