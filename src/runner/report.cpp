#include "runner/report.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace m2hew::runner {

void print_banner(std::string_view experiment_id, std::string_view claim,
                  std::string_view scenario) {
  std::printf("\n=== %.*s ===\n", static_cast<int>(experiment_id.size()),
              experiment_id.data());
  std::printf("claim:    %.*s\n", static_cast<int>(claim.size()),
              claim.data());
  std::printf("scenario: %.*s\n\n", static_cast<int>(scenario.size()),
              scenario.data());
}

bool print_verdict(bool ok, std::string_view what) {
  std::printf("[%s] %.*s\n", ok ? "PASS" : "FAIL",
              static_cast<int>(what.size()), what.data());
  return ok;
}

std::string results_dir() { return "results"; }

std::ofstream open_results_csv(std::string_view name) {
  std::filesystem::create_directories(results_dir());
  const std::string path =
      results_dir() + "/" + std::string(name) + ".csv";
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  return out;
}

}  // namespace m2hew::runner
