// Multi-trial experiment runners: repeat an engine run over independent
// seeds and aggregate completion statistics, the unit of every bench.
//
// Trials are dispatched across a worker pool (TrialConfig::threads) but
// the aggregate output is bit-for-bit identical to a serial run: trial t
// always uses seeds.derive(t), per-trial results land in a buffer indexed
// by t, and the reduction walks that buffer in trial order. See
// docs/EXTENDING.md "Parallel trials & determinism" for the policy-author
// contract this relies on.
#pragma once

#include <functional>

#include "core/policy_spec.hpp"
#include "net/network.hpp"
#include "sim/async_engine.hpp"
#include "sim/encounter.hpp"
#include "sim/multi_radio_engine.hpp"
#include "sim/slot_engine.hpp"
#include "util/stats.hpp"

namespace m2hew::runner {

/// Process-wide default worker count used when a trial config leaves
/// `threads == 0`. Starts at hardware concurrency; tools set it from
/// --threads so every run_*_trials call in the binary picks it up.
void set_default_trial_threads(std::size_t threads) noexcept;
[[nodiscard]] std::size_t default_trial_threads() noexcept;

/// Cumulative trial-layer activity of this process, summed over every
/// run_sync_trials / run_async_trials call. Benches and tools print this
/// once at the end so every report carries its own throughput.
struct TrialThroughput {
  std::size_t runs = 0;
  std::size_t trials = 0;
  double busy_seconds = 0.0;  ///< sum of per-run wall-clock durations

  [[nodiscard]] double trials_per_second() const noexcept {
    return busy_seconds <= 0.0
               ? 0.0
               : static_cast<double>(trials) / busy_seconds;
  }
};
[[nodiscard]] TrialThroughput trial_throughput_totals() noexcept;

/// Robustness aggregates over faulted trials, shared by every trial-stats
/// type. Populated only from trials whose engine config carried a fault
/// plan (sim::FaultPlan::any()); `fault_trials` counts those.
struct RobustnessStats {
  std::size_t fault_trials = 0;
  /// Per-trial discovery recall restricted to surviving true neighbors.
  util::Samples surviving_recall;
  /// Per-trial ghost-neighbor-entry count (stale table knowledge).
  util::Samples ghost_entries;
  /// Per-trial mean time-to-rediscovery, over trials with at least one
  /// rediscovered link (engine time units).
  util::Samples rediscovery_times;
  /// Links eligible for / achieving rediscovery, summed over fault trials.
  std::size_t recovered_links = 0;
  std::size_t rediscovered_links = 0;
  /// Trials whose plan carried an enabled adversary block.
  std::size_t adversary_trials = 0;
  /// Per-adversary-trial precision under attack
  /// (sim::RobustnessReport::precision_under_attack).
  util::Samples precision_under_attack;
  /// Per-adversary-trial mean time-to-isolation, over trials with at
  /// least one isolated fake (engine time units).
  util::Samples isolation_times;
  /// Fake / isolated-fake / false-positive entry counts, summed over
  /// adversary trials.
  std::size_t fake_entries = 0;
  std::size_t isolated_fakes = 0;
  std::size_t honest_isolated = 0;

  [[nodiscard]] bool enabled() const noexcept { return fault_trials > 0; }
  [[nodiscard]] bool adversarial() const noexcept {
    return adversary_trials > 0;
  }
  [[nodiscard]] double rediscovery_rate() const noexcept {
    return recovered_links == 0
               ? 0.0
               : static_cast<double>(rediscovered_links) /
                     static_cast<double>(recovered_links);
  }
  /// Isolated fakes / (isolated + surviving fakes): how much of the
  /// adversarial pollution the trust policy eventually cut off.
  [[nodiscard]] double isolation_rate() const noexcept {
    const std::size_t total = fake_entries + isolated_fakes;
    return total == 0 ? 0.0
                      : static_cast<double>(isolated_fakes) /
                            static_cast<double>(total);
  }
};

/// Encounter (contact) aggregates over trials run against a time-varying
/// topology with an sim::EncounterIndex attached
/// (SyncTrialConfig::encounters); `trials` counts those. All Samples are
/// filled in trial order, so parallel == serial bit-for-bit.
struct EncounterStats {
  std::size_t trials = 0;
  /// Observable contacts / contacts detected at least once, summed.
  std::uint64_t contacts = 0;
  std::uint64_t detected = 0;
  /// Per detected contact: slots from contact open to first reception,
  /// and the same normalized by the contact's duration.
  util::Samples detection_latency;
  util::Samples latency_over_duration;
  /// Per trial: fraction of contacts never detected.
  util::Samples missed_fraction;
  /// Per trial with >= 1 detection: total radio energy (RadioActivity
  /// default costs) divided by detected-contact count.
  util::Samples energy_per_detected;

  [[nodiscard]] bool enabled() const noexcept { return trials > 0; }
  [[nodiscard]] double detection_rate() const noexcept {
    return contacts == 0 ? 0.0
                         : static_cast<double>(detected) /
                               static_cast<double>(contacts);
  }
};

/// One completed run_sync_trials / run_async_trials call. The process
/// keeps a log of these (in call order) so bench binaries can emit their
/// completion statistics into the machine-readable BENCH_<id>.json
/// artifact without per-bench wiring.
struct TrialRunRecord {
  bool async = false;
  std::size_t trials = 0;
  std::size_t completed = 0;
  /// Mean / p90 of completion slots (sync) or completion-after-T_s
  /// (async), over completed trials; zero when none completed.
  double mean_completion = 0.0;
  double p90_completion = 0.0;
  double elapsed_seconds = 0.0;
  std::size_t threads_used = 1;
  /// Robustness aggregates, all zero unless some trial carried a fault
  /// plan; means are over fault trials.
  std::size_t fault_trials = 0;
  double mean_surviving_recall = 0.0;
  double mean_ghost_entries = 0.0;
  double mean_rediscovery = 0.0;
  std::size_t recovered_links = 0;
  std::size_t rediscovered_links = 0;
  /// Adversary aggregates, all zero unless some trial carried an enabled
  /// adversary block; means are over adversary trials.
  std::size_t adversary_trials = 0;
  double mean_precision_under_attack = 0.0;
  double mean_isolation = 0.0;
  std::size_t fake_entries = 0;
  std::size_t isolated_fakes = 0;
  std::size_t honest_isolated = 0;
  /// Encounter aggregates, all zero unless the run tracked contacts
  /// (EncounterStats::enabled()); means are over detected contacts or
  /// encounter trials as documented on EncounterStats.
  std::size_t encounter_trials = 0;
  std::uint64_t contacts = 0;
  std::uint64_t detected_contacts = 0;
  double mean_detection_latency = 0.0;
  double p90_detection_latency = 0.0;
  double mean_latency_fraction = 0.0;
  double mean_missed_fraction = 0.0;
  double mean_energy_per_detected = 0.0;

  [[nodiscard]] double success_rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(completed) /
                             static_cast<double>(trials);
  }
};

/// Snapshot of every trial run executed by this process so far.
[[nodiscard]] std::vector<TrialRunRecord> trial_run_log();

/// Aggregate over synchronous trials.
struct SyncTrialStats {
  std::size_t trials = 0;
  std::size_t completed = 0;  ///< trials finishing within the slot budget
  /// Completion slot (0-based index of the covering slot) of completed
  /// trials only.
  util::Samples completion_slots;
  /// Robustness aggregates from faulted trials (empty without a plan).
  RobustnessStats robustness;
  /// Encounter aggregates (empty unless SyncTrialConfig::encounters set).
  EncounterStats encounters;
  /// Wall-clock duration of the whole run and the worker count that
  /// produced it (throughput reporting; not part of the deterministic
  /// aggregate).
  double elapsed_seconds = 0.0;
  std::size_t threads_used = 1;

  [[nodiscard]] double success_rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(completed) /
                             static_cast<double>(trials);
  }
  [[nodiscard]] double trials_per_second() const noexcept {
    return elapsed_seconds <= 0.0
               ? 0.0
               : static_cast<double>(trials) / elapsed_seconds;
  }
};

/// Which synchronous inner loop executes each trial. Both produce
/// bit-identical aggregates (the SoA==engine equivalence suite pins the
/// per-trial results); kSoa is the large-N path.
enum class SyncKernel {
  kEngine,  ///< run_slot_engine: virtual policies, DiscoveryState matrix
  kSoa,     ///< sim::SoaSlotKernel: flat arrays, CSR coverage
};

struct SyncTrialConfig {
  std::size_t trials = 30;
  std::uint64_t seed = 1;  ///< root seed; trial t uses derive(seed, t)
  sim::SlotEngineConfig engine;  ///< engine.seed is overwritten per trial
  /// Optional per-trial hook to vary the engine config (e.g. randomized
  /// start slots). Called with (trial index, config to mutate). Hooks run
  /// serially on the calling thread, in trial order, before any trial
  /// executes — they need not be thread-safe.
  std::function<void(std::size_t, sim::SlotEngineConfig&)> per_trial;
  /// Worker threads for the trial fan-out: 1 = serial on the calling
  /// thread, 0 = default_trial_threads(). Aggregate results are identical
  /// for every value.
  std::size_t threads = 0;
  /// Inner loop selection; honored only by the SyncPolicySpec overload
  /// (the factory overload has no data representation to hand the SoA
  /// kernel and always runs the classic engine).
  SyncKernel kernel = SyncKernel::kEngine;
  /// Optional contact schedule (caller-owned, must outlive the run): when
  /// set, every trial tracks per-contact detection through the engine's
  /// on_reception hook — chained after any hook the per_trial callback
  /// installs — and the aggregate lands in SyncTrialStats::encounters.
  const sim::EncounterIndex* encounters = nullptr;
};

[[nodiscard]] SyncTrialStats run_sync_trials(
    const net::Network& network, const sim::SyncPolicyFactory& factory,
    const SyncTrialConfig& config);

/// Spec-driven synchronous trials: dispatches on `config.kernel`, running
/// either the classic slot engine (via the spec's policy factory) or the
/// SoA kernel (via the spec's policy table). Identical stats either way.
[[nodiscard]] SyncTrialStats run_sync_trials(const net::Network& network,
                                             const core::SyncPolicySpec& spec,
                                             const SyncTrialConfig& config);

/// Aggregate over asynchronous trials.
struct AsyncTrialStats {
  std::size_t trials = 0;
  std::size_t completed = 0;
  /// Real completion time minus T_s, completed trials only.
  util::Samples completion_after_ts;
  /// max over nodes of full frames since T_s at completion (Theorem 9's
  /// measured quantity), completed trials only.
  util::Samples max_full_frames;
  /// Robustness aggregates from faulted trials (empty without a plan).
  RobustnessStats robustness;
  /// Always empty today (contact tracking is slotted-only); present so the
  /// shared run-record reduction treats both stats types uniformly.
  EncounterStats encounters;
  /// Throughput fields; see SyncTrialStats.
  double elapsed_seconds = 0.0;
  std::size_t threads_used = 1;

  [[nodiscard]] double success_rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(completed) /
                             static_cast<double>(trials);
  }
  [[nodiscard]] double trials_per_second() const noexcept {
    return elapsed_seconds <= 0.0
               ? 0.0
               : static_cast<double>(trials) / elapsed_seconds;
  }
};

struct AsyncTrialConfig {
  std::size_t trials = 30;
  std::uint64_t seed = 1;
  sim::AsyncEngineConfig engine;
  /// Serial, trial-ordered hook; see SyncTrialConfig::per_trial.
  std::function<void(std::size_t, sim::AsyncEngineConfig&)> per_trial;
  /// Worker threads; see SyncTrialConfig::threads.
  std::size_t threads = 0;
};

[[nodiscard]] AsyncTrialStats run_async_trials(
    const net::Network& network, const sim::AsyncPolicyFactory& factory,
    const AsyncTrialConfig& config);

/// Multi-radio trials aggregate the same quantities as synchronous ones
/// (the engine is slotted), so the stats type is shared.
using MultiRadioTrialStats = SyncTrialStats;

struct MultiRadioTrialConfig {
  std::size_t trials = 30;
  std::uint64_t seed = 1;
  sim::MultiRadioEngineConfig engine;
  /// Serial, trial-ordered hook; see SyncTrialConfig::per_trial.
  std::function<void(std::size_t, sim::MultiRadioEngineConfig&)> per_trial;
  /// Worker threads; see SyncTrialConfig::threads.
  std::size_t threads = 0;
};

[[nodiscard]] MultiRadioTrialStats run_multi_radio_trials(
    const net::Network& network, const sim::MultiRadioPolicyFactory& factory,
    const MultiRadioTrialConfig& config);

// --- Reduction building blocks shared with the streaming path ----------
//
// The sweep service (src/service/) reduces worker-streamed per-trial
// records through runner/streaming.hpp, which reuses exactly these hooks;
// keeping them here is what makes "daemon-sharded == batch, bit-identical"
// a structural property rather than a test-enforced coincidence.

/// Folds one trial's robustness report into the aggregate. Call in trial
/// order: the retained Samples preserve insertion order.
void fold_robustness(RobustnessStats& aggregate,
                     const sim::RobustnessReport& report);

/// Folds one trial's encounter report (plus the trial's total radio
/// energy under the default costs) into the aggregate, in trial order.
void fold_encounters(EncounterStats& aggregate,
                     const sim::EncounterReport& report, double trial_energy);

/// Builds the run-log entry for a finished slotted aggregate.
[[nodiscard]] TrialRunRecord make_sync_run_record(const SyncTrialStats& stats);

/// Appends a record to the process-wide run log and throughput totals —
/// so daemon-sharded runs surface in bench JSON exactly like batch runs.
void log_trial_run(const TrialRunRecord& record);

}  // namespace m2hew::runner
