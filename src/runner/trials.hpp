// Multi-trial experiment runners: repeat an engine run over independent
// seeds and aggregate completion statistics, the unit of every bench.
#pragma once

#include <functional>

#include "net/network.hpp"
#include "sim/async_engine.hpp"
#include "sim/slot_engine.hpp"
#include "util/stats.hpp"

namespace m2hew::runner {

/// Aggregate over synchronous trials.
struct SyncTrialStats {
  std::size_t trials = 0;
  std::size_t completed = 0;  ///< trials finishing within the slot budget
  /// Completion slot (0-based index of the covering slot) of completed
  /// trials only.
  util::Samples completion_slots;

  [[nodiscard]] double success_rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(completed) /
                             static_cast<double>(trials);
  }
};

struct SyncTrialConfig {
  std::size_t trials = 30;
  std::uint64_t seed = 1;  ///< root seed; trial t uses derive(seed, t)
  sim::SlotEngineConfig engine;  ///< engine.seed is overwritten per trial
  /// Optional per-trial hook to vary the engine config (e.g. randomized
  /// start slots). Called with (trial index, config to mutate).
  std::function<void(std::size_t, sim::SlotEngineConfig&)> per_trial;
};

[[nodiscard]] SyncTrialStats run_sync_trials(
    const net::Network& network, const sim::SyncPolicyFactory& factory,
    const SyncTrialConfig& config);

/// Aggregate over asynchronous trials.
struct AsyncTrialStats {
  std::size_t trials = 0;
  std::size_t completed = 0;
  /// Real completion time minus T_s, completed trials only.
  util::Samples completion_after_ts;
  /// max over nodes of full frames since T_s at completion (Theorem 9's
  /// measured quantity), completed trials only.
  util::Samples max_full_frames;

  [[nodiscard]] double success_rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(completed) /
                             static_cast<double>(trials);
  }
};

struct AsyncTrialConfig {
  std::size_t trials = 30;
  std::uint64_t seed = 1;
  sim::AsyncEngineConfig engine;
  std::function<void(std::size_t, sim::AsyncEngineConfig&)> per_trial;
};

[[nodiscard]] AsyncTrialStats run_async_trials(
    const net::Network& network, const sim::AsyncPolicyFactory& factory,
    const AsyncTrialConfig& config);

}  // namespace m2hew::runner
