#include "runner/streaming.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/check.hpp"

namespace m2hew::runner {

TrialOutcomeRecord make_outcome_record(
    std::size_t trial, bool complete, std::uint64_t completion_slot,
    const sim::RobustnessReport& robustness) {
  TrialOutcomeRecord record;
  record.trial = trial;
  record.complete = complete;
  record.completion_slot = static_cast<double>(completion_slot);
  record.fault_enabled = robustness.enabled;
  record.surviving_links = robustness.surviving_links;
  record.covered_surviving_links = robustness.covered_surviving_links;
  record.ghost_entries = robustness.ghost_entries;
  record.recovered_links = robustness.recovered_links;
  record.rediscovered_links = robustness.rediscovered_links;
  record.mean_rediscovery = robustness.mean_rediscovery;
  record.adversary = robustness.adversary;
  record.real_entries = robustness.real_entries;
  record.fake_entries = robustness.fake_entries;
  record.isolated_fakes = robustness.isolated_fakes;
  record.honest_isolated = robustness.honest_isolated;
  record.mean_isolation = robustness.mean_isolation;
  return record;
}

sim::RobustnessReport to_robustness_report(const TrialOutcomeRecord& record) {
  sim::RobustnessReport report;
  report.enabled = record.fault_enabled;
  report.surviving_links = record.surviving_links;
  report.covered_surviving_links = record.covered_surviving_links;
  report.ghost_entries = record.ghost_entries;
  report.recovered_links = record.recovered_links;
  report.rediscovered_links = record.rediscovered_links;
  report.mean_rediscovery = record.mean_rediscovery;
  report.adversary = record.adversary;
  report.real_entries = record.real_entries;
  report.fake_entries = record.fake_entries;
  report.isolated_fakes = record.isolated_fakes;
  report.honest_isolated = record.honest_isolated;
  report.mean_isolation = record.mean_isolation;
  return report;
}

std::string encode_outcome_record(const TrialOutcomeRecord& record) {
  // %a renders the exact binary representation of the doubles, so decode
  // reproduces them bit-for-bit; everything else is integral.
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "R %zu %d %a %d %zu %zu %zu %zu %zu %a %d %zu %zu %zu %zu %a",
                record.trial, record.complete ? 1 : 0,
                record.completion_slot, record.fault_enabled ? 1 : 0,
                record.surviving_links, record.covered_surviving_links,
                record.ghost_entries, record.recovered_links,
                record.rediscovered_links, record.mean_rediscovery,
                record.adversary ? 1 : 0, record.real_entries,
                record.fake_entries, record.isolated_fakes,
                record.honest_isolated, record.mean_isolation);
  return buf;
}

std::optional<TrialOutcomeRecord> decode_outcome_record(
    std::string_view line) {
  if (line.size() < 2 || line[0] != 'R' || line[1] != ' ') return {};
  const std::string text(line.substr(2));
  TrialOutcomeRecord record;
  int complete = 0;
  int fault = 0;
  int adversary = 0;
  int consumed = -1;
  const int matched = std::sscanf(
      text.c_str(),
      "%zu %d %la %d %zu %zu %zu %zu %zu %la %d %zu %zu %zu %zu %la%n",
      &record.trial, &complete, &record.completion_slot, &fault,
      &record.surviving_links, &record.covered_surviving_links,
      &record.ghost_entries, &record.recovered_links,
      &record.rediscovered_links, &record.mean_rediscovery, &adversary,
      &record.real_entries, &record.fake_entries, &record.isolated_fakes,
      &record.honest_isolated, &record.mean_isolation, &consumed);
  if (matched != 16 || consumed < 0 ||
      static_cast<std::size_t>(consumed) != text.size()) {
    return {};
  }
  if ((complete != 0 && complete != 1) || (fault != 0 && fault != 1) ||
      (adversary != 0 && adversary != 1)) {
    return {};
  }
  record.complete = complete == 1;
  record.fault_enabled = fault == 1;
  record.adversary = adversary == 1;
  return record;
}

std::string encode_end_marker(std::size_t shard, std::size_t emitted) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "E %zu %zu", shard, emitted);
  return buf;
}

std::optional<std::pair<std::size_t, std::size_t>> decode_end_marker(
    std::string_view line) {
  if (line.size() < 2 || line[0] != 'E' || line[1] != ' ') return {};
  const std::string text(line.substr(2));
  std::size_t shard = 0;
  std::size_t emitted = 0;
  int consumed = -1;
  if (std::sscanf(text.c_str(), "%zu %zu%n", &shard, &emitted, &consumed) !=
          2 ||
      consumed < 0 || static_cast<std::size_t>(consumed) != text.size()) {
    return {};
  }
  return std::make_pair(shard, emitted);
}

StreamingSyncReducer::StreamingSyncReducer(std::size_t trials)
    : trials_(trials), seen_(trials, false) {
  stats_.trials = trials;
  stats_.completion_slots.reserve(trials);
}

bool StreamingSyncReducer::offer(const TrialOutcomeRecord& record) {
  if (record.trial >= trials_ || seen_[record.trial]) return false;
  seen_[record.trial] = true;
  ++received_;
  pending_.emplace(record.trial, record);
  drain();
  return true;
}

void StreamingSyncReducer::drain() {
  // Fold the contiguous run starting at next_; everything later stays
  // buffered. This is the only place records enter the aggregate, so the
  // fold order is the trial order no matter how offers interleave.
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == next_;
       it = pending_.erase(it), ++next_) {
    const TrialOutcomeRecord& record = it->second;
    fold_robustness(stats_.robustness, to_robustness_report(record));
    if (!record.complete) continue;
    ++stats_.completed;
    stats_.completion_slots.add(record.completion_slot);
  }
}

std::vector<std::size_t> StreamingSyncReducer::missing_trials() const {
  std::vector<std::size_t> missing;
  for (std::size_t t = 0; t < trials_; ++t) {
    if (!seen_[t]) missing.push_back(t);
  }
  return missing;
}

SyncTrialStats StreamingSyncReducer::finish(double elapsed_seconds,
                                            std::size_t workers) {
  M2HEW_CHECK_MSG(all_received(), "streaming reduction finished early");
  M2HEW_CHECK(pending_.empty());
  stats_.elapsed_seconds = elapsed_seconds;
  stats_.threads_used = workers;
  log_trial_run(make_sync_run_record(stats_));
  return stats_;
}

}  // namespace m2hew::runner
