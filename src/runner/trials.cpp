#include "runner/trials.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace m2hew::runner {

SyncTrialStats run_sync_trials(const net::Network& network,
                               const sim::SyncPolicyFactory& factory,
                               const SyncTrialConfig& config) {
  const util::SeedSequence seeds(config.seed);
  SyncTrialStats stats;
  stats.trials = config.trials;
  for (std::size_t t = 0; t < config.trials; ++t) {
    sim::SlotEngineConfig engine = config.engine;
    engine.seed = seeds.derive(t);
    if (config.per_trial) config.per_trial(t, engine);
    const auto result = sim::run_slot_engine(network, factory, engine);
    if (result.complete) {
      ++stats.completed;
      stats.completion_slots.add(
          static_cast<double>(result.completion_slot));
    }
  }
  return stats;
}

AsyncTrialStats run_async_trials(const net::Network& network,
                                 const sim::AsyncPolicyFactory& factory,
                                 const AsyncTrialConfig& config) {
  const util::SeedSequence seeds(config.seed);
  AsyncTrialStats stats;
  stats.trials = config.trials;
  for (std::size_t t = 0; t < config.trials; ++t) {
    sim::AsyncEngineConfig engine = config.engine;
    engine.seed = seeds.derive(t);
    if (config.per_trial) config.per_trial(t, engine);
    const auto result = sim::run_async_engine(network, factory, engine);
    if (result.complete) {
      ++stats.completed;
      stats.completion_after_ts.add(result.completion_time - result.t_s);
      std::uint64_t max_frames = 0;
      for (const std::uint64_t f : result.full_frames_since_ts) {
        max_frames = std::max(max_frames, f);
      }
      stats.max_full_frames.add(static_cast<double>(max_frames));
    }
  }
  return stats;
}

}  // namespace m2hew::runner
