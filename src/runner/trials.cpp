#include "runner/trials.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "sim/soa_kernel.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace m2hew::runner {
namespace {

std::atomic<std::size_t> g_default_threads{0};  // 0 = not set yet

// Process-wide throughput totals; relaxed atomics are enough because the
// numbers are reporting-only and never gate control flow.
std::atomic<std::size_t> g_total_runs{0};
std::atomic<std::size_t> g_total_trials{0};
std::atomic<double> g_total_busy_seconds{0.0};

void record_run(std::size_t trials, double seconds) noexcept {
  g_total_runs.fetch_add(1, std::memory_order_relaxed);
  g_total_trials.fetch_add(trials, std::memory_order_relaxed);
  double seen = g_total_busy_seconds.load(std::memory_order_relaxed);
  while (!g_total_busy_seconds.compare_exchange_weak(
      seen, seen + seconds, std::memory_order_relaxed)) {
  }
}

// Per-run log for the bench JSON artifacts; run_*_trials may be invoked
// from several threads, so the vector is mutex-guarded.
std::mutex g_run_log_mutex;
std::vector<TrialRunRecord>& run_log() {
  static std::vector<TrialRunRecord> log;
  return log;
}

void append_run_record(TrialRunRecord record) {
  const std::lock_guard<std::mutex> lock(g_run_log_mutex);
  run_log().push_back(record);
}

/// Builds the log entry shared by both runners from the aggregate stats.
template <typename Stats>
[[nodiscard]] TrialRunRecord make_run_record(const Stats& stats, bool async,
                                             const util::Samples& completion) {
  TrialRunRecord record;
  record.async = async;
  record.trials = stats.trials;
  record.completed = stats.completed;
  if (stats.completed > 0) {
    const util::Summary summary = completion.summarize();
    record.mean_completion = summary.mean;
    record.p90_completion = summary.p90;
  }
  record.elapsed_seconds = stats.elapsed_seconds;
  record.threads_used = stats.threads_used;
  const RobustnessStats& robust = stats.robustness;
  if (robust.enabled()) {
    record.fault_trials = robust.fault_trials;
    record.mean_surviving_recall = robust.surviving_recall.summarize().mean;
    record.mean_ghost_entries = robust.ghost_entries.summarize().mean;
    if (robust.rediscovery_times.count() > 0) {
      record.mean_rediscovery = robust.rediscovery_times.summarize().mean;
    }
    record.recovered_links = robust.recovered_links;
    record.rediscovered_links = robust.rediscovered_links;
    if (robust.adversarial()) {
      record.adversary_trials = robust.adversary_trials;
      record.mean_precision_under_attack =
          robust.precision_under_attack.summarize().mean;
      if (robust.isolation_times.count() > 0) {
        record.mean_isolation = robust.isolation_times.summarize().mean;
      }
      record.fake_entries = robust.fake_entries;
      record.isolated_fakes = robust.isolated_fakes;
      record.honest_isolated = robust.honest_isolated;
    }
  }
  const EncounterStats& enc = stats.encounters;
  if (enc.enabled()) {
    record.encounter_trials = enc.trials;
    record.contacts = enc.contacts;
    record.detected_contacts = enc.detected;
    if (enc.detection_latency.count() > 0) {
      const util::Summary latency = enc.detection_latency.summarize();
      record.mean_detection_latency = latency.mean;
      record.p90_detection_latency = latency.p90;
      record.mean_latency_fraction =
          enc.latency_over_duration.summarize().mean;
    }
    if (enc.missed_fraction.count() > 0) {
      record.mean_missed_fraction = enc.missed_fraction.summarize().mean;
    }
    if (enc.energy_per_detected.count() > 0) {
      record.mean_energy_per_detected =
          enc.energy_per_detected.summarize().mean;
    }
  }
  return record;
}

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Chains a per-trial encounter tracker in front of whatever on_reception
/// hook the config already carries. The tracker must outlive the run.
void attach_tracker(sim::SlotEngineConfig& cfg,
                    sim::EncounterTracker& tracker) {
  cfg.on_reception = [&tracker, inner = std::move(cfg.on_reception)](
                         std::uint64_t slot, net::NodeId sender,
                         net::NodeId receiver, net::ChannelId channel) {
    tracker.on_reception(slot, sender, receiver);
    if (inner) inner(slot, sender, receiver, channel);
  };
}

/// Effective worker count: resolve the 0 default, never more workers than
/// trials, never fewer than one.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested,
                                          std::size_t trials) {
  std::size_t threads =
      requested == 0 ? default_trial_threads() : requested;
  threads = std::min(threads, std::max<std::size_t>(trials, 1));
  return std::max<std::size_t>(threads, 1);
}

/// Runs body(0..count-1) either inline (threads == 1) or on a pool.
/// Bodies write only to their own index's slot, so any schedule yields
/// the same buffer contents.
template <typename Body>
void dispatch_trials(std::size_t count, std::size_t threads,
                     const Body& body) {
  if (threads <= 1) {
    for (std::size_t t = 0; t < count; ++t) body(t);
    return;
  }
  util::ThreadPool pool(threads);
  pool.parallel_for(count, body);
}

}  // namespace

void set_default_trial_threads(std::size_t threads) noexcept {
  g_default_threads.store(threads == 0 ? util::ThreadPool::default_threads()
                                       : threads,
                          std::memory_order_relaxed);
}

std::size_t default_trial_threads() noexcept {
  const std::size_t set = g_default_threads.load(std::memory_order_relaxed);
  return set == 0 ? util::ThreadPool::default_threads() : set;
}

TrialThroughput trial_throughput_totals() noexcept {
  TrialThroughput totals;
  totals.runs = g_total_runs.load(std::memory_order_relaxed);
  totals.trials = g_total_trials.load(std::memory_order_relaxed);
  totals.busy_seconds = g_total_busy_seconds.load(std::memory_order_relaxed);
  return totals;
}

std::vector<TrialRunRecord> trial_run_log() {
  const std::lock_guard<std::mutex> lock(g_run_log_mutex);
  return run_log();
}

void fold_robustness(RobustnessStats& aggregate,
                     const sim::RobustnessReport& report) {
  if (!report.enabled) return;
  ++aggregate.fault_trials;
  aggregate.surviving_recall.add(report.surviving_recall());
  aggregate.ghost_entries.add(static_cast<double>(report.ghost_entries));
  if (report.rediscovered_links > 0) {
    aggregate.rediscovery_times.add(report.mean_rediscovery);
  }
  aggregate.recovered_links += report.recovered_links;
  aggregate.rediscovered_links += report.rediscovered_links;
  if (report.adversary) {
    ++aggregate.adversary_trials;
    aggregate.precision_under_attack.add(report.precision_under_attack());
    if (report.isolated_fakes > 0) {
      aggregate.isolation_times.add(report.mean_isolation);
    }
    aggregate.fake_entries += report.fake_entries;
    aggregate.isolated_fakes += report.isolated_fakes;
    aggregate.honest_isolated += report.honest_isolated;
  }
}

void fold_encounters(EncounterStats& aggregate,
                     const sim::EncounterReport& report,
                     double trial_energy) {
  ++aggregate.trials;
  aggregate.contacts += report.contacts;
  aggregate.detected += report.detected;
  for (const double v : report.detection_latency) {
    aggregate.detection_latency.add(v);
  }
  for (const double v : report.latency_over_duration) {
    aggregate.latency_over_duration.add(v);
  }
  if (report.contacts > 0) {
    aggregate.missed_fraction.add(
        static_cast<double>(report.contacts - report.detected) /
        static_cast<double>(report.contacts));
  }
  if (report.detected > 0) {
    aggregate.energy_per_detected.add(trial_energy /
                                      static_cast<double>(report.detected));
  }
}

TrialRunRecord make_sync_run_record(const SyncTrialStats& stats) {
  return make_run_record(stats, /*async=*/false, stats.completion_slots);
}

void log_trial_run(const TrialRunRecord& record) {
  record_run(record.trials, record.elapsed_seconds);
  append_run_record(record);
}

SyncTrialStats run_sync_trials(const net::Network& network,
                               const sim::SyncPolicyFactory& factory,
                               const SyncTrialConfig& config) {
  const auto start = Clock::now();
  const util::SeedSequence seeds(config.seed);
  SyncTrialStats stats;
  stats.trials = config.trials;
  stats.threads_used = resolve_threads(config.threads, config.trials);

  // Engine configs are prepared serially in trial order so per_trial
  // hooks keep their single-threaded contract.
  std::vector<sim::SlotEngineConfig> engines;
  engines.reserve(config.trials);
  for (std::size_t t = 0; t < config.trials; ++t) {
    engines.push_back(config.engine);
    engines.back().seed = seeds.derive(t);
    if (config.per_trial) config.per_trial(t, engines.back());
  }

  // Per-trial outcomes land in slot t; the reduction below walks them in
  // trial order, so parallel output is identical to serial output.
  struct Outcome {
    bool complete = false;
    double completion_slot = 0.0;
    sim::RobustnessReport robustness;
    sim::EncounterReport encounters;
    double energy = 0.0;
  };
  std::vector<Outcome> outcomes(config.trials);
  dispatch_trials(config.trials, stats.threads_used, [&](std::size_t t) {
    std::optional<sim::EncounterTracker> tracker;
    if (config.encounters != nullptr) {
      tracker.emplace(*config.encounters);
      attach_tracker(engines[t], *tracker);
    }
    const auto result = sim::run_slot_engine(network, factory, engines[t]);
    outcomes[t] = {result.complete,
                   static_cast<double>(result.completion_slot),
                   result.robustness,
                   {},
                   0.0};
    if (tracker.has_value()) {
      outcomes[t].encounters = tracker->report();
      outcomes[t].energy = sim::total_activity(result.activity).energy();
    }
  });

  stats.completion_slots.reserve(config.trials);
  for (const Outcome& outcome : outcomes) {
    fold_robustness(stats.robustness, outcome.robustness);
    if (config.encounters != nullptr) {
      fold_encounters(stats.encounters, outcome.encounters, outcome.energy);
    }
    if (!outcome.complete) continue;
    ++stats.completed;
    stats.completion_slots.add(outcome.completion_slot);
  }
  stats.elapsed_seconds = seconds_since(start);
  record_run(stats.trials, stats.elapsed_seconds);
  append_run_record(
      make_run_record(stats, /*async=*/false, stats.completion_slots));
  return stats;
}

SyncTrialStats run_sync_trials(const net::Network& network,
                               const core::SyncPolicySpec& spec,
                               const SyncTrialConfig& config) {
  if (config.kernel == SyncKernel::kEngine) {
    return run_sync_trials(network, core::make_policy_factory(spec), config);
  }

  const auto start = Clock::now();
  const util::SeedSequence seeds(config.seed);
  SyncTrialStats stats;
  stats.trials = config.trials;
  stats.threads_used = resolve_threads(config.threads, config.trials);

  std::vector<sim::SlotEngineConfig> engines;
  engines.reserve(config.trials);
  for (std::size_t t = 0; t < config.trials; ++t) {
    engines.push_back(config.engine);
    engines.back().seed = seeds.derive(t);
    if (config.per_trial) config.per_trial(t, engines.back());
  }

  const sim::SoaPolicyTable table = core::build_soa_policy_table(network, spec);

  // One flattened kernel per worker, handed out through a free-list: a
  // kernel's per-trial arrays are reused across runs but never shared
  // between concurrent trials. Results depend only on the trial config,
  // so which kernel object serves which trial is irrelevant.
  std::vector<std::unique_ptr<sim::SoaSlotKernel>> idle_kernels;
  std::mutex kernel_mutex;
  const std::size_t kernel_count =
      std::min(stats.threads_used, std::max<std::size_t>(config.trials, 1));
  idle_kernels.reserve(kernel_count);
  for (std::size_t k = 0; k < kernel_count; ++k) {
    idle_kernels.push_back(std::make_unique<sim::SoaSlotKernel>(network));
  }

  struct Outcome {
    bool complete = false;
    double completion_slot = 0.0;
    sim::RobustnessReport robustness;
    sim::EncounterReport encounters;
    double energy = 0.0;
  };
  std::vector<Outcome> outcomes(config.trials);
  dispatch_trials(config.trials, stats.threads_used, [&](std::size_t t) {
    std::unique_ptr<sim::SoaSlotKernel> kernel;
    {
      const std::lock_guard<std::mutex> lock(kernel_mutex);
      kernel = std::move(idle_kernels.back());
      idle_kernels.pop_back();
    }
    std::optional<sim::EncounterTracker> tracker;
    if (config.encounters != nullptr) {
      tracker.emplace(*config.encounters);
      attach_tracker(engines[t], *tracker);
    }
    const auto result = kernel->run(table, engines[t]);
    {
      const std::lock_guard<std::mutex> lock(kernel_mutex);
      idle_kernels.push_back(std::move(kernel));
    }
    outcomes[t] = {result.complete,
                   static_cast<double>(result.completion_slot),
                   result.robustness,
                   {},
                   0.0};
    if (tracker.has_value()) {
      outcomes[t].encounters = tracker->report();
      outcomes[t].energy = sim::total_activity(result.activity).energy();
    }
  });

  stats.completion_slots.reserve(config.trials);
  for (const Outcome& outcome : outcomes) {
    fold_robustness(stats.robustness, outcome.robustness);
    if (config.encounters != nullptr) {
      fold_encounters(stats.encounters, outcome.encounters, outcome.energy);
    }
    if (!outcome.complete) continue;
    ++stats.completed;
    stats.completion_slots.add(outcome.completion_slot);
  }
  stats.elapsed_seconds = seconds_since(start);
  record_run(stats.trials, stats.elapsed_seconds);
  append_run_record(
      make_run_record(stats, /*async=*/false, stats.completion_slots));
  return stats;
}

AsyncTrialStats run_async_trials(const net::Network& network,
                                 const sim::AsyncPolicyFactory& factory,
                                 const AsyncTrialConfig& config) {
  const auto start = Clock::now();
  const util::SeedSequence seeds(config.seed);
  AsyncTrialStats stats;
  stats.trials = config.trials;
  stats.threads_used = resolve_threads(config.threads, config.trials);

  std::vector<sim::AsyncEngineConfig> engines;
  engines.reserve(config.trials);
  for (std::size_t t = 0; t < config.trials; ++t) {
    engines.push_back(config.engine);
    engines.back().seed = seeds.derive(t);
    if (config.per_trial) config.per_trial(t, engines.back());
  }

  struct Outcome {
    bool complete = false;
    double after_ts = 0.0;
    double max_frames = 0.0;
    sim::RobustnessReport robustness;
  };
  std::vector<Outcome> outcomes(config.trials);
  dispatch_trials(config.trials, stats.threads_used, [&](std::size_t t) {
    const auto result = sim::run_async_engine(network, factory, engines[t]);
    Outcome outcome;
    outcome.complete = result.complete;
    outcome.robustness = result.robustness;
    if (result.complete) {
      outcome.after_ts = result.completion_time - result.t_s;
      std::uint64_t max_frames = 0;
      for (const std::uint64_t f : result.full_frames_since_ts) {
        max_frames = std::max(max_frames, f);
      }
      outcome.max_frames = static_cast<double>(max_frames);
    }
    outcomes[t] = outcome;
  });

  stats.completion_after_ts.reserve(config.trials);
  stats.max_full_frames.reserve(config.trials);
  for (const Outcome& outcome : outcomes) {
    fold_robustness(stats.robustness, outcome.robustness);
    if (!outcome.complete) continue;
    ++stats.completed;
    stats.completion_after_ts.add(outcome.after_ts);
    stats.max_full_frames.add(outcome.max_frames);
  }
  stats.elapsed_seconds = seconds_since(start);
  record_run(stats.trials, stats.elapsed_seconds);
  append_run_record(
      make_run_record(stats, /*async=*/true, stats.completion_after_ts));
  return stats;
}

MultiRadioTrialStats run_multi_radio_trials(
    const net::Network& network, const sim::MultiRadioPolicyFactory& factory,
    const MultiRadioTrialConfig& config) {
  const auto start = Clock::now();
  const util::SeedSequence seeds(config.seed);
  MultiRadioTrialStats stats;
  stats.trials = config.trials;
  stats.threads_used = resolve_threads(config.threads, config.trials);

  std::vector<sim::MultiRadioEngineConfig> engines;
  engines.reserve(config.trials);
  for (std::size_t t = 0; t < config.trials; ++t) {
    engines.push_back(config.engine);
    engines.back().seed = seeds.derive(t);
    if (config.per_trial) config.per_trial(t, engines.back());
  }

  struct Outcome {
    bool complete = false;
    double completion_slot = 0.0;
    sim::RobustnessReport robustness;
  };
  std::vector<Outcome> outcomes(config.trials);
  dispatch_trials(config.trials, stats.threads_used, [&](std::size_t t) {
    const auto result =
        sim::run_multi_radio_engine(network, factory, engines[t]);
    outcomes[t] = {result.complete,
                   static_cast<double>(result.completion_slot),
                   result.robustness};
  });

  stats.completion_slots.reserve(config.trials);
  for (const Outcome& outcome : outcomes) {
    fold_robustness(stats.robustness, outcome.robustness);
    if (!outcome.complete) continue;
    ++stats.completed;
    stats.completion_slots.add(outcome.completion_slot);
  }
  stats.elapsed_seconds = seconds_since(start);
  record_run(stats.trials, stats.elapsed_seconds);
  append_run_record(
      make_run_record(stats, /*async=*/false, stats.completion_slots));
  return stats;
}

}  // namespace m2hew::runner
