#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace m2hew::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::min() const noexcept { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const noexcept { return n_ == 0 ? 0.0 : max_; }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile_sorted(std::span<const double> sorted, double q) {
  M2HEW_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] + frac * (sorted[idx + 1] - sorted[idx]);
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  RunningStats rs;
  for (const double x : sorted) rs.add(x);

  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = quantile_sorted(sorted, 0.50);
  s.p90 = quantile_sorted(sorted, 0.90);
  s.p95 = quantile_sorted(sorted, 0.95);
  s.p99 = quantile_sorted(sorted, 0.99);
  return s;
}

double Samples::quantile(double q) const {
  std::vector<double> sorted(values_);
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

Interval wilson_interval(std::size_t successes, std::size_t trials,
                         double z) noexcept {
  if (trials == 0) return {0.0, 1.0};
  const auto n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  M2HEW_CHECK(x.size() == y.size());
  M2HEW_CHECK(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double pearson_correlation(std::span<const double> x,
                           std::span<const double> y) {
  M2HEW_CHECK(x.size() == y.size());
  M2HEW_CHECK(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace m2hew::util
