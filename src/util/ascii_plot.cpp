#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace m2hew::util {

std::string ascii_plot(std::span<const double> x, std::span<const double> y,
                       const PlotOptions& options) {
  M2HEW_CHECK(x.size() == y.size());
  M2HEW_CHECK(!x.empty());
  M2HEW_CHECK(options.width >= 12 && options.height >= 2);

  std::vector<double> ys(y.begin(), y.end());
  if (options.log_y) {
    for (double& value : ys) {
      M2HEW_CHECK_MSG(value > 0.0, "log-y plot needs positive values");
      value = std::log10(value);
    }
  }

  double x_lo = *std::min_element(x.begin(), x.end());
  double x_hi = *std::max_element(x.begin(), x.end());
  double y_lo = *std::min_element(ys.begin(), ys.end());
  double y_hi = *std::max_element(ys.begin(), ys.end());
  if (x_hi == x_lo) {
    x_lo -= 1.0;
    x_hi += 1.0;
  }
  if (y_hi == y_lo) {
    y_lo -= 1.0;
    y_hi += 1.0;
  }

  std::vector<std::string> grid(options.height,
                                std::string(options.width, ' '));
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double fx = (x[i] - x_lo) / (x_hi - x_lo);
    const double fy = (ys[i] - y_lo) / (y_hi - y_lo);
    const auto col = static_cast<std::size_t>(
        fx * static_cast<double>(options.width - 1) + 0.5);
    const auto row = static_cast<std::size_t>(
        fy * static_cast<double>(options.height - 1) + 0.5);
    grid[options.height - 1 - row][col] = options.marker;
  }

  const double y_top = options.log_y ? std::pow(10.0, y_hi) : y_hi;
  const double y_bottom = options.log_y ? std::pow(10.0, y_lo) : y_lo;

  std::string out;
  if (!options.y_label.empty()) {
    out += options.y_label;
    if (options.log_y) out += " (log scale)";
    out += '\n';
  }
  char label[40];
  for (std::size_t r = 0; r < options.height; ++r) {
    if (r == 0) {
      std::snprintf(label, sizeof(label), "%10.3g |", y_top);
    } else if (r == options.height - 1) {
      std::snprintf(label, sizeof(label), "%10.3g |", y_bottom);
    } else {
      std::snprintf(label, sizeof(label), "%10s |", "");
    }
    out += label;
    out += grid[r];
    out += '\n';
  }
  out += std::string(11, ' ') + '+' + std::string(options.width, '-') + '\n';
  std::snprintf(label, sizeof(label), "%.3g", x_lo);
  const std::string lo_label = label;
  std::snprintf(label, sizeof(label), "%.3g", x_hi);
  const std::string hi_label = label;
  out += std::string(12, ' ') + lo_label;
  const auto used = 1 + lo_label.size();
  if (options.width > used + hi_label.size()) {
    out += std::string(options.width - used - hi_label.size(), ' ');
  } else {
    out += ' ';
  }
  out += hi_label;
  out += '\n';
  if (!options.x_label.empty()) {
    const auto center = static_cast<long>(11 + options.width / 2) -
                        static_cast<long>(options.x_label.size() / 2);
    out += std::string(static_cast<std::size_t>(std::max(0L, center)), ' ');
    out += options.x_label;
    out += '\n';
  }
  return out;
}

std::string ascii_plot(const std::vector<std::pair<double, double>>& points,
                       const PlotOptions& options) {
  std::vector<double> x;
  std::vector<double> y;
  x.reserve(points.size());
  y.reserve(points.size());
  for (const auto& [px, py] : points) {
    x.push_back(px);
    y.push_back(py);
  }
  return ascii_plot(x, y, options);
}

}  // namespace m2hew::util
