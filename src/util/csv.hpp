// Minimal CSV writer for experiment output. Handles quoting of fields
// containing separators, quotes, or newlines.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace m2hew::util {

class CsvWriter {
 public:
  /// Writes to `out`, which must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes the header row. Must be called at most once, before any row.
  void header(std::initializer_list<std::string_view> columns);

  /// Appends one field to the current row (numeric overloads format with
  /// enough precision to round-trip).
  CsvWriter& field(std::string_view value);
  CsvWriter& field(double value);
  CsvWriter& field(long long value);
  CsvWriter& field(unsigned long long value);
  CsvWriter& field(std::size_t value) {
    return field(static_cast<unsigned long long>(value));
  }
  CsvWriter& field(int value) { return field(static_cast<long long>(value)); }

  /// Terminates the current row.
  void end_row();

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  void separator();

  std::ostream* out_;
  bool row_open_ = false;
  bool header_written_ = false;
  std::size_t rows_ = 0;
  std::size_t header_cols_ = 0;
  std::size_t current_cols_ = 0;
};

/// Quotes a CSV field if needed (RFC 4180 style).
[[nodiscard]] std::string csv_escape(std::string_view field);

}  // namespace m2hew::util
