// Stable content hashing for cache keys and spec traceability.
//
// The sweep service keys its artifact cache on a hash of the canonicalized
// spec text plus the binary version (src/service/sweep_spec.hpp), so the
// hash must be stable across platforms, processes and time — never use
// std::hash here. FNV-1a (64-bit) is used: tiny, well-known, and with the
// input length folded in at the end, adequate for cache keying where a
// collision costs a wrong cache hit on a human-inspected artifact, not a
// correctness silently lost. If stronger keys are ever needed, widen this
// to 128 bits behind the same helpers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace m2hew::util {

inline constexpr std::uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv64Prime = 0x100000001b3ull;

/// FNV-1a over a byte string, continuing from `state` so multiple fields
/// can be chained: h = fnv1a64(b, fnv1a64(a)).
[[nodiscard]] std::uint64_t fnv1a64(
    std::string_view bytes, std::uint64_t state = kFnv64OffsetBasis) noexcept;

/// Lower-case 16-hex-digit rendering, the textual form used in cache file
/// names, status files and daemon logs.
[[nodiscard]] std::string hash_hex(std::uint64_t hash);

}  // namespace m2hew::util
