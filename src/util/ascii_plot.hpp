// Terminal scatter/line plots for the bench binaries: a quick visual of a
// sweep's shape (e.g. discovery slots vs 1/ρ) without leaving the console.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace m2hew::util {

struct PlotOptions {
  std::size_t width = 60;   ///< plot columns (excluding axis labels)
  std::size_t height = 16;  ///< plot rows
  char marker = '*';
  bool log_y = false;  ///< plot log10(y) (y must be positive)
  std::string x_label;
  std::string y_label;
};

/// Renders a scatter plot of the (x, y) points. Axes are linear (or log-y),
/// auto-scaled to the data range; degenerate ranges are padded. Requires at
/// least one point and equal-length spans.
[[nodiscard]] std::string ascii_plot(std::span<const double> x,
                                     std::span<const double> y,
                                     const PlotOptions& options = {});

/// Convenience overload for series already stored as pairs.
[[nodiscard]] std::string ascii_plot(
    const std::vector<std::pair<double, double>>& points,
    const PlotOptions& options = {});

}  // namespace m2hew::util
