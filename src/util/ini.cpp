#include "util/ini.hpp"

#include <cstdlib>
#include <istream>
#include <sstream>

#include "util/check.hpp"

namespace m2hew::util {

namespace {

[[nodiscard]] std::string_view trim(std::string_view text) {
  const auto first = text.find_first_not_of(" \t\r");
  if (first == std::string_view::npos) return {};
  const auto last = text.find_last_not_of(" \t\r");
  return text.substr(first, last - first + 1);
}

}  // namespace

IniFile IniFile::parse(std::istream& in, IniParseError* error) {
  IniFile file;
  std::string current;  // current section name
  std::string line;
  std::size_t line_number = 0;
  const auto fail = [&](const char* message) {
    if (error == nullptr) {
      M2HEW_CHECK_MSG(false, message);
    }
    error->line = line_number;
    error->message = message;
    error->text = line;
  };
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == ';') continue;
    if (trimmed.front() == '[') {
      if (trimmed.back() != ']') {
        fail("unterminated section header");
        return file;
      }
      current = std::string(trim(trimmed.substr(1, trimmed.size() - 2)));
      file.sections_[current];  // create even if empty
      continue;
    }
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      fail("expected 'key = value' line");
      return file;
    }
    const std::string key{trim(trimmed.substr(0, eq))};
    const std::string value{trim(trimmed.substr(eq + 1))};
    if (key.empty()) {
      fail("empty key");
      return file;
    }
    Section& section = file.sections_[current];
    if (section.values.emplace(key, value).second) {
      section.order.push_back(key);
    } else {
      section.values[key] = value;  // later assignment wins
    }
  }
  return file;
}

IniFile IniFile::parse_string(std::string_view text, IniParseError* error) {
  std::istringstream in{std::string(text)};
  return parse(in, error);
}

bool IniFile::has_section(std::string_view section) const {
  return sections_.find(section) != sections_.end();
}

bool IniFile::has(std::string_view section, std::string_view key) const {
  const auto it = sections_.find(section);
  if (it == sections_.end()) return false;
  return it->second.values.find(key) != it->second.values.end();
}

std::string IniFile::get(std::string_view section, std::string_view key,
                         std::string_view def) const {
  const auto it = sections_.find(section);
  if (it == sections_.end()) return std::string(def);
  const auto value = it->second.values.find(key);
  if (value == it->second.values.end()) return std::string(def);
  return value->second;
}

std::int64_t IniFile::get_int(std::string_view section, std::string_view key,
                              std::int64_t def) const {
  if (!has(section, key)) return def;
  const std::string text = get(section, key);
  char* end = nullptr;
  const long long parsed = std::strtoll(text.c_str(), &end, 10);
  M2HEW_CHECK_MSG(end != text.c_str() && *end == '\0',
                  "ini value is not an integer");
  return parsed;
}

double IniFile::get_double(std::string_view section, std::string_view key,
                           double def) const {
  if (!has(section, key)) return def;
  const std::string text = get(section, key);
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  M2HEW_CHECK_MSG(end != text.c_str() && *end == '\0',
                  "ini value is not a number");
  return parsed;
}

std::vector<double> IniFile::get_list(std::string_view section,
                                      std::string_view key) const {
  std::vector<double> out;
  std::istringstream stream(get(section, key));
  std::string token;
  while (stream >> token) {
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    M2HEW_CHECK_MSG(end != token.c_str() && *end == '\0',
                    "ini list element is not a number");
    out.push_back(parsed);
  }
  return out;
}

std::vector<std::string> IniFile::keys(std::string_view section) const {
  const auto it = sections_.find(section);
  if (it == sections_.end()) return {};
  return it->second.order;
}

std::vector<std::string> IniFile::section_names() const {
  std::vector<std::string> out;
  out.reserve(sections_.size());
  for (const auto& [name, section] : sections_) out.push_back(name);
  return out;
}

std::string IniFile::canonical_text() const {
  // sections_ and each Section::values are std::maps, so plain iteration
  // is already name-sorted; only value whitespace needs normalizing.
  const auto collapse = [](std::string_view value) {
    std::string out;
    out.reserve(value.size());
    bool in_space = false;
    for (const char c : value) {
      if (c == ' ' || c == '\t') {
        in_space = !out.empty();
        continue;
      }
      if (in_space) out += ' ';
      in_space = false;
      out += c;
    }
    return out;
  };
  std::string text;
  for (const auto& [name, section] : sections_) {
    if (section.values.empty()) continue;  // empty sections carry no state
    text += '[';
    text += name;
    text += "]\n";
    for (const auto& [key, value] : section.values) {
      text += key;
      text += " = ";
      text += collapse(value);
      text += '\n';
    }
  }
  return text;
}

}  // namespace m2hew::util
