#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace m2hew::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[%s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace m2hew::util
