// Minimal command-line flag parser for the tools/ binaries.
//
// Accepts GNU-style long options: --key=value or --key value; a flag with
// no value is boolean true. Everything not starting with "--" is a
// positional argument. Unknown-flag detection is the caller's job via
// unconsumed().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace m2hew::util {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view name) const;

  /// Typed getters return the default when the flag is absent; they abort
  /// (CHECK) when the flag is present but unparseable.
  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string_view def = "") const;
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t def = 0) const;
  [[nodiscard]] double get_double(std::string_view name,
                                  double def = 0.0) const;
  /// Boolean: present with no value, or "true"/"1" → true; "false"/"0" →
  /// false.
  [[nodiscard]] bool get_bool(std::string_view name, bool def = false) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Flags never read by any getter — use to reject typos.
  [[nodiscard]] std::vector<std::string> unconsumed() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  mutable std::map<std::string, bool, std::less<>> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace m2hew::util
