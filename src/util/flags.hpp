// Minimal command-line flag parser for the tools/ binaries.
//
// Accepts GNU-style long options: --key=value or --key value; a flag with
// no value is boolean true. Everything not starting with "--" is a
// positional argument. Unknown-flag detection is the caller's job via
// unconsumed().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace m2hew::util {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view name) const;

  /// Installs a handler invoked with a "--name: ..." message when a typed
  /// getter hits an unparseable value; the getter then returns its
  /// default. Without a handler the getter aborts (CHECK). Front ends
  /// install one that prints the message and exits 2, so a typo'd value
  /// is an ordinary usage error, not a crash.
  void on_parse_error(std::function<void(const std::string&)> handler) {
    on_parse_error_ = std::move(handler);
  }

  /// Typed getters return the default when the flag is absent; they abort
  /// (CHECK) when the flag is present but unparseable, unless an
  /// on_parse_error handler is installed.
  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string_view def = "") const;
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t def = 0) const;
  [[nodiscard]] double get_double(std::string_view name,
                                  double def = 0.0) const;
  /// Boolean: present with no value, or "true"/"1" → true; "false"/"0" →
  /// false.
  [[nodiscard]] bool get_bool(std::string_view name, bool def = false) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Flags never read by any getter — use to reject typos.
  [[nodiscard]] std::vector<std::string> unconsumed() const;

 private:
  void report_malformed(std::string_view name, std::string_view value,
                        const char* expected) const;

  std::map<std::string, std::string, std::less<>> values_;
  mutable std::map<std::string, bool, std::less<>> consumed_;
  std::vector<std::string> positional_;
  std::function<void(const std::string&)> on_parse_error_;
};

}  // namespace m2hew::util
