// Minimal INI parser for experiment definition files (tools/
// m2hew_experiment): `[section]` headers, `key = value` pairs, `#` or `;`
// comments, whitespace-insensitive. Values keep internal spaces (so lists
// like `values = 8 4 2 1` work).
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace m2hew::util {

/// Recoverable description of the first malformed line hit by
/// IniFile::parse. `line` is 1-based; `text` is the offending line verbatim
/// (untrimmed) so tools can echo it back to the user.
struct IniParseError {
  std::size_t line = 0;
  std::string message;
  std::string text;

  [[nodiscard]] bool ok() const noexcept { return line == 0; }
};

class IniFile {
 public:
  /// Parses the stream. With `error == nullptr` malformed lines abort
  /// (CHECK); otherwise the first malformed line is reported through
  /// `*error` (with its 1-based line number) and parsing stops there,
  /// returning the sections parsed so far. Keys outside any section belong
  /// to the unnamed section "".
  [[nodiscard]] static IniFile parse(std::istream& in,
                                     IniParseError* error = nullptr);
  [[nodiscard]] static IniFile parse_string(std::string_view text,
                                            IniParseError* error = nullptr);

  [[nodiscard]] bool has_section(std::string_view section) const;
  [[nodiscard]] bool has(std::string_view section,
                         std::string_view key) const;

  /// Value lookup with default; aborts if the key exists but is not
  /// convertible (for the typed getters).
  [[nodiscard]] std::string get(std::string_view section,
                                std::string_view key,
                                std::string_view def = "") const;
  [[nodiscard]] std::int64_t get_int(std::string_view section,
                                     std::string_view key,
                                     std::int64_t def = 0) const;
  [[nodiscard]] double get_double(std::string_view section,
                                  std::string_view key,
                                  double def = 0.0) const;

  /// Whitespace-separated list value parsed as doubles.
  [[nodiscard]] std::vector<double> get_list(std::string_view section,
                                             std::string_view key) const;

  /// All keys of a section in insertion order (empty if absent).
  [[nodiscard]] std::vector<std::string> keys(
      std::string_view section) const;

  /// All section names, sorted. Validators use this to reject sections a
  /// format does not define (catching e.g. a misspelled `[fault]`).
  [[nodiscard]] std::vector<std::string> section_names() const;

  /// Canonical rendering of the parsed file: sections sorted by name, keys
  /// sorted within each section, exactly `key = value` per line with runs
  /// of whitespace inside values collapsed to single spaces. Two spec
  /// files that differ only in key order, comments, blank lines or
  /// whitespace produce identical canonical text — the property the sweep
  /// service's content-addressed cache key relies on (docs/OPERATIONS.md).
  [[nodiscard]] std::string canonical_text() const;

 private:
  struct Section {
    std::vector<std::string> order;
    std::map<std::string, std::string, std::less<>> values;
  };
  std::map<std::string, Section, std::less<>> sections_;
};

}  // namespace m2hew::util
