// Lightweight precondition / invariant checking.
//
// M2HEW_CHECK is always on (simulation correctness beats raw speed in this
// library; the hot loops that matter have been measured with checks enabled).
// Use M2HEW_DCHECK for checks that are too hot for release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace m2hew::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace m2hew::util

#define M2HEW_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) ::m2hew::util::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define M2HEW_CHECK_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) ::m2hew::util::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)

#ifdef NDEBUG
#define M2HEW_DCHECK(expr) ((void)0)
#else
#define M2HEW_DCHECK(expr) M2HEW_CHECK(expr)
#endif
