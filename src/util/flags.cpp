#include "util/flags.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace m2hew::util {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(body.substr(0, eq))] =
          std::string(body.substr(eq + 1));
      continue;
    }
    // "--key value" form: consume the next token unless it is a flag.
    if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
      values_[std::string(body)] = argv[i + 1];
      ++i;
    } else {
      values_[std::string(body)] = "";  // boolean presence
    }
  }
  for (const auto& [key, value] : values_) {
    consumed_[key] = false;
  }
}

bool Flags::has(std::string_view name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  consumed_[it->first] = true;
  return true;
}

std::string Flags::get_string(std::string_view name,
                              std::string_view def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::string(def);
  consumed_[it->first] = true;
  return it->second;
}

void Flags::report_malformed(std::string_view name, std::string_view value,
                             const char* expected) const {
  const std::string message = "--" + std::string(name) + ": value '" +
                              std::string(value) + "' " + expected;
  if (on_parse_error_) {
    on_parse_error_(message);
    return;
  }
  M2HEW_CHECK_MSG(false, message.c_str());
}

std::int64_t Flags::get_int(std::string_view name, std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[it->first] = true;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    report_malformed(name, it->second, "is not an integer");
    return def;
  }
  return parsed;
}

double Flags::get_double(std::string_view name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[it->first] = true;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    report_malformed(name, it->second, "is not a number");
    return def;
  }
  return parsed;
}

bool Flags::get_bool(std::string_view name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[it->first] = true;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  report_malformed(name, v, "is not a boolean");
  return def;
}

std::vector<std::string> Flags::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [key, used] : consumed_) {
    if (!used) out.push_back(key);
  }
  return out;
}

}  // namespace m2hew::util
