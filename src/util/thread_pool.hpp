// Small fixed-size worker pool for embarrassingly-parallel fan-out (the
// trial layer in runner/trials.*). Tasks are opaque std::functions; the
// pool makes no ordering guarantee between them, so callers that need
// deterministic output must write results into pre-indexed slots and
// reduce in index order after wait_idle() (see run_sync_trials).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace m2hew::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 = default_threads().
  explicit ThreadPool(std::size_t threads = 0);
  /// Drains the queue (pending tasks still run), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task for execution on some worker.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no worker is running a task.
  /// Note: waits for *all* tasks in the pool, not just the caller's.
  void wait_idle();

  /// Runs body(0) .. body(count-1), distributing indices dynamically over
  /// the workers, and returns when all have finished. Rethrows the first
  /// exception any body raised (remaining indices may be skipped).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// One worker per hardware core; 1 when the hardware cannot tell.
  [[nodiscard]] static std::size_t default_threads() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace m2hew::util
