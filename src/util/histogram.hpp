// Fixed-width bucketed histogram with ASCII rendering, used by benches to
// show discovery-time distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace m2hew::util {

class Histogram {
 public:
  /// Buckets of equal width spanning [lo, hi); values outside are clamped
  /// into the first/last bucket. Requires lo < hi and bucket_count >= 1.
  Histogram(double lo, double hi, std::size_t bucket_count);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t count_at(std::size_t bucket) const;
  [[nodiscard]] double bucket_lo(std::size_t bucket) const;
  [[nodiscard]] double bucket_hi(std::size_t bucket) const;

  /// Multi-line ASCII bar rendering, one row per bucket.
  [[nodiscard]] std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace m2hew::util
