// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component of the simulator (node policies, topology
// generators, clock-drift models) draws from an Rng seeded through a
// SeedSequence, so a whole experiment is reproducible from a single root
// seed.  The generator is xoshiro256** (Blackman & Vigna), seeded via
// SplitMix64 per the authors' recommendation.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>

#include "util/check.hpp"

namespace m2hew::util {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and for cheap hash-like stream derivation.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator so it
/// can also drive <random> distributions where convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Jump function: advances the state by 2^128 steps, giving a stream
  /// independent of the original for any realistic draw count.
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Convenience façade over Xoshiro256 with the distributions this library
/// needs. All methods are branch-light and allocation-free.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept { return gen_(); }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_range(std::int64_t lo,
                                           std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform_double() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform_double(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) noexcept {
    M2HEW_DCHECK(!items.empty());
    return items[static_cast<std::size_t>(uniform(items.size()))];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  Xoshiro256 gen_;
};

/// Derives independent child seeds from a root seed plus a stream index.
/// Child k of the same (root, k) pair is always identical; different k give
/// statistically independent streams.
class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t root_seed) noexcept
      : root_(root_seed) {}

  /// Seed for stream `index` (e.g. one per node, one per trial).
  [[nodiscard]] std::uint64_t derive(std::uint64_t index) const noexcept;

  /// Two-level derivation, e.g. (trial, node).
  [[nodiscard]] std::uint64_t derive(std::uint64_t a,
                                     std::uint64_t b) const noexcept;

  [[nodiscard]] std::uint64_t root() const noexcept { return root_; }

 private:
  std::uint64_t root_;
};

}  // namespace m2hew::util
