#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>

namespace m2hew::util {

std::size_t ThreadPool::default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to run
    std::function<void()> task = std::move(queue_.front());
    queue_.pop();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Shared-ownership state so lanes stay valid even though submit() copies
  // the closures; `body` itself outlives wait_idle() below, so a reference
  // capture is safe and avoids copying a potentially heavy closure.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto failed = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();
  const std::size_t lanes = std::min(size(), count);
  for (std::size_t i = 0; i < lanes; ++i) {
    submit([next, failed, error, error_mutex, count, &body] {
      try {
        for (std::size_t t = next->fetch_add(1, std::memory_order_relaxed);
             t < count;
             t = next->fetch_add(1, std::memory_order_relaxed)) {
          if (failed->load(std::memory_order_relaxed)) return;  // fail fast
          body(t);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(*error_mutex);
        if (!*error) *error = std::current_exception();
        failed->store(true, std::memory_order_relaxed);
      }
    });
  }
  wait_idle();
  if (*error) std::rethrow_exception(*error);
}

}  // namespace m2hew::util
