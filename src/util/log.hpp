// Minimal leveled logger. Global level, printf-style, stderr sink.
// Simulation hot loops must not log; this is for harness/progress messages.
#pragma once

#include <cstdarg>

namespace m2hew::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// printf-style logging at a given level.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace m2hew::util

#define M2HEW_LOG_DEBUG(...) \
  ::m2hew::util::log_message(::m2hew::util::LogLevel::kDebug, __VA_ARGS__)
#define M2HEW_LOG_INFO(...) \
  ::m2hew::util::log_message(::m2hew::util::LogLevel::kInfo, __VA_ARGS__)
#define M2HEW_LOG_WARN(...) \
  ::m2hew::util::log_message(::m2hew::util::LogLevel::kWarn, __VA_ARGS__)
#define M2HEW_LOG_ERROR(...) \
  ::m2hew::util::log_message(::m2hew::util::LogLevel::kError, __VA_ARGS__)
