#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace m2hew::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  M2HEW_CHECK(!columns_.empty());
}

Table& Table::row() {
  if (!rows_.empty()) {
    M2HEW_CHECK_MSG(rows_.back().size() == columns_.size(),
                    "previous row incomplete");
  }
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::cell(std::string_view value) {
  M2HEW_CHECK_MSG(!rows_.empty(), "cell before row()");
  M2HEW_CHECK_MSG(rows_.back().size() < columns_.size(), "too many cells");
  rows_.back().emplace_back(value);
  return *this;
}

Table& Table::cell(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return cell(std::string_view(buf));
}

Table& Table::cell(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return cell(std::string_view(buf));
}

Table& Table::cell(unsigned long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", value);
  return cell(std::string_view(buf));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  auto pad = [](std::string& out, std::string_view text, std::size_t width) {
    const std::size_t spaces = width - text.size();
    out.append(spaces, ' ');
    out.append(text);
  };

  std::string out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c != 0) out += "  ";
    pad(out, columns_[c], widths[c]);
  }
  out += '\n';
  std::size_t rule = 0;
  for (const std::size_t w : widths) rule += w;
  rule += 2 * (widths.size() - 1);
  out.append(rule, '-');
  out += '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c != 0) out += "  ";
      pad(out, r[c], widths[c]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace m2hew::util
