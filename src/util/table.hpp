// Console table formatter: right-aligns numeric columns, pads headers, and
// prints the paper-style result tables produced by the bench harness.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace m2hew::util {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(std::string_view value);
  Table& cell(double value, int precision = 2);
  Table& cell(long long value);
  Table& cell(unsigned long long value);
  Table& cell(std::size_t value) {
    return cell(static_cast<unsigned long long>(value));
  }
  Table& cell(int value) { return cell(static_cast<long long>(value)); }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a header rule and column alignment.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace m2hew::util
