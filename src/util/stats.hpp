// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace m2hew::util {

/// Welford-style streaming moments: numerically stable mean/variance plus
/// min/max, O(1) memory. Use when samples need not be retained.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept;
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary over retained samples: adds exact quantiles to the moments.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes a Summary from samples (copies and sorts internally).
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Linear-interpolated quantile of a **sorted** sample vector, q in [0, 1].
/// Empty input yields 0.0 — the same default the Summary quantile fields
/// carry when there are no samples — so quantile(q) and summarize() never
/// disagree on degenerate inputs. q=0 is the minimum, q=1 the maximum, and
/// a single sample is every quantile of itself.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Sample accumulator retaining all values; convenience for benches.
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }
  [[nodiscard]] Summary summarize() const { return util::summarize(values_); }
  /// Quantile over the retained samples; 0.0 when empty, matching the
  /// zero-initialized p50/p90/p95/p99 fields summarize() reports then.
  [[nodiscard]] double quantile(double q) const;
  void clear() noexcept { values_.clear(); }
  void reserve(std::size_t n) { values_.reserve(n); }

  /// Appends another accumulator's samples, preserving their order. For a
  /// deterministic parallel reduction, merge per-shard accumulators in a
  /// fixed shard order; the result is then identical to a serial run.
  void merge(const Samples& other) {
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
  }

 private:
  std::vector<double> values_;
};

/// Wilson score interval for a binomial proportion (successes/trials) at
/// confidence level given by z (z = 1.96 ≈ 95%). Returns {lo, hi}.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
[[nodiscard]] Interval wilson_interval(std::size_t successes,
                                       std::size_t trials,
                                       double z = 1.96) noexcept;

/// Ordinary-least-squares fit y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> x,
                                   std::span<const double> y);

/// Pearson correlation coefficient; 0 when either side has no variance.
[[nodiscard]] double pearson_correlation(std::span<const double> x,
                                         std::span<const double> y);

}  // namespace m2hew::util
