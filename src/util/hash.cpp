#include "util/hash.hpp"

#include <cstdio>

namespace m2hew::util {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t state) noexcept {
  for (const char c : bytes) {
    state ^= static_cast<unsigned char>(c);
    state *= kFnv64Prime;
  }
  // Fold the length in so concatenation boundaries matter:
  // fnv1a64("ab") != fnv1a64("b", fnv1a64("a")) would otherwise collide
  // with differently-split field sequences.
  for (std::size_t len = bytes.size(); len != 0; len >>= 8) {
    state ^= len & 0xff;
    state *= kFnv64Prime;
  }
  return state;
}

std::string hash_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace m2hew::util
