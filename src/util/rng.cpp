#include "util/rng.hpp"

namespace m2hew::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  // Seed the full 256-bit state from SplitMix64 so that even seed = 0
  // produces a well-mixed state (the all-zero state is a fixed point of
  // xoshiro and must be avoided).
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if ((word & (1ULL << bit)) != 0) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      (void)(*this)();
    }
  }
  state_ = acc;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  M2HEW_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
  M2HEW_DCHECK(lo <= hi);
  const auto width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // width == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = (width == 0) ? next_u64() : uniform(width);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::uniform_double() noexcept {
  // 53 high bits → uniform double in [0, 1) with full mantissa resolution.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) noexcept {
  M2HEW_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform_double();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

std::uint64_t SeedSequence::derive(std::uint64_t index) const noexcept {
  std::uint64_t s = root_ ^ (index * 0xA24BAED4963EE407ULL + 1);
  (void)splitmix64(s);
  return splitmix64(s);
}

std::uint64_t SeedSequence::derive(std::uint64_t a,
                                   std::uint64_t b) const noexcept {
  std::uint64_t s = derive(a) ^ (b * 0x9FB21C651E98DF25ULL + 1);
  (void)splitmix64(s);
  return splitmix64(s);
}

}  // namespace m2hew::util
