// Process-level worker fan-out: fork a child running a C++ callable whose
// stdout-side is a pipe, read the workers' line-oriented output as it
// arrives, and reap exit statuses.
//
// The sweep service (src/service/sweep_runner.hpp) shards trials across
// these workers. fork() without exec() is used deliberately: the parent is
// single-threaded at every spawn site (the daemon's dispatch loop and the
// test binaries), the child inherits the already-built network and spec by
// copy-on-write instead of re-parsing them, and no binary-path coupling
// leaks into the library. A child must terminate via _exit (through
// run_worker's return), never by unwinding into the parent's stack.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace m2hew::util {

/// One forked worker and its read end. `line_buffer` accumulates bytes
/// until '\n'; a trailing partial line at EOF (worker died mid-write) is
/// discarded by drain_workers.
struct WorkerProcess {
  int pid = -1;
  int read_fd = -1;
  bool eof = false;
  std::string line_buffer;
  /// Filled by drain_workers after waitpid: true iff the worker exited
  /// normally with status 0.
  bool exited_cleanly = false;
};

/// Forks a child that runs `body(write_fd)` and _exits with its return
/// value; the parent gets the worker handle. The write end is closed in
/// the parent, the read end in the child. Aborts on fork/pipe failure
/// (resource exhaustion — nothing sensible to recover).
///
/// The child resets SIGTERM/SIGINT to their default dispositions (a
/// shutdown-flag handler inherited from a daemon parent would otherwise
/// turn termination into a no-op in the child) and ignores SIGPIPE, so a
/// write after the parent closed its read end surfaces as EPIPE through
/// write_all's return value instead of killing the worker silently.
[[nodiscard]] WorkerProcess spawn_worker(
    const std::function<int(int write_fd)>& body);

/// Writes all of `data` to `fd`, looping over partial writes and EINTR.
/// Returns false on any unrecoverable error (EPIPE included: with SIGPIPE
/// ignored a closed read end lands here). Worker bodies treat false as
/// "reader is gone": exit nonzero without the end marker and let the
/// parent's missing-trials recovery path take over.
[[nodiscard]] bool write_all(int fd, std::string_view data);

/// Reads every worker until EOF, invoking `on_line(worker_index, line)` for
/// each complete '\n'-terminated line (newline stripped), then reaps all
/// children and fills `exited_cleanly`. Uses poll(2) so slow and fast
/// workers interleave without blocking each other. Partial trailing lines
/// are dropped: a record is only a record once its newline made it through
/// the pipe (see docs/OPERATIONS.md "Worker protocol").
///
/// `interrupted`, when provided, is consulted each drain iteration (it is
/// also what wakes the loop: poll returns EINTR when a signal lands). The
/// first time it returns true, every still-live worker is sent SIGTERM
/// once; draining then continues to EOF so exit statuses and already
/// pipelined records are still collected — interruption changes how soon
/// workers stop, never the reap/recovery contract.
void drain_workers(
    std::vector<WorkerProcess>& workers,
    const std::function<void(std::size_t, std::string_view)>& on_line,
    const std::function<bool()>& interrupted = nullptr);

}  // namespace m2hew::util
