#include "util/ipc.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.hpp"

namespace m2hew::util {

WorkerProcess spawn_worker(const std::function<int(int write_fd)>& body) {
  int fds[2];
  M2HEW_CHECK_MSG(pipe(fds) == 0, "pipe() failed");
  const pid_t pid = fork();
  M2HEW_CHECK_MSG(pid >= 0, "fork() failed");
  if (pid == 0) {
    close(fds[0]);
    // Restore default termination (the parent may run a shutdown-flag
    // handler that must not leak into workers) and make a vanished
    // reader an EPIPE from write, not a fatal SIGPIPE.
    signal(SIGTERM, SIG_DFL);
    signal(SIGINT, SIG_DFL);
    signal(SIGPIPE, SIG_IGN);
    int status = 1;
    try {
      status = body(fds[1]);
    } catch (...) {
      status = 1;
    }
    close(fds[1]);
    _exit(status);
  }
  close(fds[1]);
  WorkerProcess worker;
  worker.pid = pid;
  worker.read_fd = fds[0];
  return worker;
}

bool write_all(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        write(fd, data.data() + written, data.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE, EIO, ... — nothing retryable
  }
  return true;
}

namespace {

/// Appends `bytes` to the worker's buffer and emits every complete line.
void feed_lines(
    WorkerProcess& worker, std::size_t index, const char* bytes,
    std::size_t count,
    const std::function<void(std::size_t, std::string_view)>& on_line) {
  worker.line_buffer.append(bytes, count);
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = worker.line_buffer.find('\n', start);
    if (nl == std::string::npos) break;
    on_line(index, std::string_view(worker.line_buffer)
                       .substr(start, nl - start));
    start = nl + 1;
  }
  worker.line_buffer.erase(0, start);
}

}  // namespace

void drain_workers(
    std::vector<WorkerProcess>& workers,
    const std::function<void(std::size_t, std::string_view)>& on_line,
    const std::function<bool()>& interrupted) {
  std::vector<pollfd> fds;
  std::vector<std::size_t> owner;  // fds[i] belongs to workers[owner[i]]
  char buf[4096];
  bool forwarded_term = false;
  for (;;) {
    if (!forwarded_term && interrupted && interrupted()) {
      // Shutdown requested: terminate live workers once, then keep
      // draining — their pipes still hold completed records, and every
      // child must be reaped regardless.
      for (const WorkerProcess& worker : workers) {
        if (!worker.eof && worker.pid > 0) kill(worker.pid, SIGTERM);
      }
      forwarded_term = true;
    }
    fds.clear();
    owner.clear();
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (workers[i].eof) continue;
      fds.push_back({workers[i].read_fd, POLLIN, 0});
      owner.push_back(i);
    }
    if (fds.empty()) break;
    const int ready = poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: re-check interrupted()
      M2HEW_CHECK_MSG(false, "poll() failed");
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      WorkerProcess& worker = workers[owner[i]];
      const ssize_t n = read(worker.read_fd, buf, sizeof buf);
      if (n > 0) {
        feed_lines(worker, owner[i], buf, static_cast<std::size_t>(n),
                   on_line);
        continue;
      }
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      // EOF or unrecoverable error: the worker is done (or dead). A
      // partial line left in the buffer is intentionally discarded.
      worker.eof = true;
      close(worker.read_fd);
      worker.read_fd = -1;
    }
  }
  for (WorkerProcess& worker : workers) {
    int status = 0;
    const pid_t reaped = waitpid(worker.pid, &status, 0);
    worker.exited_cleanly = reaped == worker.pid && WIFEXITED(status) &&
                            WEXITSTATUS(status) == 0;
  }
}

}  // namespace m2hew::util
