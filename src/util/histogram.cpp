#include "util/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace m2hew::util {

Histogram::Histogram(double lo, double hi, std::size_t bucket_count)
    : lo_(lo), hi_(hi), counts_(bucket_count, 0) {
  M2HEW_CHECK(lo < hi);
  M2HEW_CHECK(bucket_count >= 1);
}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto raw = static_cast<long>((x - lo_) / width);
  raw = std::clamp(raw, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(raw)];
  ++total_;
}

std::size_t Histogram::count_at(std::size_t bucket) const {
  M2HEW_CHECK(bucket < counts_.size());
  return counts_[bucket];
}

double Histogram::bucket_lo(std::size_t bucket) const {
  M2HEW_CHECK(bucket < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);

  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = static_cast<std::size_t>(
        (static_cast<double>(counts_[b]) / static_cast<double>(peak)) *
        static_cast<double>(max_bar_width));
    std::snprintf(line, sizeof(line), "[%10.2f, %10.2f) %8zu |",
                  bucket_lo(b), bucket_hi(b), counts_[b]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace m2hew::util
