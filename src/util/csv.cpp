#include "util/csv.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace m2hew::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::header(std::initializer_list<std::string_view> columns) {
  M2HEW_CHECK_MSG(!header_written_ && rows_ == 0,
                  "header must come first and only once");
  header_written_ = true;
  header_cols_ = columns.size();
  bool first = true;
  for (const auto col : columns) {
    if (!first) *out_ << ',';
    first = false;
    *out_ << csv_escape(col);
  }
  *out_ << '\n';
}

void CsvWriter::separator() {
  if (row_open_) {
    *out_ << ',';
  }
  row_open_ = true;
  ++current_cols_;
}

CsvWriter& CsvWriter::field(std::string_view value) {
  separator();
  *out_ << csv_escape(value);
  return *this;
}

CsvWriter& CsvWriter::field(double value) {
  separator();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out_ << buf;
  return *this;
}

CsvWriter& CsvWriter::field(long long value) {
  separator();
  *out_ << value;
  return *this;
}

CsvWriter& CsvWriter::field(unsigned long long value) {
  separator();
  *out_ << value;
  return *this;
}

void CsvWriter::end_row() {
  M2HEW_CHECK_MSG(row_open_, "end_row with no fields");
  if (header_written_) {
    M2HEW_CHECK_MSG(current_cols_ == header_cols_,
                    "row column count differs from header");
  }
  *out_ << '\n';
  row_open_ = false;
  current_cols_ = 0;
  ++rows_;
}

}  // namespace m2hew::util
