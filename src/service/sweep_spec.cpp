#include "service/sweep_spec.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "runner/scenario_kv.hpp"
#include "util/hash.hpp"
#include "util/ini.hpp"

#ifndef M2HEW_GIT_DESCRIBE
#define M2HEW_GIT_DESCRIBE "unknown"
#endif

namespace m2hew::service {

namespace {

// Canonical renderings. Doubles use C99 hexfloat so the canonical text is
// exact (no decimal rounding can merge or split two distinct specs).
[[nodiscard]] std::string canon_double(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

[[nodiscard]] const char* canon_topology(runner::TopologyKind kind) {
  using runner::TopologyKind;
  switch (kind) {
    case TopologyKind::kLine: return "line";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kGrid: return "grid";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kClique: return "clique";
    case TopologyKind::kErdosRenyi: return "erdos-renyi";
    case TopologyKind::kUnitDisk: return "unit-disk";
    case TopologyKind::kWattsStrogatz: return "watts-strogatz";
    case TopologyKind::kBarabasiAlbert: return "barabasi-albert";
  }
  return "?";
}

[[nodiscard]] const char* canon_channels(runner::ChannelKind kind) {
  using runner::ChannelKind;
  switch (kind) {
    case ChannelKind::kHomogeneous: return "homogeneous";
    case ChannelKind::kUniformRandom: return "uniform";
    case ChannelKind::kVariableRandom: return "variable";
    case ChannelKind::kChainOverlap: return "chain";
    case ChannelKind::kPrimaryUsers: return "primary-users";
  }
  return "?";
}

[[nodiscard]] const char* canon_propagation(runner::PropagationKind kind) {
  using runner::PropagationKind;
  switch (kind) {
    case PropagationKind::kFull: return "full";
    case PropagationKind::kRandomMask: return "random";
    case PropagationKind::kLowpass: return "lowpass";
  }
  return "?";
}

[[nodiscard]] const char* canon_attack(sim::AdversaryAttack attack) {
  using sim::AdversaryAttack;
  switch (attack) {
    case AdversaryAttack::kJam: return "jam";
    case AdversaryAttack::kByzantine: return "byzantine";
    case AdversaryAttack::kNonResponder: return "non-responder";
    case AdversaryAttack::kMix: return "mix";
  }
  return "?";
}

void emit(std::string& out, std::string_view key, std::string_view value) {
  out += key;
  out += " = ";
  out += value;
  out += '\n';
}

void emit_u64(std::string& out, std::string_view key, std::uint64_t value) {
  emit(out, key, std::to_string(value));
}

void emit_f64(std::string& out, std::string_view key, double value) {
  emit(out, key, canon_double(value));
}

// Non-aborting typed INI reads (IniFile's typed getters CHECK on malformed
// values; a daemon parsing untrusted specs must report instead).
[[nodiscard]] bool read_u64(const util::IniFile& ini, std::string_view section,
                            std::string_view key, std::uint64_t& out,
                            std::string* error) {
  if (!ini.has(section, key)) return true;
  const std::string text = ini.get(section, key);
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    *error = "[" + std::string(section) + "] " + std::string(key) +
             ": expected an unsigned integer (got '" + text + "')";
    return false;
  }
  out = parsed;
  return true;
}

}  // namespace

std::string format_sweep_value(double value) {
  char buf[32];
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", value);
  }
  return buf;
}

std::string SweepSpec::canonical() const {
  std::string out = "m2hew-sweep-spec v1\n";
  emit(out, "name", name);
  emit(out, "algorithm", algorithm);
  emit_u64(out, "delta-est", delta_est);
  emit_u64(out, "trials", trials);
  emit_u64(out, "seed", seed);
  emit_u64(out, "max-slots", max_slots);
  emit(out, "kernel",
       kernel == runner::SyncKernel::kSoa ? "soa" : "engine");
  emit(out, "sweep-key", sweep_key);
  std::string values;
  for (const double v : sweep_values) {
    if (!values.empty()) values += ' ';
    values += canon_double(v);
  }
  emit(out, "sweep-values", values);

  out += "[scenario]\n";
  emit(out, "topology", canon_topology(scenario.topology));
  emit_u64(out, "n", scenario.n);
  emit_u64(out, "grid-rows", scenario.grid_rows);
  emit_f64(out, "er-p", scenario.er_edge_probability);
  emit_f64(out, "ud-side", scenario.ud_side);
  emit_f64(out, "ud-radius", scenario.ud_radius);
  emit_u64(out, "ws-k", scenario.ws_k);
  emit_f64(out, "ws-beta", scenario.ws_beta);
  emit_u64(out, "ba-m", scenario.ba_m);
  emit_f64(out, "asymmetric-drop", scenario.asymmetric_drop);
  emit(out, "channels", canon_channels(scenario.channels));
  emit_u64(out, "universe", scenario.universe);
  emit_u64(out, "set-size", scenario.set_size);
  emit_u64(out, "min-size", scenario.min_size);
  emit_u64(out, "max-size", scenario.max_size);
  emit_u64(out, "overlap", scenario.chain_overlap);
  emit_u64(out, "pu-count", scenario.pu_count);
  emit_f64(out, "pu-min-radius", scenario.pu_min_radius);
  emit_f64(out, "pu-max-radius", scenario.pu_max_radius);
  emit(out, "require-nonempty-spans",
       scenario.require_nonempty_spans ? "1" : "0");
  emit(out, "propagation", canon_propagation(scenario.propagation));
  emit_f64(out, "prop-keep", scenario.prop_keep);

  // Only the fault knobs a spec can set; both blocks render their full
  // effective state when enabled so defaulted and explicit spellings of
  // the same plan coincide.
  out += "[faults]\n";
  if (faults.churn.enabled()) {
    emit_f64(out, "crash-prob", faults.churn.crash_probability);
    emit_u64(out, "crash-from", faults.churn.earliest_crash);
    emit_u64(out, "crash-until", faults.churn.latest_crash);
    emit_u64(out, "down-min", faults.churn.min_down);
    emit_u64(out, "down-max", faults.churn.max_down);
    emit(out, "reset-on-recovery",
         faults.churn.reset_policy_on_recovery ? "1" : "0");
  }
  if (faults.burst_loss.enabled) {
    emit_f64(out, "burst-loss", faults.burst_loss.loss_bad);
    emit_f64(out, "burst-p-gb", faults.burst_loss.p_good_to_bad);
    emit_f64(out, "burst-p-bg", faults.burst_loss.p_bad_to_good);
    emit_f64(out, "burst-loss-good", faults.burst_loss.loss_good);
  }

  out += "[mobility]\n";
  if (mobility.enabled) {
    emit_u64(out, "epochs", mobility.epochs);
    emit_u64(out, "epoch-slots", mobility.epoch_slots);
    emit_f64(out, "speed-min", mobility.speed_min);
    emit_f64(out, "speed-max", mobility.speed_max);
    emit_u64(out, "pause-epochs", mobility.pause_epochs);
    emit_u64(out, "duty-on", mobility.duty_on);
    emit_u64(out, "duty-period", mobility.duty_period);
  }

  out += "[adversary]\n";
  if (faults.adversary.enabled()) {
    emit_f64(out, "fraction", faults.adversary.fraction);
    emit(out, "attack", canon_attack(faults.adversary.attack));
    emit_f64(out, "byzantine-tx", faults.adversary.byzantine_tx);
    emit_f64(out, "victim-fraction", faults.adversary.victim_fraction);
  }
  if (trust.enabled) {
    emit(out, "trust", "1");
    emit_f64(out, "trust-threshold", trust.threshold);
    emit_f64(out, "trust-reward", trust.reward);
    emit_f64(out, "trust-rate-penalty", trust.rate_penalty);
    emit_f64(out, "trust-decay", trust.decay);
    emit_u64(out, "trust-rate-window", trust.rate_window);
    emit_u64(out, "trust-max-per-window", trust.max_per_window);
    emit_u64(out, "trust-block-slots", trust.block_slots);
    emit_u64(out, "trust-entry-window", trust.entry_window);
  }
  return out;
}

bool parse_sweep_spec(const util::IniFile& ini, SweepSpec& spec,
                      std::string* error) {
  spec = SweepSpec{};

  for (const std::string& section : ini.section_names()) {
    if (section != "experiment" && section != "scenario" &&
        section != "faults" && section != "mobility" &&
        section != "adversary") {
      *error = section.empty()
                   ? "keys outside any section (expected [experiment], "
                     "[scenario], [faults], [mobility] or [adversary])"
                   : "unknown section [" + section + "]";
      return false;
    }
  }

  // threads and plot are batch-tool knobs with no daemon meaning (the
  // daemon owns its own worker fan-out); accepted and ignored so the same
  // file drives both front ends.
  static constexpr const char* kExperimentKeys[] = {
      "name",      "algorithm", "delta-est",    "trials", "threads",
      "seed",      "max-slots", "sweep-key",    "plot",   "sweep-values",
      "kernel"};
  for (const std::string& key : ini.keys("experiment")) {
    bool known = false;
    for (const char* k : kExperimentKeys) known |= key == k;
    if (!known) {
      *error = "unknown [experiment] key '" + key + "'";
      return false;
    }
  }

  spec.name = ini.get("experiment", "name", "experiment");
  spec.algorithm = ini.get("experiment", "algorithm", "alg3");

  std::uint64_t delta_est = 8, trials = 30;
  if (!read_u64(ini, "experiment", "delta-est", delta_est, error)) {
    return false;
  }
  if (!read_u64(ini, "experiment", "trials", trials, error)) return false;
  if (!read_u64(ini, "experiment", "seed", spec.seed, error)) return false;
  if (!read_u64(ini, "experiment", "max-slots", spec.max_slots, error)) {
    return false;
  }
  spec.delta_est = static_cast<std::size_t>(delta_est);
  spec.trials = static_cast<std::size_t>(trials);
  if (spec.trials == 0) {
    *error = "[experiment] trials must be >= 1";
    return false;
  }

  const std::string kernel = ini.get("experiment", "kernel", "engine");
  if (kernel == "engine") {
    spec.kernel = runner::SyncKernel::kEngine;
  } else if (kernel == "soa") {
    spec.kernel = runner::SyncKernel::kSoa;
  } else {
    *error = "[experiment] kernel must be 'engine' or 'soa' (got '" +
             kernel + "')";
    return false;
  }

  // Spec-representable algorithms (policy-as-data: run on either kernel);
  // consistent-hop is the one competitor expressible as data.
  const bool spec_algorithm =
      spec.algorithm == "alg1" || spec.algorithm == "alg2" ||
      spec.algorithm == "alg2x" || spec.algorithm == "alg3" ||
      spec.algorithm == "consistent-hop";
  if (!spec_algorithm && spec.algorithm != "adaptive" &&
      spec.algorithm != "baseline" && spec.algorithm != "mcdis" &&
      spec.algorithm != "rendezvous") {
    *error = "[experiment] unknown algorithm '" + spec.algorithm +
             "' (alg1|alg2|alg2x|alg3|adaptive|baseline|mcdis|rendezvous|"
             "consistent-hop)";
    return false;
  }
  if (spec.kernel == runner::SyncKernel::kSoa && !spec_algorithm) {
    *error = "[experiment] kernel = soa supports only "
             "alg1/alg2/alg2x/alg3/consistent-hop";
    return false;
  }

  spec.sweep_key = ini.get("experiment", "sweep-key");
  spec.sweep_values.clear();
  {
    const std::string text = ini.get("experiment", "sweep-values");
    std::size_t pos = 0;
    while (pos < text.size()) {
      while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) {
        ++pos;
      }
      if (pos >= text.size()) break;
      std::size_t end = pos;
      while (end < text.size() && text[end] != ' ' && text[end] != '\t') {
        ++end;
      }
      const std::string token = text.substr(pos, end - pos);
      char* stop = nullptr;
      const double parsed = std::strtod(token.c_str(), &stop);
      if (stop == token.c_str() || *stop != '\0') {
        *error = "[experiment] sweep-values element '" + token +
                 "' is not a number";
        return false;
      }
      spec.sweep_values.push_back(parsed);
      pos = end;
    }
  }
  if (spec.sweep_values.empty()) spec.sweep_values.push_back(0.0);
  if (!spec.sweep_key.empty() && spec.sweep_values.size() > 64) {
    *error = "[experiment] sweep-values: at most 64 points per spec";
    return false;
  }

  for (const std::string& key : ini.keys("scenario")) {
    if (!runner::apply_scenario_setting(spec.scenario, key,
                                        ini.get("scenario", key), error)) {
      return false;
    }
  }

  // Every sweep point is pre-validated here so a bad point fails the spec
  // at submission instead of mid-sweep.
  if (!spec.sweep_key.empty()) {
    for (const double value : spec.sweep_values) {
      runner::ScenarioConfig scratch = spec.scenario;
      if (!runner::apply_scenario_setting(scratch, spec.sweep_key,
                                          format_sweep_value(value), error)) {
        return false;
      }
    }
  }

  if (!runner::parse_faults_section(ini, spec.faults, error)) return false;

  if (!runner::parse_mobility_section(ini, spec.mobility, error)) {
    return false;
  }
  if (spec.mobility.enabled) {
    // Mobile specs fail at submission, not mid-sweep: the provider needs
    // the unit-disk square and a position-independent channel assignment,
    // and duty cycling wraps policy objects (engine kernel only).
    if (spec.scenario.topology != runner::TopologyKind::kUnitDisk) {
      *error = "[mobility] requires [scenario] topology = unit-disk";
      return false;
    }
    if (spec.scenario.channels != runner::ChannelKind::kHomogeneous &&
        spec.scenario.channels != runner::ChannelKind::kUniformRandom &&
        spec.scenario.channels != runner::ChannelKind::kVariableRandom) {
      *error = "[mobility] requires [scenario] channels = "
               "homogeneous|uniform|variable";
      return false;
    }
    if (spec.kernel == runner::SyncKernel::kSoa &&
        spec.mobility.duty_on != spec.mobility.duty_period) {
      *error = "[mobility] duty cycling (duty-on < duty-period) requires "
               "kernel = engine";
      return false;
    }
    if (spec.sweep_key == "topology" || spec.sweep_key == "channels") {
      *error = "[mobility] cannot sweep the topology/channel kind";
      return false;
    }
  }

  if (!runner::parse_adversary_section(ini, spec.faults.adversary, spec.trust,
                                       error)) {
    return false;
  }
  if (spec.trust.enabled && spec.kernel == runner::SyncKernel::kSoa) {
    // Trust wraps policy objects; the SoA kernel runs policy tables.
    *error = "[adversary] trust = 1 requires kernel = engine";
    return false;
  }
  return true;
}

std::string binary_version() {
  const char* env = std::getenv("M2HEW_BINARY_VERSION");
  if (env != nullptr && *env != '\0') return env;
  return M2HEW_GIT_DESCRIBE;
}

std::uint64_t scenario_hash(const SweepSpec& spec) {
  return util::fnv1a64(binary_version(), util::fnv1a64(spec.canonical()));
}

std::string scenario_hash_hex(const SweepSpec& spec) {
  return util::hash_hex(scenario_hash(spec));
}

}  // namespace m2hew::service
