#include "service/sweep_runner.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "core/adaptive.hpp"
#include "core/algorithms.hpp"
#include "core/competitors.hpp"
#include "core/duty_cycle.hpp"
#include "core/policy_spec.hpp"
#include "core/trust.hpp"
#include "net/topology_provider.hpp"
#include "service/daemon.hpp"
#include "runner/scenario_kv.hpp"
#include "runner/streaming.hpp"
#include "sim/slot_engine.hpp"
#include "sim/soa_kernel.hpp"
#include "util/ipc.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace m2hew::service {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

[[nodiscard]] bool is_spec_algorithm(std::string_view algorithm) {
  return algorithm == "alg1" || algorithm == "alg2" || algorithm == "alg2x" ||
         algorithm == "alg3" || algorithm == "consistent-hop";
}

[[nodiscard]] core::SyncPolicySpec make_policy_spec(const SweepSpec& spec) {
  if (spec.algorithm == "alg1") {
    return core::SyncPolicySpec::algorithm1(spec.delta_est);
  }
  if (spec.algorithm == "alg2") return core::SyncPolicySpec::algorithm2();
  if (spec.algorithm == "alg2x") {
    return core::SyncPolicySpec::algorithm2(core::EstimateSchedule::kDouble);
  }
  if (spec.algorithm == "consistent-hop") {
    return core::SyncPolicySpec::consistent_hop();
  }
  return core::SyncPolicySpec::algorithm3(spec.delta_est);
}

[[nodiscard]] sim::SyncPolicyFactory make_factory(const SweepSpec& spec) {
  if (spec.algorithm == "adaptive") return core::make_adaptive();
  if (spec.algorithm == "mcdis") return core::make_mcdis();
  if (spec.algorithm == "rendezvous") return core::make_blind_rendezvous();
  // parse_sweep_spec admits exactly one other non-spec algorithm.
  return core::make_universal_baseline(spec.scenario.universe, 0.5);
}

/// Runs the trials in `indices` serially — engine seed derive(root, t) for
/// trial t, exactly as the batch runner seeds them — and emits one wire
/// record each. Shared by the worker children and the parent's
/// crash-recovery path, so both produce identical records.
void run_trial_subset(
    const net::Network& network, const SweepSpec& spec,
    const core::SyncPolicySpec* pspec, const sim::SoaPolicyTable* table,
    const sim::SlotEngineConfig& engine_base,
    const std::vector<std::size_t>& indices,
    const std::function<void(const runner::TrialOutcomeRecord&)>& emit) {
  const util::SeedSequence seeds(spec.seed);
  if (table != nullptr) {
    sim::SoaSlotKernel kernel(network);
    for (const std::size_t t : indices) {
      sim::SlotEngineConfig engine = engine_base;
      engine.seed = seeds.derive(t);
      const auto result = kernel.run(*table, engine);
      emit(runner::make_outcome_record(t, result.complete,
                                       result.completion_slot,
                                       result.robustness));
    }
    return;
  }
  // Duty cycling and trust wrap policy objects, so they ride the factory
  // path only; parse_sweep_spec rejects SoA specs asking for either.
  // with_trust(..., disabled) is the identity, so the wrap is free for
  // untrusted specs.
  const sim::SyncPolicyFactory factory = core::with_trust(
      core::with_duty_cycle(
          pspec != nullptr ? core::make_policy_factory(*pspec)
                           : make_factory(spec),
          spec.mobility.enabled ? spec.mobility.duty_on : 1,
          spec.mobility.enabled ? spec.mobility.duty_period : 1),
      spec.trust);
  for (const std::size_t t : indices) {
    sim::SlotEngineConfig engine = engine_base;
    engine.seed = seeds.derive(t);
    const auto result = sim::run_slot_engine(network, factory, engine);
    emit(runner::make_outcome_record(t, result.complete,
                                     result.completion_slot,
                                     result.robustness));
  }
}

/// Deterministic crash hook for the worker-kill recovery test. When
/// M2HEW_TEST_WORKER_KILL is "<shard>:<marker-path>", the matching shard
/// SIGKILLs itself halfway through its records — once: the marker file is
/// created O_EXCL first, so later sweep points (and re-runs) survive.
void maybe_kill_for_test(std::size_t shard, std::size_t emitted,
                         std::size_t total) {
  const char* env = std::getenv("M2HEW_TEST_WORKER_KILL");
  if (env == nullptr || *env == '\0') return;
  const std::string_view hook(env);
  const auto colon = hook.find(':');
  if (colon == std::string_view::npos) return;
  char* end = nullptr;
  const std::string shard_text(hook.substr(0, colon));
  const unsigned long target = std::strtoul(shard_text.c_str(), &end, 10);
  if (end == shard_text.c_str() || *end != '\0') return;
  if (shard != target || emitted != (total + 1) / 2) return;
  const std::string marker(hook.substr(colon + 1));
  const int fd = ::open(marker.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return;  // marker exists: this hook already fired
  ::close(fd);
  ::raise(SIGKILL);
}

[[nodiscard]] bool run_point_sharded(
    const net::Network& network, const SweepSpec& spec,
    const core::SyncPolicySpec* pspec, const sim::SoaPolicyTable* table,
    const sim::SlotEngineConfig& engine_base, std::size_t workers,
    runner::SyncTrialStats& out, std::string* error) {
  const auto start = Clock::now();
  runner::StreamingSyncReducer reducer(spec.trials);

  std::vector<util::WorkerProcess> procs;
  procs.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    std::vector<std::size_t> mine;
    for (std::size_t t = w; t < spec.trials; t += workers) mine.push_back(t);
    procs.push_back(util::spawn_worker([&, w, mine](int write_fd) {
      // write_all loops over partial writes/EINTR; false means the
      // parent's read end is gone (EPIPE — spawn_worker ignores
      // SIGPIPE). Exiting nonzero without the end marker routes those
      // trials through the parent's missing-trials recovery.
      bool pipe_ok = true;
      std::size_t emitted = 0;
      run_trial_subset(network, spec, pspec, table, engine_base, mine,
                       [&](const runner::TrialOutcomeRecord& record) {
                         if (!pipe_ok) return;
                         const std::string line =
                             runner::encode_outcome_record(record) + "\n";
                         pipe_ok = util::write_all(write_fd, line);
                         if (!pipe_ok) return;
                         ++emitted;
                         maybe_kill_for_test(w, emitted, mine.size());
                       });
      if (!pipe_ok) return 1;
      const std::string end_line =
          runner::encode_end_marker(w, emitted) + "\n";
      return util::write_all(write_fd, end_line) ? 0 : 1;
    }));
  }

  std::size_t end_markers = 0;
  std::size_t malformed = 0;
  util::drain_workers(
      procs,
      [&](std::size_t, std::string_view line) {
        if (const auto record = runner::decode_outcome_record(line)) {
          reducer.offer(*record);
          return;
        }
        if (runner::decode_end_marker(line).has_value()) {
          ++end_markers;
          return;
        }
        ++malformed;
      },
      [] { return shutdown_requested(); });
  if (shutdown_requested() && !reducer.all_received()) {
    // Shutdown landed mid-point: the workers were SIGTERMed and drained,
    // but the point is incomplete. Do NOT fall through to the
    // missing-trials recovery — that would re-run the remainder of an
    // arbitrarily long sweep during a termination request.
    *error = "interrupted by shutdown";
    return false;
  }
  if (malformed > 0) {
    *error = "worker protocol violation: " + std::to_string(malformed) +
             " malformed line(s)";
    return false;
  }

  if (!reducer.all_received()) {
    const std::vector<std::size_t> missing = reducer.missing_trials();
    M2HEW_LOG_WARN(
        "sweep: %zu of %zu worker(s) died mid-shard; re-running %zu missing "
        "trial(s) in-process",
        workers - end_markers, workers, missing.size());
    run_trial_subset(network, spec, pspec, table, engine_base, missing,
                     [&](const runner::TrialOutcomeRecord& record) {
                       reducer.offer(record);
                     });
  }
  out = reducer.finish(seconds_since(start), workers);
  return true;
}

/// Rejects configurations build_scenario would CHECK-abort on, with a
/// message instead (the daemon survives; the job fails).
[[nodiscard]] bool validate_buildable(const runner::ScenarioConfig& scenario,
                                      std::string* error) {
  if (scenario.channels == runner::ChannelKind::kChainOverlap &&
      scenario.topology != runner::TopologyKind::kLine) {
    *error = "channels = chain requires topology = line";
    return false;
  }
  if (scenario.topology == runner::TopologyKind::kGrid) {
    const net::NodeId rows = scenario.grid_rows != 0 ? scenario.grid_rows : 2;
    if (rows == 0 || scenario.n % rows != 0) {
      *error = "grid topology: n must be divisible by grid-rows";
      return false;
    }
  }
  if (scenario.channels == runner::ChannelKind::kPrimaryUsers &&
      scenario.topology != runner::TopologyKind::kUnitDisk) {
    *error = "channels = primary-users requires topology = unit-disk";
    return false;
  }
  return true;
}

}  // namespace

bool run_sweep(const SweepSpec& spec, std::size_t workers,
               SweepResult& result, std::string* error) {
  result = SweepResult{};
  result.workers = workers == 0 ? 1 : workers;

  const bool spec_algorithm = is_spec_algorithm(spec.algorithm);
  core::SyncPolicySpec pspec;
  if (spec_algorithm) pspec = make_policy_spec(spec);

  for (const double value : spec.sweep_values) {
    if (shutdown_requested()) {
      // Between-point interruption check (the batch path below is not
      // interruptible inside a point; the sharded path also checks in
      // its worker drain).
      *error = "interrupted by shutdown";
      return false;
    }
    runner::ScenarioConfig scenario = spec.scenario;
    if (!spec.sweep_key.empty()) {
      if (!runner::apply_scenario_setting(scenario, spec.sweep_key,
                                          format_sweep_value(value), error)) {
        return false;
      }
    }
    if (!validate_buildable(scenario, error)) return false;

    // Mobile specs run every engine on the provider's union network; the
    // per-epoch link sets ride along inside the engine config. The daemon
    // reports completion/robustness only (encounter metrics are a batch
    // front-end feature — the wire format stays unchanged).
    std::unique_ptr<net::EpochTopologyProvider> provider;
    std::optional<net::Network> static_network;
    if (spec.mobility.enabled) {
      provider =
          runner::build_mobility_provider(scenario, spec.mobility, spec.seed);
    } else {
      static_network.emplace(runner::build_scenario(scenario, spec.seed));
    }
    const net::Network& network =
        provider != nullptr ? provider->union_network() : *static_network;
    sim::SlotEngineConfig engine;
    engine.max_slots = spec.max_slots;
    engine.faults = spec.faults;
    if (provider != nullptr) {
      engine.topology = provider.get();
      engine.epoch_length = spec.mobility.epoch_slots;
    }

    runner::SyncTrialStats stats;
    // Never more processes than trials: surplus shards would be empty.
    const std::size_t point_workers =
        std::min(result.workers, std::max<std::size_t>(spec.trials, 1));
    if (point_workers <= 1) {
      runner::SyncTrialConfig trial;
      trial.trials = spec.trials;
      trial.seed = spec.seed;
      trial.threads = 1;  // the service's unit of fan-out is the process
      trial.engine = engine;
      trial.kernel = spec.kernel;
      const bool duty_cycled =
          spec.mobility.enabled &&
          spec.mobility.duty_on != spec.mobility.duty_period;
      if (duty_cycled || spec.trust.enabled) {
        // Duty cycling and trust wrap policy objects, so route spec
        // algorithms through the factory path (parse rejects SoA specs
        // asking for either; the spec overload below would bypass the
        // wrappers).
        stats = runner::run_sync_trials(
            network,
            core::with_trust(
                core::with_duty_cycle(
                    spec_algorithm ? core::make_policy_factory(pspec)
                                   : make_factory(spec),
                    duty_cycled ? spec.mobility.duty_on : 1,
                    duty_cycled ? spec.mobility.duty_period : 1),
                spec.trust),
            trial);
      } else {
        stats = spec_algorithm
                    ? runner::run_sync_trials(network, pspec, trial)
                    : runner::run_sync_trials(network, make_factory(spec),
                                              trial);
      }
    } else {
      const bool soa = spec.kernel == runner::SyncKernel::kSoa;
      sim::SoaPolicyTable table;
      if (soa) table = core::build_soa_policy_table(network, pspec);
      if (!run_point_sharded(network, spec,
                             spec_algorithm ? &pspec : nullptr,
                             soa ? &table : nullptr, engine, point_workers,
                             stats, error)) {
        return false;
      }
    }
    result.points.push_back({value, std::move(stats)});
  }
  return true;
}

}  // namespace m2hew::service
