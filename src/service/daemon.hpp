// The sweep daemon: a long-lived service consuming sweep specs from a
// spool directory and publishing cached artifacts.
//
// Spool layout (all created on startup):
//
//   <spool>/incoming/<job>.ini   submissions; <job> (the file stem) names
//                                the job. Writers should create the file
//                                elsewhere and rename(2) it in.
//   <spool>/status/<job>.json    one status document per job, rewritten
//                                atomically as the job advances:
//                                {"job","state","scenario_hash","cache",
//                                 "artifact","workers","error"}.
//   <spool>/done/<job>.ini       the spec, moved here after success;
//   <spool>/failed/<job>.ini     ... or here after failure.
//   <spool>/shutdown             sentinel; the daemon removes it and exits
//                                cleanly when it appears.
//
// Jobs are processed one at a time, oldest name first; parallelism lives
// INSIDE a job (trial sharding across forked workers), not across jobs,
// so two specs never compete for cores. Each job body runs in a forked
// child: a spec that trips an internal CHECK kills the job, not the
// daemon. See docs/OPERATIONS.md for the operator guide.
//
// Signals: SIGTERM/SIGINT request a graceful shutdown. An in-flight job
// is interrupted down the whole process tree (daemon -> job child ->
// shard workers), every child is reaped, the job's status becomes
// "interrupted" and its spec STAYS in incoming/ — a restarted daemon
// resumes it from scratch. Stale status/cache *.tmp files are removed on
// startup and on shutdown, so a killed daemon never leaves debris that a
// successor would trip over.
#pragma once

#include <cstddef>
#include <string>

namespace m2hew::service {

/// Installs a flag-setting SIGTERM/SIGINT handler (no SA_RESTART, so
/// blocking poll(2) wakes with EINTR). run_daemon installs it itself; the
/// job child re-installs it after spawn_worker's reset-to-default so it
/// can drain its own shard workers gracefully.
void install_shutdown_handlers();

/// True once SIGTERM/SIGINT landed after install_shutdown_handlers().
[[nodiscard]] bool shutdown_requested();

/// Clears the shutdown flag (daemon startup, job-child startup, tests).
void clear_shutdown_flag();

struct DaemonConfig {
  std::string spool_dir = "sweepd";
  std::string cache_dir;      ///< empty = <spool>/cache
  std::size_t workers = 1;    ///< trial-shard processes per sweep point
  int poll_ms = 200;          ///< incoming/ scan interval
  bool once = false;          ///< drain the current backlog, then exit
};

/// Runs the daemon loop. Returns 0 on clean shutdown (sentinel or --once
/// drain), nonzero only on spool-setup failure. Individual job failures
/// are reported in status files and never abort the daemon.
[[nodiscard]] int run_daemon(const DaemonConfig& config);

}  // namespace m2hew::service
