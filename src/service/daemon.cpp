#include "service/daemon.hpp"

#include <dirent.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

#include "runner/report.hpp"
#include "service/artifact_cache.hpp"
#include "service/sweep_runner.hpp"
#include "service/sweep_spec.hpp"
#include "util/hash.hpp"
#include "util/ini.hpp"
#include "util/ipc.hpp"
#include "util/log.hpp"

namespace m2hew::service {

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void handle_shutdown_signal(int) { g_shutdown = 1; }

}  // namespace

void install_shutdown_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_shutdown_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking poll must wake (EINTR)
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

bool shutdown_requested() { return g_shutdown != 0; }

void clear_shutdown_flag() { g_shutdown = 0; }

namespace {

[[nodiscard]] bool ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return true;
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

[[nodiscard]] bool ends_with(std::string_view text, std::string_view tail) {
  return text.size() >= tail.size() &&
         text.substr(text.size() - tail.size()) == tail;
}

/// *.ini file stems under `dir`, sorted by name (submission order for
/// timestamp-prefixed names; deterministic regardless).
[[nodiscard]] std::vector<std::string> scan_jobs(const std::string& dir) {
  std::vector<std::string> jobs;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return jobs;
  while (dirent* entry = ::readdir(handle)) {
    const std::string_view name = entry->d_name;
    if (!ends_with(name, ".ini")) continue;
    jobs.emplace_back(name.substr(0, name.size() - 4));
  }
  ::closedir(handle);
  std::sort(jobs.begin(), jobs.end());
  return jobs;
}

/// Removes every *.tmp under `dir` — half-written status documents or
/// cache artifacts left behind by a daemon that was killed mid-rename.
/// Their final paths never existed (write_status and ArtifactCache::store
/// publish by rename), so deleting the temps loses nothing.
void remove_stale_tmp(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  std::size_t removed = 0;
  while (dirent* entry = ::readdir(handle)) {
    const std::string_view name = entry->d_name;
    if (!ends_with(name, ".tmp")) continue;
    const std::string path = dir + "/" + std::string(name);
    if (std::remove(path.c_str()) == 0) ++removed;
  }
  ::closedir(handle);
  if (removed > 0) {
    M2HEW_LOG_INFO("sweepd: removed %zu stale .tmp file(s) under %s",
                   removed, dir.c_str());
  }
}

struct JobStatus {
  std::string job;
  std::string state;          // "running" | "done" | "failed"
  std::string scenario_hash;  // empty until the spec parsed
  std::string cache;          // "hit" | "miss", set when state == "done"
  std::string artifact;       // cache path, set when state == "done"
  std::string error;          // set when state == "failed"
  std::size_t workers = 0;
};

void write_status(const std::string& status_dir, const JobStatus& status) {
  std::ostringstream json;
  json << "{\n  \"job\": \"" << runner::json_escape(status.job) << "\",\n"
       << "  \"state\": \"" << runner::json_escape(status.state) << "\",\n"
       << "  \"scenario_hash\": \""
       << runner::json_escape(status.scenario_hash) << "\",\n"
       << "  \"cache\": \"" << runner::json_escape(status.cache) << "\",\n"
       << "  \"artifact\": \"" << runner::json_escape(status.artifact)
       << "\",\n"
       << "  \"workers\": " << status.workers << ",\n"
       << "  \"error\": \"" << runner::json_escape(status.error) << "\"\n"
       << "}\n";
  const std::string final_path = status_dir + "/" + status.job + ".json";
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    out << json.str();
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    M2HEW_LOG_ERROR("sweepd: cannot publish status %s", final_path.c_str());
  }
}

void move_spec(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    M2HEW_LOG_ERROR("sweepd: cannot move %s -> %s", from.c_str(),
                    to.c_str());
    std::remove(from.c_str());  // never reprocess
  }
}

/// Runs the sweep and publishes the artifact inside a forked child, so a
/// spec that trips an engine CHECK (or any other abort) fails the job,
/// not the daemon. The child's single status line is "OK" or
/// "ERR <message>"; a child that dies without one failed. A daemon-level
/// shutdown forwards SIGTERM to the child, which drains its own shard
/// workers and reports "ERR interrupted by shutdown".
[[nodiscard]] bool run_job_in_child(const SweepSpec& spec,
                                    const ArtifactCache& cache,
                                    const std::string& hash_hex,
                                    std::size_t workers,
                                    std::string* error) {
  std::vector<util::WorkerProcess> child;
  child.push_back(util::spawn_worker([&](int write_fd) {
    // spawn_worker reset SIGTERM to default; re-install the flag handler
    // so this job process can interrupt run_sweep and drain its shard
    // workers instead of dying with them still running.
    clear_shutdown_flag();
    install_shutdown_handlers();
    const auto reply = [write_fd](const std::string& line) {
      return util::write_all(write_fd, line + "\n") ? 0 : 1;
    };
    SweepResult result;
    std::string run_error;
    if (!run_sweep(spec, workers, result, &run_error)) {
      reply("ERR " + run_error);
      return 1;
    }
    if (!cache.store(hash_hex, sweep_artifact_json(spec, result))) {
      reply("ERR cannot write artifact");
      return 1;
    }
    return reply("OK");
  }));

  bool ok = false;
  std::string reported;
  util::drain_workers(
      child,
      [&](std::size_t, std::string_view line) {
        if (line == "OK") {
          ok = true;
        } else if (line.substr(0, 4) == "ERR ") {
          reported = std::string(line.substr(4));
        }
      },
      [] { return shutdown_requested(); });
  if (ok && child.front().exited_cleanly) return true;
  *error = !reported.empty()
               ? reported
               : shutdown_requested()
                     ? "interrupted by shutdown"
                     : "job process died (internal check failure?)";
  return false;
}

void process_job(const std::string& job, const DaemonConfig& config,
                 const std::string& incoming_dir,
                 const std::string& status_dir, const std::string& done_dir,
                 const std::string& failed_dir, const ArtifactCache& cache) {
  const std::string spec_path = incoming_dir + "/" + job + ".ini";
  JobStatus status;
  status.job = job;
  status.workers = config.workers;

  const auto fail = [&](const std::string& message) {
    status.state = "failed";
    status.error = message;
    write_status(status_dir, status);
    move_spec(spec_path, failed_dir + "/" + job + ".ini");
    M2HEW_LOG_WARN("sweepd: job %s failed: %s", job.c_str(),
                   message.c_str());
  };

  std::ifstream in(spec_path);
  if (!in) {
    fail("cannot open spec file");
    return;
  }
  std::ostringstream raw;
  raw << in.rdbuf();

  util::IniParseError parse_error;
  const util::IniFile ini =
      util::IniFile::parse_string(raw.str(), &parse_error);
  if (!parse_error.ok()) {
    // The canonical hash of what did parse ties this log line to later
    // resubmissions of the (fixed) spec in operator greps.
    const std::string partial_hash =
        util::hash_hex(util::fnv1a64(ini.canonical_text()));
    M2HEW_LOG_WARN("sweepd: job %s spec-hash %s: parse error at line %zu: "
                   "%s (offending text: '%s')",
                   job.c_str(), partial_hash.c_str(), parse_error.line,
                   parse_error.message.c_str(), parse_error.text.c_str());
    fail("parse error at line " + std::to_string(parse_error.line) + ": " +
         parse_error.message);
    return;
  }

  SweepSpec spec;
  std::string spec_error;
  if (!parse_sweep_spec(ini, spec, &spec_error)) {
    const std::string partial_hash =
        util::hash_hex(util::fnv1a64(ini.canonical_text()));
    M2HEW_LOG_WARN("sweepd: job %s spec-hash %s: invalid spec: %s",
                   job.c_str(), partial_hash.c_str(), spec_error.c_str());
    fail(spec_error);
    return;
  }

  const std::string hash_hex = scenario_hash_hex(spec);
  status.scenario_hash = hash_hex;
  status.artifact = cache.path_for(hash_hex);

  if (cache.contains(hash_hex)) {
    status.state = "done";
    status.cache = "hit";
    write_status(status_dir, status);
    move_spec(spec_path, done_dir + "/" + job + ".ini");
    M2HEW_LOG_INFO("sweepd: job %s spec-hash %s: cache hit (%s)",
                   job.c_str(), hash_hex.c_str(), status.artifact.c_str());
    return;
  }

  status.state = "running";
  write_status(status_dir, status);
  M2HEW_LOG_INFO(
      "sweepd: job %s spec-hash %s: running %zu point(s) x %zu trial(s), "
      "%zu worker(s)",
      job.c_str(), hash_hex.c_str(), spec.sweep_values.size(), spec.trials,
      config.workers);

  std::string run_error;
  if (!run_job_in_child(spec, cache, hash_hex, config.workers,
                        &run_error)) {
    if (shutdown_requested()) {
      // Not a failure: the spec stays in incoming/ so a restarted daemon
      // re-runs the job from scratch (the cache dedupes nothing here —
      // the interrupted job never stored its artifact).
      status.state = "interrupted";
      status.error = run_error;
      write_status(status_dir, status);
      M2HEW_LOG_INFO(
          "sweepd: job %s spec-hash %s: interrupted by shutdown, spec left "
          "in incoming/",
          job.c_str(), hash_hex.c_str());
      return;
    }
    M2HEW_LOG_WARN("sweepd: job %s spec-hash %s: %s", job.c_str(),
                   hash_hex.c_str(), run_error.c_str());
    fail(run_error);
    return;
  }
  status.state = "done";
  status.cache = "miss";
  write_status(status_dir, status);
  move_spec(spec_path, done_dir + "/" + job + ".ini");
  M2HEW_LOG_INFO("sweepd: job %s spec-hash %s: done (%s)", job.c_str(),
                 hash_hex.c_str(), status.artifact.c_str());
}

}  // namespace

int run_daemon(const DaemonConfig& config) {
  const std::string incoming_dir = config.spool_dir + "/incoming";
  const std::string status_dir = config.spool_dir + "/status";
  const std::string done_dir = config.spool_dir + "/done";
  const std::string failed_dir = config.spool_dir + "/failed";
  const std::string cache_dir =
      config.cache_dir.empty() ? config.spool_dir + "/cache"
                               : config.cache_dir;
  const std::string sentinel = config.spool_dir + "/shutdown";

  if (!ensure_dir(config.spool_dir) || !ensure_dir(incoming_dir) ||
      !ensure_dir(status_dir) || !ensure_dir(done_dir) ||
      !ensure_dir(failed_dir)) {
    M2HEW_LOG_ERROR("sweepd: cannot create spool under %s",
                    config.spool_dir.c_str());
    return 1;
  }
  const ArtifactCache cache(cache_dir);

  clear_shutdown_flag();
  install_shutdown_handlers();
  // A predecessor killed mid-publish leaves half-written temps behind;
  // they are unreferenced (publication is by rename) and only confuse
  // spool scans.
  remove_stale_tmp(status_dir);
  remove_stale_tmp(cache_dir);

  M2HEW_LOG_INFO("sweepd: spool %s, cache %s, %zu worker(s), version %s",
                 config.spool_dir.c_str(), cache_dir.c_str(), config.workers,
                 binary_version().c_str());

  while (true) {
    if (shutdown_requested()) break;
    struct stat st {};
    if (::stat(sentinel.c_str(), &st) == 0) {
      std::remove(sentinel.c_str());
      M2HEW_LOG_INFO("sweepd: shutdown sentinel seen, exiting cleanly");
      return 0;
    }
    const std::vector<std::string> jobs = scan_jobs(incoming_dir);
    for (const std::string& job : jobs) {
      if (shutdown_requested()) break;
      process_job(job, config, incoming_dir, status_dir, done_dir,
                  failed_dir, cache);
    }
    if (config.once && jobs.empty()) {
      M2HEW_LOG_INFO("sweepd: backlog drained (--once), exiting cleanly");
      return 0;
    }
    if (jobs.empty() && !shutdown_requested()) {
      ::poll(nullptr, 0, config.poll_ms);  // portable millisecond sleep
    }
  }

  // Signal-driven shutdown: every child has been drained and reaped by
  // this point (process_job blocks on its job child, which blocks on its
  // shard workers). Leave the spool as a successor expects it.
  remove_stale_tmp(status_dir);
  remove_stale_tmp(cache_dir);
  M2HEW_LOG_INFO("sweepd: shutdown signal seen, exiting cleanly");
  return 0;
}

}  // namespace m2hew::service
