#include "service/daemon.hpp"

#include <dirent.h>
#include <poll.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

#include "runner/report.hpp"
#include "service/artifact_cache.hpp"
#include "service/sweep_runner.hpp"
#include "service/sweep_spec.hpp"
#include "util/hash.hpp"
#include "util/ini.hpp"
#include "util/ipc.hpp"
#include "util/log.hpp"

namespace m2hew::service {

namespace {

[[nodiscard]] bool ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return true;
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

[[nodiscard]] bool ends_with(std::string_view text, std::string_view tail) {
  return text.size() >= tail.size() &&
         text.substr(text.size() - tail.size()) == tail;
}

/// *.ini file stems under `dir`, sorted by name (submission order for
/// timestamp-prefixed names; deterministic regardless).
[[nodiscard]] std::vector<std::string> scan_jobs(const std::string& dir) {
  std::vector<std::string> jobs;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return jobs;
  while (dirent* entry = ::readdir(handle)) {
    const std::string_view name = entry->d_name;
    if (!ends_with(name, ".ini")) continue;
    jobs.emplace_back(name.substr(0, name.size() - 4));
  }
  ::closedir(handle);
  std::sort(jobs.begin(), jobs.end());
  return jobs;
}

struct JobStatus {
  std::string job;
  std::string state;          // "running" | "done" | "failed"
  std::string scenario_hash;  // empty until the spec parsed
  std::string cache;          // "hit" | "miss", set when state == "done"
  std::string artifact;       // cache path, set when state == "done"
  std::string error;          // set when state == "failed"
  std::size_t workers = 0;
};

void write_status(const std::string& status_dir, const JobStatus& status) {
  std::ostringstream json;
  json << "{\n  \"job\": \"" << runner::json_escape(status.job) << "\",\n"
       << "  \"state\": \"" << runner::json_escape(status.state) << "\",\n"
       << "  \"scenario_hash\": \""
       << runner::json_escape(status.scenario_hash) << "\",\n"
       << "  \"cache\": \"" << runner::json_escape(status.cache) << "\",\n"
       << "  \"artifact\": \"" << runner::json_escape(status.artifact)
       << "\",\n"
       << "  \"workers\": " << status.workers << ",\n"
       << "  \"error\": \"" << runner::json_escape(status.error) << "\"\n"
       << "}\n";
  const std::string final_path = status_dir + "/" + status.job + ".json";
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    out << json.str();
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    M2HEW_LOG_ERROR("sweepd: cannot publish status %s", final_path.c_str());
  }
}

void move_spec(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    M2HEW_LOG_ERROR("sweepd: cannot move %s -> %s", from.c_str(),
                    to.c_str());
    std::remove(from.c_str());  // never reprocess
  }
}

/// Runs the sweep and publishes the artifact inside a forked child, so a
/// spec that trips an engine CHECK (or any other abort) fails the job,
/// not the daemon. The child's single status line is "OK" or
/// "ERR <message>"; a child that dies without one failed.
[[nodiscard]] bool run_job_in_child(const SweepSpec& spec,
                                    const ArtifactCache& cache,
                                    const std::string& hash_hex,
                                    std::size_t workers,
                                    std::string* error) {
  std::vector<util::WorkerProcess> child;
  child.push_back(util::spawn_worker([&](int write_fd) {
    FILE* pipe = ::fdopen(write_fd, "w");
    if (pipe == nullptr) return 1;
    SweepResult result;
    std::string run_error;
    if (!run_sweep(spec, workers, result, &run_error)) {
      std::fprintf(pipe, "ERR %s\n", run_error.c_str());
      std::fflush(pipe);
      return 1;
    }
    if (!cache.store(hash_hex, sweep_artifact_json(spec, result))) {
      std::fprintf(pipe, "ERR cannot write artifact\n");
      std::fflush(pipe);
      return 1;
    }
    std::fputs("OK\n", pipe);
    std::fflush(pipe);
    return 0;
  }));

  bool ok = false;
  std::string reported;
  util::drain_workers(child, [&](std::size_t, std::string_view line) {
    if (line == "OK") {
      ok = true;
    } else if (line.substr(0, 4) == "ERR ") {
      reported = std::string(line.substr(4));
    }
  });
  if (ok && child.front().exited_cleanly) return true;
  *error = !reported.empty()
               ? reported
               : "job process died (internal check failure?)";
  return false;
}

void process_job(const std::string& job, const DaemonConfig& config,
                 const std::string& incoming_dir,
                 const std::string& status_dir, const std::string& done_dir,
                 const std::string& failed_dir, const ArtifactCache& cache) {
  const std::string spec_path = incoming_dir + "/" + job + ".ini";
  JobStatus status;
  status.job = job;
  status.workers = config.workers;

  const auto fail = [&](const std::string& message) {
    status.state = "failed";
    status.error = message;
    write_status(status_dir, status);
    move_spec(spec_path, failed_dir + "/" + job + ".ini");
    M2HEW_LOG_WARN("sweepd: job %s failed: %s", job.c_str(),
                   message.c_str());
  };

  std::ifstream in(spec_path);
  if (!in) {
    fail("cannot open spec file");
    return;
  }
  std::ostringstream raw;
  raw << in.rdbuf();

  util::IniParseError parse_error;
  const util::IniFile ini =
      util::IniFile::parse_string(raw.str(), &parse_error);
  if (!parse_error.ok()) {
    // The canonical hash of what did parse ties this log line to later
    // resubmissions of the (fixed) spec in operator greps.
    const std::string partial_hash =
        util::hash_hex(util::fnv1a64(ini.canonical_text()));
    M2HEW_LOG_WARN("sweepd: job %s spec-hash %s: parse error at line %zu: "
                   "%s (offending text: '%s')",
                   job.c_str(), partial_hash.c_str(), parse_error.line,
                   parse_error.message.c_str(), parse_error.text.c_str());
    fail("parse error at line " + std::to_string(parse_error.line) + ": " +
         parse_error.message);
    return;
  }

  SweepSpec spec;
  std::string spec_error;
  if (!parse_sweep_spec(ini, spec, &spec_error)) {
    const std::string partial_hash =
        util::hash_hex(util::fnv1a64(ini.canonical_text()));
    M2HEW_LOG_WARN("sweepd: job %s spec-hash %s: invalid spec: %s",
                   job.c_str(), partial_hash.c_str(), spec_error.c_str());
    fail(spec_error);
    return;
  }

  const std::string hash_hex = scenario_hash_hex(spec);
  status.scenario_hash = hash_hex;
  status.artifact = cache.path_for(hash_hex);

  if (cache.contains(hash_hex)) {
    status.state = "done";
    status.cache = "hit";
    write_status(status_dir, status);
    move_spec(spec_path, done_dir + "/" + job + ".ini");
    M2HEW_LOG_INFO("sweepd: job %s spec-hash %s: cache hit (%s)",
                   job.c_str(), hash_hex.c_str(), status.artifact.c_str());
    return;
  }

  status.state = "running";
  write_status(status_dir, status);
  M2HEW_LOG_INFO(
      "sweepd: job %s spec-hash %s: running %zu point(s) x %zu trial(s), "
      "%zu worker(s)",
      job.c_str(), hash_hex.c_str(), spec.sweep_values.size(), spec.trials,
      config.workers);

  std::string run_error;
  if (!run_job_in_child(spec, cache, hash_hex, config.workers,
                        &run_error)) {
    M2HEW_LOG_WARN("sweepd: job %s spec-hash %s: %s", job.c_str(),
                   hash_hex.c_str(), run_error.c_str());
    fail(run_error);
    return;
  }
  status.state = "done";
  status.cache = "miss";
  write_status(status_dir, status);
  move_spec(spec_path, done_dir + "/" + job + ".ini");
  M2HEW_LOG_INFO("sweepd: job %s spec-hash %s: done (%s)", job.c_str(),
                 hash_hex.c_str(), status.artifact.c_str());
}

}  // namespace

int run_daemon(const DaemonConfig& config) {
  const std::string incoming_dir = config.spool_dir + "/incoming";
  const std::string status_dir = config.spool_dir + "/status";
  const std::string done_dir = config.spool_dir + "/done";
  const std::string failed_dir = config.spool_dir + "/failed";
  const std::string cache_dir =
      config.cache_dir.empty() ? config.spool_dir + "/cache"
                               : config.cache_dir;
  const std::string sentinel = config.spool_dir + "/shutdown";

  if (!ensure_dir(config.spool_dir) || !ensure_dir(incoming_dir) ||
      !ensure_dir(status_dir) || !ensure_dir(done_dir) ||
      !ensure_dir(failed_dir)) {
    M2HEW_LOG_ERROR("sweepd: cannot create spool under %s",
                    config.spool_dir.c_str());
    return 1;
  }
  const ArtifactCache cache(cache_dir);

  M2HEW_LOG_INFO("sweepd: spool %s, cache %s, %zu worker(s), version %s",
                 config.spool_dir.c_str(), cache_dir.c_str(), config.workers,
                 binary_version().c_str());

  while (true) {
    struct stat st {};
    if (::stat(sentinel.c_str(), &st) == 0) {
      std::remove(sentinel.c_str());
      M2HEW_LOG_INFO("sweepd: shutdown sentinel seen, exiting cleanly");
      return 0;
    }
    const std::vector<std::string> jobs = scan_jobs(incoming_dir);
    for (const std::string& job : jobs) {
      process_job(job, config, incoming_dir, status_dir, done_dir,
                  failed_dir, cache);
    }
    if (config.once && jobs.empty()) {
      M2HEW_LOG_INFO("sweepd: backlog drained (--once), exiting cleanly");
      return 0;
    }
    if (jobs.empty()) {
      ::poll(nullptr, 0, config.poll_ms);  // portable millisecond sleep
    }
  }
}

}  // namespace m2hew::service
