// Sweep execution: one SweepSpec in, one aggregate per sweep point out.
//
// Two paths produce the SAME numbers:
//
//   workers <= 1   batch — runner::run_sync_trials in-process, exactly
//                  what tools/m2hew_experiment does.
//   workers  > 1   sharded — per sweep point, `workers` forked processes
//                  each run the trial subset {t : t ≡ w (mod workers)}
//                  serially and stream one wire record per trial back;
//                  the parent folds them through a StreamingSyncReducer.
//
// Bit-identity holds because trial t's engine seed is derive(root, t) in
// both paths, the per-trial simulation is the same code, and the reducer
// folds records in trial order through the same fold_robustness /
// Samples::add calls as the batch reduction (pinned by
// sweep_service_test). Wall-clock fields (elapsed_seconds, threads_used)
// are the only difference.
//
// A worker that dies without its end-of-shard marker (crash, SIGKILL) is
// detected at pipe EOF; the parent re-runs exactly the missing trials
// in-process and the sweep still completes with identical results.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runner/trials.hpp"
#include "service/sweep_spec.hpp"

namespace m2hew::service {

struct SweepPointResult {
  double sweep_value = 0.0;
  runner::SyncTrialStats stats;
};

struct SweepResult {
  std::vector<SweepPointResult> points;  ///< one per spec.sweep_values
  std::size_t workers = 1;               ///< resolved process fan-out
};

/// Runs every sweep point of the spec. `workers` is the process fan-out
/// per point (0 or 1 = batch path). Returns false with a one-line message
/// in *error if a sweep point's scenario cannot be built or applied.
[[nodiscard]] bool run_sweep(const SweepSpec& spec, std::size_t workers,
                             SweepResult& result, std::string* error);

}  // namespace m2hew::service
