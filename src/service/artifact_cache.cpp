#include "service/artifact_cache.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "runner/report.hpp"
#include "util/log.hpp"

namespace m2hew::service {

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir)) {
  ::mkdir(dir_.c_str(), 0755);  // EEXIST is fine
}

std::string ArtifactCache::path_for(const std::string& hash_hex) const {
  return dir_ + "/" + hash_hex + ".json";
}

bool ArtifactCache::contains(const std::string& hash_hex) const {
  struct stat st {};
  return ::stat(path_for(hash_hex).c_str(), &st) == 0;
}

bool ArtifactCache::store(const std::string& hash_hex,
                          const std::string& json) const {
  const std::string final_path = path_for(hash_hex);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      M2HEW_LOG_ERROR("cache: cannot open %s for writing", tmp_path.c_str());
      return false;
    }
    out << json;
    out.flush();
    if (!out) {
      M2HEW_LOG_ERROR("cache: short write to %s", tmp_path.c_str());
      std::remove(tmp_path.c_str());
      return false;
    }
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    M2HEW_LOG_ERROR("cache: rename %s -> %s failed", tmp_path.c_str(),
                    final_path.c_str());
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

void write_sweep_artifact(std::ostream& out, const SweepSpec& spec,
                          const SweepResult& result) {
  std::vector<runner::BenchJsonParam> params;
  params.emplace_back("name", spec.name);
  params.emplace_back("algorithm", spec.algorithm);
  params.emplace_back("trials_per_point", std::to_string(spec.trials));
  params.emplace_back("seed", std::to_string(spec.seed));
  params.emplace_back(
      "kernel", spec.kernel == runner::SyncKernel::kSoa ? "soa" : "engine");
  params.emplace_back("workers", std::to_string(result.workers));
  params.emplace_back("scenario_hash", scenario_hash_hex(spec));
  params.emplace_back("binary_version", binary_version());
  if (!spec.sweep_key.empty()) {
    params.emplace_back("sweep_key", spec.sweep_key);
    std::string values;
    for (const double v : spec.sweep_values) {
      if (!values.empty()) values += ' ';
      values += format_sweep_value(v);
    }
    params.emplace_back("sweep_values", values);
  }

  // Run entries come from the sweep's own stats — never the process-wide
  // run log, which may hold earlier jobs' runs in a long-lived daemon.
  std::vector<runner::TrialRunRecord> runs;
  runs.reserve(result.points.size());
  runner::TrialThroughput throughput;
  for (const SweepPointResult& point : result.points) {
    runs.push_back(runner::make_sync_run_record(point.stats));
    ++throughput.runs;
    throughput.trials += point.stats.trials;
    throughput.busy_seconds += point.stats.elapsed_seconds;
  }
  runner::write_bench_json_doc(out, spec.name, params, runs, throughput,
                               result.workers);
}

std::string sweep_artifact_json(const SweepSpec& spec,
                                const SweepResult& result) {
  std::ostringstream out;
  write_sweep_artifact(out, spec, result);
  return out.str();
}

}  // namespace m2hew::service
