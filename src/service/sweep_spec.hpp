// SweepSpec: the resolved form of a sweep-definition INI file — the same
// format tools/m2hew_experiment reads — as consumed by the sweep service.
//
// Parsing is strict where the batch tool is lenient: unknown sections and
// keys are rejected with a one-line message instead of silently ignored,
// because a daemon cannot ask the submitter "did you mean set-size?" at a
// terminal. Parsing never aborts the process; every failure is reported
// through the error out-parameter (the daemon must survive bad specs).
//
// The spec also defines its own identity: scenario_hash() keys the
// content-addressed artifact cache. The hash is taken over the RESOLVED
// spec (every effective field rendered in a fixed order, defaults filled
// in) chained with the binary version, so two files that differ only in
// key order, whitespace, comments, or explicitly writing a default value
// collide onto the same cache entry — and any change to either the
// effective parameters or the simulator binary misses. See
// docs/OPERATIONS.md "Cache layout".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/trust.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "sim/fault_plan.hpp"

namespace m2hew::util {
class IniFile;
}

namespace m2hew::service {

struct SweepSpec {
  std::string name = "experiment";
  std::string algorithm = "alg3";  ///< alg1|alg2|alg2x|alg3|adaptive|baseline
  std::size_t delta_est = 8;
  std::size_t trials = 30;
  std::uint64_t seed = 1;          ///< root seed; trial t uses derive(t)
  std::uint64_t max_slots = 1'000'000;
  runner::SyncKernel kernel = runner::SyncKernel::kEngine;
  std::string sweep_key;           ///< empty = single point
  std::vector<double> sweep_values;  ///< one 0.0 entry when no sweep-key
  runner::ScenarioConfig scenario;
  sim::SlotFaultPlan faults;
  /// Optional [mobility] section (random-waypoint epoch dynamics). When
  /// enabled the runner builds an epoch topology provider per point and
  /// reports encounter metrics alongside completion statistics.
  runner::MobilitySpec mobility;
  /// Optional [adversary] section: the attack itself lands in
  /// faults.adversary; this is the trust-maintenance defence (engine
  /// kernel only — trust wraps policy objects).
  core::TrustConfig trust;

  /// Deterministic rendering of every effective field, fixed order,
  /// hexfloat doubles. This — not the submitted file text — is what gets
  /// hashed, so default-vs-explicit spellings of the same run coincide.
  [[nodiscard]] std::string canonical() const;
};

/// Renders a sweep value the way the scenario key-value vocabulary reads
/// it back: integral values without a decimal point, others via %g.
/// Shared by spec validation and the sweep runner so both apply
/// bit-identical settings.
[[nodiscard]] std::string format_sweep_value(double value);

/// Parses and validates a spec file. On failure returns false with a
/// one-line message in *error and leaves `spec` unspecified; never aborts.
[[nodiscard]] bool parse_sweep_spec(const util::IniFile& ini, SweepSpec& spec,
                                    std::string* error);

/// The simulator build identity folded into every cache key: the
/// git-describe string baked in at configure time. The environment
/// variable M2HEW_BINARY_VERSION overrides it when set — a test hook for
/// exercising cache invalidation without rebuilding.
[[nodiscard]] std::string binary_version();

/// Cache key: fnv1a64(canonical spec ‖ binary version).
[[nodiscard]] std::uint64_t scenario_hash(const SweepSpec& spec);
/// The 16-hex-digit form used in file names, status JSON and logs.
[[nodiscard]] std::string scenario_hash_hex(const SweepSpec& spec);

}  // namespace m2hew::service
