// Content-addressed result cache for the sweep service.
//
// An artifact is the bench-schema JSON document for one completed sweep,
// stored at <dir>/<hash>.json where <hash> is scenario_hash_hex(spec) —
// i.e. fnv1a64(resolved canonical spec ‖ binary version). Because the key
// covers everything that determines the numbers (spec semantics, seed
// range via the spec's seed/trials fields, simulator build), a lookup hit
// IS the result: resubmitting an identical spec never re-simulates, and
// changing any effective parameter or rebuilding the binary naturally
// misses. There is no TTL and no explicit invalidation — stale entries are
// simply never addressed again (operators may delete the directory at any
// time; see docs/OPERATIONS.md "Cache layout").
//
// Writes are tmp+rename in the same directory, so readers never observe a
// torn artifact and a crashed writer leaves only a .tmp to sweep up.
#pragma once

#include <iosfwd>
#include <string>

#include "service/sweep_runner.hpp"
#include "service/sweep_spec.hpp"

namespace m2hew::service {

class ArtifactCache {
 public:
  /// Creates `dir` (one level) if missing.
  explicit ArtifactCache(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  /// Final path of the artifact for a cache key (whether or not present).
  [[nodiscard]] std::string path_for(const std::string& hash_hex) const;
  [[nodiscard]] bool contains(const std::string& hash_hex) const;

  /// Atomically publishes an artifact (tmp + rename). Returns false on
  /// I/O failure.
  [[nodiscard]] bool store(const std::string& hash_hex,
                           const std::string& json) const;

 private:
  std::string dir_;
};

/// Renders a completed sweep as the shared bench JSON schema
/// (runner::write_bench_json_doc): one run entry per sweep point, in
/// sweep order, with the spec identity (name, algorithm, hash, binary
/// version, sweep key/values, worker count) in "params".
void write_sweep_artifact(std::ostream& out, const SweepSpec& spec,
                          const SweepResult& result);

/// Convenience string form of write_sweep_artifact.
[[nodiscard]] std::string sweep_artifact_json(const SweepSpec& spec,
                                              const SweepResult& result);

}  // namespace m2hew::service
