// Shared engine-core configuration and bookkeeping (the channel-medium
// core). The paper defines ONE channel semantics (§II); the three engines
// (slot, async, multi-radio) differ only in how time is sliced. Everything
// a trial needs regardless of the slicing lives here: the root seed, the
// loss model, the dynamic primary-user field, the reception-resolution
// strategy switch, the stop condition and the per-node start schedule —
// plus the one validation routine and the activity/completion accounting
// all engines share.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "net/topology_provider.hpp"
#include "net/types.hpp"
#include "sim/discovery_state.hpp"
#include "sim/energy.hpp"
#include "sim/fault_plan.hpp"
#include "sim/radio.hpp"
#include "util/check.hpp"

namespace m2hew::sim {

/// Configuration shared by every engine, parameterized on the engine's
/// time axis: `std::uint64_t` (global slot index) for the slotted engines,
/// `double` (real time) for the asynchronous engine. Engine configs
/// inherit from this, so common knobs read identically across engines
/// (`config.loss_probability`, `config.starts`, ...).
template <typename Time>
struct EngineCommon {
  using TimePoint = Time;

  /// Root seed; node RNGs are derived as (seed, node) and the loss-model
  /// stream as (seed, N+1) — see TrialSetup.
  std::uint64_t seed = 1;

  /// Probability that an otherwise-clear reception is lost (models
  /// unreliable channels, §V extension (b)). 0 = reliable. A lost message
  /// is reported to the listener as silence (signal below sensitivity).
  double loss_probability = 0.0;

  /// Optional dynamic primary-user interference, queried per
  /// (time, node, channel). While active at a node on a channel: the
  /// node's transmissions there are suppressed (spectrum sensing vacates
  /// the channel) and listening there yields kCollision (PU noise). Null
  /// = no external interference. Must be deterministic.
  std::function<bool(Time, net::NodeId, net::ChannelId)> interference;

  /// Reception-resolution strategy. true (default): resolve through the
  /// per-channel transmitter index (SlotMedium for the slotted engines,
  /// the live transmit-frame interval index for the async engine).
  /// false: the original per-listener scan over all in-neighbors, kept as
  /// the naive reference implementation for the equivalence property
  /// tests. Both paths are bit-identical by contract — same policy
  /// callback order and same loss-RNG draw order (see
  /// docs/EXTENDING.md "Indexed reception & engine determinism").
  bool indexed_reception = true;

  /// Stop as soon as discovery completes (otherwise run the full budget).
  bool stop_when_complete = true;

  /// Per-node start schedule: global slot (slotted engines) or real time
  /// (async engine) at which each node begins executing. Before its start
  /// a node is silent and deaf and its radio is off. Empty = all nodes
  /// start at 0.
  std::vector<Time> starts;

  /// Fault-injection and dynamics plan: node churn, Gilbert–Elliott burst
  /// loss, scheduled spectrum faults and (async) drift wander — see
  /// sim/fault_plan.hpp. The default (all disabled) is the paper's static
  /// network and is guaranteed not to perturb any random stream.
  FaultPlan<Time> faults;

  /// Optional time-varying topology (net/topology_provider.hpp). When set,
  /// the Network the engine was handed must be the provider's
  /// union_network(); arcs carry traffic only while present in the
  /// current epoch. Null = the handed Network is static (today's path).
  const net::TopologyProvider* topology = nullptr;

  /// Epoch duration: slots (slotted engines) or real time (async engine)
  /// per epoch. Epoch e spans [e·epoch_length, (e+1)·epoch_length); runs
  /// longer than epoch_count() epochs stay on the last epoch. Must be > 0
  /// whenever `topology` has more than one epoch.
  Time epoch_length{};
};

/// The slotted engines' common config (slot, multi-radio).
using SlotEngineCommon = EngineCommon<std::uint64_t>;
/// The asynchronous engine's common config.
using AsyncEngineCommon = EngineCommon<double>;

/// The one validation routine for the shared knobs; every engine calls
/// this in its M2HEW_CHECK preamble.
template <typename Time>
inline void validate_engine_common(const EngineCommon<Time>& config,
                                   net::NodeId nodes) {
  M2HEW_CHECK(config.starts.empty() || config.starts.size() == nodes);
  M2HEW_CHECK(config.loss_probability >= 0.0 &&
              config.loss_probability < 1.0);
  if constexpr (std::is_floating_point_v<Time>) {
    for (const Time start : config.starts) M2HEW_CHECK(start >= Time{0});
  }
  validate_fault_plan(config.faults, nodes, config.loss_probability);
}

/// Resolves the topology provider an engine should run against, checking
/// the contract that the engine's Network is the provider's union: the
/// engine's discovery state, policies and completion test all live on the
/// union network, while the provider's epoch(e) gates which arcs carry
/// traffic. Returns null for the static single-epoch fast path (no
/// provider, or a provider whose single epoch IS the engine network).
template <typename Time>
[[nodiscard]] inline const net::TopologyProvider* topology_provider_of(
    const EngineCommon<Time>& config, const net::Network& network) {
  if (config.topology == nullptr) return nullptr;
  M2HEW_CHECK_MSG(&config.topology->union_network() == &network,
                  "engine must be built on the provider's union network");
  if (config.topology->epoch_count() == 1 &&
      &config.topology->epoch(0) == &network) {
    return nullptr;  // static case: the union is the only epoch
  }
  M2HEW_CHECK_MSG(config.epoch_length > Time{},
                  "multi-epoch topology needs a positive epoch_length");
  return config.topology;
}

/// Epoch index in force at time `t`: floor(t / epoch_length), clamped to
/// the provider's last epoch.
template <typename Time>
[[nodiscard]] inline std::size_t epoch_at(const net::TopologyProvider& provider,
                                          Time epoch_length, Time t) {
  const auto e = static_cast<std::size_t>(t / epoch_length);
  return std::min(e, provider.epoch_count() - 1);
}

/// Start time of node `u` under a (possibly empty) start schedule.
template <typename Time>
[[nodiscard]] inline Time start_of(const std::vector<Time>& starts,
                                   net::NodeId u) {
  return starts.empty() ? Time{} : starts[u];
}

/// Folds one slot/frame action mode into a node's activity tally.
inline void count_mode(RadioActivity& activity, Mode mode) {
  switch (mode) {
    case Mode::kTransmit:
      ++activity.transmit;
      break;
    case Mode::kReceive:
      ++activity.receive;
      break;
    case Mode::kQuiet:
      ++activity.quiet;
      break;
  }
}

/// Completion accounting shared by all engines: latches (complete,
/// completion) the first time the state covers every link and returns
/// true iff the engine should stop now.
template <typename Time>
[[nodiscard]] inline bool note_completion(const DiscoveryState& state,
                                          bool& complete, Time& completion,
                                          Time now, bool stop_when_complete) {
  if (complete || !state.complete()) return false;
  complete = true;
  completion = now;
  return stop_when_complete;
}

/// History-retention horizon factor shared by the async engine's frame
/// histories and its per-channel live-transmit index: entries ending
/// before `now - kHistoryHorizonFactor × max frame length` can no longer
/// overlap any unresolved listening frame and are pruned. A tighter
/// factor can drop a transmit frame a still-unresolved listening frame
/// overlaps (see docs/EXTENDING.md).
inline constexpr double kHistoryHorizonFactor = 4.0;

}  // namespace m2hew::sim
