// Multi-radio synchronous engine — the model of related work [19]
// (Raniwala & Chiueh), where each node carries several transceivers. The
// paper's algorithms assume a single transceiver (§II); this engine
// quantifies what extra interfaces buy (bench E18).
//
// Semantics per slot: every radio of every node independently transmits,
// receives or idles on a channel. Radios of one node must be tuned to
// distinct channels (no self-interference is modelled beyond that
// constraint; ideal channel filters are assumed). A listening radio hears
// a clear message iff exactly one radio among its node's in-neighbors
// transmits on its channel.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/discovery_state.hpp"
#include "sim/radio.hpp"
#include "util/rng.hpp"

namespace m2hew::sim {

/// Per-slot policy for a node with a fixed number of radios. The returned
/// vector must have exactly `radio_count` entries with pairwise-distinct
/// channels among non-quiet entries.
class MultiRadioPolicy {
 public:
  virtual ~MultiRadioPolicy() = default;
  [[nodiscard]] virtual std::vector<SlotAction> next_slot(util::Rng& rng) = 0;
  [[nodiscard]] virtual unsigned radio_count() const = 0;
};

using MultiRadioPolicyFactory = std::function<std::unique_ptr<MultiRadioPolicy>(
    const net::Network&, net::NodeId)>;

struct MultiRadioEngineConfig {
  std::uint64_t max_slots = 1'000'000;
  std::uint64_t seed = 1;
  bool stop_when_complete = true;
};

struct MultiRadioEngineResult {
  bool complete = false;
  std::uint64_t completion_slot = 0;
  std::uint64_t slots_executed = 0;
  DiscoveryState state;
};

[[nodiscard]] MultiRadioEngineResult run_multi_radio_engine(
    const net::Network& network, const MultiRadioPolicyFactory& factory,
    const MultiRadioEngineConfig& config);

}  // namespace m2hew::sim
