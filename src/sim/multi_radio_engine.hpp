// Multi-radio synchronous engine — the model of related work [19]
// (Raniwala & Chiueh), where each node carries several transceivers. The
// paper's algorithms assume a single transceiver (§II); this engine
// quantifies what extra interfaces buy (bench E18).
//
// Semantics per slot: every radio of every started node independently
// transmits, receives or idles on a channel. Radios of one node must be
// tuned to distinct channels (no self-interference is modelled beyond
// that constraint; ideal channel filters are assumed). A listening radio
// hears a clear message iff exactly one in-neighbor of its node transmits
// on its channel over an arc carrying that channel — the §II semantics,
// resolved per radio through the same SlotMedium as the single-radio slot
// engine, with the same loss, primary-user interference, start-schedule
// and indexed/reference machinery (see sim/engine_common.hpp). With
// radio_count == 1 for every node this engine is bit-identical to
// run_slot_engine (the engine-parity property test enforces it).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/discovery_state.hpp"
#include "sim/energy.hpp"
#include "sim/engine_common.hpp"
#include "sim/radio.hpp"
#include "util/rng.hpp"

namespace m2hew::sim {

/// Per-slot policy for a node with a fixed number of radios. The returned
/// vector must have exactly `radio_count` entries with pairwise-distinct
/// channels among non-quiet entries. Feedback mirrors SyncPolicy, tagged
/// with the radio index it arrived on.
class MultiRadioPolicy {
 public:
  virtual ~MultiRadioPolicy() = default;
  [[nodiscard]] virtual std::vector<SlotAction> next_slot(util::Rng& rng) = 0;
  [[nodiscard]] virtual unsigned radio_count() const = 0;
  /// Called when radio `radio` clearly receives from `from`.
  virtual void observe_reception(unsigned radio, net::NodeId from,
                                 bool first_time) {
    (void)radio;
    (void)from;
    (void)first_time;
  }
  /// Called once per listening radio per slot with what that radio heard.
  virtual void observe_listen_outcome(unsigned radio, ListenOutcome outcome) {
    (void)radio;
    (void)outcome;
  }

  /// Admission gate, consulted before a decoded announcement is recorded;
  /// the node's single neighbor table is shared by its radios, so there is
  /// no radio argument. See sim::SyncPolicy::admit_neighbor.
  [[nodiscard]] virtual bool admit_neighbor(net::NodeId announced) {
    (void)announced;
    return true;
  }
};

using MultiRadioPolicyFactory = std::function<std::unique_ptr<MultiRadioPolicy>(
    const net::Network&, net::NodeId)>;

/// Engine-specific knobs on top of the shared core (seed, loss,
/// interference, indexed_reception, stop_when_complete, starts — see
/// EngineCommon). `starts` entries are global slot indices, as in the
/// single-radio slot engine.
struct MultiRadioEngineConfig : SlotEngineCommon {
  /// Hard budget on global slots simulated.
  std::uint64_t max_slots = 1'000'000;
  /// Optional observer invoked on every clear reception:
  /// (global slot, sender, receiver, channel).
  std::function<void(std::uint64_t, net::NodeId, net::NodeId, net::ChannelId)>
      on_reception;
};

struct MultiRadioEngineResult {
  bool complete = false;
  std::uint64_t completion_slot = 0;
  std::uint64_t slots_executed = 0;
  /// Per-node slot counts by radio mode from the node's start slot on,
  /// summed over the node's radios (one count per radio per started slot,
  /// so activity[u].total() == started slots × radio_count). Suppressed
  /// transmissions count as quiet, exactly as in the slot engine.
  std::vector<RadioActivity> activity;
  DiscoveryState state;
  /// Fault-robustness metrics; RobustnessReport::enabled is false when the
  /// config carried no fault plan.
  RobustnessReport robustness;
};

[[nodiscard]] MultiRadioEngineResult run_multi_radio_engine(
    const net::Network& network, const MultiRadioPolicyFactory& factory,
    const MultiRadioEngineConfig& config);

}  // namespace m2hew::sim
