#include "sim/fault_plan.hpp"

#include <algorithm>

namespace m2hew::sim {

namespace {

// Uniform draw in [lo, hi] on the engine's time axis: inclusive integer
// range for slot indices, half-open real range for the async engine (the
// distinction is immaterial for a continuous axis).
template <typename Time>
[[nodiscard]] Time draw_time(util::Rng& rng, Time lo, Time hi) {
  if constexpr (std::is_floating_point_v<Time>) {
    return rng.uniform_double(lo, hi);
  } else {
    return lo + rng.uniform(hi - lo + 1);
  }
}

}  // namespace

template <typename Time>
FaultState<Time>::FaultState(const net::Network& network,
                             const util::SeedSequence& seeds,
                             const FaultPlan<Time>& plan)
    : network_(&network),
      plan_(&plan),
      churn_(plan.churn.enabled()),
      n_(network.node_count()) {
  if (churn_) {
    schedule_.resize(n_);
    reset_pending_.assign(n_, 0);
    for (net::NodeId u = 0; u < n_; ++u) {
      // One private stream per node: the schedule never consumes from the
      // node policy stream or the loss stream, and derive() is pure, so
      // attaching churn perturbs nothing else. All three values are drawn
      // unconditionally to keep the stream layout independent of the
      // crash coin.
      util::Rng rng(seeds.derive(u, kChurnStreamSalt));
      const bool crashes = rng.bernoulli(plan.churn.crash_probability);
      const Time crash = draw_time<Time>(rng, plan.churn.earliest_crash,
                                         plan.churn.latest_crash);
      const Time down =
          draw_time<Time>(rng, plan.churn.min_down, plan.churn.max_down);
      NodeChurn& c = schedule_[u];
      c.crashes = crashes;
      c.crash = crash;
      c.recovers = down > Time{0};
      c.recovery = crash + down;
      if (c.crashes && c.recovers && plan.churn.reset_policy_on_recovery) {
        reset_pending_[u] = 1;
      }
    }
    post_recovery_.assign(static_cast<std::size_t>(n_) * n_, -1.0);
  }
  if (plan.burst_loss.enabled) {
    ge_state_.assign(static_cast<std::size_t>(n_) * n_, 0);
  }
  if (plan.adversary.enabled()) {
    adversary_ = true;
    const AdversarySpec& adv = plan.adversary;
    role_.assign(n_, static_cast<std::uint8_t>(AdversaryRole::kHonest));
    jam_channel_.assign(n_, net::kInvalidChannel);
    fake_id_.assign(n_, net::kInvalidNode);
    byz_avail_.resize(n_);
    victims_.resize(n_);
    fake_heard_.resize(n_);
    honest_blocked_.resize(n_);
    // Out-adjacency (id-sorted) for the non-responder victim draws; built
    // on the union network so the victim set is epoch-invariant.
    std::vector<std::vector<net::NodeId>> out(n_);
    if (adv.attack == AdversaryAttack::kNonResponder ||
        adv.attack == AdversaryAttack::kMix) {
      for (const net::Link link : network.links()) {
        out[link.from].push_back(link.to);
      }
      for (std::vector<net::NodeId>& targets : out) {
        std::sort(targets.begin(), targets.end());
      }
    }
    for (net::NodeId u = 0; u < n_; ++u) {
      // One private stream per node, like the churn schedules. The first
      // four values are drawn unconditionally so (a) the adversary SET is
      // a function of (seed, fraction) alone — switching the attack type
      // keeps it fixed — and (b) the stream layout never depends on the
      // coin. Only the non-responder victim coins extend the stream, and
      // nothing else ever reads past them.
      util::Rng rng(seeds.derive(u, kAdversaryStreamSalt));
      const bool is_adv = rng.bernoulli(adv.fraction);
      const std::uint64_t role_draw = rng.uniform(3);
      const std::vector<net::ChannelId> avail =
          network.available(u).to_vector();
      M2HEW_CHECK_MSG(!avail.empty(),
                      "adversary faults need non-empty channel sets");
      const net::ChannelId jam =
          avail[static_cast<std::size_t>(rng.uniform(avail.size()))];
      const net::NodeId fake = static_cast<net::NodeId>(
          rng.uniform(2 * static_cast<std::uint64_t>(n_)));
      if (!is_adv) continue;
      ++adversary_count_;
      AdversaryRole role;
      switch (adv.attack) {
        case AdversaryAttack::kJam:
          role = AdversaryRole::kJammer;
          break;
        case AdversaryAttack::kByzantine:
          role = AdversaryRole::kByzantine;
          break;
        case AdversaryAttack::kNonResponder:
          role = AdversaryRole::kNonResponder;
          break;
        case AdversaryAttack::kMix:
        default:
          role = static_cast<AdversaryRole>(1 + role_draw);
          break;
      }
      role_[u] = static_cast<std::uint8_t>(role);
      if (role == AdversaryRole::kJammer) {
        jam_channel_[u] = jam;
      } else if (role == AdversaryRole::kByzantine) {
        fake_id_[u] = fake;
        fake_ids_.push_back(fake);
        byz_avail_[u] = avail;
      } else {
        for (const net::NodeId v : out[u]) {
          if (rng.bernoulli(adv.victim_fraction)) victims_[u].push_back(v);
        }
      }
    }
    std::sort(fake_ids_.begin(), fake_ids_.end());
    fake_ids_.erase(std::unique(fake_ids_.begin(), fake_ids_.end()),
                    fake_ids_.end());
  }
  if (!plan.spectrum.empty()) {
    M2HEW_CHECK(plan.positions.size() == n_);
    for (const net::ScheduledPrimaryUser& pu : plan.spectrum) {
      M2HEW_CHECK_MSG(pu.user.channel < network.universe_size(),
                      "spectrum-fault PU channel outside universe");
    }
    spectrum_cover_.resize(n_);
    for (std::uint32_t p = 0; p < plan.spectrum.size(); ++p) {
      const net::ScheduledPrimaryUser& pu = plan.spectrum[p];
      for (net::NodeId u = 0; u < n_; ++u) {
        if (net::squared_distance(pu.user.position, plan.positions[u]) <=
            pu.user.radius * pu.user.radius) {
          spectrum_cover_[u].push_back(p);
        }
      }
    }
  }
}

template <typename Time>
bool FaultState<Time>::spectrum_blocked(Time t, net::NodeId u,
                                        net::ChannelId c) const {
  if (spectrum_cover_.empty()) return false;
  for (const std::uint32_t p : spectrum_cover_[u]) {
    const net::ScheduledPrimaryUser& pu = plan_->spectrum[p];
    if (pu.user.channel == c && pu.active_at(static_cast<double>(t))) {
      return true;
    }
  }
  return false;
}

template <typename Time>
bool FaultState<Time>::message_lost(net::NodeId sender, net::NodeId receiver,
                                    util::Rng& loss_rng, double iid_loss) {
  if (plan_->burst_loss.enabled) {
    const GilbertElliottSpec& ge = plan_->burst_loss;
    std::uint8_t& s =
        ge_state_[static_cast<std::size_t>(sender) * n_ + receiver];
    if (loss_rng.bernoulli(s == 0 ? ge.p_good_to_bad : ge.p_bad_to_good)) {
      s ^= 1u;
    }
    return loss_rng.bernoulli(s == 0 ? ge.loss_good : ge.loss_bad);
  }
  return iid_loss > 0.0 && loss_rng.bernoulli(iid_loss);
}

template <typename Time>
bool FaultState<Time>::suppressed(net::NodeId sender,
                                  net::NodeId receiver) const noexcept {
  if (!adversary_ || role_[sender] != static_cast<std::uint8_t>(
                                          AdversaryRole::kNonResponder)) {
    return false;
  }
  const std::vector<net::NodeId>& v = victims_[sender];
  return std::binary_search(v.begin(), v.end(), receiver);
}

template <typename Time>
SlotAction FaultState<Time>::byzantine_slot_action(net::NodeId u,
                                                   util::Rng& rng) const {
  const std::vector<net::ChannelId>& avail = byz_avail_[u];
  const net::ChannelId c =
      avail[static_cast<std::size_t>(rng.uniform(avail.size()))];
  const bool tx = rng.bernoulli(plan_->adversary.byzantine_tx);
  return SlotAction{tx ? Mode::kTransmit : Mode::kQuiet, c};
}

template <typename Time>
bool FaultState<Time>::note_fake_decode(net::NodeId sender,
                                        net::NodeId receiver, Time t) {
  const net::NodeId f = fake_id_[sender];
  std::vector<FakeEntry>& tab = fake_heard_[receiver];
  for (FakeEntry& e : tab) {
    if (e.id != f) continue;
    // A re-admitted ID after a blocklist expiry resurfaces in the table
    // (probation), but is not a first-time reception.
    e.evicted = false;
    return false;
  }
  FakeEntry e;
  e.id = f;
  e.first_seen = static_cast<double>(t);
  tab.push_back(e);
  return true;
}

template <typename Time>
void FaultState<Time>::note_isolation(net::NodeId receiver,
                                      net::NodeId announced, Time t) {
  if (!adversary_) return;
  if (std::binary_search(fake_ids_.begin(), fake_ids_.end(), announced)) {
    std::vector<FakeEntry>& tab = fake_heard_[receiver];
    FakeEntry* entry = nullptr;
    for (FakeEntry& e : tab) {
      if (e.id == announced) {
        entry = &e;
        break;
      }
    }
    if (entry == nullptr) {
      // Rejected before any decode was admitted (the trust wrapper sees
      // every announcement attempt): no table entry ever existed.
      FakeEntry e;
      e.id = announced;
      e.first_seen = static_cast<double>(t);
      tab.push_back(e);
      entry = &tab.back();
    }
    entry->evicted = true;
    if (!entry->isolated) {
      entry->isolated = true;
      entry->isolated_at = static_cast<double>(t);
    }
    return;
  }
  std::vector<net::NodeId>& blocked = honest_blocked_[receiver];
  const auto it =
      std::lower_bound(blocked.begin(), blocked.end(), announced);
  if (it == blocked.end() || *it != announced) blocked.insert(it, announced);
}

template <typename Time>
void FaultState<Time>::note_reception(net::NodeId sender,
                                      net::NodeId receiver, Time t) {
  if (!churn_) return;
  // A link is a rediscovery candidate iff at least one endpoint crashes
  // and every crashed endpoint recovers; the clock starts at the latest
  // such recovery.
  bool relevant = false;
  Time threshold{};
  for (const net::NodeId end : {sender, receiver}) {
    const NodeChurn& c = schedule_[end];
    if (!c.crashes) continue;
    if (!c.recovers) return;  // link dead: endpoint never comes back
    relevant = true;
    threshold = std::max(threshold, c.recovery);
  }
  if (!relevant || t < threshold) return;
  double& cell =
      post_recovery_[static_cast<std::size_t>(sender) * n_ + receiver];
  if (cell < 0.0) cell = static_cast<double>(t);
}

template <typename Time>
RobustnessReport FaultState<Time>::assess(const DiscoveryState& state,
                                          Time end) const {
  // Neighbor-table entries are exactly the covered in-arcs with the
  // network span as common channels (see DiscoveryState::record_reception),
  // so assessing through the coverage oracle is equivalent — and keeps the
  // DiscoveryState-free SoA kernel on the same code path.
  return assess_covered(
      [&state](net::Link link) { return state.is_covered(link); }, end);
}

template <typename Time>
RobustnessReport FaultState<Time>::assess_covered(
    const std::function<bool(net::Link)>& is_covered, Time end) const {
  RobustnessReport r;
  r.enabled = plan_->any();
  if (!r.enabled) return r;

  if (churn_) {
    for (net::NodeId u = 0; u < n_; ++u) {
      // A crash scheduled past the end of the run never happened.
      if (schedule_[u].crashes && schedule_[u].crash <= end) {
        ++r.crashed_nodes;
      }
      if (down_at(u, end)) ++r.down_at_end;
    }
  }

  // A jammer or Byzantine endpoint makes an arc undiscoverable by
  // construction (neither role announces its real ID or listens), so
  // those arcs are excluded from the recall denominators; non-responder
  // arcs stay in — their victims' misses are the attack's recall cost.
  const auto blind = [this](net::NodeId u) {
    if (!adversary_) return false;
    return role_[u] == static_cast<std::uint8_t>(AdversaryRole::kJammer) ||
           role_[u] == static_cast<std::uint8_t>(AdversaryRole::kByzantine);
  };
  r.adversary = adversary_;
  r.adversary_nodes = adversary_count_;

  double rediscovery_sum = 0.0;
  for (const net::Link link : network_->links()) {
    const bool covered = is_covered(link);
    if (covered) ++r.real_entries;
    if (down_at(link.from, end) || down_at(link.to, end)) continue;
    if (blind(link.from) || blind(link.to)) continue;
    ++r.surviving_links;
    if (covered) ++r.covered_surviving_links;
    if (!churn_) continue;
    bool relevant = false;
    Time threshold{};
    for (const net::NodeId node : {link.from, link.to}) {
      const NodeChurn& c = schedule_[node];
      // Only crashes that happened during the run count; an endpoint that
      // crashed and never recovered is still down (link not surviving).
      if (!c.crashes || c.crash > end) continue;
      relevant = true;
      threshold = std::max(threshold, c.recovery);
    }
    if (!relevant) continue;
    ++r.recovered_links;
    const double t =
        post_recovery_[static_cast<std::size_t>(link.from) * n_ + link.to];
    if (t >= 0.0) {
      ++r.rediscovered_links;
      const double took = t - static_cast<double>(threshold);
      rediscovery_sum += took;
      r.max_rediscovery = std::max(r.max_rediscovery, took);
    }
  }
  if (r.rediscovered_links > 0) {
    r.mean_rediscovery =
        rediscovery_sum / static_cast<double>(r.rediscovered_links);
  }

  // Ghost entries: stale table knowledge at the end of the run. An entry
  // is a ghost when its subject crashed and is still down, or when every
  // common channel it records is blocked by an active spectrum fault at
  // either endpoint (the link's effective span vanished). A table entry at
  // u exists exactly for each covered link (v, u) and records the span, so
  // covered links stand in for the tables themselves.
  if (churn_ || has_spectrum()) {
    for (const net::Link link : network_->links()) {
      if (!is_covered(link)) continue;
      const net::NodeId v = link.from;
      const net::NodeId u = link.to;
      bool ghost = down_at(v, end);
      if (!ghost && has_spectrum()) {
        const net::ChannelSet& common = network_->span(v, u);
        if (!common.empty()) {
          ghost = true;
          for (const net::ChannelId c : common.to_vector()) {
            if (!spectrum_blocked(end, u, c) &&
                !spectrum_blocked(end, v, c)) {
              ghost = false;
              break;
            }
          }
        }
      }
      if (ghost) ++r.ghost_entries;
    }
  }

  // Fake-entry accounting: every admitted, un-evicted (listener, fake ID)
  // pair is a polluted table entry — unless the announced ID aliases a
  // real node whose arc to the listener exists and was covered, in which
  // case the table already holds that entry as real knowledge and it must
  // not be counted twice. Fake entries are also ghost inflation.
  if (adversary_) {
    double isolation_sum = 0.0;
    for (net::NodeId u = 0; u < n_; ++u) {
      for (const FakeEntry& e : fake_heard_[u]) {
        if (!e.evicted) {
          bool aliased = false;
          if (e.id < n_) {
            const net::ChannelSet* span = network_->in_span(e.id, u);
            if (span != nullptr && is_covered(net::Link{e.id, u})) {
              aliased = true;
            }
          }
          if (!aliased) ++r.fake_entries;
        }
        if (e.isolated) {
          ++r.isolated_fakes;
          const double took = e.isolated_at - e.first_seen;
          isolation_sum += took;
          r.max_isolation = std::max(r.max_isolation, took);
        }
      }
      r.honest_isolated += honest_blocked_[u].size();
    }
    if (r.isolated_fakes > 0) {
      r.mean_isolation =
          isolation_sum / static_cast<double>(r.isolated_fakes);
    }
    r.ghost_entries += r.fake_entries;
  }
  return r;
}

template class FaultState<std::uint64_t>;
template class FaultState<double>;

}  // namespace m2hew::sim
