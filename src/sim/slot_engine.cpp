#include "sim/slot_engine.hpp"

#include <memory>

#include "util/check.hpp"

namespace m2hew::sim {

SlotEngineResult run_slot_engine(const net::Network& network,
                                 const SyncPolicyFactory& factory,
                                 const SlotEngineConfig& config) {
  const net::NodeId n = network.node_count();
  M2HEW_CHECK(config.start_slots.empty() || config.start_slots.size() == n);
  M2HEW_CHECK(config.loss_probability >= 0.0 &&
              config.loss_probability < 1.0);

  const util::SeedSequence seeds(config.seed);
  std::vector<util::Rng> rngs;
  rngs.reserve(n);
  std::vector<std::unique_ptr<SyncPolicy>> policies;
  policies.reserve(n);
  for (net::NodeId u = 0; u < n; ++u) {
    rngs.emplace_back(seeds.derive(u));
    policies.push_back(factory(network, u));
    M2HEW_CHECK_MSG(policies.back() != nullptr, "factory returned null");
  }
  // Separate stream for the loss model so enabling loss does not perturb
  // the nodes' random choices.
  util::Rng loss_rng(seeds.derive(n + 1));

  auto start_of = [&config](net::NodeId u) -> std::uint64_t {
    return config.start_slots.empty() ? 0 : config.start_slots[u];
  };

  SlotEngineResult result{false,
                          0,
                          0,
                          std::vector<RadioActivity>(n),
                          DiscoveryState(network)};
  std::vector<SlotAction> actions(n);

  // Per-channel transmitter buckets for the indexed reception path,
  // allocated once and cleared per slot through the touched list.
  std::vector<std::vector<net::NodeId>> buckets(
      config.indexed_reception ? network.universe_size() : 0);
  std::vector<net::ChannelId> touched;

  for (std::uint64_t slot = 0; slot < config.max_slots; ++slot) {
    ++result.slots_executed;

    for (net::NodeId u = 0; u < n; ++u) {
      if (slot >= start_of(u)) {
        actions[u] = policies[u]->next_slot(rngs[u]);
        if (actions[u].mode != Mode::kQuiet) {
          M2HEW_DCHECK(network.available(u).contains(actions[u].channel));
        }
      } else {
        actions[u] = SlotAction{};  // not started: quiet
      }
    }

    // Transmissions on a channel with active primary-user interference at
    // the transmitter are suppressed (the node senses the PU and vacates,
    // idling its radio for the slot).
    if (config.interference) {
      for (net::NodeId u = 0; u < n; ++u) {
        if (actions[u].mode == Mode::kTransmit &&
            config.interference(slot, u, actions[u].channel)) {
          actions[u].mode = Mode::kQuiet;
        }
      }
    }

    // Radio accounting starts at the node's start slot: before that the
    // node is not executing and its radio is off (E13's idle energy would
    // otherwise be inflated for late starters).
    for (net::NodeId u = 0; u < n; ++u) {
      if (slot < start_of(u)) continue;
      switch (actions[u].mode) {
        case Mode::kTransmit:
          ++result.activity[u].transmit;
          break;
        case Mode::kReceive:
          ++result.activity[u].receive;
          break;
        case Mode::kQuiet:
          ++result.activity[u].quiet;
          break;
      }
    }

    // One O(#transmitters) sweep groups this slot's (non-suppressed)
    // transmitters by channel; each bucket is sorted by node id because
    // the sweep runs in id order.
    if (config.indexed_reception) {
      for (const net::ChannelId c : touched) buckets[c].clear();
      touched.clear();
      for (net::NodeId u = 0; u < n; ++u) {
        if (actions[u].mode != Mode::kTransmit) continue;
        std::vector<net::NodeId>& bucket = buckets[actions[u].channel];
        if (bucket.empty()) touched.push_back(actions[u].channel);
        bucket.push_back(u);
      }
    }

    // Reception resolution, per listening node: u hears v iff v is the
    // only in-neighbor transmitting on u's channel whose arc to u carries
    // that channel (transmissions that do not propagate to u neither
    // deliver nor interfere).
    for (net::NodeId u = 0; u < n; ++u) {
      if (actions[u].mode != Mode::kReceive) continue;
      const net::ChannelId c = actions[u].channel;

      // Active primary-user noise at the listener drowns the channel.
      if (config.interference && config.interference(slot, u, c)) {
        policies[u]->observe_listen_outcome(ListenOutcome::kCollision);
        continue;
      }

      net::NodeId sender = net::kInvalidNode;
      bool collision = false;
      if (config.indexed_reception) {
        // Resolve against only this channel's transmitters, filtered by
        // the flat in-neighbor adjacency, early-exiting at the second
        // matching sender. Every bucket entry already transmits on c, so
        // the match set — and therefore sender/collision — is identical
        // to the reference scan below.
        for (const net::NodeId v : buckets[c]) {
          const net::ChannelSet* span = network.in_span(v, u);
          if (span == nullptr || !span->contains(c)) continue;
          if (sender != net::kInvalidNode) {
            collision = true;
            break;
          }
          sender = v;
        }
      } else {
        for (const net::Network::InLink& in : network.in_links(u)) {
          if (actions[in.from].mode == Mode::kTransmit &&
              actions[in.from].channel == c && in.span->contains(c)) {
            if (sender != net::kInvalidNode) {
              collision = true;
              break;
            }
            sender = in.from;
          }
        }
      }
      if (collision) {
        policies[u]->observe_listen_outcome(ListenOutcome::kCollision);
        continue;
      }
      if (sender == net::kInvalidNode) {
        policies[u]->observe_listen_outcome(ListenOutcome::kSilence);
        continue;
      }
      if (config.loss_probability > 0.0 &&
          loss_rng.bernoulli(config.loss_probability)) {
        policies[u]->observe_listen_outcome(ListenOutcome::kSilence);
        continue;
      }
      const bool first_time =
          result.state.record_reception(sender, u, static_cast<double>(slot));
      policies[u]->observe_listen_outcome(ListenOutcome::kClear);
      policies[u]->observe_reception(sender, first_time);
      if (config.on_reception) {
        config.on_reception(slot, sender, u, c);
      }
    }

    if (!result.complete && result.state.complete()) {
      result.complete = true;
      result.completion_slot = slot;
      if (config.stop_when_complete) break;
    }
  }
  return result;
}

}  // namespace m2hew::sim
