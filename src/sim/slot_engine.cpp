#include "sim/slot_engine.hpp"

#include "sim/slot_medium.hpp"
#include "sim/trial_setup.hpp"
#include "util/check.hpp"

namespace m2hew::sim {

SlotEngineResult run_slot_engine(const net::Network& network,
                                 const SyncPolicyFactory& factory,
                                 const SlotEngineConfig& config) {
  const net::NodeId n = network.node_count();
  validate_engine_common(config, n);

  TrialSetup<SyncPolicy> setup(network, factory, config.seed);
  FaultState<std::uint64_t> faults(network, setup.seeds(), config.faults);

  // External interference at (slot, node, channel): the configured PU
  // schedule OR an active scheduled spectrum fault.
  const bool has_interference =
      static_cast<bool>(config.interference) || faults.has_spectrum();
  const auto jammed = [&](std::uint64_t slot, net::NodeId who,
                          net::ChannelId c) {
    return (config.interference && config.interference(slot, who, c)) ||
           faults.spectrum_blocked(slot, who, c);
  };

  SlotEngineResult result{false,
                          0,
                          0,
                          std::vector<RadioActivity>(n),
                          DiscoveryState(network)};
  std::vector<SlotAction> actions(n);
  SlotMedium medium(network.universe_size(), config.indexed_reception);

  // Time-varying topology: `cur` is the link set in force this slot,
  // swapped at epoch boundaries. Policies, discovery state and completion
  // stay on the union `network`; only reception resolution sees `cur`.
  const net::TopologyProvider* provider =
      topology_provider_of(config, network);
  const net::Network* cur = &network;

  for (std::uint64_t slot = 0; slot < config.max_slots; ++slot) {
    ++result.slots_executed;
    if (provider != nullptr) {
      cur = &provider->epoch(epoch_at(*provider, config.epoch_length, slot));
    }

    for (net::NodeId u = 0; u < n; ++u) {
      if (slot >= start_of(config.starts, u) && !faults.down_at(u, slot)) {
        // Adversary roles replace the node's policy: a jammer transmits
        // noise on its fixed channel without any stream draws, a
        // Byzantine announcer draws channel + coin from the node's policy
        // stream (same shape as the SoA action pass). Their policy
        // objects are never polled, so recovery resets are moot.
        switch (faults.role(u)) {
          case AdversaryRole::kJammer:
            actions[u] = SlotAction{Mode::kTransmit, faults.jam_channel(u)};
            break;
          case AdversaryRole::kByzantine:
            actions[u] = faults.byzantine_slot_action(u, setup.rng(u));
            break;
          default:
            if (faults.consume_reset(u, slot)) setup.reset_policy(u);
            actions[u] = setup.policy(u).next_slot(setup.rng(u));
            if (actions[u].mode != Mode::kQuiet) {
              M2HEW_DCHECK(
                  network.available(u).contains(actions[u].channel));
            }
            break;
        }
      } else {
        actions[u] = SlotAction{};  // not started or crashed: quiet
      }
    }

    // Transmissions on a channel with active primary-user interference at
    // the transmitter are suppressed (the node senses the PU and vacates,
    // idling its radio for the slot).
    if (has_interference) {
      for (net::NodeId u = 0; u < n; ++u) {
        if (actions[u].mode == Mode::kTransmit &&
            jammed(slot, u, actions[u].channel)) {
          actions[u].mode = Mode::kQuiet;
        }
      }
    }

    // Radio accounting starts at the node's start slot: before that the
    // node is not executing and its radio is off (E13's idle energy would
    // otherwise be inflated for late starters). A crashed node's radio is
    // off for the same reason.
    for (net::NodeId u = 0; u < n; ++u) {
      if (slot < start_of(config.starts, u) || faults.down_at(u, slot)) {
        continue;
      }
      count_mode(result.activity[u], actions[u].mode);
    }

    // One O(#transmitters) sweep groups this slot's (non-suppressed)
    // transmitters by channel; the sweep runs in node id order so each
    // bucket stays id-sorted.
    if (config.indexed_reception) {
      medium.begin_slot();
      for (net::NodeId u = 0; u < n; ++u) {
        if (actions[u].mode != Mode::kTransmit) continue;
        medium.add_transmitter(actions[u].channel, u);
      }
    }

    // Reception resolution, per listening node: u hears v iff v is the
    // only in-neighbor transmitting on u's channel whose arc to u carries
    // that channel (transmissions that do not propagate to u neither
    // deliver nor interfere).
    for (net::NodeId u = 0; u < n; ++u) {
      if (actions[u].mode != Mode::kReceive) continue;
      const net::ChannelId c = actions[u].channel;

      // Active primary-user noise at the listener drowns the channel.
      if (has_interference && jammed(slot, u, c)) {
        setup.policy(u).observe_listen_outcome(ListenOutcome::kCollision);
        continue;
      }

      const SlotMedium::Resolution heard =
          config.indexed_reception
              ? medium.resolve(*cur, u, c)
              : SlotMedium::resolve_reference(
                    *cur, u, c, [&](net::NodeId v) {
                      return actions[v].mode == Mode::kTransmit &&
                             actions[v].channel == c;
                    });
      if (heard.collision) {
        setup.policy(u).observe_listen_outcome(ListenOutcome::kCollision);
        continue;
      }
      if (heard.sender == net::kInvalidNode) {
        setup.policy(u).observe_listen_outcome(ListenOutcome::kSilence);
        continue;
      }
      // Adversarial dispositions of a uniquely-resolved sender: jammer
      // noise reads as a collision, a non-responder's message never
      // decodes at its victims (silence) — neither consumes a loss draw,
      // because neither is a decodable message.
      if (faults.adversaries()) {
        if (faults.jam_noise(heard.sender)) {
          setup.policy(u).observe_listen_outcome(ListenOutcome::kCollision);
          continue;
        }
        if (faults.suppressed(heard.sender, u)) {
          setup.policy(u).observe_listen_outcome(ListenOutcome::kSilence);
          continue;
        }
      }
      if (faults.message_lost(heard.sender, u, setup.loss_rng(),
                              config.loss_probability)) {
        setup.policy(u).observe_listen_outcome(ListenOutcome::kSilence);
        continue;
      }
      // A Byzantine message decodes cleanly but announces a fake ID: it
      // pollutes the listener's table (fault-layer accounting) and feeds
      // the policy the announced ID, never the real arc.
      if (faults.fake_source(heard.sender)) {
        const net::NodeId announced = faults.fake_id(heard.sender);
        if (!setup.policy(u).admit_neighbor(announced)) {
          faults.note_isolation(u, announced, slot);
          setup.policy(u).observe_listen_outcome(ListenOutcome::kClear);
          continue;
        }
        const bool first_fake = faults.note_fake_decode(heard.sender, u, slot);
        setup.policy(u).observe_listen_outcome(ListenOutcome::kClear);
        setup.policy(u).observe_reception(announced, first_fake);
        continue;
      }
      if (!setup.policy(u).admit_neighbor(heard.sender)) {
        faults.note_isolation(u, heard.sender, slot);
        setup.policy(u).observe_listen_outcome(ListenOutcome::kClear);
        continue;
      }
      const bool first_time = result.state.record_reception(
          heard.sender, u, static_cast<double>(slot));
      faults.note_reception(heard.sender, u, slot);
      setup.policy(u).observe_listen_outcome(ListenOutcome::kClear);
      setup.policy(u).observe_reception(heard.sender, first_time);
      if (config.on_reception) {
        config.on_reception(slot, heard.sender, u, c);
      }
    }

    if (note_completion(result.state, result.complete, result.completion_slot,
                        slot, config.stop_when_complete)) {
      break;
    }
  }
  result.robustness = faults.assess(
      result.state,
      result.slots_executed == 0 ? 0 : result.slots_executed - 1);
  return result;
}

}  // namespace m2hew::sim
