// Encounter (contact) accounting for time-varying topologies.
//
// Under mobility a directed link (v, u) is not simply "covered or not":
// it flickers as the nodes drift in and out of range. The natural unit is
// the *contact* — a maximal run of consecutive epochs in which the arc
// exists. The contact-tracing questions (ROADMAP open item 4) are then:
// how quickly after a contact opens is the neighbor detected (detection
// latency vs contact duration), what fraction of contacts is missed
// entirely, and how much energy each detected contact costs.
//
// EncounterIndex precomputes the contact intervals once per
// (provider, epoch_length, max_slots) — they are a pure function of the
// topology schedule, shared read-only by every trial. EncounterTracker is
// the cheap per-trial part: fed every reception (via the engines'
// on_reception hook), it latches the first detection slot inside each
// contact and summarizes into an EncounterReport.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology_provider.hpp"
#include "net/types.hpp"

namespace m2hew::sim {

/// One contact: the arc exists during global slots
/// [start_slot, end_slot), end clamped to the trial budget.
struct Contact {
  std::uint64_t start_slot = 0;
  std::uint64_t end_slot = 0;
};

/// Per-trial encounter summary (see EncounterTracker::report).
struct EncounterReport {
  std::uint64_t contacts = 0;  ///< observable contacts in the schedule
  std::uint64_t detected = 0;  ///< contacts with >= 1 reception inside
  /// Per detected contact: slots from contact start to first reception,
  /// and the same latency normalized by the contact's duration (in [0,1)).
  std::vector<double> detection_latency;
  std::vector<double> latency_over_duration;
};

/// Immutable contact schedule of a topology provider: for every directed
/// union arc, the maximal runs of consecutive epochs containing the arc,
/// converted to slot intervals (epoch e spans
/// [e·epoch_slots, (e+1)·epoch_slots)). Contacts starting at or beyond
/// `max_slots` are unobservable and dropped; the rest are clamped.
class EncounterIndex {
 public:
  EncounterIndex(const net::TopologyProvider& provider,
                 std::uint64_t epoch_slots, std::uint64_t max_slots);

  [[nodiscard]] std::size_t contact_count() const noexcept {
    return contacts_.size();
  }
  [[nodiscard]] const std::vector<Contact>& contacts() const noexcept {
    return contacts_;
  }

  /// Index into contacts() of the contact of arc (sender → receiver)
  /// containing `slot`, or npos if no contact of that arc covers it.
  [[nodiscard]] std::size_t contact_at(net::NodeId sender,
                                       net::NodeId receiver,
                                       std::uint64_t slot) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  // Receiver-major arc CSR mirroring the union network's in-link order,
  // then a second CSR from arcs into the flat contact list (each arc's
  // contacts are start-sorted, so contact_at is two binary searches).
  std::vector<std::size_t> arc_off_;        // node_count + 1
  std::vector<net::NodeId> arc_src_;        // arc → sender, ascending per u
  std::vector<std::size_t> contact_off_;    // arc_count + 1
  std::vector<Contact> contacts_;
};

/// Per-trial detection latching. Not thread-safe; one per trial.
class EncounterTracker {
 public:
  explicit EncounterTracker(const EncounterIndex& index);

  /// Feed from the engine's on_reception hook.
  void on_reception(std::uint64_t slot, net::NodeId sender,
                    net::NodeId receiver);

  [[nodiscard]] EncounterReport report() const;

 private:
  const EncounterIndex* index_;
  std::vector<double> first_detection_;  // per contact, -1 = undetected
};

}  // namespace m2hew::sim
