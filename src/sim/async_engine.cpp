#include "sim/async_engine.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <queue>

#include "sim/trial_setup.hpp"
#include "util/check.hpp"

namespace m2hew::sim {

namespace {

constexpr unsigned kMaxSlotsPerFrame = 8;

struct FrameRecord {
  double start = 0.0;
  double end = 0.0;
  Mode mode = Mode::kQuiet;
  net::ChannelId channel = net::kInvalidChannel;
  // Real-time slot boundaries: bounds[0] = start, bounds[slots] = end.
  std::array<double, kMaxSlotsPerFrame + 1> bounds{};
  unsigned slots = 0;
};

struct NodeState {
  std::unique_ptr<Clock> clock;
  double local_next = 0.0;       // local time of the next frame start
  std::uint64_t next_seq = 0;    // sequence number of the next frame
  std::uint64_t base_seq = 0;    // sequence number of history.front()
  std::deque<FrameRecord> history;
  double start_time = 0.0;       // real time the node starts discovery
};

// One live transmit frame in the per-channel interval index: the frame
// record is copied so the index never dangles into a pruned history.
struct TxEntry {
  net::NodeId sender = net::kInvalidNode;
  FrameRecord frame;
};

enum class EventKind : unsigned char { kFrameEnd = 0, kFrameStart = 1 };

struct Event {
  double time = 0.0;
  EventKind kind = EventKind::kFrameStart;
  net::NodeId node = net::kInvalidNode;
  std::uint64_t frame_seq = 0;  // for kFrameEnd: which frame to resolve

  // Min-heap ordering: earliest time first; frame ends before starts at
  // equal times (the tie order is immaterial for correctness — see overlap
  // semantics — but must be deterministic).
  [[nodiscard]] friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.kind != b.kind) return a.kind > b.kind;
    return a.node > b.node;
  }
};

}  // namespace

AsyncEngineResult run_async_engine(const net::Network& network,
                                   const AsyncPolicyFactory& factory,
                                   const AsyncEngineConfig& config) {
  const net::NodeId n = network.node_count();
  M2HEW_CHECK(config.frame_length > 0.0);
  M2HEW_CHECK(config.slots_per_frame >= 1 &&
              config.slots_per_frame <= kMaxSlotsPerFrame);
  validate_engine_common(config, n);

  TrialSetup<AsyncPolicy> setup(network, factory, config.seed);
  FaultState<double> faults(network, setup.seeds(), config.faults);

  // External interference at (time, node, channel): the configured PU
  // schedule OR an active scheduled spectrum fault.
  const bool has_interference =
      static_cast<bool>(config.interference) || faults.has_spectrum();
  const auto jammed = [&](double t, net::NodeId who, net::ChannelId c) {
    return (config.interference && config.interference(t, who, c)) ||
           faults.spectrum_blocked(t, who, c);
  };

  std::vector<NodeState> nodes(n);
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;

  // Per-channel interval index of live transmit frames (indexed reception
  // path): appended in event order — so sorted by frame start — and
  // pruned from the front with the same retention horizon as the
  // per-node histories.
  std::vector<std::deque<TxEntry>> live_tx(
      config.indexed_reception ? network.universe_size() : 0);

  double t_s = 0.0;
  for (net::NodeId u = 0; u < n; ++u) {
    NodeState& node = nodes[u];
    const std::uint64_t clock_seed = setup.seeds().derive(u, 0xC10C);
    if (config.faults.drift_wander.enabled) {
      // Drift-wander fault: per-node piecewise drift within the δ bound,
      // seeded from the standard clock stream. Takes precedence over
      // clock_builder so one knob turns the perturbation on for any
      // scenario.
      const DriftWanderSpec& dw = config.faults.drift_wander;
      node.clock = std::make_unique<PiecewiseDriftClock>(
          PiecewiseDriftClock::Config{dw.max_drift, dw.min_segment,
                                      dw.max_segment, 0.0},
          clock_seed);
    } else {
      node.clock = config.clock_builder
                       ? config.clock_builder(u, clock_seed)
                       : std::make_unique<IdealClock>(0.0);
    }
    M2HEW_CHECK_MSG(node.clock != nullptr, "clock builder returned null");
    node.start_time = start_of(config.starts, u);
    t_s = std::max(t_s, node.start_time);
    node.local_next = node.clock->local_at_real(node.start_time);
    queue.push({node.start_time, EventKind::kFrameStart, u, 0});
  }

  AsyncEngineResult result{false,
                           0.0,
                           t_s,
                           std::vector<std::uint64_t>(n, 0),
                           std::vector<RadioActivity>(n),
                           {},
                           DiscoveryState(network)};

  // History retention: a frame overlapping a just-ended listening frame g
  // started no earlier than g.start minus one (maximal) frame length. Track
  // the longest real frame seen and keep a few multiples of it
  // (kHistoryHorizonFactor, shared with the live-transmit index).
  double max_frame_real_len = 0.0;
  double last_covered_time = 0.0;
  double end_time = 0.0;  // time of the last processed event (for assess)

  const double slot_local_len =
      config.frame_length / static_cast<double>(config.slots_per_frame);

  // Time-varying topology: a listening frame resolves against the link set
  // of the epoch its frame STARTS in (frames are not split at epoch
  // boundaries — see docs/MODEL.md "Time-varying topology & mobility").
  const net::TopologyProvider* provider =
      topology_provider_of(config, network);

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    if (ev.time > config.max_real_time) break;
    end_time = ev.time;

    NodeState& node = nodes[ev.node];

    if (ev.kind == EventKind::kFrameStart) {
      if (node.next_seq >= config.max_frames_per_node) continue;

      FrameRecord frame;
      frame.start = ev.time;
      frame.slots = config.slots_per_frame;
      frame.bounds[0] = ev.time;
      for (unsigned j = 1; j <= config.slots_per_frame; ++j) {
        frame.bounds[j] = node.clock->real_at_local(
            node.local_next + slot_local_len * static_cast<double>(j));
      }
      frame.end = frame.bounds[config.slots_per_frame];
      M2HEW_CHECK_MSG(frame.end > frame.start,
                      "clock must be strictly increasing");
      max_frame_real_len =
          std::max(max_frame_real_len, frame.end - frame.start);

      // Churn is sampled at frame starts: a node that is down when its
      // next frame would begin keeps its radio off for the whole frame —
      // the policy is not polled (its frame indices are node-local and
      // resume after recovery), the frame stays quiet in the history so
      // the seq/timing bookkeeping is undisturbed, and neither activity
      // nor frames_started are counted.
      const bool down = faults.down_at(ev.node, ev.time);
      if (!down) {
        // Adversary roles replace the node's policy at frame granularity:
        // a jammer transmits noise every frame on its fixed channel (no
        // draws), a Byzantine announcer draws channel + coin per frame
        // from the node's policy stream — the frame-axis mirror of the
        // slotted engines' per-slot intercept.
        switch (faults.role(ev.node)) {
          case AdversaryRole::kJammer:
            frame.mode = Mode::kTransmit;
            frame.channel = faults.jam_channel(ev.node);
            break;
          case AdversaryRole::kByzantine: {
            const SlotAction action =
                faults.byzantine_slot_action(ev.node, setup.rng(ev.node));
            frame.mode = action.mode;
            frame.channel = action.channel;
            break;
          }
          default: {
            if (faults.consume_reset(ev.node, ev.time)) {
              setup.reset_policy(ev.node);
            }
            const FrameAction action = setup.policy(ev.node).next_frame(
                setup.rng(ev.node));
            frame.mode = action.mode;
            frame.channel = action.channel;
            if (action.mode != Mode::kQuiet) {
              M2HEW_DCHECK(
                  network.available(ev.node).contains(action.channel));
            }
            break;
          }
        }
        count_mode(result.activity[ev.node], frame.mode);
      }

      // Prune history that can no longer overlap any live listening frame.
      const double horizon =
          ev.time - kHistoryHorizonFactor * max_frame_real_len;
      while (!node.history.empty() && node.history.front().end < horizon) {
        node.history.pop_front();
        ++node.base_seq;
      }

      const std::uint64_t seq = node.next_seq++;
      node.history.push_back(frame);
      if (!down) ++result.frames_started[ev.node];
      node.local_next += config.frame_length;

      // Keep the transmit-frame index in step: insert the new live frame
      // (a copy, so pruning a node's history never dangles the index) and
      // drop entries that no retained listening frame can overlap.
      if (config.indexed_reception && frame.mode == Mode::kTransmit) {
        std::deque<TxEntry>& live = live_tx[frame.channel];
        while (!live.empty() && live.front().frame.end < horizon) {
          live.pop_front();
        }
        live.push_back({ev.node, frame});
      }

      if (frame.mode == Mode::kReceive) {
        queue.push({frame.end, EventKind::kFrameEnd, ev.node, seq});
      }
      queue.push({frame.end, EventKind::kFrameStart, ev.node, 0});
      continue;
    }

    // Frame end of a listening frame: resolve receptions.
    M2HEW_CHECK(ev.frame_seq >= node.base_seq);
    const FrameRecord& g =
        node.history[static_cast<std::size_t>(ev.frame_seq - node.base_seq)];
    const net::ChannelId c = g.channel;
    const net::NodeId u = ev.node;
    const net::Network& adj =
        provider != nullptr
            ? provider->epoch(epoch_at(*provider, config.epoch_length, g.start))
            : network;

    // Collect all in-neighbor transmissions on c that overlap g and whose
    // arc to u actually carries c (a transmission that does not propagate
    // to u neither delivers nor interferes). Each entry is one
    // transmitting *frame* (a contiguous burst of slots).
    struct Burst {
      net::NodeId sender;
      const FrameRecord* frame;
    };
    std::vector<Burst> bursts;
    if (config.indexed_reception) {
      // Touch only live transmissions on c: prune the channel's index to
      // the retention horizon, filter by overlap and the flat in-neighbor
      // adjacency, then sort into the reference path's (sender id, frame
      // start) order so callbacks and loss_rng draws are bit-identical.
      std::deque<TxEntry>& live = live_tx[c];
      const double horizon =
          ev.time - kHistoryHorizonFactor * max_frame_real_len;
      while (!live.empty() && live.front().frame.end < horizon) {
        live.pop_front();
      }
      for (const TxEntry& entry : live) {
        if (entry.sender == u) continue;
        if (entry.frame.start >= g.end || entry.frame.end <= g.start) {
          continue;
        }
        const net::ChannelSet* span = adj.in_span(entry.sender, u);
        if (span == nullptr || !span->contains(c)) continue;
        bursts.push_back({entry.sender, &entry.frame});
      }
      std::sort(bursts.begin(), bursts.end(),
                [](const Burst& a, const Burst& b) {
                  return a.sender != b.sender
                             ? a.sender < b.sender
                             : a.frame->start < b.frame->start;
                });
    } else {
      for (const net::Network::InLink& in : adj.in_links(u)) {
        if (!in.span->contains(c)) continue;
        for (const FrameRecord& f : nodes[in.from].history) {
          if (f.mode != Mode::kTransmit || f.channel != c) continue;
          if (f.start < g.end && f.end > g.start) {
            bursts.push_back({in.from, &f});
          }
        }
      }
    }

    // Whether sender `who` actually emits during slot j of frame f: under
    // dynamic interference, a jammed transmitter vacates that slot. The
    // PU field is sampled at the slot midpoint — the same instant the
    // listener side samples below — so both ends of a link always agree
    // about one interference burst.
    auto slot_transmitted = [&](net::NodeId who, const FrameRecord& f,
                                unsigned j) {
      if (!has_interference) return true;
      return !jammed((f.bounds[j] + f.bounds[j + 1]) / 2.0, who, f.channel);
    };
    // Whether any non-suppressed slot of `other` overlaps (s0, s1).
    auto burst_interferes = [&](const Burst& other, double s0, double s1) {
      const FrameRecord& h = *other.frame;
      if (h.start >= s1 || h.end <= s0) return false;
      if (!has_interference) return true;  // contiguous burst
      for (unsigned j = 0; j < h.slots; ++j) {
        if (h.bounds[j] < s1 && h.bounds[j + 1] > s0 &&
            slot_transmitted(other.sender, h, j)) {
          return true;
        }
      }
      return false;
    };

    // For each transmitting neighbor frame, test each of its slots for
    // clear reception: slot fully inside g, no other sender's burst
    // overlapping the slot.
    for (const Burst& burst : bursts) {
      const FrameRecord& f = *burst.frame;
      for (unsigned j = 0; j < f.slots; ++j) {
        const double s0 = f.bounds[j];
        const double s1 = f.bounds[j + 1];
        if (s0 < g.start || s1 > g.end) continue;
        if (!slot_transmitted(burst.sender, f, j)) continue;
        if (has_interference && jammed((s0 + s1) / 2.0, u, c)) {
          continue;  // PU noise at the listener drowns this slot
        }
        bool interfered = false;
        for (const Burst& other : bursts) {
          if (other.sender == burst.sender) continue;
          if (burst_interferes(other, s0, s1)) {
            interfered = true;
            break;
          }
        }
        if (interfered) continue;
        // Adversarial dispositions, mirroring the slot engine. A jammer's
        // burst is noise (it still interferes with other senders above,
        // but never decodes); a non-responder's message never decodes at
        // its victims. Neither consumes a loss draw.
        if (faults.adversaries()) {
          if (faults.jam_noise(burst.sender)) break;
          if (faults.suppressed(burst.sender, u)) break;
        }
        if (faults.message_lost(burst.sender, u, setup.loss_rng(),
                                config.loss_probability)) {
          continue;
        }
        // A Byzantine message decodes but announces a fake ID — fed to
        // the fault-layer table accounting and the policy, never the
        // discovery state.
        if (faults.fake_source(burst.sender)) {
          const net::NodeId announced = faults.fake_id(burst.sender);
          if (!setup.policy(u).admit_neighbor(announced)) {
            faults.note_isolation(u, announced, s1);
          } else {
            const bool first_fake =
                faults.note_fake_decode(burst.sender, u, s1);
            setup.policy(u).observe_reception(announced, first_fake);
          }
          break;
        }
        if (!setup.policy(u).admit_neighbor(burst.sender)) {
          faults.note_isolation(u, burst.sender, s1);
          break;
        }
        const bool first_time =
            result.state.record_reception(burst.sender, u, s1);
        faults.note_reception(burst.sender, u, s1);
        if (first_time) {
          last_covered_time = std::max(last_covered_time, s1);
        }
        setup.policy(u).observe_reception(burst.sender, first_time);
        break;  // one clear slot from this sender suffices
      }
    }

    if (note_completion(result.state, result.complete, result.completion_time,
                        last_covered_time, config.stop_when_complete)) {
      break;
    }
  }

  result.robustness = faults.assess(result.state, end_time);

  if (result.complete) {
    // Count, per node, full frames contained in [T_s, completion_time]
    // (Theorem 9's unit). Frame timing is deterministic given the clock, so
    // this is reconstructed exactly from frame indices.
    result.full_frames_since_ts.assign(n, 0);
    for (net::NodeId u = 0; u < n; ++u) {
      NodeState& node = nodes[u];
      const double local0 = node.clock->local_at_real(node.start_time);
      auto frame_start = [&](std::uint64_t k) {
        return node.clock->real_at_local(
            local0 + config.frame_length * static_cast<double>(k));
      };
      // Find the first frame starting at/after T_s (binary search on the
      // monotone frame-start sequence).
      std::uint64_t lo = 0;
      std::uint64_t hi = node.next_seq;
      while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (frame_start(mid) >= result.t_s) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      // Count frames k >= lo with end (= start of k+1) <= completion_time.
      std::uint64_t count = 0;
      for (std::uint64_t k = lo; k < node.next_seq; ++k) {
        if (frame_start(k + 1) <= result.completion_time) {
          ++count;
        } else {
          break;
        }
      }
      result.full_frames_since_ts[u] = count;
    }
  }

  return result;
}

}  // namespace m2hew::sim
