// Per-node radio activity accounting. The neighbor-discovery literature the
// paper builds on (birthday protocols [1], asynchronous wakeup [12]) cares
// about energy as much as latency; the engines tally how each node's radio
// spent its time so benches can compare algorithms on energy-to-discovery.
#pragma once

#include <cstdint>
#include <vector>

namespace m2hew::sim {

/// Counts of slots (synchronous engine) or frames (asynchronous engine) a
/// node spent in each radio mode.
struct RadioActivity {
  std::uint64_t transmit = 0;
  std::uint64_t receive = 0;
  std::uint64_t quiet = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return transmit + receive + quiet;
  }

  /// Energy in arbitrary units given per-mode costs. Defaults follow the
  /// usual radio ordering: transmitting slightly above receiving, idle
  /// (radio off) far below both.
  [[nodiscard]] double energy(double tx_cost = 1.0, double rx_cost = 0.8,
                              double quiet_cost = 0.05) const noexcept {
    return tx_cost * static_cast<double>(transmit) +
           rx_cost * static_cast<double>(receive) +
           quiet_cost * static_cast<double>(quiet);
  }
};

/// Sum of all nodes' activity.
[[nodiscard]] inline RadioActivity total_activity(
    const std::vector<RadioActivity>& per_node) noexcept {
  RadioActivity sum;
  for (const RadioActivity& a : per_node) {
    sum.transmit += a.transmit;
    sum.receive += a.receive;
    sum.quiet += a.quiet;
  }
  return sum;
}

}  // namespace m2hew::sim
