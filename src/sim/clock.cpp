#include "sim/clock.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace m2hew::sim {

ConstantDriftClock::ConstantDriftClock(double drift, double offset)
    : drift_(drift), offset_(offset) {
  M2HEW_CHECK_MSG(drift > -1.0 && drift < 1.0,
                  "drift must keep the clock strictly increasing");
}

double ConstantDriftClock::local_at_real(double t) {
  return offset_ + (1.0 + drift_) * t;
}

double ConstantDriftClock::real_at_local(double local) {
  return (local - offset_) / (1.0 + drift_);
}

PiecewiseDriftClock::PiecewiseDriftClock(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  M2HEW_CHECK(config_.max_drift >= 0.0 && config_.max_drift < 1.0);
  M2HEW_CHECK(config_.min_segment > 0.0 &&
              config_.min_segment <= config_.max_segment);
  Segment first;
  first.real_start = 0.0;
  first.local_start = config_.offset;
  first.rate = 1.0 + rng_.uniform_double(-config_.max_drift,
                                         config_.max_drift);
  first.real_end =
      rng_.uniform_double(config_.min_segment, config_.max_segment);
  first.local_end =
      first.local_start + first.rate * (first.real_end - first.real_start);
  segments_.push_back(first);
}

void PiecewiseDriftClock::append_segment() {
  const Segment& prev = segments_.back();
  Segment next;
  next.real_start = prev.real_end;
  next.local_start = prev.local_end;
  next.rate =
      1.0 + rng_.uniform_double(-config_.max_drift, config_.max_drift);
  next.real_end = next.real_start + rng_.uniform_double(config_.min_segment,
                                                        config_.max_segment);
  next.local_end =
      next.local_start + next.rate * (next.real_end - next.real_start);
  segments_.push_back(next);
}

void PiecewiseDriftClock::extend_to_real(double t) {
  while (segments_.back().real_end < t) append_segment();
}

void PiecewiseDriftClock::extend_to_local(double local) {
  while (segments_.back().local_end < local) append_segment();
}

double PiecewiseDriftClock::local_at_real(double t) {
  M2HEW_CHECK_MSG(t >= 0.0, "clock queried before real time 0");
  extend_to_real(t);
  // Binary search for the segment containing t.
  const auto it = std::partition_point(
      segments_.begin(), segments_.end(),
      [t](const Segment& s) { return s.real_end < t; });
  const Segment& s = *it;
  return s.local_start + s.rate * (t - s.real_start);
}

double PiecewiseDriftClock::real_at_local(double local) {
  M2HEW_CHECK_MSG(local >= segments_.front().local_start,
                  "local time before clock start");
  extend_to_local(local);
  const auto it = std::partition_point(
      segments_.begin(), segments_.end(),
      [local](const Segment& s) { return s.local_end < local; });
  const Segment& s = *it;
  return s.real_start + (local - s.local_start) / s.rate;
}

}  // namespace m2hew::sim
