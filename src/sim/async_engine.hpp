// Asynchronous continuous-time simulator (§IV).
//
// Each node divides its *local* time into frames of length L, each split
// into `slots_per_frame` equal local slots (the paper uses 3). Local time
// is projected onto common real time through a per-node drifting clock, so
// frames of different nodes are misaligned, of different real-time lengths,
// and drift against each other — exactly the geometry of Fig. 2.
//
// Reception semantics implement the paper's coverage definition: a node u
// listening on channel c for the whole of its frame g receives a clear
// message from neighbor v iff some transmitted slot of v on c lies
// completely within g and no other neighbor of u transmits on c during any
// part of that slot. A transmitting node sends the same message in every
// slot of its frame.
//
// Per-trial seeding and the common knobs (seed, loss, interference,
// indexed_reception, stop_when_complete, starts) come from the shared
// medium core (sim/engine_common.hpp, sim/trial_setup.hpp); the frame
// overlap/burst resolution stays engine-specific because the async medium
// is continuous, not slotted.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/clock.hpp"
#include "sim/discovery_state.hpp"
#include "sim/energy.hpp"
#include "sim/engine_common.hpp"
#include "sim/policy.hpp"

namespace m2hew::sim {

/// Engine-specific knobs on top of the shared core (see EngineCommon).
/// `starts` entries are real times; `interference` is queried in *real
/// time*. Both sides of a link sample the same instant — the slot's
/// midpoint: a transmitted slot is suppressed when the transmitter is
/// jammed at its midpoint, and a reception fails when the receiver is
/// jammed at the candidate slot's midpoint — so a burst can never be seen
/// by one end of a link and missed by the other. PU activity is assumed
/// roughly constant over one slot (periods ≫ L/3). The async
/// `indexed_reception` index is a per-channel interval index of live
/// transmit frames, maintained incrementally as frames start and pruned
/// with the shared retention horizon (kHistoryHorizonFactor), so
/// resolving a listening frame touches only actual transmissions on its
/// channel; the reference path rescans every in-neighbor's entire
/// retained frame history. Both paths are bit-identical by contract:
/// candidate transmit frames are processed in (sender id, frame start)
/// order, so policy callbacks, loss-RNG draws and recorded times agree.
struct AsyncEngineConfig : AsyncEngineCommon {
  /// Frame length L in local clock units.
  double frame_length = 1.0;
  /// Slots per frame; the paper's Algorithm 4 uses 3 (Lemma 7 depends on
  /// it). Exposed for the slot-count ablation in bench E5.
  unsigned slots_per_frame = 3;
  /// Hard budgets.
  double max_real_time = 1e12;
  std::uint64_t max_frames_per_node = 10'000'000;
  /// Builds the clock for a node; default (null) = ideal clocks with zero
  /// offset. Seeded deterministically per node by the engine.
  std::function<std::unique_ptr<Clock>(net::NodeId, std::uint64_t)>
      clock_builder;
};

struct AsyncEngineResult {
  bool complete = false;
  /// Real time at which the last link was first covered.
  double completion_time = 0.0;
  /// T_s: the latest node start time (all nodes active from here on).
  double t_s = 0.0;
  /// Frames started per node over the whole run.
  std::vector<std::uint64_t> frames_started;
  /// Per-node frame counts by radio mode over the whole run.
  std::vector<RadioActivity> activity;
  /// Per-node count of *full* frames that both started at/after T_s and
  /// ended at/before the completion time (the unit of Theorem 9's bound).
  /// Empty unless complete.
  std::vector<std::uint64_t> full_frames_since_ts;
  DiscoveryState state;
  /// Fault-robustness metrics; RobustnessReport::enabled is false when the
  /// config carried no fault plan.
  RobustnessReport robustness;
};

[[nodiscard]] AsyncEngineResult run_async_engine(
    const net::Network& network, const AsyncPolicyFactory& factory,
    const AsyncEngineConfig& config);

}  // namespace m2hew::sim
