// Asynchronous continuous-time simulator (§IV).
//
// Each node divides its *local* time into frames of length L, each split
// into `slots_per_frame` equal local slots (the paper uses 3). Local time
// is projected onto common real time through a per-node drifting clock, so
// frames of different nodes are misaligned, of different real-time lengths,
// and drift against each other — exactly the geometry of Fig. 2.
//
// Reception semantics implement the paper's coverage definition: a node u
// listening on channel c for the whole of its frame g receives a clear
// message from neighbor v iff some transmitted slot of v on c lies
// completely within g and no other neighbor of u transmits on c during any
// part of that slot. A transmitting node sends the same message in every
// slot of its frame.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/clock.hpp"
#include "sim/discovery_state.hpp"
#include "sim/energy.hpp"
#include "sim/policy.hpp"

namespace m2hew::sim {

struct AsyncEngineConfig {
  /// Frame length L in local clock units.
  double frame_length = 1.0;
  /// Slots per frame; the paper's Algorithm 4 uses 3 (Lemma 7 depends on
  /// it). Exposed for the slot-count ablation in bench E5.
  unsigned slots_per_frame = 3;
  /// Real time at which each node starts discovery (empty = all at 0).
  std::vector<double> start_times;
  /// Hard budgets.
  double max_real_time = 1e12;
  std::uint64_t max_frames_per_node = 10'000'000;
  /// Probability that an otherwise-clear slot reception is lost.
  double loss_probability = 0.0;
  /// Optional dynamic primary-user interference, queried in *real time*:
  /// returns true iff a PU is active at (time, node, channel). Both sides
  /// of a link sample the same instant — the slot's midpoint: a
  /// transmitted slot is suppressed when the transmitter is jammed at its
  /// midpoint, and a reception fails when the receiver is jammed at the
  /// candidate slot's midpoint — so a burst can never be seen by one end
  /// of a link and missed by the other. PU activity is assumed roughly
  /// constant over one slot (periods ≫ L/3).
  std::function<bool(double, net::NodeId, net::ChannelId)> interference;
  std::uint64_t seed = 1;
  /// Reception-resolution strategy. true (default): a per-channel
  /// interval index of live transmit frames, maintained incrementally as
  /// frames start and pruned with the retention horizon, so resolving a
  /// listening frame touches only actual transmissions on its channel.
  /// false: the original rescan of every in-neighbor's entire retained
  /// frame history, kept as the naive reference implementation for the
  /// equivalence property test. Both paths are bit-identical by contract:
  /// candidate transmit frames are processed in (sender id, frame start)
  /// order, so policy callbacks, loss_rng draws and recorded times agree.
  bool indexed_reception = true;
  bool stop_when_complete = true;
  /// Builds the clock for a node; default (null) = ideal clocks with zero
  /// offset. Seeded deterministically per node by the engine.
  std::function<std::unique_ptr<Clock>(net::NodeId, std::uint64_t)>
      clock_builder;
};

struct AsyncEngineResult {
  bool complete = false;
  /// Real time at which the last link was first covered.
  double completion_time = 0.0;
  /// T_s: the latest node start time (all nodes active from here on).
  double t_s = 0.0;
  /// Frames started per node over the whole run.
  std::vector<std::uint64_t> frames_started;
  /// Per-node frame counts by radio mode over the whole run.
  std::vector<RadioActivity> activity;
  /// Per-node count of *full* frames that both started at/after T_s and
  /// ended at/before the completion time (the unit of Theorem 9's bound).
  /// Empty unless complete.
  std::vector<std::uint64_t> full_frames_since_ts;
  DiscoveryState state;
};

[[nodiscard]] AsyncEngineResult run_async_engine(
    const net::Network& network, const AsyncPolicyFactory& factory,
    const AsyncEngineConfig& config);

}  // namespace m2hew::sim
