// Drifting-clock models for the asynchronous system of §IV.
//
// A clock maps real time t to a local reading C(t). Per eq. (1) of the
// paper, the drift rate dC/dt − 1 is bounded in magnitude by δ, may differ
// across nodes, and may change over time in both magnitude and sign.
// Offsets between clocks are arbitrary. Nodes schedule frame boundaries at
// local times; the simulator inverts the clock to place them in real time.
//
// All models here are piecewise linear, strictly increasing, and satisfy
//   (1−δ)·Δt ≤ C(t+Δt) − C(t) ≤ (1+δ)·Δt   for all t, Δt ≥ 0.
#pragma once

#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace m2hew::sim {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Local reading at real time t (t >= 0).
  [[nodiscard]] virtual double local_at_real(double t) = 0;

  /// Real time at which the local reading equals `local`.
  /// Requires local >= local_at_real(0).
  [[nodiscard]] virtual double real_at_local(double local) = 0;
};

/// C(t) = offset + t. Drift rate 0.
class IdealClock final : public Clock {
 public:
  explicit IdealClock(double offset = 0.0) noexcept : offset_(offset) {}
  [[nodiscard]] double local_at_real(double t) override {
    return offset_ + t;
  }
  [[nodiscard]] double real_at_local(double local) override {
    return local - offset_;
  }

 private:
  double offset_;
};

/// C(t) = offset + (1 + drift)·t with constant drift in (−1, 1).
class ConstantDriftClock final : public Clock {
 public:
  ConstantDriftClock(double drift, double offset);
  [[nodiscard]] double local_at_real(double t) override;
  [[nodiscard]] double real_at_local(double local) override;
  [[nodiscard]] double drift() const noexcept { return drift_; }

 private:
  double drift_;
  double offset_;
};

/// Piecewise-constant drift: the rate is redrawn uniformly from
/// [−max_drift, +max_drift] at random real-time breakpoints whose spacing is
/// uniform in [min_segment, max_segment]. Segments are generated lazily and
/// deterministically from the seed, so any query order yields the same
/// clock function.
class PiecewiseDriftClock final : public Clock {
 public:
  struct Config {
    double max_drift = 0.0;     ///< δ bound on |drift rate|
    double min_segment = 50.0;  ///< min real-time length of a drift segment
    double max_segment = 200.0;
    double offset = 0.0;  ///< C(0)
  };

  PiecewiseDriftClock(Config config, std::uint64_t seed);

  [[nodiscard]] double local_at_real(double t) override;
  [[nodiscard]] double real_at_local(double local) override;

 private:
  struct Segment {
    double real_start = 0.0;
    double local_start = 0.0;
    double rate = 1.0;  ///< dC/dt within the segment (= 1 + drift)
    double real_end = 0.0;
    double local_end = 0.0;
  };

  void extend_to_real(double t);
  void extend_to_local(double local);
  void append_segment();

  Config config_;
  util::Rng rng_;
  std::vector<Segment> segments_;
};

/// Factory signature: produces the clock for node `node` (one per node per
/// trial, seeded deterministically by the caller).
using ClockFactory =
    std::unique_ptr<Clock> (*)(std::uint64_t seed, double max_drift);

}  // namespace m2hew::sim
