// Non-virtual policy-as-data representation consumed by the SoA slot
// kernel (sim/soa_kernel.hpp).
//
// The virtual SyncPolicy objects carry two costs at large N: a heap
// allocation per node and a virtual dispatch per node per slot. For the
// paper's synchronous algorithms the per-slot decision is a pure function
// of (available-set size, position in stage, degree estimate), so a trial
// can instead precompute every transmit probability into a flat matrix and
// step plain per-node counters. This header defines that data layout; the
// table is *built* in src/core (core/policy_spec.hpp), which owns the
// probability formulas — sim never computes a probability itself, it only
// looks them up, so the kernel cannot drift from the oracle policies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/types.hpp"
#include "util/check.hpp"

namespace m2hew::sim {

/// ⌈log₂ d⌉ clamped to ≥ 1 — the stage-length rule. Injected as a plain
/// function pointer by the table builder in core (the formula's one
/// definition, core::stage_length) so the escalating kernel can size new
/// stages without sim depending on core.
using StageLengthFn = unsigned (*)(std::size_t);

/// How a node picks its slot channel. The paper's algorithms draw one
/// uniform channel from A(u); the consistent-hop competitor follows a
/// precomputed deterministic per-node map over a global hop sequence
/// (w_t = local_t mod hop_period) and draws nothing for the channel.
enum class SoaChannelLaw {
  kUniformRandom,   ///< one rng.uniform(|A(u)|) draw per active slot
  kConsistentHop,   ///< hop_map lookup, zero channel draws
};

/// One trial-independent description of a synchronous policy family,
/// shared by every node (per-node variation enters only through the
/// available-set size / per-node constant probability).
struct SoaPolicyTable {
  /// Largest 1-based slot-in-stage index any run can reach:
  /// stage_length(d) = bit_width(d−1) ≤ 64 for any 64-bit estimate.
  static constexpr unsigned kMaxStageSlot = 64;
  /// Escalating estimates saturate here, mirroring Algorithm2Policy.
  static constexpr std::size_t kEstimateCap = std::size_t{1} << 62;

  /// Staged (Algorithm 1/2) vs constant-probability (Algorithm 3) law.
  bool staged = true;
  /// Staged only: the degree estimate grows between stages (Algorithm 2).
  bool escalating = false;
  /// Escalating only: d ← 2d instead of d ← d+1 (the ablation schedule).
  bool escalate_double = false;
  /// Escalating: the estimate every node starts (and resets) at.
  std::size_t initial_estimate = 2;
  /// Staged: slots per stage at trial start, stage_length(estimate).
  unsigned initial_stage_slots = 1;
  /// Escalating only: recomputes the stage length after an estimate bump.
  StageLengthFn stage_length = nullptr;

  /// Staged transmit probabilities p[a][i] = the Algorithm 1 law for
  /// available-set size a (0..max_available) and 1-based slot-in-stage i
  /// (1..kMaxStageSlot), stored row-major with stride kMaxStageSlot + 1.
  /// Filled with the same core function the oracle policies call, so the
  /// doubles are bit-identical.
  std::size_t max_available = 0;
  std::vector<double> p_staged;

  /// Constant law: per-node transmit probability, indexed by node id.
  std::vector<double> p_constant;

  /// Channel selection law; kConsistentHop replaces the uniform draw with
  /// a lookup into `hop_map` at (local-slot mod hop_period), so the
  /// kernel and the oracle policy both make exactly one RNG draw (the
  /// transmit coin) per active slot.
  SoaChannelLaw channel_law = SoaChannelLaw::kUniformRandom;
  /// Consistent hop only: global sequence period (the universe size).
  std::size_t hop_period = 0;
  /// Consistent hop only: node-major map, stride hop_period — entry
  /// [u * hop_period + w] is node u's channel when the global sequence is
  /// at w. Built in core so the remap rule has one definition.
  std::vector<net::ChannelId> hop_map;

  [[nodiscard]] double staged_probability(std::size_t available,
                                          unsigned slot_in_stage) const {
    M2HEW_DCHECK(available <= max_available);
    M2HEW_DCHECK(slot_in_stage >= 1 && slot_in_stage <= kMaxStageSlot);
    return p_staged[available * (kMaxStageSlot + 1) + slot_in_stage];
  }

  /// Structural validity (not bit-exactness — the equivalence suite pins
  /// that); kernels check this once per trial.
  [[nodiscard]] bool valid(std::size_t node_count) const {
    if (channel_law == SoaChannelLaw::kConsistentHop &&
        (hop_period == 0 || hop_map.size() != node_count * hop_period)) {
      return false;
    }
    if (staged) {
      if (p_staged.size() !=
          (max_available + 1) * (kMaxStageSlot + 1)) {
        return false;
      }
      if (escalating && stage_length == nullptr) return false;
      return initial_stage_slots >= 1;
    }
    return p_constant.size() == node_count;
  }
};

}  // namespace m2hew::sim
