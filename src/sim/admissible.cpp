#include "sim/admissible.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace m2hew::sim {

std::vector<Frame> build_frames(Clock& clock, double start_time,
                                double frame_length, std::size_t count) {
  M2HEW_CHECK(frame_length > 0.0);
  std::vector<Frame> frames;
  frames.reserve(count);
  const double local0 = clock.local_at_real(start_time);
  for (std::size_t k = 0; k < count; ++k) {
    Frame frame;
    for (unsigned j = 0; j <= 3; ++j) {
      frame.slot_bounds[j] = clock.real_at_local(
          local0 + frame_length * static_cast<double>(k) +
          frame_length / 3.0 * static_cast<double>(j));
    }
    frame.start = frame.slot_bounds[0];
    frame.end = frame.slot_bounds[3];
    frames.push_back(frame);
  }
  return frames;
}

bool pair_aligned(const Frame& f, const Frame& g) {
  for (unsigned j = 0; j < 3; ++j) {
    if (f.slot_bounds[j] >= g.start && f.slot_bounds[j + 1] <= g.end) {
      return true;
    }
  }
  return false;
}

bool frames_overlap(const Frame& a, const Frame& b) {
  return a.start < b.end && b.start < a.end;
}

namespace {

/// Index of the first frame starting at or after `t`; frames.size() if
/// none.
[[nodiscard]] std::size_t first_full_frame_after(
    const std::vector<Frame>& frames, double t) {
  const auto it = std::partition_point(
      frames.begin(), frames.end(),
      [t](const Frame& frame) { return frame.start < t; });
  return static_cast<std::size_t>(it - frames.begin());
}

}  // namespace

std::vector<FramePairRef> construct_admissible_sequence(
    const std::vector<Frame>& v_frames, const std::vector<Frame>& u_frames) {
  // Step 1 (γ): repeatedly apply Lemma 7 — after instant T, among the
  // first two full frames of each node, some pair is aligned.
  std::vector<FramePairRef> gamma;
  double t = 0.0;
  if (!v_frames.empty() && !u_frames.empty()) {
    t = std::min(v_frames.front().start, u_frames.front().start);
  }
  while (true) {
    const std::size_t fv = first_full_frame_after(v_frames, t);
    const std::size_t gu = first_full_frame_after(u_frames, t);
    if (fv + 1 >= v_frames.size() || gu + 1 >= u_frames.size()) break;
    bool found = false;
    FramePairRef pick;
    for (std::size_t a = 0; a < 2 && !found; ++a) {
      for (std::size_t b = 0; b < 2 && !found; ++b) {
        if (pair_aligned(v_frames[fv + a], u_frames[gu + b])) {
          pick = {fv + a, gu + b};
          found = true;
        }
      }
    }
    if (!found) break;  // only possible when Assumption 1 is violated
    gamma.push_back(pick);
    // T_k = the earlier of the two end times (proof of Lemma 8).
    t = std::min(v_frames[pick.f_index].end, u_frames[pick.g_index].end);
  }

  // Step 2 (σ): keep every third pair of γ, starting with the first.
  std::vector<FramePairRef> sigma;
  for (std::size_t k = 0; k < gamma.size(); k += 3) {
    sigma.push_back(gamma[k]);
  }
  return sigma;
}

bool verify_admissible_sequence(
    const std::vector<FramePairRef>& sequence,
    const std::vector<Frame>& v_frames, const std::vector<Frame>& u_frames,
    const std::vector<std::vector<Frame>>& all_timelines) {
  for (std::size_t k = 0; k < sequence.size(); ++k) {
    const FramePairRef& pair = sequence[k];
    if (pair.f_index >= v_frames.size() || pair.g_index >= u_frames.size()) {
      return false;
    }
    // Property 3: aligned.
    if (!pair_aligned(v_frames[pair.f_index], u_frames[pair.g_index])) {
      return false;
    }
    if (k == 0) continue;
    const FramePairRef& prev = sequence[k - 1];
    // Property 2: strict precedence on both sides.
    if (v_frames[prev.f_index].start >= v_frames[pair.f_index].start ||
        u_frames[prev.g_index].start >= u_frames[pair.g_index].start) {
      return false;
    }
    // Property 4: overlapAll of consecutive receiver frames disjoint — no
    // frame of any timeline overlaps both g_{k-1} and g_k.
    const Frame& g_prev = u_frames[prev.g_index];
    const Frame& g_cur = u_frames[pair.g_index];
    for (const std::vector<Frame>& timeline : all_timelines) {
      for (const Frame& h : timeline) {
        if (h.start >= std::max(g_prev.end, g_cur.end)) break;
        if (frames_overlap(h, g_prev) && frames_overlap(h, g_cur)) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace m2hew::sim
