// The frame-pair machinery of §IV: Definitions 1–4 (aligned pair, overlap,
// precedence, admissible sequence) and the constructive proof of Lemma 8
// implemented as code.
//
// Lemma 8: for any two nodes with at least M full frames each, the
// execution contains a sequence of ≥ M/6 frame pairs that is *admissible*
// — aligned, strictly advancing on both sides, and with disjoint
// overlap-neighborhoods so the coverage events of distinct pairs are
// independent (Lemma 6). The construction selects aligned pairs greedily
// via Lemma 7 and keeps every third one.
//
// This module exists so the proof's combinatorial core can be tested and
// measured directly (bench E19) rather than only indirectly through
// Algorithm 4's completion times.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "sim/clock.hpp"

namespace m2hew::sim {

/// One full frame of a node, in real time, with its (3-)slot boundaries.
struct Frame {
  double start = 0.0;
  double end = 0.0;
  std::array<double, 4> slot_bounds{};  // [start, s1, s2, end]
};

/// The first `count` full frames of a node that starts discovery at real
/// time `start_time`, projected through its clock (frame length L local).
[[nodiscard]] std::vector<Frame> build_frames(Clock& clock, double start_time,
                                              double frame_length,
                                              std::size_t count);

/// Definition 1: ⟨f, g⟩ is aligned iff some slot of f lies completely
/// within g.
[[nodiscard]] bool pair_aligned(const Frame& f, const Frame& g);

/// True iff the two frames overlap in real time (positively).
[[nodiscard]] bool frames_overlap(const Frame& a, const Frame& b);

/// A selected pair: indices into the two nodes' frame vectors (f from the
/// transmitter v, g from the receiver u).
struct FramePairRef {
  std::size_t f_index = 0;
  std::size_t g_index = 0;
};

/// The Lemma 8 construction: greedily selects aligned pairs (Lemma 7
/// guarantees one among the first two full frames of each node after any
/// instant), then keeps every third (the proof's γ → σ step). Requires
/// clocks satisfying Assumption 1 (δ ≤ 1/7); with wilder clocks the
/// aligned-pair search can fail, in which case the sequence ends early.
[[nodiscard]] std::vector<FramePairRef> construct_admissible_sequence(
    const std::vector<Frame>& v_frames, const std::vector<Frame>& u_frames);

/// Checks Definition 4 against the construction output: pairs aligned,
/// strictly preceding on both sides, and consecutive receiver frames'
/// overlap-neighborhoods disjoint with respect to *every* timeline in
/// `all_timelines` (which should include both endpoints and any third
/// parties). Returns true iff all four properties hold.
[[nodiscard]] bool verify_admissible_sequence(
    const std::vector<FramePairRef>& sequence,
    const std::vector<Frame>& v_frames, const std::vector<Frame>& u_frames,
    const std::vector<std::vector<Frame>>& all_timelines);

}  // namespace m2hew::sim
