// Execution tracing: records per-node radio actions and renders an ASCII
// timeline — the textual equivalent of the paper's Fig. 1/2 execution
// diagrams. Attach by decorating policies with `traced(...)`; the engines
// need no changes.
//
//   Trace trace;
//   auto result = run_slot_engine(net, traced(make_algorithm3(8), trace), cfg);
//   std::puts(trace.render_timeline(0, 40).c_str());
//
// Output (one row per node, one column per slot):
//   node 0 | T0 R1 .  R0 T2 ...     T<c> transmit on channel c
//   node 1 | R0 R0 T1 .  R2 ...     R<c> receive on channel c, '.' quiet
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/policy.hpp"
#include "sim/radio.hpp"

namespace m2hew::sim {

/// One recorded action of one node in one (node-local) slot or frame.
struct TraceEntry {
  net::NodeId node = net::kInvalidNode;
  std::uint64_t index = 0;  ///< node-local slot/frame counter
  Mode mode = Mode::kQuiet;
  net::ChannelId channel = net::kInvalidChannel;
};

class Trace {
 public:
  void record(net::NodeId node, std::uint64_t index, Mode mode,
              net::ChannelId channel);

  [[nodiscard]] const std::vector<TraceEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }

  /// Actions of one node in index order.
  [[nodiscard]] std::vector<TraceEntry> for_node(net::NodeId node) const;

  /// ASCII timeline of slots [first, first + count) for every node seen.
  [[nodiscard]] std::string render_timeline(std::uint64_t first,
                                            std::uint64_t count) const;

 private:
  std::vector<TraceEntry> entries_;
};

/// Wraps a factory so every produced policy records into `trace`. The trace
/// must outlive the engine run. Works for the synchronous engine.
[[nodiscard]] SyncPolicyFactory traced(SyncPolicyFactory inner, Trace& trace);

/// Asynchronous counterpart (one entry per frame).
[[nodiscard]] AsyncPolicyFactory traced(AsyncPolicyFactory inner,
                                        Trace& trace);

}  // namespace m2hew::sim
