// Deterministic fault-injection and network-dynamics layer.
//
// The paper's guarantees (Thms 1–3, 9/10) assume a static network: fixed
// node set, i.i.d.-reliable channels, and A(u) frozen for the whole run.
// A FaultPlan relaxes exactly those assumptions, once, for all three
// engines — the plan rides in the shared EngineCommon config and the
// engines consult a per-trial FaultState built from it:
//
//  (a) node churn        — seed-derived crash/recover schedules per node;
//  (b) bursty loss       — a two-state Gilbert–Elliott chain per directed
//                          link replacing the i.i.d. loss_probability;
//  (c) spectrum dynamics — scheduled primary users (activation intervals)
//                          that change the effective A(u) mid-run;
//  (d) drift wander      — async only: per-node piecewise drift within
//                          the configured δ bound instead of a constant;
//  (e) adversaries       — seed-derived malicious roles: always-on channel
//                          jammers, Byzantine advertisers announcing fake
//                          IDs (ghost inflation), and selective
//                          non-responders (docs/MODEL.md "Adversary model
//                          & trust maintenance").
//
// Determinism contract (docs/EXTENDING.md "Fault types"): every fault
// stream derives from the trial's root seed through SeedSequence::derive
// with a fault-specific salt — derive() is pure, so an all-disabled plan
// leaves every existing stream untouched and reproduces pre-fault runs
// bit-identically; churn schedules are fixed before the run starts; the
// Gilbert–Elliott chain draws from the shared loss stream in the same
// (listener order) positions the i.i.d. draw would use, so indexed vs
// reference reception and multi-radio R=1 vs slot-engine parity hold with
// any plan attached.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "net/network.hpp"
#include "net/primary_user.hpp"
#include "net/types.hpp"
#include "sim/discovery_state.hpp"
#include "sim/radio.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace m2hew::sim {

/// Salt for the per-node churn-schedule streams: node u's schedule is
/// drawn from Rng(seeds.derive(u, kChurnStreamSalt)), disjoint from the
/// node policy stream derive(u), the loss stream derive(N+1) and the
/// async clock stream derive(u, 0xC10C).
inline constexpr std::uint64_t kChurnStreamSalt = 0xFA17;

/// Salt for the per-node adversary-role streams: node u's role (and its
/// attack parameters — jam channel, fake ID, victim set) is drawn from
/// Rng(seeds.derive(u, kAdversaryStreamSalt)), disjoint from every other
/// stream (policy derive(u), loss derive(N+1), churn 0xFA17, clocks
/// 0xC10C, mobility 0x30B1).
inline constexpr std::uint64_t kAdversaryStreamSalt = 0xAD5A;

/// Which attack the adversary population mounts. kMix assigns each
/// adversary one of the three concrete attacks uniformly — and because the
/// adversary coin is the FIRST draw of the role stream, switching the
/// attack type keeps the adversary node set fixed (only the behaviour
/// changes), which is what the E26 attack-type sweep compares.
enum class AdversaryAttack : std::uint8_t {
  kJam = 0,           ///< always-on noise on one fixed channel of A(u)
  kByzantine = 1,     ///< elevated-rate announcements of a fake node ID
  kNonResponder = 2,  ///< honest schedule, but victims never decode it
  kMix = 3,           ///< uniform mix of the three
};

/// Per-node role materialized by FaultState from an AdversarySpec.
enum class AdversaryRole : std::uint8_t {
  kHonest = 0,
  kJammer = 1,
  kByzantine = 2,
  kNonResponder = 3,
};

/// Seed-derived adversary population. Each node is independently an
/// adversary with probability `fraction`; adversaries play one of three
/// roles (see AdversaryAttack):
///
///  - a *jammer* never runs its policy (no stream draws); it transmits
///    noise every slot on one channel drawn uniformly from its A(u). The
///    noise propagates exactly like a discovery message (only along arcs
///    whose span carries the channel), colliding with legitimate traffic;
///    a lone jammer on the listener's channel reads as a collision.
///  - a *Byzantine advertiser* replaces its policy with a fixed-rate
///    announcer: each slot it picks a channel uniformly from A(u) and
///    transmits with probability `byzantine_tx` (one uniform pick + one
///    coin, the same draw shape as the paper's policies). Its message
///    announces `fake id` — drawn uniformly from [0, 2n), so it may
///    collide with a real node's ID — instead of its own, polluting
///    listener tables with ghosts while its own real arcs stay unheard.
///  - a *selective non-responder* runs its honest policy unchanged, but a
///    seed-chosen `victim_fraction` subset of its out-neighbors can never
///    decode it (the victims hear silence), silently eroding their recall.
///
/// Role streams derive from kAdversaryStreamSalt, so `fraction == 0`
/// leaves every existing stream untouched (bit-identical to a plan with no
/// adversary block) on all four execution paths.
struct AdversarySpec {
  double fraction = 0.0;
  AdversaryAttack attack = AdversaryAttack::kMix;
  double byzantine_tx = 0.45;    ///< Byzantine per-slot transmit probability
  double victim_fraction = 0.5;  ///< non-responder: P(out-neighbor is victim)

  [[nodiscard]] bool enabled() const noexcept { return fraction > 0.0; }
};

/// Seed-derived node crash/recover schedule. Each node independently
/// crashes with `crash_probability` at a time uniform in
/// [earliest_crash, latest_crash], staying down for a duration uniform in
/// [min_down, max_down]; a drawn duration of zero means the node never
/// recovers (crash-stop). While down a node neither transmits nor listens,
/// its policy is not polled and its radio is off (mirroring the pre-start
/// handling of EngineCommon::starts). Churn is sampled at slot/frame
/// starts, so an in-flight async frame completes before the node goes
/// dark. With `reset_policy_on_recovery` the node restarts its policy from
/// scratch (fresh factory invocation) at its first poll after recovery —
/// modelling a reboot that lost volatile schedule state.
template <typename Time>
struct ChurnSpec {
  double crash_probability = 0.0;
  Time earliest_crash{};
  Time latest_crash{};
  Time min_down{};
  Time max_down{};
  bool reset_policy_on_recovery = false;

  [[nodiscard]] bool enabled() const noexcept {
    return crash_probability > 0.0;
  }
};

/// Two-state Gilbert–Elliott loss chain per directed link, replacing the
/// i.i.d. `loss_probability` when enabled (the two are mutually exclusive;
/// validate_fault_plan enforces loss_probability == 0). The chain advances
/// one step per delivery opportunity (an otherwise-clear reception on the
/// link), then the current state's loss probability decides the outcome —
/// exactly two draws from the shared loss-RNG stream per opportunity, in
/// listener order, so the indexed and reference reception paths stay
/// bit-identical.
struct GilbertElliottSpec {
  bool enabled = false;
  double p_good_to_bad = 0.0;  ///< per-opportunity transition good → bad
  double p_bad_to_good = 0.1;  ///< per-opportunity transition bad → good
  double loss_good = 0.0;      ///< loss probability in the good state
  double loss_bad = 0.9;       ///< loss probability in the bad state
};

/// Async-engine drift perturbation: replace the trial's clocks with
/// per-node PiecewiseDriftClock instances whose drift wanders within
/// ±max_drift (the paper's δ bound), re-drawn at real-time breakpoints
/// spaced uniformly in [min_segment, max_segment]. Seeded from the
/// standard clock stream derive(u, 0xC10C) and taking precedence over
/// AsyncEngineConfig::clock_builder. Ignored by the slotted engines
/// (their time axis has no clocks).
struct DriftWanderSpec {
  bool enabled = false;
  double max_drift = 0.0;      ///< δ bound on |drift|
  double min_segment = 15.0;   ///< min real-time length of a drift segment
  double max_segment = 60.0;   ///< max real-time length of a drift segment
};

/// The full fault plan, carried by EngineCommon<Time>::faults. A
/// default-constructed plan (any() == false) is the static network of the
/// paper and is guaranteed not to perturb any random stream.
template <typename Time>
struct FaultPlan {
  ChurnSpec<Time> churn;
  GilbertElliottSpec burst_loss;
  /// Scheduled primary users switching on/off mid-run. Composes with (OR)
  /// EngineCommon::interference. Requires `positions` (one per node) when
  /// non-empty; PU activation times live on the engine's time axis.
  std::vector<net::ScheduledPrimaryUser> spectrum;
  std::vector<net::Point> positions;
  DriftWanderSpec drift_wander;
  AdversarySpec adversary;

  [[nodiscard]] bool any() const noexcept {
    return churn.enabled() || burst_loss.enabled || !spectrum.empty() ||
           drift_wander.enabled || adversary.enabled();
  }
};

using SlotFaultPlan = FaultPlan<std::uint64_t>;
using AsyncFaultPlan = FaultPlan<double>;

/// Validation for the fault knobs; called from validate_engine_common so
/// every engine checks the plan it is handed.
template <typename Time>
inline void validate_fault_plan(const FaultPlan<Time>& plan,
                                net::NodeId nodes,
                                double loss_probability) {
  const ChurnSpec<Time>& ch = plan.churn;
  M2HEW_CHECK(ch.crash_probability >= 0.0 && ch.crash_probability <= 1.0);
  M2HEW_CHECK(ch.latest_crash >= ch.earliest_crash);
  M2HEW_CHECK(ch.max_down >= ch.min_down);
  if constexpr (std::is_floating_point_v<Time>) {
    M2HEW_CHECK(ch.earliest_crash >= Time{0} && ch.min_down >= Time{0});
  }
  const GilbertElliottSpec& ge = plan.burst_loss;
  M2HEW_CHECK(ge.p_good_to_bad >= 0.0 && ge.p_good_to_bad <= 1.0);
  M2HEW_CHECK(ge.p_bad_to_good >= 0.0 && ge.p_bad_to_good <= 1.0);
  M2HEW_CHECK(ge.loss_good >= 0.0 && ge.loss_good < 1.0);
  M2HEW_CHECK(ge.loss_bad >= 0.0 && ge.loss_bad < 1.0);
  if (ge.enabled) {
    M2HEW_CHECK_MSG(loss_probability == 0.0,
                    "Gilbert-Elliott burst loss replaces loss_probability; "
                    "set loss_probability to 0");
  }
  if (!plan.spectrum.empty()) {
    M2HEW_CHECK_MSG(plan.positions.size() == nodes,
                    "spectrum faults need one position per node");
    for (const net::ScheduledPrimaryUser& pu : plan.spectrum) {
      M2HEW_CHECK(pu.user.radius >= 0.0);
      M2HEW_CHECK(pu.on_until >= pu.on_from);
    }
  }
  const DriftWanderSpec& dw = plan.drift_wander;
  M2HEW_CHECK(dw.max_drift >= 0.0 && dw.max_drift < 1.0);
  if (dw.enabled) {
    M2HEW_CHECK(dw.min_segment > 0.0 && dw.max_segment >= dw.min_segment);
  }
  const AdversarySpec& adv = plan.adversary;
  M2HEW_CHECK_MSG(adv.fraction >= 0.0 && adv.fraction <= 1.0,
                  "adversary fraction must be in [0, 1]");
  M2HEW_CHECK_MSG(adv.byzantine_tx > 0.0 && adv.byzantine_tx <= 1.0,
                  "byzantine transmit probability must be in (0, 1]");
  M2HEW_CHECK_MSG(adv.victim_fraction >= 0.0 && adv.victim_fraction <= 1.0,
                  "non-responder victim fraction must be in [0, 1]");
}

/// Robustness metrics computed at the end of a faulted run. `enabled` is
/// false (and every count zero) when the trial carried no fault plan.
/// "End of run" is the last executed slot (slotted engines) / the time of
/// the last processed event (async engine). Time-like fields are on the
/// engine's time axis.
struct RobustnessReport {
  bool enabled = false;
  std::size_t crashed_nodes = 0;  ///< nodes that crashed at least once
  std::size_t down_at_end = 0;    ///< nodes still down when the run ended
  /// Links with both endpoints up at the end of the run — the ground
  /// truth surviving-recall is measured against.
  std::size_t surviving_links = 0;
  std::size_t covered_surviving_links = 0;
  /// Neighbor-table entries naming a node that is down at the end of the
  /// run, or whose common channels are all blocked by active spectrum
  /// faults at the end of the run — stale knowledge a static-model
  /// algorithm never invalidates.
  std::size_t ghost_entries = 0;
  /// Links whose crashed endpoint(s) all recovered (both endpoints up at
  /// the end), i.e. links eligible for rediscovery...
  std::size_t recovered_links = 0;
  /// ...and how many of those were actually re-heard after the recovery.
  std::size_t rediscovered_links = 0;
  /// Mean / max time from the link's (latest) recovery to its first
  /// post-recovery reception, over rediscovered links.
  double mean_rediscovery = 0.0;
  double max_rediscovery = 0.0;

  // --- Adversary metrics (zero unless the plan carried an AdversarySpec).
  /// True iff the plan's adversary block was enabled for this trial.
  bool adversary = false;
  /// Nodes assigned a non-honest role by the seed-derived coin.
  std::size_t adversary_nodes = 0;
  /// Covered directed arcs of the real network at the end of the run —
  /// the truthful content of the union of all neighbor tables.
  std::size_t real_entries = 0;
  /// Admitted, un-evicted table entries naming a Byzantine fake ID that
  /// does not alias a covered real arc (an entry whose announced ID is a
  /// real covered in-neighbor is counted once, as real — the
  /// double-counting rule fault_plan_test pins down). Also added to
  /// ghost_entries: fake IDs are ghost inflation.
  std::size_t fake_entries = 0;
  /// (listener, fake ID) pairs a trust policy rejected at least once —
  /// each rejection also evicts the pair's table entry.
  std::size_t isolated_fakes = 0;
  /// (listener, announced ID) pairs rejected whose announced ID is NOT a
  /// fake in play: the trust policy's false positives.
  std::size_t honest_isolated = 0;
  /// Mean / max time from a fake ID's first decode at a listener to its
  /// first rejection there, over isolated (listener, fake ID) pairs.
  double mean_isolation = 0.0;
  double max_isolation = 0.0;

  /// Recall restricted to surviving true neighbors: covered surviving
  /// links / surviving links (1 when no link survived). Links with a
  /// jammer or Byzantine endpoint are excluded from both counts — those
  /// roles never announce their real ID nor listen, so their arcs are
  /// undiscoverable by construction; non-responder arcs stay in (their
  /// victims' misses are exactly the attack's recall cost).
  [[nodiscard]] double surviving_recall() const noexcept {
    return surviving_links == 0
               ? 1.0
               : static_cast<double>(covered_surviving_links) /
                     static_cast<double>(surviving_links);
  }

  /// Precision under attack: real entries / (real + fake entries); 1 when
  /// the tables are empty. Ghost-from-churn staleness is accounted
  /// separately (ghost_entries), so this isolates adversarial pollution.
  [[nodiscard]] double precision_under_attack() const noexcept {
    const std::size_t total = real_entries + fake_entries;
    return total == 0 ? 1.0
                      : static_cast<double>(real_entries) /
                            static_cast<double>(total);
  }
};

/// Per-trial fault state: churn schedules drawn up front from the trial's
/// seed tree, the Gilbert–Elliott chain states, the precomputed spectrum
/// coverage geometry, and the rediscovery tracker. Engines build one per
/// run (the plan and network must outlive it) and consult it on their hot
/// paths; with an all-disabled plan every query is a flag test.
template <typename Time>
class FaultState {
 public:
  FaultState(const net::Network& network, const util::SeedSequence& seeds,
             const FaultPlan<Time>& plan);

  [[nodiscard]] bool any() const noexcept { return plan_->any(); }
  [[nodiscard]] bool churn() const noexcept { return churn_; }
  [[nodiscard]] bool has_spectrum() const noexcept {
    return !plan_->spectrum.empty();
  }
  [[nodiscard]] bool adversaries() const noexcept { return adversary_; }
  [[nodiscard]] std::size_t adversary_count() const noexcept {
    return adversary_count_;
  }

  /// Node u's materialized role (kHonest whenever the spec is disabled).
  [[nodiscard]] AdversaryRole role(net::NodeId u) const noexcept {
    return adversary_ ? static_cast<AdversaryRole>(role_[u])
                      : AdversaryRole::kHonest;
  }

  /// The fixed channel a jammer transmits noise on (valid iff kJammer).
  [[nodiscard]] net::ChannelId jam_channel(net::NodeId u) const noexcept {
    return jam_channel_[u];
  }

  /// The fake ID a Byzantine advertiser announces (valid iff kByzantine).
  /// Drawn from [0, 2n), so it may alias a real node's ID.
  [[nodiscard]] net::NodeId fake_id(net::NodeId u) const noexcept {
    return fake_id_[u];
  }

  /// True iff a resolved unique sender is a jammer — its "message" is
  /// noise and must read as a collision at the listener.
  [[nodiscard]] bool jam_noise(net::NodeId sender) const noexcept {
    return adversary_ &&
           role_[sender] == static_cast<std::uint8_t>(AdversaryRole::kJammer);
  }

  /// True iff a resolved unique sender announces a fake ID.
  [[nodiscard]] bool fake_source(net::NodeId sender) const noexcept {
    return adversary_ && role_[sender] == static_cast<std::uint8_t>(
                                              AdversaryRole::kByzantine);
  }

  /// True iff `receiver` is one of non-responder `sender`'s victims: the
  /// reception is suppressed (reads as silence, no loss draw consumed).
  [[nodiscard]] bool suppressed(net::NodeId sender,
                                net::NodeId receiver) const noexcept;

  /// The Byzantine announcer's slot action: one uniform channel pick from
  /// A(u) then one Bernoulli(byzantine_tx) coin from the node's policy
  /// stream — the exact draw shape of the paper's policies, so the slot
  /// engine and the SoA kernel stay bit-identical.
  [[nodiscard]] SlotAction byzantine_slot_action(net::NodeId u,
                                                 util::Rng& rng) const;

  /// Records a listener decoding a Byzantine announcement: refreshes (or
  /// creates, or un-evicts) the (receiver, fake ID) table entry. Returns
  /// true iff the entry is new at this listener (first_time semantics for
  /// policy feedback). Call only when fake_source(sender).
  [[nodiscard]] bool note_fake_decode(net::NodeId sender,
                                      net::NodeId receiver, Time t);

  /// Records a trust-policy rejection of `announced` at `receiver`. If the
  /// announced ID is a fake in play: evicts the table entry and, on the
  /// first rejection, stamps the pair's time-to-isolation. Otherwise it
  /// counts (deduplicated) as a false-positive block. No-op unless the
  /// adversary spec is enabled.
  void note_isolation(net::NodeId receiver, net::NodeId announced, Time t);

  /// True iff node u is crashed at time t.
  [[nodiscard]] bool down_at(net::NodeId u, Time t) const noexcept {
    if (!churn_) return false;
    const NodeChurn& c = schedule_[u];
    if (!c.crashes || t < c.crash) return false;
    return !c.recovers || t < c.recovery;
  }

  /// True exactly once per recovery, at node u's first poll at/after its
  /// recovery time, iff the plan asks for a policy reset. The engine must
  /// then rebuild u's policy (TrialSetup::reset_policy).
  [[nodiscard]] bool consume_reset(net::NodeId u, Time t) noexcept {
    if (!churn_ || reset_pending_.empty() || reset_pending_[u] == 0) {
      return false;
    }
    const NodeChurn& c = schedule_[u];
    if (t < c.recovery) return false;
    reset_pending_[u] = 0;
    return true;
  }

  /// True iff an active scheduled PU blocks channel c at node u at time t.
  /// Composes with EngineCommon::interference by OR at the call sites.
  [[nodiscard]] bool spectrum_blocked(Time t, net::NodeId u,
                                      net::ChannelId c) const;

  /// The loss decision for one otherwise-clear reception on the directed
  /// link sender → receiver. With burst loss enabled: advance the link's
  /// Gilbert–Elliott chain (one draw) then draw the state's loss
  /// probability (one draw). Otherwise: the engines' original i.i.d.
  /// behaviour — one draw iff iid_loss > 0. Call in listener order only.
  [[nodiscard]] bool message_lost(net::NodeId sender, net::NodeId receiver,
                                  util::Rng& loss_rng, double iid_loss);

  /// Records a clear reception for rediscovery tracking (first reception
  /// at/after the link's recovery threshold). Cheap no-op without churn.
  void note_reception(net::NodeId sender, net::NodeId receiver, Time t);

  /// Computes the robustness metrics against the final discovery state.
  /// `end` is the engine's last executed slot / last processed event time.
  [[nodiscard]] RobustnessReport assess(const DiscoveryState& state,
                                        Time end) const;

  /// Coverage-oracle form for engines that never materialize a
  /// DiscoveryState (the SoA kernel keeps only a CSR coverage bitmap):
  /// `is_covered(link)` answers whether the directed discovery link was
  /// covered. Neighbor-table entries are reconstructed as exactly the
  /// covered links with the network spans as common channels — the
  /// invariant DiscoveryState::record_reception maintains — so this
  /// produces a report identical to assess() for the same coverage.
  [[nodiscard]] RobustnessReport assess_covered(
      const std::function<bool(net::Link)>& is_covered, Time end) const;

 private:
  struct NodeChurn {
    bool crashes = false;
    bool recovers = false;
    Time crash{};
    Time recovery{};
  };

  /// One (listener, announced fake ID) table entry: per-listener counts
  /// are bounded by the listener's Byzantine in-degree, so linear scans
  /// stay cheap.
  struct FakeEntry {
    net::NodeId id = net::kInvalidNode;
    double first_seen = 0.0;
    double isolated_at = 0.0;
    bool evicted = false;
    bool isolated = false;
  };

  const net::Network* network_;
  const FaultPlan<Time>* plan_;
  bool churn_ = false;
  bool adversary_ = false;
  net::NodeId n_ = 0;
  std::size_t adversary_count_ = 0;
  std::vector<NodeChurn> schedule_;
  std::vector<std::uint8_t> reset_pending_;
  std::vector<std::uint8_t> ge_state_;      // n×n; 0 = good, 1 = bad
  std::vector<double> post_recovery_;       // n×n; first reception ≥ threshold, -1 unset
  std::vector<std::vector<std::uint32_t>> spectrum_cover_;  // PU idx per node
  std::vector<std::uint8_t> role_;              // n; AdversaryRole values
  std::vector<net::ChannelId> jam_channel_;     // n; valid iff kJammer
  std::vector<net::NodeId> fake_id_;            // n; valid iff kByzantine
  std::vector<net::NodeId> fake_ids_;           // sorted distinct fake IDs in play
  std::vector<std::vector<net::ChannelId>> byz_avail_;  // A(u), Byzantine only
  std::vector<std::vector<net::NodeId>> victims_;       // sorted, non-responders
  std::vector<std::vector<FakeEntry>> fake_heard_;      // per listener
  std::vector<std::vector<net::NodeId>> honest_blocked_;  // per listener, sorted
};

extern template class FaultState<std::uint64_t>;
extern template class FaultState<double>;

}  // namespace m2hew::sim
