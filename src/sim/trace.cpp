#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace m2hew::sim {

void Trace::record(net::NodeId node, std::uint64_t index, Mode mode,
                   net::ChannelId channel) {
  entries_.push_back({node, index, mode, channel});
}

std::vector<TraceEntry> Trace::for_node(net::NodeId node) const {
  std::vector<TraceEntry> out;
  for (const TraceEntry& e : entries_) {
    if (e.node == node) out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEntry& a, const TraceEntry& b) {
              return a.index < b.index;
            });
  return out;
}

std::string Trace::render_timeline(std::uint64_t first,
                                   std::uint64_t count) const {
  net::NodeId max_node = 0;
  for (const TraceEntry& e : entries_) {
    max_node = std::max(max_node, e.node);
  }
  const net::NodeId nodes = entries_.empty() ? 0 : max_node + 1;

  // cells[node][offset] = rendered token.
  std::vector<std::vector<std::string>> cells(
      nodes, std::vector<std::string>(count, ".  "));
  for (const TraceEntry& e : entries_) {
    if (e.index < first || e.index >= first + count) continue;
    char buf[8];
    if (e.mode == Mode::kQuiet) continue;
    std::snprintf(buf, sizeof(buf), "%c%-2u",
                  e.mode == Mode::kTransmit ? 'T' : 'R', e.channel);
    cells[e.node][e.index - first] = buf;
  }

  std::string out;
  for (net::NodeId u = 0; u < nodes; ++u) {
    char head[24];
    std::snprintf(head, sizeof(head), "node %3u |", u);
    out += head;
    for (const std::string& cell : cells[u]) {
      out += ' ';
      out += cell;
    }
    out += '\n';
  }
  return out;
}

namespace {

class TracingSyncPolicy final : public SyncPolicy {
 public:
  TracingSyncPolicy(std::unique_ptr<SyncPolicy> inner, Trace& trace,
                    net::NodeId node)
      : inner_(std::move(inner)), trace_(&trace), node_(node) {
    M2HEW_CHECK(inner_ != nullptr);
  }

  SlotAction next_slot(util::Rng& rng) override {
    const SlotAction action = inner_->next_slot(rng);
    trace_->record(node_, index_++, action.mode, action.channel);
    return action;
  }

  void observe_reception(net::NodeId from, bool first_time) override {
    inner_->observe_reception(from, first_time);
  }

 private:
  std::unique_ptr<SyncPolicy> inner_;
  Trace* trace_;
  net::NodeId node_;
  std::uint64_t index_ = 0;
};

class TracingAsyncPolicy final : public AsyncPolicy {
 public:
  TracingAsyncPolicy(std::unique_ptr<AsyncPolicy> inner, Trace& trace,
                     net::NodeId node)
      : inner_(std::move(inner)), trace_(&trace), node_(node) {
    M2HEW_CHECK(inner_ != nullptr);
  }

  FrameAction next_frame(util::Rng& rng) override {
    const FrameAction action = inner_->next_frame(rng);
    trace_->record(node_, index_++, action.mode, action.channel);
    return action;
  }

  void observe_reception(net::NodeId from, bool first_time) override {
    inner_->observe_reception(from, first_time);
  }

 private:
  std::unique_ptr<AsyncPolicy> inner_;
  Trace* trace_;
  net::NodeId node_;
  std::uint64_t index_ = 0;
};

}  // namespace

SyncPolicyFactory traced(SyncPolicyFactory inner, Trace& trace) {
  return [inner = std::move(inner), &trace](const net::Network& network,
                                            net::NodeId u)
             -> std::unique_ptr<SyncPolicy> {
    return std::make_unique<TracingSyncPolicy>(inner(network, u), trace, u);
  };
}

AsyncPolicyFactory traced(AsyncPolicyFactory inner, Trace& trace) {
  return [inner = std::move(inner), &trace](const net::Network& network,
                                            net::NodeId u)
             -> std::unique_ptr<AsyncPolicy> {
    return std::make_unique<TracingAsyncPolicy>(inner(network, u), trace, u);
  };
}

}  // namespace m2hew::sim
