#include "sim/multi_radio_engine.hpp"

#include "util/check.hpp"

namespace m2hew::sim {

MultiRadioEngineResult run_multi_radio_engine(
    const net::Network& network, const MultiRadioPolicyFactory& factory,
    const MultiRadioEngineConfig& config) {
  const net::NodeId n = network.node_count();
  const util::SeedSequence seeds(config.seed);

  std::vector<util::Rng> rngs;
  rngs.reserve(n);
  std::vector<std::unique_ptr<MultiRadioPolicy>> policies;
  policies.reserve(n);
  for (net::NodeId u = 0; u < n; ++u) {
    rngs.emplace_back(seeds.derive(u));
    policies.push_back(factory(network, u));
    M2HEW_CHECK_MSG(policies.back() != nullptr, "factory returned null");
    M2HEW_CHECK(policies.back()->radio_count() >= 1);
  }

  MultiRadioEngineResult result{false, 0, 0, DiscoveryState(network)};
  std::vector<std::vector<SlotAction>> actions(n);
  // Per-node channel usage scratch for validating radio distinctness.
  std::vector<net::ChannelId> used;

  for (std::uint64_t slot = 0; slot < config.max_slots; ++slot) {
    ++result.slots_executed;

    for (net::NodeId u = 0; u < n; ++u) {
      actions[u] = policies[u]->next_slot(rngs[u]);
      M2HEW_CHECK_MSG(actions[u].size() == policies[u]->radio_count(),
                      "policy returned wrong radio count");
      used.clear();
      for (const SlotAction& action : actions[u]) {
        if (action.mode == Mode::kQuiet) continue;
        M2HEW_DCHECK(network.available(u).contains(action.channel));
        for (const net::ChannelId c : used) {
          M2HEW_CHECK_MSG(c != action.channel,
                          "two radios of one node on the same channel");
        }
        used.push_back(action.channel);
      }
    }

    // Reception per listening radio.
    for (net::NodeId u = 0; u < n; ++u) {
      for (const SlotAction& mine : actions[u]) {
        if (mine.mode != Mode::kReceive) continue;
        const net::ChannelId c = mine.channel;
        net::NodeId sender = net::kInvalidNode;
        bool collision = false;
        for (const net::Network::InLink& in : network.in_links(u)) {
          if (!in.span->contains(c)) continue;
          for (const SlotAction& theirs : actions[in.from]) {
            if (theirs.mode != Mode::kTransmit || theirs.channel != c) {
              continue;
            }
            if (sender != net::kInvalidNode) {
              collision = true;
              break;
            }
            sender = in.from;
          }
          if (collision) break;
        }
        if (collision || sender == net::kInvalidNode) continue;
        result.state.record_reception(sender, u, static_cast<double>(slot));
      }
    }

    if (!result.complete && result.state.complete()) {
      result.complete = true;
      result.completion_slot = slot;
      if (config.stop_when_complete) break;
    }
  }
  return result;
}

}  // namespace m2hew::sim
