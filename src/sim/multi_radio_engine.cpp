#include "sim/multi_radio_engine.hpp"

#include "sim/slot_medium.hpp"
#include "sim/trial_setup.hpp"
#include "util/check.hpp"

namespace m2hew::sim {

MultiRadioEngineResult run_multi_radio_engine(
    const net::Network& network, const MultiRadioPolicyFactory& factory,
    const MultiRadioEngineConfig& config) {
  const net::NodeId n = network.node_count();
  M2HEW_CHECK(config.max_slots >= 1);
  validate_engine_common(config, n);

  TrialSetup<MultiRadioPolicy> setup(network, factory, config.seed);
  FaultState<std::uint64_t> faults(network, setup.seeds(), config.faults);
  for (net::NodeId u = 0; u < n; ++u) {
    M2HEW_CHECK(setup.policy(u).radio_count() >= 1);
  }

  // External interference at (slot, node, channel): the configured PU
  // schedule OR an active scheduled spectrum fault.
  const bool has_interference =
      static_cast<bool>(config.interference) || faults.has_spectrum();
  const auto jammed = [&](std::uint64_t slot, net::NodeId who,
                          net::ChannelId c) {
    return (config.interference && config.interference(slot, who, c)) ||
           faults.spectrum_blocked(slot, who, c);
  };

  MultiRadioEngineResult result{false,
                                0,
                                0,
                                std::vector<RadioActivity>(n),
                                DiscoveryState(network)};
  std::vector<std::vector<SlotAction>> actions(n);
  SlotMedium medium(network.universe_size(), config.indexed_reception);
  // Per-node channel usage scratch for validating radio distinctness.
  std::vector<net::ChannelId> used;

  // Time-varying topology: `cur` is the link set in force this slot,
  // swapped at epoch boundaries (see run_slot_engine).
  const net::TopologyProvider* provider =
      topology_provider_of(config, network);
  const net::Network* cur = &network;

  for (std::uint64_t slot = 0; slot < config.max_slots; ++slot) {
    ++result.slots_executed;
    if (provider != nullptr) {
      cur = &provider->epoch(epoch_at(*provider, config.epoch_length, slot));
    }

    for (net::NodeId u = 0; u < n; ++u) {
      if (slot < start_of(config.starts, u) || faults.down_at(u, slot)) {
        // Not started or crashed: all radios quiet, and the policy is not
        // polled (its slot indices are node-local, as in the slot engine).
        actions[u].assign(setup.policy(u).radio_count(), SlotAction{});
        continue;
      }
      // Jammer and Byzantine roles use a single radio (radio 0) — the
      // same behaviour and draw shape as the single-radio engines — with
      // every other radio quiet (two radios of one node may not share a
      // channel, so a jammer cannot jam with all of them anyway). A
      // non-responder keeps its honest schedule: suppression happens at
      // its victims' decode step.
      const AdversaryRole role = faults.role(u);
      if (role == AdversaryRole::kJammer ||
          role == AdversaryRole::kByzantine) {
        actions[u].assign(setup.policy(u).radio_count(), SlotAction{});
        actions[u][0] =
            role == AdversaryRole::kJammer
                ? SlotAction{Mode::kTransmit, faults.jam_channel(u)}
                : faults.byzantine_slot_action(u, setup.rng(u));
        continue;
      }
      if (faults.consume_reset(u, slot)) setup.reset_policy(u);
      actions[u] = setup.policy(u).next_slot(setup.rng(u));
      M2HEW_CHECK_MSG(actions[u].size() == setup.policy(u).radio_count(),
                      "policy returned wrong radio count");
      used.clear();
      for (const SlotAction& action : actions[u]) {
        if (action.mode == Mode::kQuiet) continue;
        M2HEW_DCHECK(network.available(u).contains(action.channel));
        for (const net::ChannelId c : used) {
          M2HEW_CHECK_MSG(c != action.channel,
                          "two radios of one node on the same channel");
        }
        used.push_back(action.channel);
      }
    }

    // Transmissions on a channel with active primary-user interference at
    // the transmitter are suppressed (the node senses the PU and vacates,
    // idling that radio for the slot).
    if (has_interference) {
      for (net::NodeId u = 0; u < n; ++u) {
        for (SlotAction& action : actions[u]) {
          if (action.mode == Mode::kTransmit &&
              jammed(slot, u, action.channel)) {
            action.mode = Mode::kQuiet;
          }
        }
      }
    }

    // Radio accounting starts at the node's start slot, one count per
    // radio per slot; a crashed node's radios are off.
    for (net::NodeId u = 0; u < n; ++u) {
      if (slot < start_of(config.starts, u) || faults.down_at(u, slot)) {
        continue;
      }
      for (const SlotAction& action : actions[u]) {
        count_mode(result.activity[u], action.mode);
      }
    }

    // One sweep groups this slot's (non-suppressed) transmitting radios by
    // channel; the sweep runs in node id order so each bucket stays
    // id-sorted (distinct-channel validation guarantees a node appears at
    // most once per bucket).
    if (config.indexed_reception) {
      medium.begin_slot();
      for (net::NodeId u = 0; u < n; ++u) {
        for (const SlotAction& action : actions[u]) {
          if (action.mode != Mode::kTransmit) continue;
          medium.add_transmitter(action.channel, u);
        }
      }
    }

    // Reception resolution, per listening radio in (node id, radio index)
    // order — the slot engine's listener order, so with one radio per node
    // the policy callbacks and loss-RNG draws are bit-identical to
    // run_slot_engine.
    for (net::NodeId u = 0; u < n; ++u) {
      for (unsigned r = 0; r < actions[u].size(); ++r) {
        const SlotAction& mine = actions[u][r];
        if (mine.mode != Mode::kReceive) continue;
        const net::ChannelId c = mine.channel;

        // Active primary-user noise at the listener drowns the channel.
        if (has_interference && jammed(slot, u, c)) {
          setup.policy(u).observe_listen_outcome(r, ListenOutcome::kCollision);
          continue;
        }

        const SlotMedium::Resolution heard =
            config.indexed_reception
                ? medium.resolve(*cur, u, c)
                : SlotMedium::resolve_reference(
                      *cur, u, c, [&](net::NodeId v) {
                        for (const SlotAction& theirs : actions[v]) {
                          if (theirs.mode == Mode::kTransmit &&
                              theirs.channel == c) {
                            return true;
                          }
                        }
                        return false;
                      });
        if (heard.collision) {
          setup.policy(u).observe_listen_outcome(r, ListenOutcome::kCollision);
          continue;
        }
        if (heard.sender == net::kInvalidNode) {
          setup.policy(u).observe_listen_outcome(r, ListenOutcome::kSilence);
          continue;
        }
        // Adversarial dispositions, mirroring the slot engine (see
        // run_slot_engine for the rationale and ordering).
        if (faults.adversaries()) {
          if (faults.jam_noise(heard.sender)) {
            setup.policy(u).observe_listen_outcome(r,
                                                   ListenOutcome::kCollision);
            continue;
          }
          if (faults.suppressed(heard.sender, u)) {
            setup.policy(u).observe_listen_outcome(r,
                                                   ListenOutcome::kSilence);
            continue;
          }
        }
        if (faults.message_lost(heard.sender, u, setup.loss_rng(),
                                config.loss_probability)) {
          setup.policy(u).observe_listen_outcome(r, ListenOutcome::kSilence);
          continue;
        }
        if (faults.fake_source(heard.sender)) {
          const net::NodeId announced = faults.fake_id(heard.sender);
          if (!setup.policy(u).admit_neighbor(announced)) {
            faults.note_isolation(u, announced, slot);
            setup.policy(u).observe_listen_outcome(r, ListenOutcome::kClear);
            continue;
          }
          const bool first_fake =
              faults.note_fake_decode(heard.sender, u, slot);
          setup.policy(u).observe_listen_outcome(r, ListenOutcome::kClear);
          setup.policy(u).observe_reception(r, announced, first_fake);
          continue;
        }
        if (!setup.policy(u).admit_neighbor(heard.sender)) {
          faults.note_isolation(u, heard.sender, slot);
          setup.policy(u).observe_listen_outcome(r, ListenOutcome::kClear);
          continue;
        }
        const bool first_time = result.state.record_reception(
            heard.sender, u, static_cast<double>(slot));
        faults.note_reception(heard.sender, u, slot);
        setup.policy(u).observe_listen_outcome(r, ListenOutcome::kClear);
        setup.policy(u).observe_reception(r, heard.sender, first_time);
        if (config.on_reception) {
          config.on_reception(slot, heard.sender, u, c);
        }
      }
    }

    if (note_completion(result.state, result.complete, result.completion_slot,
                        slot, config.stop_when_complete)) {
      break;
    }
  }
  result.robustness = faults.assess(
      result.state,
      result.slots_executed == 0 ? 0 : result.slots_executed - 1);
  return result;
}

}  // namespace m2hew::sim
