// External interference model (dynamic primary users).
//
// In a cognitive-radio network the licensed primary users come and go;
// while a PU is active on a channel near a node, a secondary node must
// vacate: it neither transmits on the channel (spectrum sensing) nor can
// it decode anything there (the PU signal is noise). The schedule is
// queried per (slot, node, channel); see
// net::DynamicPrimaryUserField::interference_schedule for the standard
// way to build one from a geometric PU field.
#pragma once

#include <cstdint>
#include <functional>

#include "net/types.hpp"

namespace m2hew::sim {

/// Returns true iff external interference (an active primary user) is
/// present at `node` on `channel` during global slot `slot`. Must be
/// deterministic.
using InterferenceSchedule =
    std::function<bool(std::uint64_t slot, net::NodeId node,
                       net::ChannelId channel)>;

}  // namespace m2hew::sim
