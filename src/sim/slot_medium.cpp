#include "sim/slot_medium.hpp"

namespace m2hew::sim {

SlotMedium::SlotMedium(net::ChannelId universe_size, bool indexed)
    : buckets_(indexed ? universe_size : 0) {}

void SlotMedium::begin_slot() {
  for (const net::ChannelId c : touched_) buckets_[c].clear();
  touched_.clear();
}

void SlotMedium::add_transmitter(net::ChannelId channel, net::NodeId node) {
  std::vector<net::NodeId>& bucket = buckets_[channel];
  if (bucket.empty()) touched_.push_back(channel);
  bucket.push_back(node);
}

SlotMedium::Resolution SlotMedium::resolve(const net::Network& network,
                                           net::NodeId listener,
                                           net::ChannelId channel) const {
  // Every bucket entry already transmits on `channel`, so filtering by the
  // flat in-neighbor adjacency yields exactly the reference scan's match
  // set — and therefore the same sender/collision outcome.
  Resolution out;
  for (const net::NodeId v : buckets_[channel]) {
    const net::ChannelSet* span = network.in_span(v, listener);
    if (span == nullptr || !span->contains(channel)) continue;
    if (out.sender != net::kInvalidNode) {
      out.collision = true;
      break;
    }
    out.sender = v;
  }
  return out;
}

}  // namespace m2hew::sim
