// DiscoveryState: tracks which discovery links have been covered, the
// neighbor tables each node has built, and per-link first-coverage times.
//
// This is measurement machinery (a global oracle), not part of the
// distributed algorithms: nodes never consult it; the engines use it to
// detect completion and the benches use it to report discovery latency.
#pragma once

#include <cstdint>
#include <vector>

#include "net/channel_set.hpp"
#include "net/network.hpp"
#include "net/types.hpp"

namespace m2hew::sim {

/// One received discovery record at a node: ⟨v, A(v) ∩ A(u)⟩ per
/// Algorithm 1 line 11 / Algorithm 4 line 11.
struct NeighborRecord {
  net::NodeId neighbor = net::kInvalidNode;
  net::ChannelSet common_channels;
};

class DiscoveryState {
 public:
  explicit DiscoveryState(const net::Network& network);

  /// Records that `receiver` heard a clear discovery message from `sender`
  /// (a topology neighbor with non-empty span) at `time` (slot index or real
  /// time, caller's unit). Idempotent; repeat receptions are counted but do
  /// not change first-coverage time. Returns true iff this was the first
  /// coverage of the link.
  bool record_reception(net::NodeId sender, net::NodeId receiver, double time);

  [[nodiscard]] bool complete() const noexcept {
    return covered_count_ == total_links_;
  }
  [[nodiscard]] std::size_t total_links() const noexcept {
    return total_links_;
  }
  [[nodiscard]] std::size_t covered_links() const noexcept {
    return covered_count_;
  }
  [[nodiscard]] std::size_t reception_count() const noexcept {
    return receptions_;
  }

  [[nodiscard]] bool is_covered(net::Link link) const;

  /// First-coverage time of a link; requires is_covered(link).
  [[nodiscard]] double first_coverage_time(net::Link link) const;

  /// Neighbor table of node u as built from received messages, in first
  /// reception order.
  [[nodiscard]] const std::vector<NeighborRecord>& neighbor_table(
      net::NodeId u) const;

  /// True iff node u's table contains exactly its ground-truth neighbors
  /// with exactly the span channel sets.
  [[nodiscard]] bool table_matches_ground_truth(net::NodeId u) const;

 private:
  [[nodiscard]] std::size_t link_slot(net::NodeId sender,
                                      net::NodeId receiver) const noexcept;

  const net::Network* network_;
  net::NodeId n_;
  std::size_t total_links_ = 0;
  std::size_t covered_count_ = 0;
  std::size_t receptions_ = 0;
  // Dense (sender, receiver) matrices. N is at most a few thousand in any
  // experiment, so N² entries are acceptable and far faster than hashing.
  std::vector<std::uint8_t> covered_;      // 0/1/2: 2 = not a link
  std::vector<double> first_time_;
  std::vector<std::vector<NeighborRecord>> tables_;
};

}  // namespace m2hew::sim
