// Radio actions, per the transceiver model of §II: in any slot (or frame, in
// the asynchronous system) a node's single half-duplex transceiver either
// transmits on one channel, receives on one channel, or is shut off.
#pragma once

#include "net/types.hpp"

namespace m2hew::sim {

enum class Mode : unsigned char { kTransmit, kReceive, kQuiet };

/// One node's behaviour for one synchronous time slot.
struct SlotAction {
  Mode mode = Mode::kQuiet;
  net::ChannelId channel = net::kInvalidChannel;
};

/// One node's behaviour for one asynchronous frame. In transmit mode the
/// node sends the same discovery message in each of the frame's slots; in
/// receive mode it listens on the chosen channel for the whole frame
/// (Algorithm 4, lines 3–11).
struct FrameAction {
  Mode mode = Mode::kQuiet;
  net::ChannelId channel = net::kInvalidChannel;
};

/// What a listening radio heard in one slot. The paper's base model
/// assumes nodes CANNOT distinguish kSilence from kCollision (§II); the
/// engines still report the distinction so that extension policies can
/// study what collision detection buys (cf. related work [21], [22], which
/// assumes it). The paper's algorithms ignore this feedback.
enum class ListenOutcome : unsigned char { kSilence, kClear, kCollision };

}  // namespace m2hew::sim
