// Per-trial random machinery, built identically by every engine: the
// trial's seed tree, one RNG and one policy instance per node, and the
// separate loss-model stream. Extracted so a new engine cannot diverge in
// seed derivation — the parallel-trials determinism contract
// (docs/EXTENDING.md) depends on every engine deriving node RNGs as
// (seed, node).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace m2hew::sim {

/// The trial's random streams alone — seed tree, one RNG per node
/// (derive(seed, u)), and the loss stream (derive(seed, N+1)) — without
/// any policy objects. The SoA kernel consumes this directly; TrialSetup
/// layers per-node policy instances on top. One definition of the
/// derivation rule means the kernel cannot drift from the engines.
class TrialStreams {
 public:
  TrialStreams(net::NodeId node_count, std::uint64_t seed)
      : seeds_(seed),
        loss_rng_(seeds_.derive(static_cast<std::uint64_t>(node_count) + 1)) {
    rngs_.reserve(node_count);
    for (net::NodeId u = 0; u < node_count; ++u) {
      rngs_.emplace_back(seeds_.derive(u));
    }
  }

  [[nodiscard]] const util::SeedSequence& seeds() const noexcept {
    return seeds_;
  }
  [[nodiscard]] util::Rng& rng(net::NodeId u) noexcept { return rngs_[u]; }
  [[nodiscard]] util::Rng& loss_rng() noexcept { return loss_rng_; }

 private:
  util::SeedSequence seeds_;
  util::Rng loss_rng_;
  std::vector<util::Rng> rngs_;
};

/// Owns the per-node RNGs, the per-node policies built through the
/// engine's factory, and the loss RNG. The loss stream is derived as
/// (seed, N+1) — separate from every node stream — so enabling message
/// loss never perturbs the nodes' own random choices.
template <typename Policy>
class TrialSetup {
 public:
  using Factory = std::function<std::unique_ptr<Policy>(const net::Network&,
                                                        net::NodeId)>;

  TrialSetup(const net::Network& network, const Factory& factory,
             std::uint64_t seed)
      : network_(&network),
        factory_(factory),
        streams_(network.node_count(), seed) {
    const net::NodeId n = network.node_count();
    policies_.reserve(n);
    for (net::NodeId u = 0; u < n; ++u) {
      policies_.push_back(factory(network, u));
      M2HEW_CHECK_MSG(policies_.back() != nullptr, "factory returned null");
    }
  }

  /// Rebuilds node u's policy from scratch through the same factory — the
  /// fault layer's "reboot lost volatile state" semantics (a churned node
  /// recovering with ChurnSpec::reset_policy_on_recovery). The node keeps
  /// its RNG stream: a reboot does not re-seed the hardware generator, and
  /// keeping the stream preserves the one-stream-per-node determinism
  /// contract.
  void reset_policy(net::NodeId u) {
    policies_[u] = factory_(*network_, u);
    M2HEW_CHECK_MSG(policies_[u] != nullptr, "factory returned null");
  }

  /// The trial's seed tree, for engine-specific extra streams (e.g. the
  /// async engine's per-node clock seeds).
  [[nodiscard]] const util::SeedSequence& seeds() const noexcept {
    return streams_.seeds();
  }
  [[nodiscard]] util::Rng& rng(net::NodeId u) noexcept {
    return streams_.rng(u);
  }
  [[nodiscard]] Policy& policy(net::NodeId u) noexcept {
    return *policies_[u];
  }
  [[nodiscard]] util::Rng& loss_rng() noexcept { return streams_.loss_rng(); }

 private:
  const net::Network* network_;
  Factory factory_;
  TrialStreams streams_;
  std::vector<std::unique_ptr<Policy>> policies_;
};

}  // namespace m2hew::sim
