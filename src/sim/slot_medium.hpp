// The shared synchronous channel medium. Both slotted engines (single-
// and multi-radio) answer the same per-slot question from §II: listener
// u, tuned to channel c, hears sender v iff v is the UNIQUE in-neighbor
// of u emitting on c whose arc to u carries c — otherwise u hears a
// collision (two or more such senders) or silence (none). This class owns
// that resolution once, in the two bit-identical strategies the engines
// switch between (`EngineCommon::indexed_reception`):
//
//   * indexed: one O(#transmitters) sweep per slot groups transmitters
//     into per-channel buckets (allocated once, cleared through the
//     touched list); a listener resolves against only its channel's
//     bucket through net::Network::in_span(), early-exiting at the second
//     matching sender;
//   * reference: the original per-listener scan over the full in-link
//     list, kept as the executable specification for the equivalence
//     property tests.
//
// Both walk candidates in ascending sender id (buckets are filled in node
// id order; in-link lists are id-sorted), so sender/collision — and
// therefore policy-callback order and loss-RNG draw order — agree exactly.
#pragma once

#include <vector>

#include "net/network.hpp"
#include "net/types.hpp"

namespace m2hew::sim {

class SlotMedium {
 public:
  /// Outcome of one (listener, channel) resolution: a unique audible
  /// sender, a collision, or (kInvalidNode, false) = silence.
  struct Resolution {
    net::NodeId sender = net::kInvalidNode;
    bool collision = false;
  };

  /// `indexed` = false builds an empty medium (no bucket storage); only
  /// resolve_reference() may be used then.
  SlotMedium(net::ChannelId universe_size, bool indexed);

  /// Clears the previous slot's buckets (touched channels only).
  void begin_slot();

  /// Registers one transmitter. Must be called in ascending node id so
  /// buckets stay id-sorted; a node may appear in several buckets (one
  /// per transmitting radio) but at most once per channel.
  void add_transmitter(net::ChannelId channel, net::NodeId node);

  /// Indexed resolution of (listener, channel) against this slot's
  /// buckets.
  [[nodiscard]] Resolution resolve(const net::Network& network,
                                   net::NodeId listener,
                                   net::ChannelId channel) const;

  /// Reference resolution: scan the listener's in-links, asking the
  /// engine whether each in-neighbor currently emits on `channel`
  /// (`transmits_on(v)`). Kept as the naive executable specification;
  /// bit-identical to resolve() for the same transmitter set.
  template <typename TransmitsOn>
  [[nodiscard]] static Resolution resolve_reference(
      const net::Network& network, net::NodeId listener,
      net::ChannelId channel, const TransmitsOn& transmits_on) {
    Resolution out;
    for (const net::Network::InLink& in : network.in_links(listener)) {
      if (!transmits_on(in.from) || !in.span->contains(channel)) continue;
      if (out.sender != net::kInvalidNode) {
        out.collision = true;
        break;
      }
      out.sender = in.from;
    }
    return out;
  }

 private:
  std::vector<std::vector<net::NodeId>> buckets_;
  std::vector<net::ChannelId> touched_;
};

}  // namespace m2hew::sim
