// SoaSlotKernel: structure-of-arrays re-implementation of the slot
// engine's inner loop, for the N=10⁵–10⁶ regime the paper's asymptotic
// claims live in.
//
// run_slot_engine pays, per node per slot, a virtual policy dispatch and
// (per trial) a heap-allocated policy object, and its DiscoveryState is a
// dense N² matrix. This kernel replaces all three:
//
//   * policy-as-data  — per-node flat arrays (stage counter, stage length,
//     degree estimate) stepped against a precomputed probability matrix
//     (sim/soa_policy.hpp, built by core); no virtual calls, no per-node
//     allocations;
//   * word-level spans — each in-arc's span is a flat span-of-words slice;
//     the reception scan tests channel membership with one shift/mask;
//   * CSR coverage    — covered/first-slot live per in-arc position in the
//     network's in-link CSR order, O(arcs) not O(N²);
//   * per-trial arena — every array is sized at construction and reused
//     across run() calls; steady-state slots allocate nothing.
//
// Bit-exactness contract: for any network, SoaPolicyTable built from a
// core::SyncPolicySpec, and SlotEngineConfig, run() produces the same
// completion flag/slot, per-node activity, per-link first-coverage slots
// and robustness report as run_slot_engine with the spec's oracle factory
// (policies draw channel-then-coin from the same per-node streams; losses
// draw in listener order from the same loss stream). The randomized
// equivalence suite (tests/soa_kernel_test.cpp) enforces this, exactly as
// indexed==reference reception was pinned before.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "sim/energy.hpp"
#include "sim/fault_plan.hpp"
#include "sim/radio.hpp"
#include "sim/slot_engine.hpp"
#include "sim/soa_policy.hpp"

namespace m2hew::sim {

/// Result of one SoA-kernel trial. Mirrors SlotEngineResult, with the N²
/// DiscoveryState replaced by CSR-indexed coverage (position = index into
/// the receiver's in-link list, offset by in_offsets[receiver]).
struct SoaSlotKernelResult {
  bool complete = false;
  std::uint64_t completion_slot = 0;
  std::uint64_t slots_executed = 0;
  std::vector<RadioActivity> activity;
  RobustnessReport robustness;

  std::uint64_t total_links = 0;
  std::uint64_t covered_links = 0;
  std::uint64_t receptions = 0;

  /// In-link CSR mirror: arc a of receiver u (sources sorted ascending)
  /// sits at position in_offsets[u] + a; in_sources names the sender.
  std::vector<std::size_t> in_offsets;
  std::vector<net::NodeId> in_sources;
  /// Per arc position: 1 iff the link was covered, and the global slot of
  /// its first coverage (-1.0 while uncovered).
  std::vector<std::uint8_t> covered;
  std::vector<double> first_slot;

  [[nodiscard]] bool is_covered(net::Link link) const;
  /// First-coverage slot of a covered link; requires is_covered(link).
  [[nodiscard]] double first_coverage_slot(net::Link link) const;
};

class SoaSlotKernel {
 public:
  /// Flattens the network once: available-channel CSR, in-link CSR with
  /// word-level span copies. Reused across run() calls (trials).
  explicit SoaSlotKernel(const net::Network& network);

  /// Runs one trial. `config.indexed_reception` is ignored (the kernel has
  /// a single reception path, bit-identical to both engine paths); every
  /// other knob — seed, loss, interference, starts, faults, max_slots,
  /// stop_when_complete, on_reception, topology/epoch_length — behaves
  /// exactly as in run_slot_engine. With a multi-epoch provider the kernel
  /// must have been flattened from the provider's union network.
  [[nodiscard]] SoaSlotKernelResult run(const SoaPolicyTable& table,
                                        const SlotEngineConfig& config);

 private:
  /// Rebuilds the per-arc epoch-activity mask for `e` (cached on
  /// (provider, epoch), so consecutive slots of one epoch — and repeated
  /// trials over the same provider — pay nothing).
  void refresh_active(const net::TopologyProvider& provider, std::size_t e);

  const net::Network* network_;
  net::NodeId n_ = 0;
  std::size_t span_stride_ = 0;  // words per span slice
  std::uint64_t total_links_ = 0;

  // Immutable per-network flattening.
  std::vector<std::size_t> avail_off_;      // n+1
  std::vector<net::ChannelId> avail_flat_;  // A(u) members, ascending
  std::vector<std::size_t> in_off_;         // n+1
  std::vector<net::NodeId> in_src_;         // arc → sender
  std::vector<std::uint64_t> span_words_;   // arc → span bitset slice

  // Per-trial state, sized once and reset at each run().
  std::vector<Mode> mode_;
  std::vector<net::ChannelId> channel_;
  std::vector<std::uint32_t> slot_in_stage_;
  std::vector<std::uint32_t> stage_slots_;
  std::vector<std::uint64_t> estimate_;
  /// Consistent-hop channel law only: node-local active-slot clock
  /// (resets with the policy on churn recovery, like a fresh oracle).
  std::vector<std::uint64_t> hop_clock_;

  /// Time-varying topology support (config.topology set): the kernel's
  /// CSR stays flattened from the UNION network; this per-arc byte mask
  /// marks which union arcs exist in the cached epoch. Sized lazily at
  /// the first multi-epoch run, then reused — the slot loop itself never
  /// allocates.
  std::vector<std::uint8_t> active_;
  const net::TopologyProvider* active_provider_ = nullptr;
  std::size_t active_epoch_ = 0;
};

/// One-shot convenience wrapper: flatten, run one trial, return.
[[nodiscard]] SoaSlotKernelResult run_soa_slot_kernel(
    const net::Network& network, const SoaPolicyTable& table,
    const SlotEngineConfig& config);

}  // namespace m2hew::sim
