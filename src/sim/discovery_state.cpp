#include "sim/discovery_state.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace m2hew::sim {

namespace {
constexpr std::uint8_t kNotALink = 2;
constexpr std::uint8_t kUncovered = 0;
constexpr std::uint8_t kCovered = 1;
}  // namespace

DiscoveryState::DiscoveryState(const net::Network& network)
    : network_(&network),
      n_(network.node_count()),
      covered_(static_cast<std::size_t>(n_) * n_, kNotALink),
      first_time_(static_cast<std::size_t>(n_) * n_, -1.0),
      tables_(n_) {
  for (const net::Link link : network.links()) {
    covered_[link_slot(link.from, link.to)] = kUncovered;
    ++total_links_;
  }
}

std::size_t DiscoveryState::link_slot(net::NodeId sender,
                                      net::NodeId receiver) const noexcept {
  return static_cast<std::size_t>(sender) * n_ + receiver;
}

bool DiscoveryState::record_reception(net::NodeId sender, net::NodeId receiver,
                                      double time) {
  M2HEW_CHECK(sender < n_ && receiver < n_);
  const std::size_t slot = link_slot(sender, receiver);
  M2HEW_CHECK_MSG(covered_[slot] != kNotALink,
                  "reception on a pair that is not a discovery link");
  ++receptions_;
  if (covered_[slot] == kCovered) return false;
  covered_[slot] = kCovered;
  first_time_[slot] = time;
  ++covered_count_;
  // Receiver stores ⟨sender, A(sender) ∩ A(receiver)⟩ = span.
  tables_[receiver].push_back(
      {sender, network_->span(sender, receiver)});
  return true;
}

bool DiscoveryState::is_covered(net::Link link) const {
  M2HEW_CHECK(link.from < n_ && link.to < n_);
  return covered_[link_slot(link.from, link.to)] == kCovered;
}

double DiscoveryState::first_coverage_time(net::Link link) const {
  M2HEW_CHECK_MSG(is_covered(link), "link not covered yet");
  return first_time_[link_slot(link.from, link.to)];
}

const std::vector<NeighborRecord>& DiscoveryState::neighbor_table(
    net::NodeId u) const {
  M2HEW_CHECK(u < n_);
  return tables_[u];
}

bool DiscoveryState::table_matches_ground_truth(net::NodeId u) const {
  M2HEW_CHECK(u < n_);
  // Expected: one record per discovery link (v, u), with the span.
  std::vector<net::NodeId> expected;
  for (const net::Link link : network_->links()) {
    if (link.to == u) expected.push_back(link.from);
  }
  const auto& table = tables_[u];
  if (table.size() != expected.size()) return false;

  std::vector<net::NodeId> got;
  got.reserve(table.size());
  for (const auto& rec : table) {
    if (!(rec.common_channels == network_->span(rec.neighbor, u))) {
      return false;
    }
    got.push_back(rec.neighbor);
  }
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  return expected == got;
}

}  // namespace m2hew::sim
