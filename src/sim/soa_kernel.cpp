#include "sim/soa_kernel.hpp"

#include <algorithm>
#include <cstring>

#include "sim/engine_common.hpp"
#include "sim/trial_setup.hpp"
#include "util/check.hpp"

namespace m2hew::sim {

namespace {

[[nodiscard]] std::size_t find_arc(const std::vector<std::size_t>& offsets,
                                   const std::vector<net::NodeId>& sources,
                                   net::Link link) {
  const auto begin = sources.begin() +
                     static_cast<std::ptrdiff_t>(offsets[link.to]);
  const auto end = sources.begin() +
                   static_cast<std::ptrdiff_t>(offsets[link.to + 1]);
  const auto it = std::lower_bound(begin, end, link.from);
  M2HEW_CHECK_MSG(it != end && *it == link.from,
                  "pair is not an arc of the network");
  return static_cast<std::size_t>(it - sources.begin());
}

}  // namespace

bool SoaSlotKernelResult::is_covered(net::Link link) const {
  return covered[find_arc(in_offsets, in_sources, link)] != 0;
}

double SoaSlotKernelResult::first_coverage_slot(net::Link link) const {
  const std::size_t arc = find_arc(in_offsets, in_sources, link);
  M2HEW_CHECK_MSG(covered[arc] != 0, "link not covered yet");
  return first_slot[arc];
}

SoaSlotKernel::SoaSlotKernel(const net::Network& network)
    : network_(&network),
      n_(network.node_count()),
      span_stride_(net::ChannelSet::word_count(network.universe_size())),
      total_links_(network.links().size()) {
  avail_off_.reserve(static_cast<std::size_t>(n_) + 1);
  avail_off_.push_back(0);
  for (net::NodeId u = 0; u < n_; ++u) {
    const auto members = network.available(u).to_vector();
    avail_flat_.insert(avail_flat_.end(), members.begin(), members.end());
    avail_off_.push_back(avail_flat_.size());
  }

  in_off_.reserve(static_cast<std::size_t>(n_) + 1);
  in_off_.push_back(0);
  for (net::NodeId u = 0; u < n_; ++u) {
    for (const net::Network::InLink& in : network.in_links(u)) {
      in_src_.push_back(in.from);
      const auto words = in.span->words();
      span_words_.insert(span_words_.end(), words.begin(), words.end());
      // Narrow universes can yield zero-word spans; keep the stride.
      span_words_.resize(in_src_.size() * span_stride_, 0);
    }
    in_off_.push_back(in_src_.size());
  }

  mode_.resize(n_);
  channel_.resize(n_);
  slot_in_stage_.resize(n_);
  stage_slots_.resize(n_);
  estimate_.resize(n_);
  hop_clock_.resize(n_);
}

void SoaSlotKernel::refresh_active(const net::TopologyProvider& provider,
                                   std::size_t e) {
  if (active_provider_ == &provider && active_epoch_ == e &&
      !active_.empty()) {
    return;
  }
  active_.resize(in_src_.size());
  const net::Network& net = provider.epoch(e);
  for (net::NodeId u = 0; u < n_; ++u) {
    const std::size_t arcs_end = in_off_[u + 1];
    for (std::size_t arc = in_off_[u]; arc < arcs_end; ++arc) {
      active_[arc] = net.in_span(in_src_[arc], u) != nullptr ? 1 : 0;
    }
  }
  active_provider_ = &provider;
  active_epoch_ = e;
}

SoaSlotKernelResult SoaSlotKernel::run(const SoaPolicyTable& table,
                                       const SlotEngineConfig& config) {
  const net::NodeId n = n_;
  validate_engine_common(config, n);
  M2HEW_CHECK_MSG(table.valid(n), "malformed SoA policy table");
  for (net::NodeId u = 0; u < n; ++u) {
    M2HEW_CHECK_MSG(avail_off_[u + 1] > avail_off_[u],
                    "node needs a non-empty channel set");
  }

  TrialStreams streams(n, config.seed);
  FaultState<std::uint64_t> faults(*network_, streams.seeds(), config.faults);

  const bool has_interference =
      static_cast<bool>(config.interference) || faults.has_spectrum();
  const auto jammed = [&](std::uint64_t slot, net::NodeId who,
                          net::ChannelId c) {
    return (config.interference && config.interference(slot, who, c)) ||
           faults.spectrum_blocked(slot, who, c);
  };

  SoaSlotKernelResult result;
  result.activity.assign(n, RadioActivity{});
  result.total_links = total_links_;
  result.in_offsets = in_off_;
  result.in_sources = in_src_;
  result.covered.assign(in_src_.size(), 0);
  result.first_slot.assign(in_src_.size(), -1.0);

  // Per-trial policy state: every node starts one fresh policy.
  std::fill(slot_in_stage_.begin(), slot_in_stage_.end(), 0u);
  std::fill(stage_slots_.begin(), stage_slots_.end(),
            table.initial_stage_slots);
  std::fill(estimate_.begin(), estimate_.end(),
            static_cast<std::uint64_t>(table.initial_estimate));
  std::fill(hop_clock_.begin(), hop_clock_.end(), std::uint64_t{0});

  const unsigned p_stride = SoaPolicyTable::kMaxStageSlot + 1;
  const double* const p_staged = table.p_staged.data();
  const double* const p_constant = table.p_constant.data();

  // Time-varying topology: the CSR/coverage stay on the union network;
  // `active_` masks which union arcs exist in the current epoch. `masked`
  // is trial-invariant, so the static case pays one predictable branch.
  const net::TopologyProvider* provider =
      topology_provider_of(config, *network_);
  const bool masked = provider != nullptr;
  if (masked) {
    refresh_active(*provider, epoch_at(*provider, config.epoch_length,
                                       std::uint64_t{0}));
  }

  // Steady state below this line performs no allocation: all arrays are
  // owned by the kernel or the result and sized above (the epoch mask is
  // sized at refresh_active's first call and reused).
  for (std::uint64_t slot = 0; slot < config.max_slots; ++slot) {
    ++result.slots_executed;
    if (masked) {
      refresh_active(*provider,
                     epoch_at(*provider, config.epoch_length, slot));
    }

    // Action pass: identical draw order to the virtual policies — under
    // the uniform channel law one uniform channel pick then one Bernoulli
    // coin; under the consistent-hop law the channel is a table lookup
    // and only the coin draws (the staged/constant probabilities are
    // always in (0, 1/2], so the coin always draws).
    for (net::NodeId u = 0; u < n; ++u) {
      if (slot < start_of(config.starts, u) || faults.down_at(u, slot)) {
        mode_[u] = Mode::kQuiet;
        continue;
      }
      // Adversary roles replace the policy table entry, with draws (none
      // for a jammer; channel + coin for a Byzantine) matching the slot
      // engine's bit-identically.
      if (faults.adversaries()) {
        const AdversaryRole role = faults.role(u);
        if (role == AdversaryRole::kJammer) {
          mode_[u] = Mode::kTransmit;
          channel_[u] = faults.jam_channel(u);
          continue;
        }
        if (role == AdversaryRole::kByzantine) {
          const SlotAction action =
              faults.byzantine_slot_action(u, streams.rng(u));
          mode_[u] = action.mode;
          channel_[u] = action.channel;
          continue;
        }
      }
      if (faults.consume_reset(u, slot)) {
        slot_in_stage_[u] = 0;
        stage_slots_[u] = table.initial_stage_slots;
        estimate_[u] = static_cast<std::uint64_t>(table.initial_estimate);
        hop_clock_[u] = 0;
      }
      util::Rng& rng = streams.rng(u);
      const std::size_t off = avail_off_[u];
      const std::size_t len = avail_off_[u + 1] - off;
      if (table.channel_law == SoaChannelLaw::kConsistentHop) {
        const std::size_t w =
            static_cast<std::size_t>(hop_clock_[u]++ % table.hop_period);
        channel_[u] =
            table.hop_map[static_cast<std::size_t>(u) * table.hop_period + w];
      } else {
        channel_[u] =
            avail_flat_[off + static_cast<std::size_t>(rng.uniform(len))];
      }
      double p;
      if (table.staged) {
        const unsigned i = slot_in_stage_[u] + 1;  // paper's index, 1-based
        p = p_staged[len * p_stride + i];
        if (table.escalating) {
          if (++slot_in_stage_[u] == stage_slots_[u]) {
            slot_in_stage_[u] = 0;
            if (estimate_[u] < SoaPolicyTable::kEstimateCap) {
              estimate_[u] =
                  table.escalate_double ? estimate_[u] * 2 : estimate_[u] + 1;
            }
            stage_slots_[u] = table.stage_length(
                static_cast<std::size_t>(estimate_[u]));
          }
        } else {
          slot_in_stage_[u] = (slot_in_stage_[u] + 1) % stage_slots_[u];
        }
      } else {
        p = p_constant[u];
      }
      mode_[u] = rng.bernoulli(p) ? Mode::kTransmit : Mode::kReceive;
    }

    // Interference suppression: a transmitter sensing an active PU on its
    // chosen channel vacates (radio idle this slot).
    if (has_interference) {
      for (net::NodeId u = 0; u < n; ++u) {
        if (mode_[u] == Mode::kTransmit && jammed(slot, u, channel_[u])) {
          mode_[u] = Mode::kQuiet;
        }
      }
    }

    // Activity accounting from each node's start slot on.
    for (net::NodeId u = 0; u < n; ++u) {
      if (slot < start_of(config.starts, u) || faults.down_at(u, slot)) {
        continue;
      }
      count_mode(result.activity[u], mode_[u]);
    }

    // Reception resolution, in listener order. The flat in-CSR scan is the
    // reference resolution (unique in-neighbor transmitting on c whose
    // span carries c), with the span test as one word probe.
    for (net::NodeId u = 0; u < n; ++u) {
      if (mode_[u] != Mode::kReceive) continue;
      const net::ChannelId c = channel_[u];
      if (has_interference && jammed(slot, u, c)) continue;

      const std::size_t word = c >> 6;
      const std::uint64_t bit = 1ULL << (c & 63);
      net::NodeId sender = net::kInvalidNode;
      std::size_t sender_arc = 0;
      bool collision = false;
      const std::size_t arcs_end = in_off_[u + 1];
      for (std::size_t arc = in_off_[u]; arc < arcs_end; ++arc) {
        const net::NodeId v = in_src_[arc];
        if (mode_[v] != Mode::kTransmit || channel_[v] != c) continue;
        if (masked && active_[arc] == 0) continue;
        if ((span_words_[arc * span_stride_ + word] & bit) == 0) continue;
        if (sender != net::kInvalidNode) {
          collision = true;
          break;
        }
        sender = v;
        sender_arc = arc;
      }
      if (collision || sender == net::kInvalidNode) continue;
      // Adversarial dispositions, mirroring the slot engine: jammer noise
      // and non-responder suppression consume no loss draw; a Byzantine
      // message passes the loss gate, then lands in the fake table
      // instead of the coverage arrays (the SoA path has no policy
      // objects, so there is no trust gate — equivalence legs run
      // untrusted).
      if (faults.adversaries()) {
        if (faults.jam_noise(sender) || faults.suppressed(sender, u)) {
          continue;
        }
      }
      if (faults.message_lost(sender, u, streams.loss_rng(),
                              config.loss_probability)) {
        continue;
      }
      if (faults.fake_source(sender)) {
        (void)faults.note_fake_decode(sender, u, slot);
        continue;
      }
      ++result.receptions;
      if (result.covered[sender_arc] == 0) {
        result.covered[sender_arc] = 1;
        result.first_slot[sender_arc] = static_cast<double>(slot);
        ++result.covered_links;
      }
      faults.note_reception(sender, u, slot);
      if (config.on_reception) config.on_reception(slot, sender, u, c);
    }

    if (!result.complete && result.covered_links == result.total_links) {
      result.complete = true;
      result.completion_slot = slot;
      if (config.stop_when_complete) break;
    }
  }

  result.robustness = faults.assess_covered(
      [&result](net::Link link) { return result.is_covered(link); },
      result.slots_executed == 0 ? 0 : result.slots_executed - 1);
  return result;
}

SoaSlotKernelResult run_soa_slot_kernel(const net::Network& network,
                                        const SoaPolicyTable& table,
                                        const SlotEngineConfig& config) {
  SoaSlotKernel kernel(network);
  return kernel.run(table, config);
}

}  // namespace m2hew::sim
