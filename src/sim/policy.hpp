// Policy interfaces: the contract between the simulation engines and the
// neighbor-discovery algorithms (implemented in src/core/).
//
// A policy instance is per-node and per-trial; it owns whatever schedule
// state the algorithm needs (stage counters, degree estimates, ...). The
// engine supplies the node's RNG so that all randomness in a trial flows
// from the trial seed.
#pragma once

#include <functional>
#include <memory>

#include "net/network.hpp"
#include "net/types.hpp"
#include "sim/radio.hpp"
#include "util/rng.hpp"

namespace m2hew::sim {

/// Synchronous-system policy: called once per time slot, in order, starting
/// from the node's first active slot (slot indices are node-local).
class SyncPolicy {
 public:
  virtual ~SyncPolicy() = default;
  [[nodiscard]] virtual SlotAction next_slot(util::Rng& rng) = 0;

  /// Engine feedback: this node received a clear discovery message from
  /// `from`; `first_time` is true iff it was the first from that neighbor.
  /// The paper's algorithms ignore it (they run forever); the termination
  /// extension (core/termination.hpp) uses it to decide when to stop.
  virtual void observe_reception(net::NodeId from, bool first_time) {
    (void)from;
    (void)first_time;
  }

  /// Engine feedback after every *listening* slot: silence, a clear
  /// message, or a collision. Only policies modelling collision-detecting
  /// hardware (core/adaptive.hpp) may use the silence/collision
  /// distinction — the paper's model forbids it (§II).
  virtual void observe_listen_outcome(ListenOutcome outcome) {
    (void)outcome;
  }

  /// Admission gate, consulted before the engine records a decoded
  /// announcement of `announced` into this node's neighbor table. The
  /// default accepts everything (the paper's model trusts all
  /// transmitters); the trust wrapper (core/trust.hpp) rejects blocked
  /// IDs, which the engine reports to the fault layer as an isolation
  /// event. Wrapper policies MUST forward this to their inner policy.
  /// Rejection suppresses the reception entirely (no observe_reception,
  /// no table entry); the announced ID is what the message carried, which
  /// under a Byzantine fault need not be the physical sender's ID.
  [[nodiscard]] virtual bool admit_neighbor(net::NodeId announced) {
    (void)announced;
    return true;
  }
};

/// Asynchronous-system policy: called once at the start of each frame.
class AsyncPolicy {
 public:
  virtual ~AsyncPolicy() = default;
  [[nodiscard]] virtual FrameAction next_frame(util::Rng& rng) = 0;

  /// Engine feedback; see SyncPolicy::observe_reception. Delivered when the
  /// listening frame containing the reception is resolved (its end).
  virtual void observe_reception(net::NodeId from, bool first_time) {
    (void)from;
    (void)first_time;
  }

  /// Admission gate; see SyncPolicy::admit_neighbor.
  [[nodiscard]] virtual bool admit_neighbor(net::NodeId announced) {
    (void)announced;
    return true;
  }
};

/// Factories build one policy per node; the engines call them at trial
/// setup. They may inspect the network only through the node's own local
/// knowledge (its id and available channel set) — algorithms must stay
/// distributed — but receive the whole network for convenience; policies in
/// src/core/ deliberately read only A(u).
using SyncPolicyFactory = std::function<std::unique_ptr<SyncPolicy>(
    const net::Network&, net::NodeId)>;
using AsyncPolicyFactory = std::function<std::unique_ptr<AsyncPolicy>(
    const net::Network&, net::NodeId)>;

}  // namespace m2hew::sim
