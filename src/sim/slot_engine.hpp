// Synchronous slotted simulator (§II "Synchronous System").
//
// Global time proceeds in synchronized slots. In each slot every started
// node asks its policy for an action; then, per receiver u listening on
// channel c, u hears a clear message from a topology neighbor v iff v was
// the *only* neighbor of u transmitting on c in that slot (collisions
// produce indistinguishable noise; nodes cannot detect collisions).
//
// Variable start times (§III-B) are modeled by per-node start slots: before
// its start slot a node is silent and deaf; its policy's slot indices are
// node-local, matching a node that simply begins executing later.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/network.hpp"
#include "sim/discovery_state.hpp"
#include "sim/energy.hpp"
#include "sim/interference.hpp"
#include "sim/policy.hpp"

namespace m2hew::sim {

struct SlotEngineConfig {
  /// Hard budget on global slots simulated.
  std::uint64_t max_slots = 1'000'000;
  /// Global slot at which each node starts (empty = all start at slot 0).
  std::vector<std::uint64_t> start_slots;
  /// Probability that an otherwise-clear reception is lost (models
  /// unreliable channels, §V extension (b)). 0 = reliable. A lost message
  /// is reported to the listener as silence (signal below sensitivity).
  double loss_probability = 0.0;
  /// Optional dynamic primary-user interference. While active at a node on
  /// a channel: the node's transmissions there are suppressed (spectrum
  /// sensing vacates the channel) and listening there yields kCollision
  /// (PU noise). Null = no external interference.
  InterferenceSchedule interference;
  /// Root seed; node RNGs are derived as (seed, node).
  std::uint64_t seed = 1;
  /// Reception-resolution strategy. true (default): one O(#transmitters)
  /// sweep per slot groups transmitters into per-channel buckets and each
  /// listener resolves against only its channel's bucket through
  /// net::Network::in_span(). false: the original per-listener scan over
  /// all in-neighbors, kept as the naive reference implementation for the
  /// equivalence property test (tests/engine_equivalence_test.cpp).
  /// Both paths are bit-identical by contract: same policy-callback order
  /// (listeners in node-id order, one listen outcome per listening slot)
  /// and same loss_rng draw order (one draw per otherwise-clear
  /// reception, in listener order).
  bool indexed_reception = true;
  /// Stop as soon as discovery completes (otherwise run the full budget).
  bool stop_when_complete = true;
  /// Optional observer invoked on every clear reception:
  /// (global slot, sender, receiver, channel).
  std::function<void(std::uint64_t, net::NodeId, net::NodeId, net::ChannelId)>
      on_reception;
};

struct SlotEngineResult {
  bool complete = false;
  /// Global slot index (0-based) of the slot in which the last link was
  /// covered; meaningful only if complete.
  std::uint64_t completion_slot = 0;
  std::uint64_t slots_executed = 0;
  /// Per-node slot counts by radio mode from the node's start slot on
  /// (slots before a node starts are not radio activity and are not
  /// counted, so activity[u].total() can be less than slots_executed).
  std::vector<RadioActivity> activity;
  DiscoveryState state;
};

/// Runs one trial. The factory is invoked once per node.
[[nodiscard]] SlotEngineResult run_slot_engine(const net::Network& network,
                                               const SyncPolicyFactory& factory,
                                               const SlotEngineConfig& config);

}  // namespace m2hew::sim
