// Synchronous slotted simulator (§II "Synchronous System").
//
// Global time proceeds in synchronized slots. In each slot every started
// node asks its policy for an action; then, per receiver u listening on
// channel c, u hears a clear message from a topology neighbor v iff v was
// the *only* neighbor of u transmitting on c in that slot (collisions
// produce indistinguishable noise; nodes cannot detect collisions).
//
// Variable start times (§III-B) are modeled by per-node start slots
// (EngineCommon::starts): before its start slot a node is silent and deaf;
// its policy's slot indices are node-local, matching a node that simply
// begins executing later.
//
// The channel semantics, loss model, interference model, per-trial
// seeding and reception resolution all live in the shared medium core
// (sim/engine_common.hpp, sim/trial_setup.hpp, sim/slot_medium.hpp) and
// are common to every engine.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/network.hpp"
#include "sim/discovery_state.hpp"
#include "sim/energy.hpp"
#include "sim/engine_common.hpp"
#include "sim/interference.hpp"
#include "sim/policy.hpp"

namespace m2hew::sim {

/// Engine-specific knobs on top of the shared core (seed, loss,
/// interference, indexed_reception, stop_when_complete, starts — see
/// EngineCommon). `starts` entries are global slot indices.
struct SlotEngineConfig : SlotEngineCommon {
  /// Hard budget on global slots simulated.
  std::uint64_t max_slots = 1'000'000;
  /// Optional observer invoked on every clear reception:
  /// (global slot, sender, receiver, channel).
  std::function<void(std::uint64_t, net::NodeId, net::NodeId, net::ChannelId)>
      on_reception;
};

struct SlotEngineResult {
  bool complete = false;
  /// Global slot index (0-based) of the slot in which the last link was
  /// covered; meaningful only if complete.
  std::uint64_t completion_slot = 0;
  std::uint64_t slots_executed = 0;
  /// Per-node slot counts by radio mode from the node's start slot on
  /// (slots before a node starts are not radio activity and are not
  /// counted, so activity[u].total() can be less than slots_executed).
  std::vector<RadioActivity> activity;
  DiscoveryState state;
  /// Fault-robustness metrics; RobustnessReport::enabled is false when the
  /// config carried no fault plan.
  RobustnessReport robustness;
};

/// Runs one trial. The factory is invoked once per node.
[[nodiscard]] SlotEngineResult run_slot_engine(const net::Network& network,
                                               const SyncPolicyFactory& factory,
                                               const SlotEngineConfig& config);

}  // namespace m2hew::sim
