#include "sim/encounter.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "util/check.hpp"

namespace m2hew::sim {

EncounterIndex::EncounterIndex(const net::TopologyProvider& provider,
                               std::uint64_t epoch_slots,
                               std::uint64_t max_slots) {
  M2HEW_CHECK(epoch_slots >= 1 && max_slots >= 1);
  const net::Network& u_net = provider.union_network();
  const net::NodeId n = u_net.node_count();
  const std::size_t epochs = provider.epoch_count();

  arc_off_.reserve(static_cast<std::size_t>(n) + 1);
  arc_off_.push_back(0);
  for (net::NodeId u = 0; u < n; ++u) {
    for (const net::Network::InLink& in : u_net.in_links(u)) {
      arc_src_.push_back(in.from);
      // Walk the epoch schedule for this arc, closing a contact at every
      // active→absent transition (or at the schedule's end).
      std::uint64_t run_start = 0;
      bool in_run = false;
      for (std::size_t e = 0; e < epochs; ++e) {
        const bool active = provider.epoch(e).in_span(in.from, u) != nullptr;
        if (active && !in_run) {
          in_run = true;
          run_start = static_cast<std::uint64_t>(e) * epoch_slots;
        } else if (!active && in_run) {
          in_run = false;
          const std::uint64_t run_end =
              static_cast<std::uint64_t>(e) * epoch_slots;
          if (run_start < max_slots) {
            contacts_.push_back({run_start, std::min(run_end, max_slots)});
          }
        }
      }
      if (in_run) {
        // The last epoch extends to the end of the trial budget (runs
        // longer than the schedule stay on the final epoch).
        if (run_start < max_slots) contacts_.push_back({run_start, max_slots});
      }
      contact_off_.push_back(contacts_.size());
    }
    arc_off_.push_back(arc_src_.size());
  }
  contact_off_.insert(contact_off_.begin(), 0);
}

std::size_t EncounterIndex::contact_at(net::NodeId sender,
                                       net::NodeId receiver,
                                       std::uint64_t slot) const {
  const auto begin =
      arc_src_.begin() + static_cast<std::ptrdiff_t>(arc_off_[receiver]);
  const auto end =
      arc_src_.begin() + static_cast<std::ptrdiff_t>(arc_off_[receiver + 1]);
  const auto it = std::lower_bound(begin, end, sender);
  if (it == end || *it != sender) return npos;
  const auto arc = static_cast<std::size_t>(it - arc_src_.begin());

  // Last contact of this arc starting at or before `slot`.
  const auto c_begin =
      contacts_.begin() + static_cast<std::ptrdiff_t>(contact_off_[arc]);
  const auto c_end =
      contacts_.begin() + static_cast<std::ptrdiff_t>(contact_off_[arc + 1]);
  const auto c = std::upper_bound(
      c_begin, c_end, slot,
      [](std::uint64_t s, const Contact& contact) {
        return s < contact.start_slot;
      });
  if (c == c_begin) return npos;
  const auto idx = static_cast<std::size_t>((c - 1) - contacts_.begin());
  return slot < contacts_[idx].end_slot ? idx : npos;
}

EncounterTracker::EncounterTracker(const EncounterIndex& index)
    : index_(&index), first_detection_(index.contact_count(), -1.0) {}

void EncounterTracker::on_reception(std::uint64_t slot, net::NodeId sender,
                                    net::NodeId receiver) {
  const std::size_t c = index_->contact_at(sender, receiver, slot);
  if (c == EncounterIndex::npos) return;  // reception outside any contact
  if (first_detection_[c] < 0.0) {
    first_detection_[c] = static_cast<double>(slot);
  }
}

EncounterReport EncounterTracker::report() const {
  EncounterReport r;
  const std::vector<Contact>& contacts = index_->contacts();
  r.contacts = contacts.size();
  for (std::size_t c = 0; c < contacts.size(); ++c) {
    if (first_detection_[c] < 0.0) continue;
    ++r.detected;
    const double latency =
        first_detection_[c] - static_cast<double>(contacts[c].start_slot);
    const double duration = static_cast<double>(contacts[c].end_slot -
                                                contacts[c].start_slot);
    r.detection_latency.push_back(latency);
    r.latency_over_duration.push_back(latency / duration);
  }
  return r;
}

}  // namespace m2hew::sim
