#include "core/baseline_deterministic.hpp"

#include <memory>

#include "util/check.hpp"

namespace m2hew::core {

DeterministicBaselinePolicy::DeterministicBaselinePolicy(
    const net::ChannelSet& available, net::NodeId id, net::NodeId id_bound,
    net::ChannelId universe_size)
    : available_(available),
      id_(id),
      id_bound_(id_bound),
      universe_size_(universe_size) {
  M2HEW_CHECK(id_bound_ >= 1);
  M2HEW_CHECK_MSG(id_ < id_bound_, "node id outside the agreed id range");
  M2HEW_CHECK(universe_size_ >= 1);
}

sim::SlotAction DeterministicBaselinePolicy::next_slot(util::Rng&) {
  const std::uint64_t slot = slot_++;
  const auto turn = static_cast<net::NodeId>(slot % id_bound_);
  const auto channel =
      static_cast<net::ChannelId>((slot / id_bound_) % universe_size_);

  sim::SlotAction action;
  if (!available_.contains(channel)) {
    return action;  // channel busy/unsupported locally: stay quiet
  }
  action.channel = channel;
  action.mode =
      (turn == id_) ? sim::Mode::kTransmit : sim::Mode::kReceive;
  return action;
}

sim::SyncPolicyFactory make_deterministic_baseline(
    net::ChannelId universe_size) {
  return [universe_size](const net::Network& network, net::NodeId u)
             -> std::unique_ptr<sim::SyncPolicy> {
    return std::make_unique<DeterministicBaselinePolicy>(
        network.available(u), u, network.node_count(), universe_size);
  };
}

}  // namespace m2hew::core
