#include "core/algorithm3.hpp"

#include "core/transmit_probability.hpp"
#include "util/check.hpp"

namespace m2hew::core {

Algorithm3Policy::Algorithm3Policy(const net::ChannelSet& available,
                                   std::size_t delta_est)
    : channels_(available.to_vector()),
      p_(alg3_probability(available.size(), delta_est)) {
  M2HEW_CHECK_MSG(!channels_.empty(), "node needs a non-empty channel set");
}

sim::SlotAction Algorithm3Policy::next_slot(util::Rng& rng) {
  sim::SlotAction action;
  action.channel = rng.pick(std::span<const net::ChannelId>(channels_));
  action.mode = rng.bernoulli(p_) ? sim::Mode::kTransmit : sim::Mode::kReceive;
  return action;
}

}  // namespace m2hew::core
