// Baseline: the universal-channel-set extension of a single-channel
// neighbor-discovery (birthday) protocol — the strawman discussed in §I.
//
// All nodes agree on the universal channel set U and on a common start
// time, and run one instance of the single-channel randomized protocol on
// every channel of U *concurrently* by time-multiplexing: in global slot t
// the active channel is (t mod |U|). A node participates in a slot iff the
// active channel is in its available set (transmitting with a fixed
// probability, else listening); otherwise it stays quiet.
//
// Its disadvantages, which bench E6 measures: the running time is linear in
// |U| regardless of how small the nodes' available sets are, it needs
// global agreement on U, and it needs identical start times.
#pragma once

#include <cstddef>

#include "net/channel_set.hpp"
#include "sim/policy.hpp"

namespace m2hew::core {

class UniversalBaselinePolicy final : public sim::SyncPolicy {
 public:
  /// `universe_size` = |U| (must cover every channel in A(u));
  /// `transmit_probability` is the birthday-protocol transmit chance used
  /// whenever the node participates (1/2 when the degree is unknown;
  /// ~1/(Δ+1) when a degree bound is available).
  UniversalBaselinePolicy(const net::ChannelSet& available,
                          net::ChannelId universe_size,
                          double transmit_probability = 0.5);

  [[nodiscard]] sim::SlotAction next_slot(util::Rng& rng) override;

 private:
  net::ChannelSet available_;
  net::ChannelId universe_size_;
  double p_;
  std::uint64_t slot_ = 0;  // node-local slot counter (= global slot when
                            // start times are identical, as assumed)
};

}  // namespace m2hew::core
