#include "core/baseline_universal.hpp"

#include "util/check.hpp"

namespace m2hew::core {

UniversalBaselinePolicy::UniversalBaselinePolicy(
    const net::ChannelSet& available, net::ChannelId universe_size,
    double transmit_probability)
    : available_(available),
      universe_size_(universe_size),
      p_(transmit_probability) {
  M2HEW_CHECK(universe_size_ >= 1);
  M2HEW_CHECK(p_ > 0.0 && p_ < 1.0);
  M2HEW_CHECK_MSG(available_.universe_size() <= universe_size_ ||
                      available_.size() > 0,
                  "available set must fit the agreed universe");
}

sim::SlotAction UniversalBaselinePolicy::next_slot(util::Rng& rng) {
  const auto active =
      static_cast<net::ChannelId>(slot_ % universe_size_);
  ++slot_;

  sim::SlotAction action;
  if (!available_.contains(active)) {
    action.mode = sim::Mode::kQuiet;
    return action;
  }
  action.channel = active;
  action.mode = rng.bernoulli(p_) ? sim::Mode::kTransmit : sim::Mode::kReceive;
  return action;
}

}  // namespace m2hew::core
