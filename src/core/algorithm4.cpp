#include "core/algorithm4.hpp"

#include "core/transmit_probability.hpp"
#include "util/check.hpp"

namespace m2hew::core {

Algorithm4Policy::Algorithm4Policy(const net::ChannelSet& available,
                                   std::size_t delta_est,
                                   unsigned slots_per_frame)
    : channels_(available.to_vector()),
      p_(alg4_probability(available.size(), delta_est, slots_per_frame)) {
  M2HEW_CHECK_MSG(!channels_.empty(), "node needs a non-empty channel set");
}

sim::FrameAction Algorithm4Policy::next_frame(util::Rng& rng) {
  sim::FrameAction action;
  action.channel = rng.pick(std::span<const net::ChannelId>(channels_));
  action.mode = rng.bernoulli(p_) ? sim::Mode::kTransmit : sim::Mode::kReceive;
  return action;
}

}  // namespace m2hew::core
