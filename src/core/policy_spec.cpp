#include "core/policy_spec.hpp"

#include "core/algorithms.hpp"
#include "core/competitors.hpp"
#include "core/transmit_probability.hpp"
#include "util/check.hpp"

namespace m2hew::core {

sim::SyncPolicyFactory make_policy_factory(const SyncPolicySpec& spec) {
  switch (spec.kind) {
    case SyncPolicySpec::Kind::kAlgorithm1:
      return make_algorithm1(spec.delta_est);
    case SyncPolicySpec::Kind::kAlgorithm2:
      return make_algorithm2(spec.schedule);
    case SyncPolicySpec::Kind::kAlgorithm3:
      return make_algorithm3(spec.delta_est);
    case SyncPolicySpec::Kind::kConsistentHop:
      return make_consistent_hop();
  }
  M2HEW_CHECK_MSG(false, "unknown SyncPolicySpec kind");
  return {};
}

sim::SoaPolicyTable build_soa_policy_table(const net::Network& network,
                                           const SyncPolicySpec& spec) {
  sim::SoaPolicyTable table;
  const std::size_t s = network.max_channel_set_size();

  const auto fill_staged = [&table, s]() {
    table.staged = true;
    table.max_available = s;
    const unsigned stride = sim::SoaPolicyTable::kMaxStageSlot + 1;
    // Row a = 0 stays zero: the kernel rejects empty available sets, so
    // it is never read (and alg1_slot_probability requires a >= 1).
    table.p_staged.assign((s + 1) * stride, 0.0);
    for (std::size_t a = 1; a <= s; ++a) {
      for (unsigned i = 1; i <= sim::SoaPolicyTable::kMaxStageSlot; ++i) {
        table.p_staged[a * stride + i] = alg1_slot_probability(a, i);
      }
    }
  };

  switch (spec.kind) {
    case SyncPolicySpec::Kind::kAlgorithm1:
      M2HEW_CHECK(spec.delta_est >= 1);
      fill_staged();
      table.escalating = false;
      table.initial_estimate = spec.delta_est;
      table.initial_stage_slots = stage_length(spec.delta_est);
      break;
    case SyncPolicySpec::Kind::kAlgorithm2:
      fill_staged();
      table.escalating = true;
      table.escalate_double = spec.schedule == EstimateSchedule::kDouble;
      table.initial_estimate = 2;
      table.initial_stage_slots = stage_length(2);
      table.stage_length = &stage_length;
      break;
    case SyncPolicySpec::Kind::kAlgorithm3: {
      table.staged = false;
      const net::NodeId n = network.node_count();
      table.p_constant.reserve(n);
      for (net::NodeId u = 0; u < n; ++u) {
        table.p_constant.push_back(
            alg3_probability(network.available(u).size(), spec.delta_est));
      }
      break;
    }
    case SyncPolicySpec::Kind::kConsistentHop: {
      // Constant fair coin + the deterministic hop map: entry w of node
      // u's row is w itself when u holds channel w, else the consistent
      // remap into sorted A(u) — the same rule ConsistentHopPolicy
      // applies per slot, precomputed once per universe position.
      table.staged = false;
      table.channel_law = sim::SoaChannelLaw::kConsistentHop;
      const net::ChannelId universe = network.universe_size();
      M2HEW_CHECK(universe >= 1);
      table.hop_period = universe;
      const net::NodeId n = network.node_count();
      table.p_constant.assign(n, kCompetitorTransmitProbability);
      table.hop_map.reserve(static_cast<std::size_t>(n) * universe);
      for (net::NodeId u = 0; u < n; ++u) {
        const net::ChannelSet& available = network.available(u);
        const auto channels = available.to_vector();
        M2HEW_CHECK_MSG(!channels.empty(),
                        "node needs a non-empty channel set");
        for (net::ChannelId w = 0; w < universe; ++w) {
          table.hop_map.push_back(available.contains(w)
                                      ? w
                                      : channels[w % channels.size()]);
        }
      }
      break;
    }
  }
  return table;
}

}  // namespace m2hew::core
