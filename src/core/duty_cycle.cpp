#include "core/duty_cycle.hpp"

#include <utility>

#include "util/check.hpp"

namespace m2hew::core {

DutyCycledSyncPolicy::DutyCycledSyncPolicy(
    std::unique_ptr<sim::SyncPolicy> inner, std::uint64_t duty_on,
    std::uint64_t duty_period)
    : inner_(std::move(inner)), duty_on_(duty_on), duty_period_(duty_period) {
  M2HEW_CHECK(inner_ != nullptr);
  M2HEW_CHECK_MSG(duty_on >= 1 && duty_on <= duty_period,
                  "need 1 <= duty_on <= duty_period");
}

sim::SlotAction DutyCycledSyncPolicy::next_slot(util::Rng& rng) {
  const bool active = slot_ % duty_period_ < duty_on_;
  ++slot_;
  if (!active) return sim::SlotAction{};  // radio off, no draws
  return inner_->next_slot(rng);
}

void DutyCycledSyncPolicy::observe_reception(net::NodeId from,
                                             bool first_time) {
  inner_->observe_reception(from, first_time);
}

void DutyCycledSyncPolicy::observe_listen_outcome(sim::ListenOutcome outcome) {
  inner_->observe_listen_outcome(outcome);
}

sim::SyncPolicyFactory with_duty_cycle(sim::SyncPolicyFactory inner,
                                       std::uint64_t duty_on,
                                       std::uint64_t duty_period) {
  M2HEW_CHECK_MSG(duty_on >= 1 && duty_on <= duty_period,
                  "need 1 <= duty_on <= duty_period");
  if (duty_on == duty_period) return inner;  // always on
  return [inner = std::move(inner), duty_on, duty_period](
             const net::Network& network, net::NodeId u) {
    return std::make_unique<DutyCycledSyncPolicy>(inner(network, u), duty_on,
                                                  duty_period);
  };
}

}  // namespace m2hew::core
