// Two-hop neighbor discovery (§I: "Many algorithms ... implicitly assume
// that all nodes know their one-hop and sometimes even two-hop neighbors").
//
// After one-hop discovery completes, a second randomized exchange phase
// runs in which every transmission carries the sender's *discovered
// neighbor table* instead of its channel set. A node that hears neighbor v
// clearly in phase 2 learns v's table; once it has heard every discovered
// in-neighbor once, it knows its full two-hop neighborhood:
//
//   twohop(u) = ∪ { onehop(v) : v ∈ onehop(u) } \ ({u} ∪ onehop(u))
//
// The phase-2 radio schedule is identical to Algorithm 3 (same coverage
// analysis applies: every (v, u) link must be covered once more), so the
// phase costs another Theorem-3 budget.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "sim/slot_engine.hpp"

namespace m2hew::core {

/// Ground-truth two-hop sets (sorted), computed from the network: nodes
/// reachable through one discovery link followed by another, excluding u
/// itself and its one-hop in-neighbors.
[[nodiscard]] std::vector<std::vector<net::NodeId>> two_hop_ground_truth(
    const net::Network& network);

struct TwoHopResult {
  bool complete = false;        ///< every node heard all its in-neighbors
  std::uint64_t phase1_slots = 0;
  std::uint64_t phase2_slots = 0;
  /// Two-hop sets as assembled from received phase-2 tables (sorted).
  std::vector<std::vector<net::NodeId>> two_hop;
};

/// Runs both phases with Algorithm 3 under the given degree bound. Phase 2
/// reuses the slot engine: covering link (v, u) in phase 2 models u
/// receiving v's table. Budgets apply per phase.
[[nodiscard]] TwoHopResult run_two_hop_discovery(
    const net::Network& network, std::size_t delta_est,
    const sim::SlotEngineConfig& config);

}  // namespace m2hew::core
