// Duty cycling — the energy knob of the contact-tracing profile.
//
// Low-power discovery deployments (BLE beacons, sensor wakeup schedules)
// do not run the radio every slot: the protocol is active for a fixed
// prefix of each period and the radio is off for the rest. This module
// wraps any synchronous policy in such a schedule: during the first
// `duty_on` slots of every `duty_period`-slot window the inner policy
// runs unmodified; during the remaining slots the node is quiet, the
// inner policy is NOT polled and no RNG draws occur — so the wrapped
// policy consumes exactly the random stream it would consume running
// `duty_on` of every `duty_period` slots back-to-back, and its node-local
// slot arithmetic (stage counters etc.) advances only on active slots.
//
// With mobility (net/topology_provider.hpp) this is the latency/energy
// trade-off the E25 bench sweeps: a lower duty cycle spends less energy
// per contact but risks missing short contacts entirely.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/policy.hpp"

namespace m2hew::core {

/// Wraps a synchronous policy in an on/off schedule: active during the
/// first `duty_on` slots of each `duty_period` window (node-local slots,
/// so late starters keep a full window), quiet otherwise.
class DutyCycledSyncPolicy final : public sim::SyncPolicy {
 public:
  DutyCycledSyncPolicy(std::unique_ptr<sim::SyncPolicy> inner,
                       std::uint64_t duty_on, std::uint64_t duty_period);

  [[nodiscard]] sim::SlotAction next_slot(util::Rng& rng) override;
  /// Observations are forwarded verbatim (they can only arrive for active
  /// slots — an off slot never listens).
  void observe_reception(net::NodeId from, bool first_time) override;
  void observe_listen_outcome(sim::ListenOutcome outcome) override;
  /// Forwarded so a trust wrapper keeps its admission authority when duty
  /// cycling wraps it.
  [[nodiscard]] bool admit_neighbor(net::NodeId announced) override {
    return inner_->admit_neighbor(announced);
  }

 private:
  std::unique_ptr<sim::SyncPolicy> inner_;
  std::uint64_t duty_on_;
  std::uint64_t duty_period_;
  std::uint64_t slot_ = 0;  // node-local slot index
};

/// Wraps an existing factory so every node runs duty-cycled. Requires
/// 1 <= duty_on <= duty_period; duty_on == duty_period returns the inner
/// factory unchanged (always on).
[[nodiscard]] sim::SyncPolicyFactory with_duty_cycle(
    sim::SyncPolicyFactory inner, std::uint64_t duty_on,
    std::uint64_t duty_period);

}  // namespace m2hew::core
