#include "core/algorithm2.hpp"

#include "core/transmit_probability.hpp"
#include "util/check.hpp"

namespace m2hew::core {

Algorithm2Policy::Algorithm2Policy(const net::ChannelSet& available,
                                   EstimateSchedule schedule)
    : channels_(available.to_vector()),
      available_size_(available.size()),
      schedule_(schedule),
      stage_slots_(stage_length(d_)) {
  M2HEW_CHECK_MSG(!channels_.empty(), "node needs a non-empty channel set");
}

sim::SlotAction Algorithm2Policy::next_slot(util::Rng& rng) {
  const unsigned i = slot_in_stage_ + 1;

  sim::SlotAction action;
  action.channel = rng.pick(std::span<const net::ChannelId>(channels_));
  const double p = alg1_slot_probability(available_size_, i);
  action.mode = rng.bernoulli(p) ? sim::Mode::kTransmit : sim::Mode::kReceive;

  ++slot_in_stage_;
  if (slot_in_stage_ == stage_slots_) {
    // Stage finished: advance the estimate and recompute the stage length.
    // Saturate to avoid overflow on very long runs (the doubling schedule
    // reaches 2^63 within ~2000 stages).
    slot_in_stage_ = 0;
    constexpr std::size_t kEstimateCap = std::size_t{1} << 62;
    if (d_ < kEstimateCap) {
      d_ = (schedule_ == EstimateSchedule::kIncrement) ? d_ + 1 : d_ * 2;
    }
    stage_slots_ = stage_length(d_);
  }
  return action;
}

}  // namespace m2hew::core
