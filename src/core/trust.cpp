#include "core/trust.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace m2hew::core {

TrustedSyncPolicy::TrustedSyncPolicy(std::unique_ptr<sim::SyncPolicy> inner,
                                     const TrustConfig& config)
    : inner_(std::move(inner)), config_(config) {
  validate_trust_config(config_);
}

sim::SlotAction TrustedSyncPolicy::next_slot(util::Rng& rng) {
  // Prune lazily, a few times per entry window: the check is one modulo
  // on the hot path and the sweep itself is O(records).
  const std::uint64_t stride = std::max<std::uint64_t>(
      std::uint64_t{1}, config_.entry_window / 4);
  if (!records_.empty() && slot_ % stride == 0) prune(slot_);
  ++slot_;
  return inner_->next_slot(rng);
}

void TrustedSyncPolicy::observe_reception(net::NodeId from, bool first_time) {
  inner_->observe_reception(from, first_time);
}

void TrustedSyncPolicy::observe_listen_outcome(sim::ListenOutcome outcome) {
  inner_->observe_listen_outcome(outcome);
}

TrustedSyncPolicy::Record* TrustedSyncPolicy::find(net::NodeId id) {
  for (Record& rec : records_) {
    if (rec.id == id) return &rec;
  }
  return nullptr;
}

void TrustedSyncPolicy::prune(std::uint64_t now) {
  // Windowed last-seen table: drop records the node has not heard from
  // within entry_window. A blocked record survives until its block
  // expires — forgetting a block early would hand the attacker a free
  // reset just by going quiet.
  records_.erase(
      std::remove_if(records_.begin(), records_.end(),
                     [&](const Record& rec) {
                       if (rec.is_blocked && now < rec.blocked_until) {
                         return false;
                       }
                       return now - rec.last_seen > config_.entry_window;
                     }),
      records_.end());
}

bool TrustedSyncPolicy::admit_neighbor(net::NodeId announced) {
  // The current slot is the one whose next_slot most recently ran.
  const std::uint64_t now = slot_ == 0 ? 0 : slot_ - 1;
  Record* rec = find(announced);
  if (rec == nullptr) {
    Record fresh;
    fresh.id = announced;
    fresh.last_seen = now;
    fresh.last_update = now;
    fresh.window_start = now;
    records_.push_back(fresh);
    rec = &records_.back();
  }

  // Rate accounting counts every announcement attempt, admitted or not,
  // so a blocked hammerer is re-blocked the moment its probation starts.
  if (now - rec->window_start >= config_.rate_window) {
    rec->window_start = now;
    rec->window_count = 0;
  }
  ++rec->window_count;
  const bool anomalous = rec->window_count > config_.max_per_window;

  // Lazy decay: pull the score back toward full trust for the slots since
  // the last update (forgiveness for past sins), then apply this
  // attempt's verdict.
  const double pull =
      std::pow(config_.decay, static_cast<double>(now - rec->last_update));
  rec->score = 1.0 - (1.0 - rec->score) * pull;
  rec->last_update = now;
  if (anomalous) {
    rec->score -= config_.rate_penalty;
    rec->window_start = now;
    rec->window_count = 0;
  } else {
    rec->score = std::min(1.0, rec->score + config_.reward);
  }
  rec->last_seen = now;

  if (rec->is_blocked) {
    if (now < rec->blocked_until) return false;
    // Probation: the block expires, the ID restarts exactly at the
    // threshold — one more anomaly re-blocks it immediately.
    rec->is_blocked = false;
    rec->score = std::max(rec->score, config_.threshold);
  }
  if (rec->score < config_.threshold) {
    rec->is_blocked = true;
    rec->blocked_until = now + config_.block_slots;
    return false;
  }
  return true;
}

bool TrustedSyncPolicy::blocked(net::NodeId id) const {
  for (const Record& rec : records_) {
    if (rec.id == id) return rec.is_blocked;
  }
  return false;
}

sim::SyncPolicyFactory with_trust(sim::SyncPolicyFactory inner,
                                  const TrustConfig& config) {
  validate_trust_config(config);
  if (!config.enabled) return inner;
  return [inner = std::move(inner), config](const net::Network& network,
                                            net::NodeId u) {
    return std::make_unique<TrustedSyncPolicy>(inner(network, u), config);
  };
}

void validate_trust_config(const TrustConfig& config) {
  M2HEW_CHECK_MSG(config.threshold >= 0.0 && config.threshold < 1.0,
                  "trust threshold must be in [0, 1)");
  M2HEW_CHECK_MSG(config.reward >= 0.0, "trust reward must be >= 0");
  M2HEW_CHECK_MSG(config.rate_penalty > 0.0,
                  "trust rate penalty must be > 0");
  M2HEW_CHECK_MSG(config.decay > 0.0 && config.decay <= 1.0,
                  "trust decay must be in (0, 1]");
  M2HEW_CHECK_MSG(config.rate_window >= 1,
                  "trust rate window must be >= 1 slot");
  M2HEW_CHECK_MSG(config.max_per_window >= 1,
                  "trust max-per-window must be >= 1");
  M2HEW_CHECK_MSG(config.block_slots >= 1,
                  "trust block duration must be >= 1 slot");
  M2HEW_CHECK_MSG(config.entry_window >= 1,
                  "trust entry window must be >= 1 slot");
}

}  // namespace m2hew::core
