// Extension study: what does collision detection buy?
//
// The paper's model explicitly assumes nodes CANNOT detect collisions
// (§II), and its degree-oblivious Algorithm 2 pays an O(log M) factor for
// sweeping the estimate upward blindly. Related work [21], [22] assumes
// collision-detecting hardware. This policy exploits that stronger model:
// it runs the Algorithm-3 schedule but *adapts* its degree estimate from
// listen feedback — a collision means too many transmitters (estimate up,
// multiplicatively), prolonged silence means the channel is over-throttled
// (estimate down, additively). Bench E16 compares it against Algorithm 2
// (no knowledge, paper model) and Algorithm 3 given an oracle Δ.
#pragma once

#include <cstddef>
#include <vector>

#include "net/channel_set.hpp"
#include "sim/policy.hpp"

namespace m2hew::core {

/// Controller constants (defaults tuned on clique/unit-disk workloads; see
/// bench E16). `max_estimate` plays the same role as the loose upper bound
/// Δ_est of Algorithm 1: it only needs to generously over-estimate the
/// maximum degree, and it is what keeps a collision burst from pinning the
/// estimate astronomically high.
struct AdaptiveTuning {
  std::size_t initial_estimate = 2;
  std::size_t max_estimate = 4096;
  /// Estimate multiplier on an observed collision.
  double increase_factor = 1.25;
  /// Consecutive collision-free listening slots before the estimate decays.
  std::size_t silence_before_decay = 1;
  /// Decay step: estimate -= max(1, estimate / decay_divisor). Both
  /// directions must be multiplicative or the exponential growth from
  /// collisions outruns the decay and the estimate diverges.
  std::size_t decay_divisor = 8;
};

class AdaptiveDegreePolicy final : public sim::SyncPolicy {
 public:
  explicit AdaptiveDegreePolicy(const net::ChannelSet& available,
                                AdaptiveTuning tuning = {});

  [[nodiscard]] sim::SlotAction next_slot(util::Rng& rng) override;
  void observe_listen_outcome(sim::ListenOutcome outcome) override;

  [[nodiscard]] std::size_t current_estimate() const noexcept {
    return estimate_;
  }

 private:
  std::vector<net::ChannelId> channels_;
  std::size_t available_size_;
  AdaptiveTuning tuning_;
  std::size_t estimate_;
  std::size_t silent_streak_ = 0;
};

/// Factory for the engines.
[[nodiscard]] sim::SyncPolicyFactory make_adaptive(
    AdaptiveTuning tuning = {});

}  // namespace m2hew::core
