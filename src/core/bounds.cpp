#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "core/transmit_probability.hpp"
#include "util/check.hpp"

namespace m2hew::core {

namespace {

void validate(const BoundParams& p) {
  M2HEW_CHECK(p.n >= 1);
  M2HEW_CHECK(p.s >= 1);
  M2HEW_CHECK(p.delta >= 1);
  M2HEW_CHECK(p.delta_est >= 1);
  M2HEW_CHECK(p.rho > 0.0 && p.rho <= 1.0);
  M2HEW_CHECK(p.epsilon > 0.0 && p.epsilon < 1.0);
}

[[nodiscard]] double ln_n2_over_eps(const BoundParams& p) {
  const double n = static_cast<double>(p.n);
  return std::log(n * n / p.epsilon);
}

}  // namespace

double eq6_stage_coverage_lower_bound(const BoundParams& p) {
  validate(p);
  return p.rho /
         (16.0 * static_cast<double>(std::max(p.s, p.delta)));
}

double theorem1_stage_bound(const BoundParams& p) {
  validate(p);
  return (16.0 * static_cast<double>(std::max(p.s, p.delta)) / p.rho) *
         ln_n2_over_eps(p);
}

double theorem1_slot_bound(const BoundParams& p) {
  return theorem1_stage_bound(p) *
         static_cast<double>(stage_length(p.delta_est));
}

double theorem2_stage_bound(const BoundParams& p) {
  validate(p);
  return static_cast<double>(p.delta) + theorem1_stage_bound(p);
}

double theorem2_slot_bound(const BoundParams& p) {
  const auto stages =
      static_cast<std::size_t>(std::ceil(theorem2_stage_bound(p)));
  double slots = 0.0;
  // Stage k (k = 0, 1, ...) runs with estimate d = 2 + k and lasts
  // ⌈log₂ d⌉ slots.
  for (std::size_t k = 0; k < stages; ++k) {
    slots += static_cast<double>(stage_length(2 + k));
  }
  return slots;
}

double alg3_slot_coverage_lower_bound(const BoundParams& p) {
  validate(p);
  return p.rho /
         (8.0 * static_cast<double>(std::max(2 * p.s, p.delta_est)));
}

double theorem3_slot_bound(const BoundParams& p) {
  validate(p);
  return (8.0 * static_cast<double>(std::max(2 * p.s, p.delta_est)) / p.rho) *
         ln_n2_over_eps(p);
}

double lemma5_pair_coverage_lower_bound(const BoundParams& p) {
  validate(p);
  return p.rho /
         (8.0 * static_cast<double>(std::max(2 * p.s, 3 * p.delta_est)));
}

double theorem9_frame_bound(const BoundParams& p) {
  validate(p);
  return (48.0 * static_cast<double>(std::max(2 * p.s, 3 * p.delta_est)) /
          p.rho) *
         ln_n2_over_eps(p);
}

double theorem10_realtime_bound(const BoundParams& p, double frame_length,
                                double max_drift) {
  M2HEW_CHECK(frame_length > 0.0);
  M2HEW_CHECK(max_drift >= 0.0 && max_drift < 1.0);
  return (theorem9_frame_bound(p) + 1.0) * frame_length / (1.0 - max_drift);
}

}  // namespace m2hew::core
