#include "core/multi_radio.hpp"

#include <memory>

#include "core/transmit_probability.hpp"
#include "util/check.hpp"

namespace m2hew::core {

MultiRadioAlg3Policy::MultiRadioAlg3Policy(const net::ChannelSet& available,
                                           unsigned radios,
                                           std::size_t delta_est)
    : radios_(radios), stripes_(radios) {
  M2HEW_CHECK(radios >= 1);
  M2HEW_CHECK(delta_est >= 1);
  M2HEW_CHECK_MSG(!available.empty(), "node needs a non-empty channel set");
  for (const net::ChannelId c : available.to_vector()) {
    stripes_[c % radios].push_back(c);
  }
  transmit_probability_.reserve(radios);
  for (unsigned r = 0; r < radios; ++r) {
    transmit_probability_.push_back(
        stripes_[r].empty()
            ? 0.0
            : alg3_probability(stripes_[r].size(), delta_est));
  }
}

const std::vector<net::ChannelId>& MultiRadioAlg3Policy::stripe(
    unsigned r) const {
  M2HEW_CHECK(r < radios_);
  return stripes_[r];
}

std::vector<sim::SlotAction> MultiRadioAlg3Policy::next_slot(util::Rng& rng) {
  std::vector<sim::SlotAction> actions(radios_);
  for (unsigned r = 0; r < radios_; ++r) {
    if (stripes_[r].empty()) continue;  // quiet radio
    actions[r].channel =
        rng.pick(std::span<const net::ChannelId>(stripes_[r]));
    actions[r].mode = rng.bernoulli(transmit_probability_[r])
                          ? sim::Mode::kTransmit
                          : sim::Mode::kReceive;
  }
  return actions;
}

sim::MultiRadioPolicyFactory make_multi_radio_alg3(unsigned radios,
                                                   std::size_t delta_est) {
  return [radios, delta_est](const net::Network& network, net::NodeId u)
             -> std::unique_ptr<sim::MultiRadioPolicy> {
    return std::make_unique<MultiRadioAlg3Policy>(network.available(u),
                                                  radios, delta_est);
  };
}

SingleRadioSyncAdapter::SingleRadioSyncAdapter(
    std::unique_ptr<sim::SyncPolicy> inner)
    : inner_(std::move(inner)) {
  M2HEW_CHECK_MSG(inner_ != nullptr, "adapter needs a policy");
}

std::vector<sim::SlotAction> SingleRadioSyncAdapter::next_slot(
    util::Rng& rng) {
  return {inner_->next_slot(rng)};
}

void SingleRadioSyncAdapter::observe_reception(unsigned radio,
                                               net::NodeId from,
                                               bool first_time) {
  (void)radio;
  inner_->observe_reception(from, first_time);
}

void SingleRadioSyncAdapter::observe_listen_outcome(
    unsigned radio, sim::ListenOutcome outcome) {
  (void)radio;
  inner_->observe_listen_outcome(outcome);
}

sim::MultiRadioPolicyFactory as_multi_radio(sim::SyncPolicyFactory factory) {
  M2HEW_CHECK_MSG(factory != nullptr, "as_multi_radio needs a factory");
  return [factory = std::move(factory)](const net::Network& network,
                                        net::NodeId u)
             -> std::unique_ptr<sim::MultiRadioPolicy> {
    return std::make_unique<SingleRadioSyncAdapter>(factory(network, u));
  };
}

}  // namespace m2hew::core
