#include "core/adaptive.hpp"

#include <algorithm>
#include <memory>

#include "core/transmit_probability.hpp"
#include "util/check.hpp"

namespace m2hew::core {

AdaptiveDegreePolicy::AdaptiveDegreePolicy(const net::ChannelSet& available,
                                           AdaptiveTuning tuning)
    : channels_(available.to_vector()),
      available_size_(available.size()),
      tuning_(tuning),
      estimate_(tuning.initial_estimate) {
  M2HEW_CHECK_MSG(!channels_.empty(), "node needs a non-empty channel set");
  M2HEW_CHECK(tuning_.initial_estimate >= 1);
  M2HEW_CHECK(tuning_.max_estimate >= tuning_.initial_estimate);
  M2HEW_CHECK(tuning_.increase_factor > 1.0);
  M2HEW_CHECK(tuning_.silence_before_decay >= 1);
  M2HEW_CHECK(tuning_.decay_divisor >= 1);
}

sim::SlotAction AdaptiveDegreePolicy::next_slot(util::Rng& rng) {
  sim::SlotAction action;
  action.channel = rng.pick(std::span<const net::ChannelId>(channels_));
  const double p = alg3_probability(available_size_, estimate_);
  action.mode = rng.bernoulli(p) ? sim::Mode::kTransmit : sim::Mode::kReceive;
  return action;
}

void AdaptiveDegreePolicy::observe_listen_outcome(
    sim::ListenOutcome outcome) {
  switch (outcome) {
    case sim::ListenOutcome::kCollision: {
      silent_streak_ = 0;
      const auto next = static_cast<std::size_t>(
          static_cast<double>(estimate_) * tuning_.increase_factor);
      estimate_ = std::min(std::max(next, estimate_ + 1),
                           tuning_.max_estimate);
      break;
    }
    case sim::ListenOutcome::kClear:
    case sim::ListenOutcome::kSilence:
      // Any collision-free listening slot is evidence the channel is not
      // over-contended; clear messages must count too, or in a busy
      // network the decay never fires and one collision burst pins the
      // estimate high forever (the nodes stuck listening then starve
      // their own neighbors of transmissions).
      ++silent_streak_;
      if (silent_streak_ >= tuning_.silence_before_decay) {
        silent_streak_ = 0;
        const std::size_t step =
            std::max<std::size_t>(1, estimate_ / tuning_.decay_divisor);
        estimate_ = estimate_ > step ? estimate_ - step : 1;
      }
      break;
  }
}

sim::SyncPolicyFactory make_adaptive(AdaptiveTuning tuning) {
  return [tuning](const net::Network& network, net::NodeId u)
             -> std::unique_ptr<sim::SyncPolicy> {
    return std::make_unique<AdaptiveDegreePolicy>(network.available(u),
                                                  tuning);
  };
}

}  // namespace m2hew::core
