// SyncPolicySpec: a value-type description of which synchronous algorithm
// to run, convertible BOTH into the classic virtual-policy factory (the
// bit-exactness oracle, sim/policy.hpp) and into the flat policy table the
// SoA kernel consumes (sim/soa_policy.hpp). Keeping one spec as the single
// source for both representations is what lets the runner switch kernels
// per-flag while the equivalence suite pins them together.
#pragma once

#include <cstddef>

#include "core/algorithm2.hpp"
#include "net/network.hpp"
#include "sim/policy.hpp"
#include "sim/soa_policy.hpp"

namespace m2hew::core {

struct SyncPolicySpec {
  enum class Kind {
    kAlgorithm1,     ///< staged, fixed degree bound delta_est
    kAlgorithm2,     ///< staged, escalating estimate per `schedule`
    kAlgorithm3,     ///< constant probability from delta_est
    kConsistentHop,  ///< competitor: deterministic hop map, fair coin
  };

  Kind kind = Kind::kAlgorithm1;
  std::size_t delta_est = 8;  ///< Algorithms 1 and 3
  EstimateSchedule schedule = EstimateSchedule::kIncrement;  ///< Algorithm 2

  [[nodiscard]] static SyncPolicySpec algorithm1(std::size_t delta_est) {
    return {Kind::kAlgorithm1, delta_est, EstimateSchedule::kIncrement};
  }
  [[nodiscard]] static SyncPolicySpec algorithm2(
      EstimateSchedule schedule = EstimateSchedule::kIncrement) {
    return {Kind::kAlgorithm2, 0, schedule};
  }
  [[nodiscard]] static SyncPolicySpec algorithm3(std::size_t delta_est) {
    return {Kind::kAlgorithm3, delta_est, EstimateSchedule::kIncrement};
  }
  /// Consistent channel hopping (core/competitors.hpp): the one
  /// competitor whose slot decision is a pure function of precomputable
  /// per-node data, so it rides the SoA kernel like the paper's
  /// algorithms do.
  [[nodiscard]] static SyncPolicySpec consistent_hop() {
    return {Kind::kConsistentHop, 0, EstimateSchedule::kIncrement};
  }
};

/// The classic virtual-policy oracle for the spec (make_algorithm1/2/3).
[[nodiscard]] sim::SyncPolicyFactory make_policy_factory(
    const SyncPolicySpec& spec);

/// The SoA kernel's flat representation of the spec over this network:
/// staged probabilities filled by the same alg1_slot_probability /
/// alg3_probability calls the policies make, so every double matches
/// bit-for-bit.
[[nodiscard]] sim::SoaPolicyTable build_soa_policy_table(
    const net::Network& network, const SyncPolicySpec& spec);

}  // namespace m2hew::core
