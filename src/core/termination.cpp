#include "core/termination.hpp"

#include "util/check.hpp"

namespace m2hew::core {

TerminatingSyncPolicy::TerminatingSyncPolicy(
    std::unique_ptr<sim::SyncPolicy> inner, std::uint64_t silence_threshold)
    : inner_(std::move(inner)), threshold_(silence_threshold) {
  M2HEW_CHECK_MSG(inner_ != nullptr, "null inner policy");
  M2HEW_CHECK(threshold_ >= 1);
}

TerminatingSyncPolicy::TerminatingSyncPolicy(
    std::unique_ptr<sim::SyncPolicy> inner, std::uint64_t silence_threshold,
    net::ChannelSet beacon_channels, std::uint64_t beacon_period)
    : inner_(std::move(inner)),
      threshold_(silence_threshold),
      beacon_channels_(std::move(beacon_channels)),
      beacon_period_(beacon_period) {
  M2HEW_CHECK_MSG(inner_ != nullptr, "null inner policy");
  M2HEW_CHECK(threshold_ >= 1);
}

sim::SlotAction TerminatingSyncPolicy::next_slot(util::Rng& rng) {
  if (terminated_) {
    // Maintenance beacon: one deterministic announcement every
    // beacon_period-th slot, round-robin over the beacon channels. No RNG
    // draw in either branch — a terminated node's random stream is frozen.
    if (beacon_period_ > 0 && !beacon_channels_.empty()) {
      ++beacon_clock_;
      if (beacon_clock_ % beacon_period_ == 0) {
        const net::ChannelId c =
            beacon_channels_.nth(beacon_index_ % beacon_channels_.size());
        ++beacon_index_;
        return sim::SlotAction{sim::Mode::kTransmit, c};
      }
    }
    return sim::SlotAction{};  // quiet forever
  }
  const sim::SlotAction action = inner_->next_slot(rng);
  ++slot_;
  ++silent_slots_;
  if (silent_slots_ >= threshold_) {
    terminated_ = true;
    termination_slot_ = slot_;
  }
  return action;
}

void TerminatingSyncPolicy::observe_listen_outcome(
    sim::ListenOutcome outcome) {
  inner_->observe_listen_outcome(outcome);
}

void TerminatingSyncPolicy::observe_reception(net::NodeId from,
                                              bool first_time) {
  inner_->observe_reception(from, first_time);
  if (first_time) {
    silent_slots_ = 0;
    // A reception can land in the very slot that tripped the threshold
    // (actions precede reception resolution); the node was still listening
    // then, so it has not actually stopped — rescind the decision.
    terminated_ = false;
  }
}

TerminatingAsyncPolicy::TerminatingAsyncPolicy(
    std::unique_ptr<sim::AsyncPolicy> inner, std::uint64_t silence_threshold)
    : inner_(std::move(inner)), threshold_(silence_threshold) {
  M2HEW_CHECK_MSG(inner_ != nullptr, "null inner policy");
  M2HEW_CHECK(threshold_ >= 1);
}

sim::FrameAction TerminatingAsyncPolicy::next_frame(util::Rng& rng) {
  if (terminated_) {
    return sim::FrameAction{};  // quiet forever
  }
  const sim::FrameAction action = inner_->next_frame(rng);
  ++silent_frames_;
  if (silent_frames_ >= threshold_) terminated_ = true;
  return action;
}

void TerminatingAsyncPolicy::observe_reception(net::NodeId from,
                                               bool first_time) {
  inner_->observe_reception(from, first_time);
  if (first_time) {
    silent_frames_ = 0;
    terminated_ = false;  // see TerminatingSyncPolicy::observe_reception
  }
}

sim::SyncPolicyFactory with_termination(sim::SyncPolicyFactory inner,
                                        std::uint64_t silence_threshold) {
  return [inner = std::move(inner), silence_threshold](
             const net::Network& network, net::NodeId u)
             -> std::unique_ptr<sim::SyncPolicy> {
    return std::make_unique<TerminatingSyncPolicy>(inner(network, u),
                                                   silence_threshold);
  };
}

sim::SyncPolicyFactory with_termination_beacon(
    sim::SyncPolicyFactory inner, std::uint64_t silence_threshold,
    std::uint64_t beacon_period) {
  return [inner = std::move(inner), silence_threshold, beacon_period](
             const net::Network& network, net::NodeId u)
             -> std::unique_ptr<sim::SyncPolicy> {
    return std::make_unique<TerminatingSyncPolicy>(
        inner(network, u), silence_threshold, network.available(u),
        beacon_period);
  };
}

sim::AsyncPolicyFactory with_termination(sim::AsyncPolicyFactory inner,
                                         std::uint64_t silence_threshold) {
  return [inner = std::move(inner), silence_threshold](
             const net::Network& network, net::NodeId u)
             -> std::unique_ptr<sim::AsyncPolicy> {
    return std::make_unique<TerminatingAsyncPolicy>(inner(network, u),
                                                    silence_threshold);
  };
}

}  // namespace m2hew::core
