// Algorithm 3 (§III-B): synchronous system, VARIABLE start times, knowledge
// of a "good" upper bound Δ_est on the maximum node degree.
//
// The transmission probability is the same in every slot — that is the
// whole trick: it makes the coverage probability of a link identical in
// every slot regardless of when each node started, so staggered starts cost
// nothing beyond waiting for the last node. Per slot the node picks a
// uniform random channel from A(u) and transmits with probability
// min(1/2, |A(u)|/Δ_est).
//
// Theorem 3: every node discovers all neighbors on all channels within
// O((max(2S, Δ_est)/ρ)·log(N/ε)) slots after the last node starts, w.p.
// ≥ 1−ε. Note there is no log(Δ_est) factor (no stages) — but the
// dependence on Δ_est is linear, so the bound must be reasonably tight.
#pragma once

#include <cstddef>
#include <vector>

#include "net/channel_set.hpp"
#include "sim/policy.hpp"

namespace m2hew::core {

class Algorithm3Policy final : public sim::SyncPolicy {
 public:
  Algorithm3Policy(const net::ChannelSet& available, std::size_t delta_est);

  [[nodiscard]] sim::SlotAction next_slot(util::Rng& rng) override;

  [[nodiscard]] double transmit_probability() const noexcept { return p_; }

 private:
  std::vector<net::ChannelId> channels_;
  double p_;
};

}  // namespace m2hew::core
