// Algorithm 2 (§III-A2): synchronous system, identical start times, NO
// knowledge of the maximum node degree.
//
// Starting from the estimate d = 2, the node repeatedly executes one stage
// of Algorithm 1 with Δ_est = d and then increments d by 1 (the approach of
// Nakano & Olariu [24]; the geometric-doubling schedule of [2] is provided
// as an ablation variant — it cannot give the paper's guarantee because the
// per-estimate run length is uncomputable without knowing N, S and ρ, but
// it is instructive to measure).
//
// Theorem 2: discovery completes within O(M log M) slots w.p. ≥ 1−ε, where
// M = (16·max(S,Δ)/ρ)·ln(N²/ε).
#pragma once

#include <cstddef>
#include <vector>

#include "net/channel_set.hpp"
#include "sim/policy.hpp"

namespace m2hew::core {

/// How the degree estimate grows between stages.
enum class EstimateSchedule {
  kIncrement,  ///< d ← d + 1 (the paper's Algorithm 2)
  kDouble,     ///< d ← 2·d  (ablation: the rejected approach of [2])
};

class Algorithm2Policy final : public sim::SyncPolicy {
 public:
  explicit Algorithm2Policy(
      const net::ChannelSet& available,
      EstimateSchedule schedule = EstimateSchedule::kIncrement);

  [[nodiscard]] sim::SlotAction next_slot(util::Rng& rng) override;

  /// Current degree estimate d (exposed for tests).
  [[nodiscard]] std::size_t current_estimate() const noexcept { return d_; }

 private:
  std::vector<net::ChannelId> channels_;
  std::size_t available_size_;
  EstimateSchedule schedule_;
  std::size_t d_ = 2;
  unsigned stage_slots_;
  unsigned slot_in_stage_ = 0;
};

}  // namespace m2hew::core
