// Algorithm 1 (§III-A1): synchronous system, identical start times,
// knowledge of a common upper bound Δ_est on the maximum node degree.
//
// Execution is divided into stages of ⌈log₂ Δ_est⌉ time slots. In slot i of
// a stage (1-based), the node picks a channel uniformly at random from its
// available channel set and transmits on it with probability
// min(1/2, |A(u)|/2^i), listening with the remaining probability.
//
// Theorem 1: every node discovers all its neighbors on all channels within
// O((max(S,Δ)/ρ) · log Δ_est · log(N/ε)) slots with probability ≥ 1−ε.
#pragma once

#include <cstddef>
#include <vector>

#include "net/channel_set.hpp"
#include "sim/policy.hpp"

namespace m2hew::core {

class Algorithm1Policy final : public sim::SyncPolicy {
 public:
  /// `available` is this node's A(u); `delta_est` the agreed degree bound.
  Algorithm1Policy(const net::ChannelSet& available, std::size_t delta_est);

  [[nodiscard]] sim::SlotAction next_slot(util::Rng& rng) override;

  [[nodiscard]] unsigned stage_slots() const noexcept { return stage_slots_; }

 private:
  std::vector<net::ChannelId> channels_;  // A(u), materialized for sampling
  std::size_t available_size_;
  unsigned stage_slots_;     // slots per stage = ⌈log₂ Δ_est⌉
  unsigned slot_in_stage_ = 0;  // 0-based position within the current stage
};

}  // namespace m2hew::core
