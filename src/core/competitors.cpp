#include "core/competitors.hpp"

#include <memory>

#include "net/network.hpp"
#include "util/check.hpp"

namespace m2hew::core {

namespace {

/// Prime-pair ladder for Mc-Dis duty classes: coprime pairs with duty
/// cycles from ~67% down to ~23%, so a heterogeneous deployment mixes
/// eager and frugal nodes exactly as the Mc-Dis evaluation does.
constexpr std::uint32_t kPrimeLadder[][2] = {
    {2, 3}, {3, 5}, {5, 7}, {7, 11}};
constexpr std::size_t kPrimeClasses =
    sizeof(kPrimeLadder) / sizeof(kPrimeLadder[0]);

[[nodiscard]] net::ChannelId smallest_prime_at_least(net::ChannelId x) {
  if (x < 2) return 2;
  for (net::ChannelId candidate = x;; ++candidate) {
    bool prime = true;
    for (net::ChannelId d = 2; d * d <= candidate; ++d) {
      if (candidate % d == 0) {
        prime = false;
        break;
      }
    }
    if (prime) return candidate;
  }
}

}  // namespace

// --- ConsistentHopPolicy -----------------------------------------------

ConsistentHopPolicy::ConsistentHopPolicy(const net::ChannelSet& available,
                                         net::ChannelId universe_size)
    : available_(available),
      channels_(available.to_vector()),
      universe_size_(universe_size) {
  M2HEW_CHECK_MSG(!channels_.empty(), "node needs a non-empty channel set");
  M2HEW_CHECK(universe_size_ >= 1);
}

sim::SlotAction ConsistentHopPolicy::next_slot(util::Rng& rng) {
  const auto w = static_cast<net::ChannelId>(slot_ % universe_size_);
  ++slot_;

  sim::SlotAction action;
  action.channel = available_.contains(w)
                       ? w
                       : channels_[w % channels_.size()];
  action.mode = rng.bernoulli(kCompetitorTransmitProbability)
                    ? sim::Mode::kTransmit
                    : sim::Mode::kReceive;
  return action;
}

sim::SyncPolicyFactory make_consistent_hop() {
  return [](const net::Network& network,
            net::NodeId u) -> std::unique_ptr<sim::SyncPolicy> {
    return std::make_unique<ConsistentHopPolicy>(network.available(u),
                                                 network.universe_size());
  };
}

// --- McDisPolicy -------------------------------------------------------

McDisPolicy::McDisPolicy(const net::ChannelSet& available, net::NodeId id)
    : channels_(available.to_vector()),
      p1_(kPrimeLadder[id % kPrimeClasses][0]),
      p2_(kPrimeLadder[id % kPrimeClasses][1]) {
  M2HEW_CHECK_MSG(!channels_.empty(), "node needs a non-empty channel set");
}

sim::SlotAction McDisPolicy::next_slot(util::Rng& rng) {
  const std::uint64_t t = slot_++;
  sim::SlotAction action;
  if (t % p1_ != 0 && t % p2_ != 0) {
    action.mode = sim::Mode::kQuiet;  // asleep: no RNG draw at all
    return action;
  }
  // Awake: uniformly random available channel, then the transmit coin
  // (the engine's draw order). The primes only decide WHEN both ends of
  // a pair are awake; a deterministic round-robin over sorted A(u) would
  // let same-class neighbors — awake at exactly the same slots, counters
  // in lockstep — walk index-misaligned sets forever without meeting.
  action.channel =
      channels_[rng.uniform(static_cast<std::uint32_t>(channels_.size()))];
  action.mode = rng.bernoulli(kCompetitorTransmitProbability)
                    ? sim::Mode::kTransmit
                    : sim::Mode::kReceive;
  return action;
}

double McDisPolicy::duty_cycle() const noexcept {
  const double a = static_cast<double>(p1_);
  const double b = static_cast<double>(p2_);
  return 1.0 / a + 1.0 / b - 1.0 / (a * b);
}

sim::SyncPolicyFactory make_mcdis() {
  return [](const net::Network& network,
            net::NodeId u) -> std::unique_ptr<sim::SyncPolicy> {
    return std::make_unique<McDisPolicy>(network.available(u), u);
  };
}

// --- BlindRendezvousPolicy ---------------------------------------------

BlindRendezvousPolicy::BlindRendezvousPolicy(
    const net::ChannelSet& available, net::NodeId id, net::NodeId id_bound,
    net::ChannelId universe_size)
    : available_(available),
      channels_(available.to_vector()),
      id_(id),
      universe_size_(universe_size),
      prime_(smallest_prime_at_least(universe_size)) {
  M2HEW_CHECK_MSG(!channels_.empty(), "node needs a non-empty channel set");
  M2HEW_CHECK(universe_size_ >= 1);
  M2HEW_CHECK_MSG(id_ < id_bound, "node id outside the agreed id range");
}

sim::SlotAction BlindRendezvousPolicy::next_slot(util::Rng& rng) {
  // The id offsets the schedule phase by whole thirds of the 3P round.
  // The original guarantee is phase-agnostic (it holds under arbitrary
  // clock offsets), and under our synchronized starts the offset is what
  // makes one node of a pair jump while the other stays: a jumper sweeps
  // every channel mod P inside its 2P window, so any pair in different
  // offset classes meets on the stayer's channel once per round.
  const std::uint64_t local = slot_++ + (id_ % 3) * prime_;
  const std::uint64_t period = 3ull * prime_;
  const std::uint64_t round = local / period;
  const std::uint64_t phase = local % period;

  std::uint64_t raw;
  if (phase < 2ull * prime_) {
    // Jump: the stride is derived from the node id and rotated per round
    // at an id-dependent rate, so same-offset-class pairs still get
    // rounds with distinct strides — and distinct strides s_u != s_v make
    // (id_u - id_v) + (s_u - s_v)·phase ≡ 0 (mod P) solvable with
    // phase < P, a guaranteed meeting inside the jump window. A shared
    // stride would keep the pairwise channel difference constant forever
    // under synchronized clocks (the n>=5 deadlock this replaced).
    std::uint64_t stride = 1;
    if (prime_ > 2) {
      const std::uint64_t lanes = prime_ - 1;
      const std::uint64_t rotation = 1 + id_ / lanes;
      stride = (id_ % lanes + round * rotation) % lanes + 1;
    }
    raw = (id_ + stride * phase) % prime_;
  } else {
    // Stay: park on one (round-rotated) channel for a full P slots.
    raw = (id_ + round) % prime_;
  }

  sim::SlotAction action;
  const auto raw_channel = static_cast<net::ChannelId>(raw);
  if (raw_channel < universe_size_ && available_.contains(raw_channel)) {
    action.channel = raw_channel;
  } else {
    // Unavailable raw channel: substitute a uniformly random available
    // one, as the heterogeneous-model rendezvous adaptations do. A
    // deterministic fold (sorted A(u)[raw mod |A|]) traps synchronized
    // deployments: the pairwise meeting raws are periodic in the round
    // index, and when a pair's folded channels never coincide on that
    // orbit the pair never meets at all.
    action.channel = channels_[rng.uniform(
        static_cast<std::uint32_t>(channels_.size()))];
  }

  // Randomized beacon role on the deterministic channel schedule: a
  // deterministic role split would replay the same collisions every
  // schedule period under synchronized clocks (see header).
  action.mode = rng.bernoulli(kCompetitorTransmitProbability)
                    ? sim::Mode::kTransmit
                    : sim::Mode::kReceive;
  return action;
}

sim::SyncPolicyFactory make_blind_rendezvous() {
  return [](const net::Network& network,
            net::NodeId u) -> std::unique_ptr<sim::SyncPolicy> {
    return std::make_unique<BlindRendezvousPolicy>(
        network.available(u), u, network.node_count(),
        network.universe_size());
  };
}

}  // namespace m2hew::core
