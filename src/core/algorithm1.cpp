#include "core/algorithm1.hpp"

#include "core/transmit_probability.hpp"
#include "util/check.hpp"

namespace m2hew::core {

Algorithm1Policy::Algorithm1Policy(const net::ChannelSet& available,
                                   std::size_t delta_est)
    : channels_(available.to_vector()),
      available_size_(available.size()),
      stage_slots_(stage_length(delta_est)) {
  M2HEW_CHECK_MSG(!channels_.empty(), "node needs a non-empty channel set");
  M2HEW_CHECK(delta_est >= 1);
}

sim::SlotAction Algorithm1Policy::next_slot(util::Rng& rng) {
  const unsigned i = slot_in_stage_ + 1;  // paper's slot index is 1-based
  slot_in_stage_ = (slot_in_stage_ + 1) % stage_slots_;

  sim::SlotAction action;
  action.channel = rng.pick(std::span<const net::ChannelId>(channels_));
  const double p = alg1_slot_probability(available_size_, i);
  action.mode = rng.bernoulli(p) ? sim::Mode::kTransmit : sim::Mode::kReceive;
  return action;
}

}  // namespace m2hew::core
