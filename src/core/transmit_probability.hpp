// The transmission probabilities prescribed by the paper's algorithms,
// factored into pure functions so tests can pin them to the formulas.
#pragma once

#include <cstddef>

namespace m2hew::core {

/// Algorithm 1, line 4: in time-slot i (1-based) of a stage, a node with
/// available-set size a transmits with probability min(1/2, a / 2^i).
[[nodiscard]] double alg1_slot_probability(std::size_t available_size,
                                           unsigned slot_in_stage);

/// Algorithm 3, line 1: constant per-slot probability min(1/2, a / Δ_est).
[[nodiscard]] double alg3_probability(std::size_t available_size,
                                      std::size_t delta_est);

/// Algorithm 4, line 1: constant per-frame probability min(1/2, a/(3·Δ_est)).
/// The factor 3 is the slots-per-frame count; exposed for the frame-shape
/// ablation.
[[nodiscard]] double alg4_probability(std::size_t available_size,
                                      std::size_t delta_est,
                                      unsigned slots_per_frame = 3);

/// Slots per stage for Algorithm 1/2 with degree estimate d: ⌈log₂ d⌉,
/// clamped to at least 1 (a stage must contain a slot even for d ≤ 2).
[[nodiscard]] unsigned stage_length(std::size_t delta_est);

}  // namespace m2hew::core
