// Factory functions producing engine-ready policy factories for each of the
// paper's algorithms and the baselines. This is the primary entry point of
// the library: pick a network, pick an algorithm factory, run an engine.
//
//   auto net = ...;                            // net::Network
//   auto result = sim::run_slot_engine(
//       net, core::make_algorithm1(/*delta_est=*/8), {});
//
// The factories close over only globally-agreed knowledge (Δ_est, |U|);
// each per-node policy then reads only that node's available channel set,
// keeping the algorithms genuinely distributed.
#pragma once

#include <cstddef>

#include "core/algorithm2.hpp"
#include "net/types.hpp"
#include "sim/policy.hpp"

namespace m2hew::core {

/// Algorithm 1: synchronous, identical starts, degree bound Δ_est.
[[nodiscard]] sim::SyncPolicyFactory make_algorithm1(std::size_t delta_est);

/// Algorithm 2: synchronous, identical starts, no degree knowledge.
[[nodiscard]] sim::SyncPolicyFactory make_algorithm2(
    EstimateSchedule schedule = EstimateSchedule::kIncrement);

/// Algorithm 3: synchronous, variable starts, degree bound Δ_est.
[[nodiscard]] sim::SyncPolicyFactory make_algorithm3(std::size_t delta_est);

/// Algorithm 4: asynchronous, degree bound Δ_est. `slots_per_frame` must
/// match the AsyncEngineConfig it is run under.
[[nodiscard]] sim::AsyncPolicyFactory make_algorithm4(
    std::size_t delta_est, unsigned slots_per_frame = 3);

/// Universal-channel-set baseline (§I strawman): round-robin over a
/// universe of `universe_size` channels, transmit probability `p` when
/// participating.
[[nodiscard]] sim::SyncPolicyFactory make_universal_baseline(
    net::ChannelId universe_size, double p = 0.5);

}  // namespace m2hew::core
