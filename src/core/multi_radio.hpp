// Multi-radio Algorithm 3 (extension; model of related work [19]).
//
// With R transceivers per node, the spectrum is striped globally by
// channel id modulo R: radio r of every node works the sub-spectrum
// A(u) ∩ {c : c mod R = r} and runs the Algorithm-3 schedule on it. The
// striping is what makes the radios of different nodes meet: sender radio
// r and receiver radio r rendezvous inside the same stripe, turning one
// discovery instance into R parallel, non-interfering instances over
// spectra of size ≈ S/R each — per Theorem 3 the per-stripe coverage rate
// improves and every stripe progresses simultaneously.
//
// Radios whose stripe of A(u) is empty stay quiet. When R = 1 this is
// exactly Algorithm 3.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "net/channel_set.hpp"
#include "sim/multi_radio_engine.hpp"
#include "sim/policy.hpp"

namespace m2hew::core {

class MultiRadioAlg3Policy final : public sim::MultiRadioPolicy {
 public:
  MultiRadioAlg3Policy(const net::ChannelSet& available, unsigned radios,
                       std::size_t delta_est);

  [[nodiscard]] std::vector<sim::SlotAction> next_slot(
      util::Rng& rng) override;
  [[nodiscard]] unsigned radio_count() const override { return radios_; }

  /// Channels assigned to radio r (exposed for tests).
  [[nodiscard]] const std::vector<net::ChannelId>& stripe(unsigned r) const;

 private:
  unsigned radios_;
  std::vector<std::vector<net::ChannelId>> stripes_;
  std::vector<double> transmit_probability_;  // per radio
};

/// Factory with a uniform radio count across nodes.
[[nodiscard]] sim::MultiRadioPolicyFactory make_multi_radio_alg3(
    unsigned radios, std::size_t delta_est);

/// Presents any single-radio SyncPolicy as a one-radio MultiRadioPolicy:
/// next_slot forwards to the wrapped policy (same RNG draws), and feedback
/// is forwarded with the radio index dropped. Running
/// run_multi_radio_engine over this adapter is bit-identical to
/// run_slot_engine over the wrapped factory (the engine-parity test
/// proves it).
class SingleRadioSyncAdapter final : public sim::MultiRadioPolicy {
 public:
  explicit SingleRadioSyncAdapter(std::unique_ptr<sim::SyncPolicy> inner);

  [[nodiscard]] std::vector<sim::SlotAction> next_slot(
      util::Rng& rng) override;
  [[nodiscard]] unsigned radio_count() const override { return 1; }
  void observe_reception(unsigned radio, net::NodeId from,
                         bool first_time) override;
  void observe_listen_outcome(unsigned radio,
                              sim::ListenOutcome outcome) override;
  /// Forwarded so a wrapped trust policy keeps its admission authority
  /// under the multi-radio engine.
  [[nodiscard]] bool admit_neighbor(net::NodeId announced) override {
    return inner_->admit_neighbor(announced);
  }

 private:
  std::unique_ptr<sim::SyncPolicy> inner_;
};

/// Lifts a single-radio policy factory into the multi-radio engine.
[[nodiscard]] sim::MultiRadioPolicyFactory as_multi_radio(
    sim::SyncPolicyFactory factory);

}  // namespace m2hew::core
