#include "core/two_hop.hpp"

#include <algorithm>

#include "core/algorithms.hpp"
#include "util/check.hpp"

namespace m2hew::core {

namespace {

/// In-neighbors of each node over discovery links.
[[nodiscard]] std::vector<std::vector<net::NodeId>> one_hop_in_neighbors(
    const net::Network& network) {
  std::vector<std::vector<net::NodeId>> in(network.node_count());
  for (const net::Link link : network.links()) {
    in[link.to].push_back(link.from);
  }
  for (auto& list : in) std::sort(list.begin(), list.end());
  return in;
}

[[nodiscard]] std::vector<std::vector<net::NodeId>> assemble_two_hop(
    const net::Network& network,
    const std::vector<std::vector<net::NodeId>>& tables_heard) {
  const auto one_hop = one_hop_in_neighbors(network);
  std::vector<std::vector<net::NodeId>> two_hop(network.node_count());
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    std::vector<net::NodeId> acc;
    for (const net::NodeId v : tables_heard[u]) {
      // u holds v's one-hop table; v's in-neighbors are u's 2-hop
      // candidates.
      acc.insert(acc.end(), one_hop[v].begin(), one_hop[v].end());
    }
    std::sort(acc.begin(), acc.end());
    acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
    // Remove u itself and its one-hop in-neighbors.
    std::vector<net::NodeId> filtered;
    for (const net::NodeId w : acc) {
      if (w == u) continue;
      if (std::binary_search(one_hop[u].begin(), one_hop[u].end(), w)) {
        continue;
      }
      filtered.push_back(w);
    }
    two_hop[u] = std::move(filtered);
  }
  return two_hop;
}

}  // namespace

std::vector<std::vector<net::NodeId>> two_hop_ground_truth(
    const net::Network& network) {
  // Ground truth = the assembly applied to complete tables.
  return assemble_two_hop(network, one_hop_in_neighbors(network));
}

TwoHopResult run_two_hop_discovery(const net::Network& network,
                                   std::size_t delta_est,
                                   const sim::SlotEngineConfig& config) {
  TwoHopResult result;

  // Phase 1: standard one-hop discovery.
  sim::SlotEngineConfig phase1 = config;
  const auto r1 = sim::run_slot_engine(network, make_algorithm3(delta_est),
                                       phase1);
  result.phase1_slots = r1.slots_executed;
  if (!r1.complete) {
    result.two_hop.assign(network.node_count(), {});
    return result;
  }

  // Phase 2: the same schedule, but every reception now delivers the
  // sender's phase-1 table. Coverage of (v, u) in this run models u
  // hearing v's table.
  sim::SlotEngineConfig phase2 = config;
  phase2.seed = config.seed ^ 0x2407ull;  // independent randomness
  const auto r2 = sim::run_slot_engine(network, make_algorithm3(delta_est),
                                       phase2);
  result.phase2_slots = r2.slots_executed;
  result.complete = r2.complete;

  std::vector<std::vector<net::NodeId>> heard(network.node_count());
  for (const net::Link link : network.links()) {
    if (r2.state.is_covered(link)) {
      heard[link.to].push_back(link.from);
    }
  }
  for (auto& list : heard) std::sort(list.begin(), list.end());
  result.two_hop = assemble_two_hop(network, heard);
  return result;
}

}  // namespace m2hew::core
