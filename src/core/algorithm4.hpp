// Algorithm 4 (§IV): asynchronous system with drifting clocks (|drift| ≤
// δ ≤ 1/7), knowledge of an upper bound Δ_est on the maximum node degree.
//
// Each node divides local time into frames of length L, each split into 3
// equal slots. At every frame start the node picks a uniform random channel
// from A(u); with probability min(1/2, |A(u)|/(3·Δ_est)) it transmits its
// discovery message in each slot of the frame, otherwise it listens on the
// channel for the whole frame.
//
// Theorem 9: all neighbors are discovered w.p. ≥ 1−ε by the time every node
// has executed (48·max(2S, 3Δ_est)/ρ)·ln(N²/ε) full frames after the last
// node started. Theorem 10 bounds that interval in real time by
// {M+1}·L/(1−δ).
#pragma once

#include <cstddef>
#include <vector>

#include "net/channel_set.hpp"
#include "sim/policy.hpp"

namespace m2hew::core {

class Algorithm4Policy final : public sim::AsyncPolicy {
 public:
  /// `slots_per_frame` parameterizes the paper's hard-coded 3 for the
  /// frame-shape ablation (the probability denominator scales with it).
  Algorithm4Policy(const net::ChannelSet& available, std::size_t delta_est,
                   unsigned slots_per_frame = 3);

  [[nodiscard]] sim::FrameAction next_frame(util::Rng& rng) override;

  [[nodiscard]] double transmit_probability() const noexcept { return p_; }

 private:
  std::vector<net::ChannelId> channels_;
  double p_;
};

}  // namespace m2hew::core
