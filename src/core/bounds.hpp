// Closed-form bounds from the paper's analysis, used by benches to print
// paper-vs-measured rows and by tests to check empirical behaviour against
// the theory. All formulas are exactly the expressions in the paper; no
// constant has been "tuned".
#pragma once

#include <cstddef>

namespace m2hew::core {

/// Network parameters the bounds consume (all derivable from net::Network).
struct BoundParams {
  std::size_t n = 0;        ///< N, number of nodes
  std::size_t s = 1;        ///< S, max available-channel-set size
  std::size_t delta = 1;    ///< Δ, max per-channel degree
  std::size_t delta_est = 1;  ///< Δ_est, the agreed degree upper bound
  double rho = 1.0;         ///< ρ, min span-ratio
  double epsilon = 0.1;     ///< ε, failure-probability budget
};

/// Eq. (6): a stage of Algorithm 1 covers a given link with probability at
/// least ρ / (16·max(S, Δ)).
[[nodiscard]] double eq6_stage_coverage_lower_bound(const BoundParams& p);

/// M = (16·max(S,Δ)/ρ)·ln(N²/ε): stages sufficient for Algorithm 1 to
/// finish with probability ≥ 1−ε (eq. 7/8).
[[nodiscard]] double theorem1_stage_bound(const BoundParams& p);

/// Theorem 1's slot count: M stages × ⌈log₂ Δ_est⌉ slots per stage.
[[nodiscard]] double theorem1_slot_bound(const BoundParams& p);

/// Theorem 2: Algorithm 2 needs at most Δ + M stages (d must first reach Δ,
/// then M useful stages); returns that stage count.
[[nodiscard]] double theorem2_stage_bound(const BoundParams& p);

/// Theorem 2's slot count: stages have growing length ⌈log₂ d⌉ starting at
/// d = 2, so the slot bound is Σ_{d=2}^{2+stages-1} ⌈log₂ d⌉ = O(M log M).
[[nodiscard]] double theorem2_slot_bound(const BoundParams& p);

/// Per-slot coverage lower bound for Algorithm 3:
/// ρ / (8·max(2S, Δ_est)).
[[nodiscard]] double alg3_slot_coverage_lower_bound(const BoundParams& p);

/// Theorem 3: slots after T_s within which Algorithm 3 finishes w.p. ≥ 1−ε:
/// (8·max(2S, Δ_est)/ρ)·ln(N²/ε).
[[nodiscard]] double theorem3_slot_bound(const BoundParams& p);

/// Lemma 5: an aligned frame pair covers a link with probability at least
/// ρ / (8·max(2S, 3Δ_est)).
[[nodiscard]] double lemma5_pair_coverage_lower_bound(const BoundParams& p);

/// Theorem 9: full frames per node after T_s within which Algorithm 4
/// finishes w.p. ≥ 1−ε: (48·max(2S, 3Δ_est)/ρ)·ln(N²/ε).
[[nodiscard]] double theorem9_frame_bound(const BoundParams& p);

/// Theorem 10: upper bound on T_f − T_s in real time:
/// {theorem9_frame_bound + 1} · L / (1 − δ).
[[nodiscard]] double theorem10_realtime_bound(const BoundParams& p,
                                              double frame_length,
                                              double max_drift);

/// The paper's drift-rate assumption for Algorithm 4 (Assumption 1): 1/7.
inline constexpr double kMaxDriftAssumption = 1.0 / 7.0;

}  // namespace m2hew::core
