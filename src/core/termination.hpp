// Termination detection — an extension the paper leaves open.
//
// Algorithms 1–4 run forever: a node never knows whether it has heard from
// every neighbor (related work [22] adds "lightweight termination
// detection" under stronger assumptions). This module provides the natural
// silence-based heuristic: a node stops (radio off, forever) once it has
// executed `silence_threshold` consecutive slots/frames without learning a
// *new* neighbor.
//
// The trade-off the E14 bench quantifies: stopping early saves energy, but
// a stopped node also stops *transmitting*, so neighbors that have not yet
// heard it can be starved — termination can make the network-wide
// discovery incomplete. The threshold must be scaled like the per-link
// coverage time (ρ/coverage-probability) for a target confidence.
//
// Under churn (sim::FaultPlan) plain termination has a second failure
// mode: a neighbor that crashes, recovers and resets its policy can never
// rediscover an already-terminated node. The optional *maintenance
// beacon* addresses it: a terminated node keeps transmitting one
// deterministic announcement every `beacon_period`-th slot, cycling
// through its available channels — an O(1/period) duty cycle that keeps
// the node discoverable without resuming the full algorithm.
#pragma once

#include <cstddef>
#include <memory>

#include "net/channel_set.hpp"
#include "sim/policy.hpp"

namespace m2hew::core {

/// Wraps any synchronous policy; after `silence_threshold` consecutive
/// slots with no first-time reception, the node goes (and stays) quiet.
class TerminatingSyncPolicy final : public sim::SyncPolicy {
 public:
  TerminatingSyncPolicy(std::unique_ptr<sim::SyncPolicy> inner,
                        std::uint64_t silence_threshold);

  /// Maintenance-beacon variant: after terminating, transmit every
  /// `beacon_period`-th slot, cycling deterministically (no RNG draws, so
  /// the node's random stream is unchanged) through `beacon_channels` —
  /// normally the node's A(u). beacon_period == 0 or an empty set means
  /// plain termination (radio off forever).
  TerminatingSyncPolicy(std::unique_ptr<sim::SyncPolicy> inner,
                        std::uint64_t silence_threshold,
                        net::ChannelSet beacon_channels,
                        std::uint64_t beacon_period);

  [[nodiscard]] sim::SlotAction next_slot(util::Rng& rng) override;
  void observe_reception(net::NodeId from, bool first_time) override;
  /// Forwarded verbatim to the inner policy: a wrapper must relay every
  /// observe_* callback or a feedback-driven inner policy (e.g. the
  /// collision-detecting AdaptiveDegreePolicy) silently goes blind. The
  /// termination decision itself only uses first-time receptions.
  void observe_listen_outcome(sim::ListenOutcome outcome) override;
  /// Forwarded so a trust wrapper keeps its admission authority when the
  /// termination wrapper is outermost.
  [[nodiscard]] bool admit_neighbor(net::NodeId announced) override {
    return inner_->admit_neighbor(announced);
  }

  [[nodiscard]] bool terminated() const noexcept { return terminated_; }
  /// Node-local slot index at which the node stopped (if it has).
  [[nodiscard]] std::uint64_t termination_slot() const noexcept {
    return termination_slot_;
  }

 private:
  std::unique_ptr<sim::SyncPolicy> inner_;
  std::uint64_t threshold_;
  net::ChannelSet beacon_channels_;
  std::uint64_t beacon_period_ = 0;
  std::uint64_t silent_slots_ = 0;
  std::uint64_t slot_ = 0;
  std::uint64_t termination_slot_ = 0;
  std::uint64_t beacon_clock_ = 0;  // slots since termination
  std::size_t beacon_index_ = 0;    // next beacon channel (round-robin)
  bool terminated_ = false;
};

/// Same heuristic per frame for the asynchronous system.
class TerminatingAsyncPolicy final : public sim::AsyncPolicy {
 public:
  TerminatingAsyncPolicy(std::unique_ptr<sim::AsyncPolicy> inner,
                         std::uint64_t silence_threshold);

  [[nodiscard]] sim::FrameAction next_frame(util::Rng& rng) override;
  void observe_reception(net::NodeId from, bool first_time) override;
  [[nodiscard]] bool admit_neighbor(net::NodeId announced) override {
    return inner_->admit_neighbor(announced);
  }

  [[nodiscard]] bool terminated() const noexcept { return terminated_; }

 private:
  std::unique_ptr<sim::AsyncPolicy> inner_;
  std::uint64_t threshold_;
  std::uint64_t silent_frames_ = 0;
  bool terminated_ = false;
};

/// Wraps an existing factory so every node terminates after the given
/// silence threshold (in slots).
[[nodiscard]] sim::SyncPolicyFactory with_termination(
    sim::SyncPolicyFactory inner, std::uint64_t silence_threshold);

/// Termination with a maintenance beacon over each node's A(u): every
/// `beacon_period`-th slot after terminating the node announces itself on
/// the next of its available channels (round-robin), so neighbors that
/// recover from a crash with reset state can still rediscover it.
[[nodiscard]] sim::SyncPolicyFactory with_termination_beacon(
    sim::SyncPolicyFactory inner, std::uint64_t silence_threshold,
    std::uint64_t beacon_period);

/// Frame-count variant for the asynchronous system.
[[nodiscard]] sim::AsyncPolicyFactory with_termination(
    sim::AsyncPolicyFactory inner, std::uint64_t silence_threshold);

}  // namespace m2hew::core
