// Termination detection — an extension the paper leaves open.
//
// Algorithms 1–4 run forever: a node never knows whether it has heard from
// every neighbor (related work [22] adds "lightweight termination
// detection" under stronger assumptions). This module provides the natural
// silence-based heuristic: a node stops (radio off, forever) once it has
// executed `silence_threshold` consecutive slots/frames without learning a
// *new* neighbor.
//
// The trade-off the E14 bench quantifies: stopping early saves energy, but
// a stopped node also stops *transmitting*, so neighbors that have not yet
// heard it can be starved — termination can make the network-wide
// discovery incomplete. The threshold must be scaled like the per-link
// coverage time (ρ/coverage-probability) for a target confidence.
#pragma once

#include <cstddef>
#include <memory>

#include "sim/policy.hpp"

namespace m2hew::core {

/// Wraps any synchronous policy; after `silence_threshold` consecutive
/// slots with no first-time reception, the node goes (and stays) quiet.
class TerminatingSyncPolicy final : public sim::SyncPolicy {
 public:
  TerminatingSyncPolicy(std::unique_ptr<sim::SyncPolicy> inner,
                        std::uint64_t silence_threshold);

  [[nodiscard]] sim::SlotAction next_slot(util::Rng& rng) override;
  void observe_reception(net::NodeId from, bool first_time) override;
  /// Forwarded verbatim to the inner policy: a wrapper must relay every
  /// observe_* callback or a feedback-driven inner policy (e.g. the
  /// collision-detecting AdaptiveDegreePolicy) silently goes blind. The
  /// termination decision itself only uses first-time receptions.
  void observe_listen_outcome(sim::ListenOutcome outcome) override;

  [[nodiscard]] bool terminated() const noexcept { return terminated_; }
  /// Node-local slot index at which the node stopped (if it has).
  [[nodiscard]] std::uint64_t termination_slot() const noexcept {
    return termination_slot_;
  }

 private:
  std::unique_ptr<sim::SyncPolicy> inner_;
  std::uint64_t threshold_;
  std::uint64_t silent_slots_ = 0;
  std::uint64_t slot_ = 0;
  std::uint64_t termination_slot_ = 0;
  bool terminated_ = false;
};

/// Same heuristic per frame for the asynchronous system.
class TerminatingAsyncPolicy final : public sim::AsyncPolicy {
 public:
  TerminatingAsyncPolicy(std::unique_ptr<sim::AsyncPolicy> inner,
                         std::uint64_t silence_threshold);

  [[nodiscard]] sim::FrameAction next_frame(util::Rng& rng) override;
  void observe_reception(net::NodeId from, bool first_time) override;

  [[nodiscard]] bool terminated() const noexcept { return terminated_; }

 private:
  std::unique_ptr<sim::AsyncPolicy> inner_;
  std::uint64_t threshold_;
  std::uint64_t silent_frames_ = 0;
  bool terminated_ = false;
};

/// Wraps an existing factory so every node terminates after the given
/// silence threshold (in slots).
[[nodiscard]] sim::SyncPolicyFactory with_termination(
    sim::SyncPolicyFactory inner, std::uint64_t silence_threshold);

/// Frame-count variant for the asynchronous system.
[[nodiscard]] sim::AsyncPolicyFactory with_termination(
    sim::AsyncPolicyFactory inner, std::uint64_t silence_threshold);

}  // namespace m2hew::core
