// Baseline: deterministic TDMA-by-identifier discovery — a stand-in for
// the deterministic algorithm family of related work [20]–[22], whose
// running time "depends on the product of network size ... and universal
// channel set size" (§I).
//
// The schedule requires everything the paper's algorithms avoid needing:
// unique node identifiers in a known range [0, id_bound), global agreement
// on the universal channel set, and identical start times. Time is divided
// into rounds of `id_bound` slots; in round r (on channel r mod |U|), the
// node with id = slot-within-round transmits while everyone else listens.
// After id_bound·|U| slots every pair has had a collision-free rendezvous
// on every universal channel, so discovery completes deterministically —
// but always in Θ(id_bound·|U|) slots, however small the available sets
// are. Bench E20 measures exactly that product law.
#pragma once

#include <cstdint>

#include "net/channel_set.hpp"
#include "sim/policy.hpp"

namespace m2hew::core {

class DeterministicBaselinePolicy final : public sim::SyncPolicy {
 public:
  /// `id` must be unique per node and < `id_bound`; `universe_size` = |U|.
  DeterministicBaselinePolicy(const net::ChannelSet& available,
                              net::NodeId id, net::NodeId id_bound,
                              net::ChannelId universe_size);

  [[nodiscard]] sim::SlotAction next_slot(util::Rng& rng) override;

  /// Slots for one full sweep: id_bound × |U| (the deterministic
  /// completion time).
  [[nodiscard]] std::uint64_t sweep_length() const noexcept {
    return static_cast<std::uint64_t>(id_bound_) * universe_size_;
  }

 private:
  net::ChannelSet available_;
  net::NodeId id_;
  net::NodeId id_bound_;
  net::ChannelId universe_size_;
  std::uint64_t slot_ = 0;
};

/// Factory: ids are the node indices, id_bound the node count (the
/// tightest deterministic schedule possible — real systems would need a
/// loose bound, making the product even larger).
[[nodiscard]] sim::SyncPolicyFactory make_deterministic_baseline(
    net::ChannelId universe_size);

}  // namespace m2hew::core
