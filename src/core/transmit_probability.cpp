#include "core/transmit_probability.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.hpp"

namespace m2hew::core {

double alg1_slot_probability(std::size_t available_size,
                             unsigned slot_in_stage) {
  M2HEW_CHECK(available_size >= 1);
  M2HEW_CHECK(slot_in_stage >= 1);
  return std::min(
      0.5, std::ldexp(static_cast<double>(available_size),
                      -static_cast<int>(slot_in_stage)));
}

double alg3_probability(std::size_t available_size, std::size_t delta_est) {
  M2HEW_CHECK(available_size >= 1);
  M2HEW_CHECK(delta_est >= 1);
  return std::min(0.5, static_cast<double>(available_size) /
                           static_cast<double>(delta_est));
}

double alg4_probability(std::size_t available_size, std::size_t delta_est,
                        unsigned slots_per_frame) {
  M2HEW_CHECK(available_size >= 1);
  M2HEW_CHECK(delta_est >= 1);
  M2HEW_CHECK(slots_per_frame >= 1);
  return std::min(0.5, static_cast<double>(available_size) /
                           (static_cast<double>(slots_per_frame) *
                            static_cast<double>(delta_est)));
}

unsigned stage_length(std::size_t delta_est) {
  M2HEW_CHECK(delta_est >= 1);
  // ⌈log₂ d⌉ = bit_width(d - 1) for d >= 2.
  if (delta_est <= 2) return 1;
  return static_cast<unsigned>(std::bit_width(delta_est - 1));
}

}  // namespace m2hew::core
