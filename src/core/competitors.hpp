// Competitor discovery policies from the related literature (ROADMAP item
// 2): the rivals the paper's Algorithms 1-4 are raced against in the E24
// tournament bench. Each is a plain sim::SyncPolicy over the existing
// engine contract — same per-node RNG stream, same A(u)-only knowledge —
// so every determinism suite (serial==parallel, engine parity at R=1,
// wrapper forwarding) applies to them unchanged.
//
// Spec-expressibility (see docs/MODEL.md "Competitor policies"):
//   - ConsistentHopPolicy IS expressible as policy-as-data: its channel
//     choice is a precomputable per-node map over a global hop sequence
//     and its transmit law a constant coin, so SyncPolicySpec grows a
//     kConsistentHop kind and the SoA kernel a deterministic channel law.
//   - McDisPolicy and BlindRendezvousPolicy are oracle-only: their slot
//     decision depends on per-node identity (prime class / jump stride)
//     and a duty-cycle or schedule phase, which the flat SoaPolicyTable
//     deliberately does not model. They run on the classic engine only.
#pragma once

#include <cstdint>
#include <vector>

#include "net/channel_set.hpp"
#include "sim/policy.hpp"

namespace m2hew::core {

/// The symmetric transmit coin shared by the randomized competitors (and
/// by the consistent-hop SoA table builder, so oracle and kernel flip the
/// bit-identical probability).
inline constexpr double kCompetitorTransmitProbability = 0.5;

/// Consistent channel hopping (after arXiv:2506.18381): every node tracks
/// the same global hop sequence w_t = t mod |U| over the agreed universe;
/// a node that holds channel w_t tunes to it, a node that lacks it remaps
/// consistently into its own available set (sorted A(u)[w_t mod |A(u)|]).
/// Nodes sharing a channel therefore meet on it at the same local time,
/// while heterogeneous nodes still use every slot (no quiet slots, unlike
/// the universal baseline). Transmit/receive is a fair coin — the only
/// RNG draw per slot.
class ConsistentHopPolicy final : public sim::SyncPolicy {
 public:
  ConsistentHopPolicy(const net::ChannelSet& available,
                      net::ChannelId universe_size);

  [[nodiscard]] sim::SlotAction next_slot(util::Rng& rng) override;

 private:
  net::ChannelSet available_;
  std::vector<net::ChannelId> channels_;  // sorted A(u)
  net::ChannelId universe_size_;
  std::uint64_t slot_ = 0;  // node-local hop clock
};

/// Mc-Dis heterogeneous multi-channel discovery (after arXiv:1307.3630):
/// prime-pair duty cycling. Each node draws a (p1, p2) prime pair from a
/// fixed ladder by id class and is awake only in slots t with t % p1 == 0
/// or t % p2 == 0 — coprime pairs guarantee overlapping active slots for
/// any two nodes within p1*p2' slots (CRT), at a duty cycle of roughly
/// 1/p1 + 1/p2. Awake slots pick a uniformly random available channel
/// and flip a fair transmit coin (two draws); asleep slots are
/// radio-quiet and draw nothing from the RNG stream.
class McDisPolicy final : public sim::SyncPolicy {
 public:
  McDisPolicy(const net::ChannelSet& available, net::NodeId id);

  [[nodiscard]] sim::SlotAction next_slot(util::Rng& rng) override;

  /// Fraction of slots this node is awake: 1/p1 + 1/p2 - 1/(p1*p2).
  [[nodiscard]] double duty_cycle() const noexcept;

 private:
  std::vector<net::ChannelId> channels_;  // sorted A(u)
  std::uint32_t p1_;
  std::uint32_t p2_;
  std::uint64_t slot_ = 0;  // node-local slot clock
};

/// Deterministic blind rendezvous (after arXiv:1401.7313): jump-stay
/// channel sequences over the smallest prime P >= |U|. Each node runs
/// the 3P-slot round at an id-derived phase offset (the guarantee is
/// phase-agnostic, and the offset is what lets one node jump while a
/// peer stays under synchronized starts), jumping for 2P slots with an
/// id-derived round-rotated stride coprime to P, then staying for P
/// slots. Unavailable raw channels are replaced by a uniformly random
/// available one (the heterogeneous-model adaptation) and the
/// transmit/receive role is the shared fair coin: the deterministic
/// alternatives for either choice replay the same misses/collisions
/// every schedule period under synchronized clocks and deadlock from
/// n >= 5 (multi-user rendezvous analyses assume asynchronous starts
/// to break that symmetry).
class BlindRendezvousPolicy final : public sim::SyncPolicy {
 public:
  BlindRendezvousPolicy(const net::ChannelSet& available, net::NodeId id,
                        net::NodeId id_bound, net::ChannelId universe_size);

  [[nodiscard]] sim::SlotAction next_slot(util::Rng& rng) override;

  /// The sequence period prime P (smallest prime >= max(|U|, 2)).
  [[nodiscard]] net::ChannelId period_prime() const noexcept {
    return prime_;
  }

 private:
  net::ChannelSet available_;
  std::vector<net::ChannelId> channels_;  // sorted A(u)
  net::NodeId id_;
  net::ChannelId universe_size_;
  net::ChannelId prime_;
  std::uint64_t slot_ = 0;
};

/// Factories (ids are node indices, id_bound the node count, |U| read
/// from the network — the same globally-agreed knowledge the baselines
/// assume).
[[nodiscard]] sim::SyncPolicyFactory make_consistent_hop();
[[nodiscard]] sim::SyncPolicyFactory make_mcdis();
[[nodiscard]] sim::SyncPolicyFactory make_blind_rendezvous();

}  // namespace m2hew::core
