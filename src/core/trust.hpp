// Trust-scored neighbor maintenance — the defence against the adversary
// models of sim::AdversarySpec (docs/MODEL.md "Adversary model & trust
// maintenance").
//
// The paper's algorithms admit every decoded announcement into the
// neighbor table; a Byzantine advertiser exploits that by announcing a
// fake ID at an elevated rate, inflating listener tables with ghosts.
// This module wraps any synchronous policy with a per-announced-ID trust
// record, in the style of the rokoyomi malicious-node detector
// (SNIPPETS.md 1–2): a score that decays back toward full trust over
// time, a windowed message-rate anomaly penalty (honest policies transmit
// with p <= 1/2 spread over |A(u)| channels, so a per-sender reception
// rate far above the scenario's expectation is suspicious), and an
// expiring blocklist with probation. Records not refreshed within
// `entry_window` slots are dropped entirely — the windowed last-seen
// table left open by ROADMAP item 4.
//
// Determinism: the wrapper draws nothing from the RNG and keys every
// decision off the node-local slot counter, so wrapping a factory
// perturbs no stream — serial == parallel and engine parity hold
// untouched. The admission verdict feeds back to the engine through
// sim::SyncPolicy::admit_neighbor; a rejection is reported to the fault
// layer as an isolation event (time-to-isolation metric) and evicts the
// corresponding table entry.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/policy.hpp"

namespace m2hew::core {

/// Knobs for the trust-scored neighbor table. Defaults are deliberately
/// lenient; the E26 bench picks scenario-matched values (the honest
/// reception rate depends on n, |A(u)| and the policy's p).
struct TrustConfig {
  bool enabled = false;
  /// Block an ID when its score falls below this (score starts at 1).
  double threshold = 0.3;
  /// Score added per well-behaved admission (capped at 1).
  double reward = 0.02;
  /// Score subtracted when a rate window overflows.
  double rate_penalty = 0.35;
  /// Per-slot pull of the score back toward 1 (forgiveness).
  double decay = 0.999;
  /// Length of the message-rate measurement window, in node-local slots.
  std::uint64_t rate_window = 128;
  /// Announcements per window above which the sender is anomalous.
  std::uint64_t max_per_window = 6;
  /// Blocklist entry lifetime in node-local slots; on expiry the ID gets
  /// probation (score restarts at the threshold) instead of amnesty.
  std::uint64_t block_slots = 2048;
  /// Records not refreshed for this many slots are dropped (windowed
  /// last-seen table); a blocked record survives until its block expires.
  std::uint64_t entry_window = 16384;
};

/// Wraps a synchronous policy with the trust table. The inner policy's
/// schedule is untouched (next_slot forwards verbatim); only the
/// admission gate and the bookkeeping around it are added.
class TrustedSyncPolicy final : public sim::SyncPolicy {
 public:
  TrustedSyncPolicy(std::unique_ptr<sim::SyncPolicy> inner,
                    const TrustConfig& config);

  [[nodiscard]] sim::SlotAction next_slot(util::Rng& rng) override;
  void observe_reception(net::NodeId from, bool first_time) override;
  void observe_listen_outcome(sim::ListenOutcome outcome) override;
  [[nodiscard]] bool admit_neighbor(net::NodeId announced) override;

  /// Introspection for tests.
  [[nodiscard]] bool blocked(net::NodeId id) const;
  [[nodiscard]] std::size_t tracked() const noexcept {
    return records_.size();
  }

 private:
  struct Record {
    net::NodeId id = net::kInvalidNode;
    double score = 1.0;
    std::uint64_t last_seen = 0;     // last admission attempt
    std::uint64_t last_update = 0;   // last decay application
    std::uint64_t window_start = 0;  // current rate window
    std::uint64_t window_count = 0;  // attempts in the current window
    std::uint64_t blocked_until = 0;
    bool is_blocked = false;
  };

  [[nodiscard]] Record* find(net::NodeId id);
  void prune(std::uint64_t now);

  std::unique_ptr<sim::SyncPolicy> inner_;
  TrustConfig config_;
  std::vector<Record> records_;
  std::uint64_t slot_ = 0;  // node-local slots executed
};

/// Wraps an existing factory so every node maintains a trust table.
/// `config.enabled == false` returns the inner factory unchanged, so an
/// untrusted run is bit-identical to one built without the wrapper.
[[nodiscard]] sim::SyncPolicyFactory with_trust(sim::SyncPolicyFactory inner,
                                                const TrustConfig& config);

/// Range validation shared by the CLI/INI front ends; aborts with a
/// descriptive message on nonsense (threshold outside [0, 1), zero
/// windows, decay outside (0, 1]).
void validate_trust_config(const TrustConfig& config);

}  // namespace m2hew::core
