#include "core/algorithms.hpp"

#include <memory>

#include "core/algorithm1.hpp"
#include "core/algorithm3.hpp"
#include "core/algorithm4.hpp"
#include "core/baseline_universal.hpp"

namespace m2hew::core {

sim::SyncPolicyFactory make_algorithm1(std::size_t delta_est) {
  return [delta_est](const net::Network& network, net::NodeId u)
             -> std::unique_ptr<sim::SyncPolicy> {
    return std::make_unique<Algorithm1Policy>(network.available(u), delta_est);
  };
}

sim::SyncPolicyFactory make_algorithm2(EstimateSchedule schedule) {
  return [schedule](const net::Network& network, net::NodeId u)
             -> std::unique_ptr<sim::SyncPolicy> {
    return std::make_unique<Algorithm2Policy>(network.available(u), schedule);
  };
}

sim::SyncPolicyFactory make_algorithm3(std::size_t delta_est) {
  return [delta_est](const net::Network& network, net::NodeId u)
             -> std::unique_ptr<sim::SyncPolicy> {
    return std::make_unique<Algorithm3Policy>(network.available(u), delta_est);
  };
}

sim::AsyncPolicyFactory make_algorithm4(std::size_t delta_est,
                                        unsigned slots_per_frame) {
  return [delta_est, slots_per_frame](const net::Network& network,
                                      net::NodeId u)
             -> std::unique_ptr<sim::AsyncPolicy> {
    return std::make_unique<Algorithm4Policy>(network.available(u), delta_est,
                                              slots_per_frame);
  };
}

sim::SyncPolicyFactory make_universal_baseline(net::ChannelId universe_size,
                                               double p) {
  return [universe_size, p](const net::Network& network, net::NodeId u)
             -> std::unique_ptr<sim::SyncPolicy> {
    return std::make_unique<UniversalBaselinePolicy>(network.available(u),
                                                     universe_size, p);
  };
}

}  // namespace m2hew::core
