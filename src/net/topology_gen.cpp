#include "net/topology_gen.hpp"

#include "util/check.hpp"

namespace m2hew::net {

Topology make_line(NodeId n) {
  Topology t(n);
  for (NodeId i = 0; i + 1 < n; ++i) t.add_edge(i, i + 1);
  t.finalize();
  return t;
}

Topology make_ring(NodeId n) {
  M2HEW_CHECK_MSG(n == 0 || n >= 3, "ring needs at least 3 nodes");
  Topology t(n);
  for (NodeId i = 0; i + 1 < n; ++i) t.add_edge(i, i + 1);
  if (n >= 3) t.add_edge(n - 1, 0);
  t.finalize();
  return t;
}

Topology make_grid(NodeId rows, NodeId cols) {
  Topology t(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) t.add_edge(id(r, c), id(r + 1, c));
    }
  }
  t.finalize();
  return t;
}

Topology make_star(NodeId n) {
  M2HEW_CHECK(n >= 1);
  Topology t(n);
  for (NodeId i = 1; i < n; ++i) t.add_edge(0, i);
  t.finalize();
  return t;
}

Topology make_clique(NodeId n) {
  Topology t(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) t.add_edge(i, j);
  }
  t.finalize();
  return t;
}

Topology make_erdos_renyi(NodeId n, double p, util::Rng& rng) {
  M2HEW_CHECK(p >= 0.0 && p <= 1.0);
  Topology t(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(p)) t.add_edge(i, j);
    }
  }
  t.finalize();
  return t;
}

GeometricTopology make_unit_disk(NodeId n, double side, double radius,
                                 util::Rng& rng) {
  M2HEW_CHECK(side > 0.0 && radius > 0.0);
  GeometricTopology g;
  g.positions.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    g.positions.push_back(
        {rng.uniform_double(0.0, side), rng.uniform_double(0.0, side)});
  }
  g.topology = Topology(n);
  const double r2 = radius * radius;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (squared_distance(g.positions[i], g.positions[j]) <= r2) {
        g.topology.add_edge(i, j);
      }
    }
  }
  g.topology.finalize();
  return g;
}

GeometricTopology make_connected_unit_disk(NodeId n, double side,
                                           double radius, util::Rng& rng,
                                           int attempts) {
  GeometricTopology g;
  for (int k = 0; k < attempts; ++k) {
    g = make_unit_disk(n, side, radius, rng);
    if (g.topology.is_connected()) return g;
  }
  return g;
}

Topology make_watts_strogatz(NodeId n, NodeId k, double beta,
                             util::Rng& rng) {
  M2HEW_CHECK_MSG(k % 2 == 0, "k must be even");
  M2HEW_CHECK(k >= 2 && k < n);
  M2HEW_CHECK(beta >= 0.0 && beta <= 1.0);
  Topology t(n);
  // Ring lattice: node i connects to i+1 .. i+k/2 (mod n); each such edge
  // is rewired to a uniform random non-duplicate endpoint w.p. beta.
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 1; j <= k / 2; ++j) {
      NodeId target = (i + j) % n;
      if (rng.bernoulli(beta)) {
        // Rewire: pick a fresh endpoint avoiding self-loops/duplicates.
        for (int attempt = 0; attempt < 64; ++attempt) {
          const auto candidate = static_cast<NodeId>(rng.uniform(n));
          if (candidate != i && !t.has_arc(i, candidate)) {
            target = candidate;
            break;
          }
        }
      }
      if (target != i && !t.has_arc(i, target)) {
        t.add_edge(i, target);
      }
    }
  }
  t.finalize();
  return t;
}

Topology make_barabasi_albert(NodeId n, NodeId m, util::Rng& rng) {
  M2HEW_CHECK(m >= 1 && m < n);
  Topology t(n);
  // Seed with a small clique of m+1 nodes, then attach preferentially.
  // `endpoints` repeats each node once per incident edge, so sampling it
  // uniformly is degree-proportional sampling.
  std::vector<NodeId> endpoints;
  for (NodeId i = 0; i <= m; ++i) {
    for (NodeId j = i + 1; j <= m; ++j) {
      t.add_edge(i, j);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  for (NodeId v = m + 1; v < n; ++v) {
    NodeId added = 0;
    int attempts = 0;
    while (added < m && attempts < 1000) {
      ++attempts;
      const NodeId candidate = endpoints[static_cast<std::size_t>(
          rng.uniform(endpoints.size()))];
      if (candidate == v || t.has_arc(v, candidate)) continue;
      t.add_edge(v, candidate);
      endpoints.push_back(v);
      endpoints.push_back(candidate);
      ++added;
    }
  }
  t.finalize();
  return t;
}

Topology make_asymmetric(const Topology& symmetric, double drop_probability,
                         util::Rng& rng) {
  M2HEW_CHECK(drop_probability >= 0.0 && drop_probability <= 1.0);
  M2HEW_CHECK_MSG(symmetric.is_symmetric(),
                  "input topology must be symmetric");
  Topology t(symmetric.node_count());
  for (const auto& [u, v] : symmetric.edges()) {
    if (rng.bernoulli(drop_probability)) {
      // Keep one random direction.
      if (rng.bernoulli(0.5)) {
        t.add_arc(u, v);
      } else {
        t.add_arc(v, u);
      }
    } else {
      t.add_edge(u, v);
    }
  }
  t.finalize();
  return t;
}

}  // namespace m2hew::net
