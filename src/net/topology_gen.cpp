#include "net/topology_gen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/check.hpp"

namespace m2hew::net {

Topology make_line(NodeId n) {
  Topology t(n);
  for (NodeId i = 0; i + 1 < n; ++i) t.add_edge(i, i + 1);
  t.finalize();
  return t;
}

Topology make_ring(NodeId n) {
  M2HEW_CHECK_MSG(n == 0 || n >= 3, "ring needs at least 3 nodes");
  Topology t(n);
  for (NodeId i = 0; i + 1 < n; ++i) t.add_edge(i, i + 1);
  if (n >= 3) t.add_edge(n - 1, 0);
  t.finalize();
  return t;
}

Topology make_grid(NodeId rows, NodeId cols) {
  // rows and cols are 32-bit; their product must be computed in 64 bits or
  // a large grid silently wraps (e.g. 70000×70000 → a tiny node count).
  const std::uint64_t total =
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
  M2HEW_CHECK_MSG(total < kInvalidNode, "grid node count overflows NodeId");
  Topology t(static_cast<NodeId>(total));
  auto id = [cols](NodeId r, NodeId c) {
    return static_cast<NodeId>(static_cast<std::uint64_t>(r) * cols + c);
  };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) t.add_edge(id(r, c), id(r + 1, c));
    }
  }
  t.finalize();
  return t;
}

Topology make_star(NodeId n) {
  M2HEW_CHECK(n >= 1);
  Topology t(n);
  for (NodeId i = 1; i < n; ++i) t.add_edge(0, i);
  t.finalize();
  return t;
}

Topology make_clique(NodeId n) {
  Topology t(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) t.add_edge(i, j);
  }
  t.finalize();
  return t;
}

Topology make_erdos_renyi(NodeId n, double p, util::Rng& rng) {
  M2HEW_CHECK(p >= 0.0 && p <= 1.0);
  Topology t(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(p)) t.add_edge(i, j);
    }
  }
  t.finalize();
  return t;
}

Topology make_erdos_renyi_sparse(NodeId n, double p, util::Rng& rng) {
  M2HEW_CHECK(p >= 0.0 && p <= 1.0);
  if (p >= 1.0) return make_clique(n);
  Topology t(n);
  if (p > 0.0 && n > 1) {
    // Batagelj–Brandes skip sampling: enumerate the pairs (v, w), w < v, in
    // lexicographic order and jump geometrically between successive edges.
    // O(n + m) instead of the O(n²) coin-per-pair loop — the only way an
    // N=10⁵–10⁶ sparse graph is affordable.
    const double log_skip = std::log1p(-p);
    std::uint64_t v = 1;
    std::int64_t w = -1;
    while (v < n) {
      const double r = rng.uniform_double();  // in [0, 1)
      w += 1 + static_cast<std::int64_t>(std::log1p(-r) / log_skip);
      while (v < n && w >= static_cast<std::int64_t>(v)) {
        w -= static_cast<std::int64_t>(v);
        ++v;
      }
      if (v < n) {
        t.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(w));
      }
    }
  }
  t.finalize();
  return t;
}

GeometricTopology make_unit_disk(NodeId n, double side, double radius,
                                 util::Rng& rng) {
  M2HEW_CHECK(side > 0.0 && radius > 0.0);
  GeometricTopology g;
  g.positions.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    g.positions.push_back(
        {rng.uniform_double(0.0, side), rng.uniform_double(0.0, side)});
  }
  g.topology = Topology(n);
  const double r2 = radius * radius;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (squared_distance(g.positions[i], g.positions[j]) <= r2) {
        g.topology.add_edge(i, j);
      }
    }
  }
  g.topology.finalize();
  return g;
}

Topology unit_disk_topology(std::span<const Point> positions, double side,
                            double radius) {
  M2HEW_CHECK(side > 0.0 && radius > 0.0);
  const auto n = static_cast<NodeId>(positions.size());
  Topology t(n);

  // Bucket nodes into a grid of cells at least `radius` wide, so a node's
  // neighbors can only lie in its own or the 8 adjacent cells. Expected
  // cost is O(n · density) versus the all-pairs O(n²) scan. The axis count
  // is capped near 2√n to keep the bucket array O(n) even for tiny radii;
  // capping only enlarges cells, which stays correct.
  const double ideal_cells = std::floor(side / radius);
  std::size_t cells_per_axis =
      ideal_cells < 1.0 ? 1 : static_cast<std::size_t>(ideal_cells);
  const auto cell_cap = static_cast<std::size_t>(
                            2.0 * std::sqrt(static_cast<double>(n))) +
                        1;
  cells_per_axis = std::min(cells_per_axis, cell_cap);
  const double cell = side / static_cast<double>(cells_per_axis);
  auto cell_of = [&](const Point& pt) {
    auto cx = static_cast<std::size_t>(pt.x / cell);
    auto cy = static_cast<std::size_t>(pt.y / cell);
    cx = std::min(cx, cells_per_axis - 1);
    cy = std::min(cy, cells_per_axis - 1);
    return cy * cells_per_axis + cx;
  };
  std::vector<std::vector<NodeId>> buckets(cells_per_axis * cells_per_axis);
  for (NodeId i = 0; i < n; ++i) buckets[cell_of(positions[i])].push_back(i);

  const double r2 = radius * radius;
  for (std::size_t cy = 0; cy < cells_per_axis; ++cy) {
    for (std::size_t cx = 0; cx < cells_per_axis; ++cx) {
      const auto& mine = buckets[cy * cells_per_axis + cx];
      if (mine.empty()) continue;
      // Visit each unordered cell pair once: self cell plus the 4 forward
      // neighbors (E, SW, S, SE); the backward 4 are covered from the
      // other side.
      static constexpr int kDx[] = {0, 1, -1, 0, 1};
      static constexpr int kDy[] = {0, 0, 1, 1, 1};
      for (int d = 0; d < 5; ++d) {
        const auto nx = static_cast<std::int64_t>(cx) + kDx[d];
        const auto ny = static_cast<std::int64_t>(cy) + kDy[d];
        if (nx < 0 || ny < 0 ||
            nx >= static_cast<std::int64_t>(cells_per_axis) ||
            ny >= static_cast<std::int64_t>(cells_per_axis)) {
          continue;
        }
        const auto& theirs =
            buckets[static_cast<std::size_t>(ny) * cells_per_axis +
                    static_cast<std::size_t>(nx)];
        const bool same_cell = d == 0;
        for (std::size_t a = 0; a < mine.size(); ++a) {
          const std::size_t b_start = same_cell ? a + 1 : 0;
          for (std::size_t b = b_start; b < theirs.size(); ++b) {
            const NodeId i = mine[a];
            const NodeId j = theirs[b];
            if (squared_distance(positions[i], positions[j]) <= r2) {
              t.add_edge(i, j);
            }
          }
        }
      }
    }
  }
  t.finalize();
  return t;
}

GeometricTopology make_unit_disk_bucketed(NodeId n, double side,
                                          double radius, util::Rng& rng) {
  M2HEW_CHECK(side > 0.0 && radius > 0.0);
  GeometricTopology g;
  // Positions are drawn exactly as in make_unit_disk (same stream, same
  // order), so the two generators place identical points for a given Rng
  // state; only the edge-finding strategy differs.
  g.positions.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    g.positions.push_back(
        {rng.uniform_double(0.0, side), rng.uniform_double(0.0, side)});
  }
  g.topology = unit_disk_topology(g.positions, side, radius);
  return g;
}

GeometricTopology make_connected_unit_disk(NodeId n, double side,
                                           double radius, util::Rng& rng,
                                           int attempts) {
  GeometricTopology g;
  for (int k = 0; k < attempts; ++k) {
    g = make_unit_disk(n, side, radius, rng);
    if (g.topology.is_connected()) return g;
  }
  return g;
}

Topology make_watts_strogatz(NodeId n, NodeId k, double beta,
                             util::Rng& rng) {
  M2HEW_CHECK_MSG(k % 2 == 0, "k must be even");
  M2HEW_CHECK(k >= 2 && k < n);
  M2HEW_CHECK(beta >= 0.0 && beta <= 1.0);
  Topology t(n);
  // Ring lattice: node i connects to i+1 .. i+k/2 (mod n); each such edge
  // is rewired to a uniform random non-duplicate endpoint w.p. beta.
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 1; j <= k / 2; ++j) {
      // 64-bit sum: i + j can wrap uint32 when n approaches 2^32.
      NodeId target = static_cast<NodeId>(
          (static_cast<std::uint64_t>(i) + j) % n);
      if (rng.bernoulli(beta)) {
        // Rewire: pick a fresh endpoint avoiding self-loops/duplicates.
        for (int attempt = 0; attempt < 64; ++attempt) {
          const auto candidate = static_cast<NodeId>(rng.uniform(n));
          if (candidate != i && !t.has_arc(i, candidate)) {
            target = candidate;
            break;
          }
        }
      }
      if (target != i && !t.has_arc(i, target)) {
        t.add_edge(i, target);
      }
    }
  }
  t.finalize();
  return t;
}

Topology make_barabasi_albert(NodeId n, NodeId m, util::Rng& rng) {
  M2HEW_CHECK(m >= 1 && m < n);
  Topology t(n);
  // Seed with a small clique of m+1 nodes, then attach preferentially.
  // `endpoints` repeats each node once per incident edge, so sampling it
  // uniformly is degree-proportional sampling.
  std::vector<NodeId> endpoints;
  for (NodeId i = 0; i <= m; ++i) {
    for (NodeId j = i + 1; j <= m; ++j) {
      t.add_edge(i, j);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  for (NodeId v = m + 1; v < n; ++v) {
    NodeId added = 0;
    int attempts = 0;
    while (added < m && attempts < 1000) {
      ++attempts;
      const NodeId candidate = endpoints[static_cast<std::size_t>(
          rng.uniform(endpoints.size()))];
      if (candidate == v || t.has_arc(v, candidate)) continue;
      t.add_edge(v, candidate);
      endpoints.push_back(v);
      endpoints.push_back(candidate);
      ++added;
    }
  }
  t.finalize();
  return t;
}

Topology make_asymmetric(const Topology& symmetric, double drop_probability,
                         util::Rng& rng) {
  M2HEW_CHECK(drop_probability >= 0.0 && drop_probability <= 1.0);
  M2HEW_CHECK_MSG(symmetric.is_symmetric(),
                  "input topology must be symmetric");
  Topology t(symmetric.node_count());
  for (const auto& [u, v] : symmetric.edges()) {
    if (rng.bernoulli(drop_probability)) {
      // Keep one random direction.
      if (rng.bernoulli(0.5)) {
        t.add_arc(u, v);
      } else {
        t.add_arc(v, u);
      }
    } else {
      t.add_edge(u, v);
    }
  }
  t.finalize();
  return t;
}

}  // namespace m2hew::net
