#include "net/topology.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace m2hew::net {

Topology::Topology(NodeId node_count)
    : out_(node_count), in_(node_count) {}

void Topology::add_arc(NodeId u, NodeId v) {
  M2HEW_CHECK_MSG(u != v, "self-loop");
  M2HEW_CHECK(u < node_count() && v < node_count());
  M2HEW_CHECK_MSG(!has_arc(u, v), "duplicate arc");
  out_[u].push_back(v);
  in_[v].push_back(u);
  arc_list_.emplace_back(u, v);
  finalized_ = false;
}

void Topology::add_edge(NodeId u, NodeId v) {
  add_arc(u, v);
  add_arc(v, u);
  ++edges_;
}

void Topology::finalize() {
  if (finalized_) return;
  for (auto& list : out_) std::sort(list.begin(), list.end());
  for (auto& list : in_) std::sort(list.begin(), list.end());
  finalized_ = true;
}

bool Topology::has_arc(NodeId u, NodeId v) const {
  M2HEW_CHECK(u < node_count() && v < node_count());
  const auto& list = out_[u];
  if (finalized_) {
    return std::binary_search(list.begin(), list.end(), v);
  }
  return std::find(list.begin(), list.end(), v) != list.end();
}

bool Topology::has_edge(NodeId u, NodeId v) const {
  return has_arc(u, v) && has_arc(v, u);
}

std::span<const NodeId> Topology::out_neighbors(NodeId u) const {
  M2HEW_CHECK(u < node_count());
  M2HEW_CHECK_MSG(finalized_, "neighbor query before finalize()");
  return out_[u];
}

std::span<const NodeId> Topology::in_neighbors(NodeId u) const {
  M2HEW_CHECK(u < node_count());
  M2HEW_CHECK_MSG(finalized_, "neighbor query before finalize()");
  return in_[u];
}

std::size_t Topology::out_degree(NodeId u) const {
  M2HEW_CHECK(u < node_count());
  return out_[u].size();
}

std::size_t Topology::in_degree(NodeId u) const {
  M2HEW_CHECK(u < node_count());
  return in_[u].size();
}

std::size_t Topology::max_degree() const noexcept {
  std::size_t best = 0;
  for (const auto& list : out_) best = std::max(best, list.size());
  return best;
}

std::vector<std::pair<NodeId, NodeId>> Topology::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(arc_list_.size());
  for (const auto& [u, v] : arc_list_) {
    out.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Topology::is_connected() const {
  const NodeId n = node_count();
  if (n <= 1) return true;
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  NodeId visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    auto visit = [&](NodeId v) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    };
    for (const NodeId v : out_[u]) visit(v);
    for (const NodeId v : in_[u]) visit(v);
  }
  return visited == n;
}

bool Topology::is_symmetric() const {
  for (const auto& [u, v] : arc_list_) {
    if (!has_arc(v, u)) return false;
  }
  return true;
}

}  // namespace m2hew::net
