// Topology: the communication graph of §II.
//
// The paper's model section assumes a *symmetric* graph for ease of
// exposition and notes (§V, extension (a)) that the algorithms extend to
// asymmetric graphs. The graph here is therefore directed at the arc level:
// an arc u→v means a transmission by u can reach v. add_edge() inserts both
// arcs (the symmetric case); add_arc() inserts one. Reception and
// interference at a node are both governed by its *in*-arcs.
//
// Adjacency is stored as sorted vectors for cache-friendly iteration in the
// simulator hot loop.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "net/types.hpp"

namespace m2hew::net {

class Topology {
 public:
  Topology() = default;
  explicit Topology(NodeId node_count);

  [[nodiscard]] NodeId node_count() const noexcept {
    return static_cast<NodeId>(out_.size());
  }

  /// Number of undirected edges inserted via add_edge (symmetric pairs).
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }
  /// Number of directed arcs (add_edge contributes two).
  [[nodiscard]] std::size_t arc_count() const noexcept {
    return arc_list_.size();
  }

  /// Adds both arcs u→v and v→u. Self-loops and duplicates are rejected.
  void add_edge(NodeId u, NodeId v);

  /// Adds the single arc u→v (asymmetric link). Rejects duplicates.
  void add_arc(NodeId u, NodeId v);

  /// Sorts adjacency lists; must be called after the last mutation and
  /// before neighbor queries. Idempotent.
  void finalize();

  [[nodiscard]] bool has_arc(NodeId u, NodeId v) const;
  /// True iff both directions exist.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Nodes reachable by u's transmissions, sorted. Requires finalize().
  [[nodiscard]] std::span<const NodeId> out_neighbors(NodeId u) const;
  /// Nodes whose transmissions reach u, sorted. Requires finalize().
  [[nodiscard]] std::span<const NodeId> in_neighbors(NodeId u) const;
  /// Symmetric-graph convenience: alias for out_neighbors.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    return out_neighbors(u);
  }

  [[nodiscard]] std::size_t out_degree(NodeId u) const;
  [[nodiscard]] std::size_t in_degree(NodeId u) const;
  [[nodiscard]] std::size_t degree(NodeId u) const { return out_degree(u); }

  /// Maximum out-degree over all nodes.
  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// All directed arcs as (from, to) pairs, in insertion order.
  [[nodiscard]] std::span<const std::pair<NodeId, NodeId>> arcs()
      const noexcept {
    return arc_list_;
  }

  /// All unordered pairs connected by at least one arc, each listed once as
  /// (min, max). Computed on demand.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// True iff the undirected view of the graph is connected (or empty).
  [[nodiscard]] bool is_connected() const;

  /// True iff every arc has its reverse (the paper's base model).
  [[nodiscard]] bool is_symmetric() const;

 private:
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::vector<std::pair<NodeId, NodeId>> arc_list_;
  std::size_t edges_ = 0;
  bool finalized_ = true;
};

}  // namespace m2hew::net
