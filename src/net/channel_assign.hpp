// Channel-availability generators: produce the per-node available channel
// sets A(u) of §II under controllable heterogeneity.
//
// The running time of the paper's algorithms is inversely proportional to
// the minimum span-ratio ρ; these generators let benches sweep ρ precisely
// (chain_overlap) or statistically (uniform_random, primary-user model in
// primary_user.hpp).
#pragma once

#include <vector>

#include "net/channel_set.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"
#include "util/rng.hpp"

namespace m2hew::net {

using ChannelAssignment = std::vector<ChannelSet>;

/// All n nodes share the identical set {0..set_size-1} out of a universe of
/// `universe` channels. ρ = 1 (fully homogeneous).
[[nodiscard]] ChannelAssignment homogeneous_assignment(NodeId n,
                                                       ChannelId universe,
                                                       ChannelId set_size);

/// Each node independently picks a uniformly random subset of exactly
/// `per_node_size` channels from the universe.
[[nodiscard]] ChannelAssignment uniform_random_assignment(
    NodeId n, ChannelId universe, ChannelId per_node_size, util::Rng& rng);

/// Each node picks a uniform random size in [min_size, max_size] and then a
/// uniform random subset of that size. Models hardware variation in
/// transceiver capability.
[[nodiscard]] ChannelAssignment variable_size_random_assignment(
    NodeId n, ChannelId universe, ChannelId min_size, ChannelId max_size,
    util::Rng& rng);

/// Exact-ρ construction for path-shaped topologies: node i receives the
/// contiguous channel block [i·(s−k), i·(s−k)+s). Adjacent nodes overlap in
/// exactly k channels, so every link of a line topology has span-ratio k/s
/// and the network has ρ = k/s exactly. Requires 1 <= k <= s.
struct ChainOverlapResult {
  ChannelAssignment assignment;
  ChannelId universe_size = 0;
};
[[nodiscard]] ChainOverlapResult chain_overlap_assignment(NodeId n,
                                                          ChannelId set_size,
                                                          ChannelId overlap);

/// Retries `generate` until every topology edge has a non-empty span (so the
/// communication graph and the discovery ground truth coincide), up to
/// `attempts` times; returns the last attempt regardless. Useful for random
/// assignments on sparse universes.
template <typename Generate>
[[nodiscard]] ChannelAssignment generate_with_nonempty_spans(
    const Topology& topology, int attempts, Generate&& generate) {
  ChannelAssignment assignment;
  for (int k = 0; k < attempts; ++k) {
    assignment = generate();
    bool ok = true;
    for (const auto& [u, v] : topology.edges()) {
      if (assignment[u].intersection_size(assignment[v]) == 0) {
        ok = false;
        break;
      }
    }
    if (ok) return assignment;
  }
  return assignment;
}

}  // namespace m2hew::net
