// Propagation filters (§V extension (c) — diverse propagation
// characteristics). The base model assumes every channel propagates
// identically on every link; these helpers build per-arc channel masks for
// the generalized model: span(v→u) = A(v) ∩ A(u) ∩ mask(v, u).
#pragma once

#include <cstdint>

#include "net/network.hpp"

namespace m2hew::net {

/// Every channel propagates on every arc (the paper's base assumption).
[[nodiscard]] PropagationFilter full_propagation(ChannelId universe);

/// Each (unordered pair, channel) propagates independently with probability
/// `keep_probability`, derived deterministically from `seed` — the same
/// (pair, channel) always gets the same verdict, and the mask is symmetric
/// (mask(u,v) == mask(v,u)), modelling frequency-selective fading that
/// affects both directions of a link equally.
[[nodiscard]] PropagationFilter random_propagation_filter(
    ChannelId universe, double keep_probability, std::uint64_t seed);

/// Low-pass model: only channels with id < cutoff(u, v) propagate, where
/// the cutoff shrinks with the pair's id distance — a crude stand-in for
/// higher frequencies having shorter range. Guarantees channel 0 always
/// propagates (masks are never empty).
[[nodiscard]] PropagationFilter distance_lowpass_filter(ChannelId universe,
                                                        NodeId node_count);

}  // namespace m2hew::net
