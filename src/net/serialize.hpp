// Text serialization of networks, so experiments can be pinned to exact
// instances (shared, diffed, replayed via the CLI's --save-network /
// --load-network).
//
// Format (line oriented, '#' comments allowed):
//   m2hew-network v1
//   nodes <N> universe <U>
//   arc <from> <to>            (one per directed arc)
//   avail <node> <c...>        (one per node, sorted channels)
//   span <from> <to> <c...>    (one per arc; may list no channels)
//
// Spans are stored explicitly so networks built with propagation filters
// round-trip exactly (the filter itself, being a function, is not
// serialized; the reader reconstructs an equivalent per-arc mask).
#pragma once

#include <iosfwd>
#include <string>

#include "net/network.hpp"

namespace m2hew::net {

/// Writes the network to `out` in the v1 text format.
void write_network(std::ostream& out, const Network& network);

/// Parses a v1 network. Malformed input (bad magic, out-of-range
/// endpoints or channels, duplicate or missing records, non-numeric
/// tokens, truncation) throws std::runtime_error whose message names the
/// offending 1-based line, so callers can reject a bad file gracefully.
[[nodiscard]] Network read_network(std::istream& in);

/// Convenience file wrappers. Throw std::runtime_error on I/O failure.
void save_network_file(const std::string& path, const Network& network);
[[nodiscard]] Network load_network_file(const std::string& path);

}  // namespace m2hew::net
