// Time-varying topology behind a uniform provider interface.
//
// Engines resolve adjacency through a TopologyProvider instead of a single
// Network: the provider exposes E >= 1 epochs, each a fully built Network
// over the SAME node set and channel assignment, plus the *union* network
// containing every arc that exists in any epoch. Engines are constructed
// on the union (discovery bookkeeping, policies, completion ground truth
// all need the full arc universe), and consult epoch(e) only to decide
// which arcs carry traffic during epoch e. A single-epoch provider is the
// static case: union_network() and epoch(0) are the same object, so the
// dynamic path degenerates to exactly today's behavior.
//
// StaticTopologyProvider wraps an existing Network by reference at zero
// cost; EpochTopologyProvider drives a RandomWaypointModel and rebuilds
// the unit-disk link set per epoch with the bucketed cell scan
// (unit_disk_topology), reusing one channel assignment throughout.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/channel_set.hpp"
#include "net/mobility.hpp"
#include "net/network.hpp"

namespace m2hew::net {

/// Read-only view of a (possibly time-varying) topology. All referenced
/// networks must share node count and channel assignment; the union
/// network must contain every arc of every epoch.
class TopologyProvider {
 public:
  virtual ~TopologyProvider() = default;

  /// Number of epochs, >= 1.
  [[nodiscard]] virtual std::size_t epoch_count() const noexcept = 0;

  /// The link set in force during epoch e (e < epoch_count()). Simulations
  /// running past the last epoch stay on epoch_count() - 1.
  [[nodiscard]] virtual const Network& epoch(std::size_t e) const = 0;

  /// Every arc that exists in at least one epoch. Engines build their
  /// discovery state (and define "complete") against this network. For a
  /// single-epoch provider this is epoch(0) itself.
  [[nodiscard]] virtual const Network& union_network() const = 0;
};

/// The static case: one epoch, no copies — wraps a caller-owned Network
/// by reference (caller keeps it alive, as with engine configs today).
class StaticTopologyProvider final : public TopologyProvider {
 public:
  explicit StaticTopologyProvider(const Network& network)
      : network_(&network) {}

  [[nodiscard]] std::size_t epoch_count() const noexcept override { return 1; }
  [[nodiscard]] const Network& epoch(std::size_t e) const override;
  [[nodiscard]] const Network& union_network() const override {
    return *network_;
  }

 private:
  const Network* network_;
};

/// Random-waypoint mobility over the unit-disk model: node positions
/// advance one step per epoch and the link set is recomputed with the
/// bucketed cell scan. All epochs (and the union) are built eagerly at
/// construction, so epoch()/union_network() are allocation-free and safe
/// to call concurrently from worker threads during trials.
class EpochTopologyProvider final : public TopologyProvider {
 public:
  /// `assignment` is the per-node channel availability, shared by every
  /// epoch (mobility moves nodes; it does not retune radios). `seed`
  /// derives the per-node trajectory streams (net/mobility.hpp).
  EpochTopologyProvider(const MobilityConfig& config,
                        std::vector<ChannelSet> assignment,
                        std::uint64_t seed);

  [[nodiscard]] std::size_t epoch_count() const noexcept override {
    return epochs_.size();
  }
  [[nodiscard]] const Network& epoch(std::size_t e) const override;
  [[nodiscard]] const Network& union_network() const override;

  /// Node positions at epoch e (for tests and position-based diagnostics).
  [[nodiscard]] std::span<const Point> positions(std::size_t e) const;

  [[nodiscard]] const MobilityConfig& config() const noexcept {
    return config_;
  }

 private:
  MobilityConfig config_;
  std::vector<Network> epochs_;
  std::vector<std::vector<Point>> positions_;
  /// Null when epoch_count() == 1 (the union IS epoch 0 then).
  std::unique_ptr<Network> union_;
};

}  // namespace m2hew::net
