#include "net/serialize.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace m2hew::net {

void write_network(std::ostream& out, const Network& network) {
  out << "m2hew-network v1\n";
  out << "nodes " << network.node_count() << " universe "
      << network.universe_size() << "\n";
  for (const auto& [from, to] : network.topology().arcs()) {
    out << "arc " << from << ' ' << to << "\n";
  }
  for (NodeId u = 0; u < network.node_count(); ++u) {
    out << "avail " << u;
    for (const ChannelId c : network.available(u).to_vector()) {
      out << ' ' << c;
    }
    out << "\n";
  }
  for (const auto& [from, to] : network.topology().arcs()) {
    out << "span " << from << ' ' << to;
    for (const ChannelId c : network.span(from, to).to_vector()) {
      out << ' ' << c;
    }
    out << "\n";
  }
}

namespace {

/// Parse failure helper: every malformed input path in read_network throws
/// std::runtime_error (never CHECK-aborts), with the 1-based line number
/// and the offending line so callers can show a useful diagnostic.
[[noreturn]] void parse_fail(std::size_t line_number, const std::string& line,
                             const std::string& message) {
  throw std::runtime_error("network parse error at line " +
                           std::to_string(line_number) + ": " + message +
                           (line.empty() ? "" : " ('" + line + "')"));
}

}  // namespace

Network read_network(std::istream& in) {
  std::string line;
  std::size_t line_number = 0;
  auto next_line = [&](std::string& out_line) {
    while (std::getline(in, out_line)) {
      ++line_number;
      if (!out_line.empty() && out_line[0] != '#') return true;
    }
    return false;
  };
  auto fail = [&](const std::string& message) {
    parse_fail(line_number, line, message);
  };

  if (!next_line(line) || line != "m2hew-network v1") {
    fail("bad magic line (expected 'm2hew-network v1')");
  }

  if (!next_line(line)) fail("truncated: missing header");
  std::istringstream header(line);
  std::string word;
  NodeId n = 0;
  ChannelId universe = 0;
  header >> word;
  if (word != "nodes") fail("expected 'nodes'");
  header >> n >> word >> universe;
  if (word != "universe" || header.fail()) fail("bad header");
  if (n < 1) fail("node count must be >= 1");
  if (universe < 1) fail("universe size must be >= 1");

  Topology topology(n);
  std::vector<ChannelSet> assignment(n, ChannelSet(universe));
  std::vector<bool> avail_seen(n, false);
  std::map<std::pair<NodeId, NodeId>, ChannelSet> spans;
  std::map<std::pair<NodeId, NodeId>, bool> arcs_seen;

  while (next_line(line)) {
    std::istringstream row(line);
    row >> word;
    if (word == "arc") {
      NodeId from = kInvalidNode;
      NodeId to = kInvalidNode;
      row >> from >> to;
      if (row.fail()) fail("bad arc line");
      // Pre-validate everything Topology::add_arc would CHECK so corrupted
      // files surface as exceptions, not aborts.
      if (from >= n || to >= n) fail("arc endpoint out of range");
      if (from == to) fail("arc is a self-loop");
      if (!arcs_seen.emplace(std::make_pair(from, to), true).second) {
        fail("duplicate arc");
      }
      topology.add_arc(from, to);
    } else if (word == "avail") {
      NodeId u = kInvalidNode;
      row >> u;
      if (row.fail() || u >= n) fail("bad avail line");
      if (avail_seen[u]) fail("duplicate avail line");
      avail_seen[u] = true;
      ChannelId c = 0;
      while (row >> c) {
        if (c >= universe) fail("avail channel out of range");
        assignment[u].insert(c);
      }
      if (!row.eof()) fail("avail channel is not a number");
      if (assignment[u].empty()) fail("node with empty available set");
    } else if (word == "span") {
      NodeId from = kInvalidNode;
      NodeId to = kInvalidNode;
      row >> from >> to;
      if (row.fail() || from >= n || to >= n) fail("bad span line");
      ChannelSet span(universe);
      ChannelId c = 0;
      while (row >> c) {
        if (c >= universe) fail("span channel out of range");
        span.insert(c);
      }
      if (!row.eof()) fail("span channel is not a number");
      const bool inserted =
          spans.emplace(std::make_pair(from, to), std::move(span)).second;
      if (!inserted) fail("duplicate span line");
    } else {
      fail("unknown record type '" + word + "'");
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    if (!avail_seen[u]) {
      parse_fail(line_number, "",
                 "truncated: missing avail line for node " +
                     std::to_string(u));
    }
  }
  for (const auto& [arc, span] : spans) {
    if (!arcs_seen.count(arc)) {
      parse_fail(line_number, "", "span line for a nonexistent arc");
    }
  }

  if (spans.empty()) {
    return Network(std::move(topology), std::move(assignment));
  }
  // Reconstruct the stored spans through a propagation filter. The filter
  // may be called for any arc; arcs without a span line keep full masks.
  const ChannelId mask_universe = universe;
  PropagationFilter filter = [spans, mask_universe](NodeId from, NodeId to) {
    const auto it = spans.find(std::make_pair(from, to));
    if (it == spans.end()) return ChannelSet::full(mask_universe);
    return it->second;
  };
  return Network(std::move(topology), std::move(assignment), filter);
}

void save_network_file(const std::string& path, const Network& network) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for write");
  write_network(out, network);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Network load_network_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_network(in);
}

}  // namespace m2hew::net
