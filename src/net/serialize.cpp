#include "net/serialize.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace m2hew::net {

void write_network(std::ostream& out, const Network& network) {
  out << "m2hew-network v1\n";
  out << "nodes " << network.node_count() << " universe "
      << network.universe_size() << "\n";
  for (const auto& [from, to] : network.topology().arcs()) {
    out << "arc " << from << ' ' << to << "\n";
  }
  for (NodeId u = 0; u < network.node_count(); ++u) {
    out << "avail " << u;
    for (const ChannelId c : network.available(u).to_vector()) {
      out << ' ' << c;
    }
    out << "\n";
  }
  for (const auto& [from, to] : network.topology().arcs()) {
    out << "span " << from << ' ' << to;
    for (const ChannelId c : network.span(from, to).to_vector()) {
      out << ' ' << c;
    }
    out << "\n";
  }
}

Network read_network(std::istream& in) {
  std::string line;
  auto next_line = [&](std::string& out_line) {
    while (std::getline(in, out_line)) {
      if (!out_line.empty() && out_line[0] != '#') return true;
    }
    return false;
  };

  M2HEW_CHECK_MSG(next_line(line) && line == "m2hew-network v1",
                  "bad magic line");

  M2HEW_CHECK_MSG(next_line(line), "missing header");
  std::istringstream header(line);
  std::string word;
  NodeId n = 0;
  ChannelId universe = 0;
  header >> word;
  M2HEW_CHECK_MSG(word == "nodes", "expected 'nodes'");
  header >> n >> word >> universe;
  M2HEW_CHECK_MSG(word == "universe" && !header.fail(), "bad header");
  M2HEW_CHECK(n >= 1);

  Topology topology(n);
  std::vector<ChannelSet> assignment(n, ChannelSet(universe));
  std::vector<bool> avail_seen(n, false);
  std::map<std::pair<NodeId, NodeId>, ChannelSet> spans;

  while (next_line(line)) {
    std::istringstream row(line);
    row >> word;
    if (word == "arc") {
      NodeId from = kInvalidNode;
      NodeId to = kInvalidNode;
      row >> from >> to;
      M2HEW_CHECK_MSG(!row.fail(), "bad arc line");
      topology.add_arc(from, to);
    } else if (word == "avail") {
      NodeId u = kInvalidNode;
      row >> u;
      M2HEW_CHECK_MSG(!row.fail() && u < n, "bad avail line");
      M2HEW_CHECK_MSG(!avail_seen[u], "duplicate avail line");
      avail_seen[u] = true;
      ChannelId c = 0;
      while (row >> c) assignment[u].insert(c);
    } else if (word == "span") {
      NodeId from = kInvalidNode;
      NodeId to = kInvalidNode;
      row >> from >> to;
      M2HEW_CHECK_MSG(!row.fail() && from < n && to < n, "bad span line");
      ChannelSet span(universe);
      ChannelId c = 0;
      while (row >> c) span.insert(c);
      const bool inserted =
          spans.emplace(std::make_pair(from, to), std::move(span)).second;
      M2HEW_CHECK_MSG(inserted, "duplicate span line");
    } else {
      M2HEW_CHECK_MSG(false, "unknown record type");
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    M2HEW_CHECK_MSG(avail_seen[u], "missing avail line for a node");
  }

  if (spans.empty()) {
    return Network(std::move(topology), std::move(assignment));
  }
  // Reconstruct the stored spans through a propagation filter. The filter
  // may be called for any arc; arcs without a span line keep full masks.
  const ChannelId mask_universe = universe;
  PropagationFilter filter = [spans, mask_universe](NodeId from, NodeId to) {
    const auto it = spans.find(std::make_pair(from, to));
    if (it == spans.end()) return ChannelSet::full(mask_universe);
    return it->second;
  };
  return Network(std::move(topology), std::move(assignment), filter);
}

void save_network_file(const std::string& path, const Network& network) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for write");
  write_network(out, network);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Network load_network_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_network(in);
}

}  // namespace m2hew::net
