#include "net/channel_set.hpp"

#include <bit>
#include <string>

#include "util/check.hpp"

namespace m2hew::net {

ChannelSet::ChannelSet(ChannelId universe_size)
    : universe_(universe_size), words_(word_count(universe_size), 0) {}

ChannelSet::ChannelSet(ChannelId universe_size,
                       std::initializer_list<ChannelId> ids)
    : ChannelSet(universe_size) {
  for (const ChannelId c : ids) insert(c);
}

ChannelSet ChannelSet::full(ChannelId universe_size) {
  ChannelSet s(universe_size);
  for (ChannelId c = 0; c < universe_size; ++c) s.insert(c);
  return s;
}

bool ChannelSet::contains(ChannelId c) const noexcept {
  if (c >= universe_) return false;
  return (words_[word_index(c)] & bit_mask(c)) != 0;
}

void ChannelSet::insert(ChannelId c) {
  M2HEW_CHECK_MSG(c < universe_, "channel outside universe");
  std::uint64_t& word = words_[word_index(c)];
  if ((word & bit_mask(c)) == 0) {
    word |= bit_mask(c);
    ++count_;
  }
}

void ChannelSet::erase(ChannelId c) {
  if (c >= universe_) return;
  std::uint64_t& word = words_[word_index(c)];
  if ((word & bit_mask(c)) != 0) {
    word &= ~bit_mask(c);
    --count_;
  }
}

void ChannelSet::clear() noexcept {
  for (auto& w : words_) w = 0;
  count_ = 0;
}

void ChannelSet::check_universe(const ChannelSet& other,
                                const char* op) const {
  if (universe_ == other.universe_) return;
  throw ChannelSetError(std::string("ChannelSet::") + op +
                        ": universe mismatch (" +
                        std::to_string(universe_) + " vs " +
                        std::to_string(other.universe_) + " channels)");
}

void ChannelSet::recount() noexcept {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  count_ = total;
}

ChannelSet ChannelSet::intersect(const ChannelSet& other) const {
  check_universe(other, "intersect");
  ChannelSet out(*this);
  return out.intersect_with(other);
}

ChannelSet ChannelSet::unite(const ChannelSet& other) const {
  check_universe(other, "unite");
  ChannelSet out(*this);
  return out.unite_with(other);
}

ChannelSet ChannelSet::subtract(const ChannelSet& other) const {
  check_universe(other, "subtract");
  ChannelSet out(*this);
  return out.subtract_with(other);
}

ChannelSet& ChannelSet::intersect_with(const ChannelSet& other) {
  check_universe(other, "intersect_with");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  recount();
  return *this;
}

ChannelSet& ChannelSet::unite_with(const ChannelSet& other) {
  check_universe(other, "unite_with");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  recount();
  return *this;
}

ChannelSet& ChannelSet::subtract_with(const ChannelSet& other) {
  check_universe(other, "subtract_with");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
  }
  recount();
  return *this;
}

std::size_t ChannelSet::intersection_size(
    const ChannelSet& other) const noexcept {
  std::size_t total = 0;
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(
        std::popcount(words_[i] & other.words_[i]));
  }
  return total;
}

namespace {

/// Position of the (k+1)-th set bit of `word` (0-based rank k). Requires
/// k < popcount(word). Skips whole bytes by popcount, then resolves the
/// remaining rank inside one byte — at most 7 bit-clears instead of up to
/// 63 for a full-word linear select.
unsigned select_in_word(std::uint64_t word, std::size_t k) noexcept {
  unsigned base = 0;
  for (;;) {
    const auto byte_pop =
        static_cast<std::size_t>(std::popcount(word & 0xFFULL));
    if (k < byte_pop) break;
    k -= byte_pop;
    word >>= 8;
    base += 8;
  }
  auto byte = static_cast<std::uint64_t>(word & 0xFFULL);
  for (; k > 0; --k) byte &= byte - 1;
  return base + static_cast<unsigned>(std::countr_zero(byte));
}

}  // namespace

ChannelId ChannelSet::nth(std::size_t k) const {
  M2HEW_CHECK_MSG(k < count_, "nth index out of range");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t word = words_[i];
    const auto in_word = static_cast<std::size_t>(std::popcount(word));
    if (k >= in_word) {
      k -= in_word;
      continue;
    }
    return static_cast<ChannelId>(i * 64 + select_in_word(word, k));
  }
  M2HEW_CHECK_MSG(false, "unreachable: count_ inconsistent with words_");
  return kInvalidChannel;
}

ChannelId ChannelSet::sample(util::Rng& rng) const {
  M2HEW_CHECK_MSG(count_ > 0, "sampling from empty channel set");
  return nth(static_cast<std::size_t>(rng.uniform(count_)));
}

std::vector<ChannelId> ChannelSet::to_vector() const {
  std::vector<ChannelId> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t word = words_[i];
    while (word != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(word));
      out.push_back(static_cast<ChannelId>(i * 64 + bit));
      word &= word - 1;
    }
  }
  return out;
}

}  // namespace m2hew::net
