#include "net/channel_set.hpp"

#include <bit>

#include "util/check.hpp"

namespace m2hew::net {

ChannelSet::ChannelSet(ChannelId universe_size)
    : universe_(universe_size), words_((universe_size + 63) / 64, 0) {}

ChannelSet::ChannelSet(ChannelId universe_size,
                       std::initializer_list<ChannelId> ids)
    : ChannelSet(universe_size) {
  for (const ChannelId c : ids) insert(c);
}

ChannelSet ChannelSet::full(ChannelId universe_size) {
  ChannelSet s(universe_size);
  for (ChannelId c = 0; c < universe_size; ++c) s.insert(c);
  return s;
}

bool ChannelSet::contains(ChannelId c) const noexcept {
  if (c >= universe_) return false;
  return (words_[word_index(c)] & bit_mask(c)) != 0;
}

void ChannelSet::insert(ChannelId c) {
  M2HEW_CHECK_MSG(c < universe_, "channel outside universe");
  std::uint64_t& word = words_[word_index(c)];
  if ((word & bit_mask(c)) == 0) {
    word |= bit_mask(c);
    ++count_;
  }
}

void ChannelSet::erase(ChannelId c) {
  if (c >= universe_) return;
  std::uint64_t& word = words_[word_index(c)];
  if ((word & bit_mask(c)) != 0) {
    word &= ~bit_mask(c);
    --count_;
  }
}

void ChannelSet::clear() noexcept {
  for (auto& w : words_) w = 0;
  count_ = 0;
}

void ChannelSet::check_universe(const ChannelSet& other) const {
  M2HEW_CHECK_MSG(universe_ == other.universe_,
                  "channel sets over different universes");
}

ChannelSet ChannelSet::intersect(const ChannelSet& other) const {
  check_universe(other);
  ChannelSet out(universe_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] & other.words_[i];
    out.count_ += static_cast<std::size_t>(std::popcount(out.words_[i]));
  }
  return out;
}

ChannelSet ChannelSet::unite(const ChannelSet& other) const {
  check_universe(other);
  ChannelSet out(universe_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] | other.words_[i];
    out.count_ += static_cast<std::size_t>(std::popcount(out.words_[i]));
  }
  return out;
}

ChannelSet ChannelSet::subtract(const ChannelSet& other) const {
  check_universe(other);
  ChannelSet out(universe_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] & ~other.words_[i];
    out.count_ += static_cast<std::size_t>(std::popcount(out.words_[i]));
  }
  return out;
}

std::size_t ChannelSet::intersection_size(
    const ChannelSet& other) const noexcept {
  std::size_t total = 0;
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(
        std::popcount(words_[i] & other.words_[i]));
  }
  return total;
}

ChannelId ChannelSet::nth(std::size_t k) const {
  M2HEW_CHECK_MSG(k < count_, "nth index out of range");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t word = words_[i];
    const auto in_word = static_cast<std::size_t>(std::popcount(word));
    if (k >= in_word) {
      k -= in_word;
      continue;
    }
    // Select the (k+1)-th set bit in `word` by clearing k lowest set bits.
    for (std::size_t j = 0; j < k; ++j) word &= word - 1;
    return static_cast<ChannelId>(i * 64 +
                                  static_cast<std::size_t>(
                                      std::countr_zero(word)));
  }
  M2HEW_CHECK_MSG(false, "unreachable: count_ inconsistent with words_");
  return kInvalidChannel;
}

ChannelId ChannelSet::sample(util::Rng& rng) const {
  M2HEW_CHECK_MSG(count_ > 0, "sampling from empty channel set");
  return nth(static_cast<std::size_t>(rng.uniform(count_)));
}

std::vector<ChannelId> ChannelSet::to_vector() const {
  std::vector<ChannelId> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t word = words_[i];
    while (word != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(word));
      out.push_back(static_cast<ChannelId>(i * 64 + bit));
      word &= word - 1;
    }
  }
  return out;
}

}  // namespace m2hew::net
