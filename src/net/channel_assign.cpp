#include "net/channel_assign.hpp"

#include <numeric>

#include "util/check.hpp"

namespace m2hew::net {

ChannelAssignment homogeneous_assignment(NodeId n, ChannelId universe,
                                         ChannelId set_size) {
  M2HEW_CHECK(set_size >= 1 && set_size <= universe);
  ChannelSet base(universe);
  for (ChannelId c = 0; c < set_size; ++c) base.insert(c);
  return ChannelAssignment(n, base);
}

namespace {

[[nodiscard]] ChannelSet random_subset(ChannelId universe, ChannelId size,
                                       util::Rng& rng) {
  M2HEW_CHECK(size >= 1 && size <= universe);
  // Partial Fisher–Yates over channel ids: first `size` entries form a
  // uniform random subset.
  std::vector<ChannelId> ids(universe);
  std::iota(ids.begin(), ids.end(), ChannelId{0});
  ChannelSet out(universe);
  for (ChannelId i = 0; i < size; ++i) {
    const auto j =
        static_cast<ChannelId>(i + rng.uniform(universe - i));
    std::swap(ids[i], ids[j]);
    out.insert(ids[i]);
  }
  return out;
}

}  // namespace

ChannelAssignment uniform_random_assignment(NodeId n, ChannelId universe,
                                            ChannelId per_node_size,
                                            util::Rng& rng) {
  ChannelAssignment out;
  out.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    out.push_back(random_subset(universe, per_node_size, rng));
  }
  return out;
}

ChannelAssignment variable_size_random_assignment(NodeId n, ChannelId universe,
                                                  ChannelId min_size,
                                                  ChannelId max_size,
                                                  util::Rng& rng) {
  M2HEW_CHECK(min_size >= 1 && min_size <= max_size && max_size <= universe);
  ChannelAssignment out;
  out.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    const auto size = static_cast<ChannelId>(
        rng.uniform_range(min_size, max_size));
    out.push_back(random_subset(universe, size, rng));
  }
  return out;
}

ChainOverlapResult chain_overlap_assignment(NodeId n, ChannelId set_size,
                                            ChannelId overlap) {
  M2HEW_CHECK(overlap >= 1 && overlap <= set_size);
  const ChannelId stride = set_size - overlap;
  ChainOverlapResult result;
  result.universe_size =
      (n == 0) ? set_size : static_cast<ChannelId>((n - 1) * stride + set_size);
  result.assignment.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    ChannelSet s(result.universe_size);
    const auto base = static_cast<ChannelId>(i * stride);
    for (ChannelId c = 0; c < set_size; ++c) {
      s.insert(static_cast<ChannelId>(base + c));
    }
    result.assignment.push_back(std::move(s));
  }
  return result;
}

}  // namespace m2hew::net
