// ChannelSet: a node's available channel set A(u), per §II of the paper.
//
// Implemented as a dynamic bitset with a cached popcount; supports the
// operations the algorithms need: membership, intersection (span
// computation), uniform random sampling (every algorithm selects a channel
// uniformly at random from A(u) each slot/frame), and ordered iteration.
//
// Word-level access (words(), word_count()) and the in-place word-parallel
// kernels (intersect_with/unite_with/subtract_with) exist for the
// structure-of-arrays simulation kernels, which operate on flat copies of
// the underlying words instead of per-channel loops.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "net/types.hpp"
#include "util/rng.hpp"

namespace m2hew::net {

/// Recoverable misuse of the ChannelSet API: set operations across
/// different universes. Thrown (not aborted) in every build mode so
/// callers composing sets from external inputs — parsers, kernels gluing
/// networks together — can report the offending operation instead of
/// dying, matching the file:line diagnostic style of the INI and network
/// parsers.
class ChannelSetError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

class ChannelSet {
 public:
  ChannelSet() = default;

  /// Empty set over a universe of `universe_size` channels (ids
  /// 0..universe_size-1).
  explicit ChannelSet(ChannelId universe_size);

  /// Set containing exactly the given channels.
  ChannelSet(ChannelId universe_size, std::initializer_list<ChannelId> ids);

  /// Full set {0, ..., universe_size-1}.
  [[nodiscard]] static ChannelSet full(ChannelId universe_size);

  /// 64-bit words needed to hold a universe of the given size.
  [[nodiscard]] static constexpr std::size_t word_count(
      ChannelId universe_size) noexcept {
    return (static_cast<std::size_t>(universe_size) + 63) / 64;
  }

  [[nodiscard]] ChannelId universe_size() const noexcept { return universe_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  [[nodiscard]] bool contains(ChannelId c) const noexcept;
  void insert(ChannelId c);
  void erase(ChannelId c);
  void clear() noexcept;

  /// Set intersection; universes must match (throws ChannelSetError).
  [[nodiscard]] ChannelSet intersect(const ChannelSet& other) const;
  /// Set union; universes must match (throws ChannelSetError).
  [[nodiscard]] ChannelSet unite(const ChannelSet& other) const;
  /// Set difference (elements of *this not in other); universes must match
  /// (throws ChannelSetError).
  [[nodiscard]] ChannelSet subtract(const ChannelSet& other) const;

  /// In-place word-parallel kernels: this ∩= / ∪= / −= other, no
  /// allocation. Universes must match (throws ChannelSetError).
  ChannelSet& intersect_with(const ChannelSet& other);
  ChannelSet& unite_with(const ChannelSet& other);
  ChannelSet& subtract_with(const ChannelSet& other);

  /// |this ∩ other| without materializing the intersection.
  [[nodiscard]] std::size_t intersection_size(
      const ChannelSet& other) const noexcept;

  /// Uniformly random member. Requires non-empty. The draw is exactly one
  /// Rng::uniform(size()) — callers relying on draw-order determinism
  /// (docs/EXTENDING.md) can substitute any equally-long representation of
  /// A(u) and keep bit-identical streams.
  [[nodiscard]] ChannelId sample(util::Rng& rng) const;

  /// Members in increasing order.
  [[nodiscard]] std::vector<ChannelId> to_vector() const;

  /// The k-th member in increasing order (0-based). Requires k < size().
  /// Word-skipping: whole words are skipped by popcount, the in-word rank
  /// is resolved byte-wise — O(words + 8), not O(k) bit-clears.
  [[nodiscard]] ChannelId nth(std::size_t k) const;

  /// Raw bitset words, least-significant channel first. The flat-array
  /// kernels copy these into their per-arc span tables.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  friend bool operator==(const ChannelSet& a, const ChannelSet& b) {
    return a.universe_ == b.universe_ && a.words_ == b.words_;
  }

 private:
  [[nodiscard]] static std::size_t word_index(ChannelId c) noexcept {
    return c >> 6;
  }
  [[nodiscard]] static std::uint64_t bit_mask(ChannelId c) noexcept {
    return 1ULL << (c & 63);
  }
  void check_universe(const ChannelSet& other, const char* op) const;
  void recount() noexcept;

  ChannelId universe_ = 0;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace m2hew::net
