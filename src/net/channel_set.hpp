// ChannelSet: a node's available channel set A(u), per §II of the paper.
//
// Implemented as a dynamic bitset with a cached popcount; supports the
// operations the algorithms need: membership, intersection (span
// computation), uniform random sampling (every algorithm selects a channel
// uniformly at random from A(u) each slot/frame), and ordered iteration.
#pragma once

#include <cstdint>
#include <vector>

#include "net/types.hpp"
#include "util/rng.hpp"

namespace m2hew::net {

class ChannelSet {
 public:
  ChannelSet() = default;

  /// Empty set over a universe of `universe_size` channels (ids
  /// 0..universe_size-1).
  explicit ChannelSet(ChannelId universe_size);

  /// Set containing exactly the given channels.
  ChannelSet(ChannelId universe_size, std::initializer_list<ChannelId> ids);

  /// Full set {0, ..., universe_size-1}.
  [[nodiscard]] static ChannelSet full(ChannelId universe_size);

  [[nodiscard]] ChannelId universe_size() const noexcept { return universe_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  [[nodiscard]] bool contains(ChannelId c) const noexcept;
  void insert(ChannelId c);
  void erase(ChannelId c);
  void clear() noexcept;

  /// Set intersection; universes must match.
  [[nodiscard]] ChannelSet intersect(const ChannelSet& other) const;
  /// Set union; universes must match.
  [[nodiscard]] ChannelSet unite(const ChannelSet& other) const;
  /// Set difference (elements of *this not in other); universes must match.
  [[nodiscard]] ChannelSet subtract(const ChannelSet& other) const;

  /// |this ∩ other| without materializing the intersection.
  [[nodiscard]] std::size_t intersection_size(
      const ChannelSet& other) const noexcept;

  /// Uniformly random member. Requires non-empty.
  [[nodiscard]] ChannelId sample(util::Rng& rng) const;

  /// Members in increasing order.
  [[nodiscard]] std::vector<ChannelId> to_vector() const;

  /// The k-th member in increasing order (0-based). Requires k < size().
  [[nodiscard]] ChannelId nth(std::size_t k) const;

  friend bool operator==(const ChannelSet& a, const ChannelSet& b) {
    return a.universe_ == b.universe_ && a.words_ == b.words_;
  }

 private:
  [[nodiscard]] static std::size_t word_index(ChannelId c) noexcept {
    return c >> 6;
  }
  [[nodiscard]] static std::uint64_t bit_mask(ChannelId c) noexcept {
    return 1ULL << (c & 63);
  }
  void check_universe(const ChannelSet& other) const;

  ChannelId universe_ = 0;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace m2hew::net
