// Seed-derived node mobility for time-varying topologies.
//
// The random-waypoint model is the standard synthetic workload for mobile
// ad-hoc deployments (and the contact-tracing profile of ROADMAP open
// item 4): each node independently picks a waypoint uniform in the
// deployment square, a per-leg speed uniform in [speed_min, speed_max],
// walks straight toward the waypoint, optionally pauses there, and
// repeats. Time is discretized in *epochs* — the granularity at which the
// link set is recomputed (net/topology_provider.hpp); speeds are distance
// units per epoch.
//
// Determinism contract: every draw of node u comes from the dedicated
// stream derive(u, kMobilityStreamSalt) of the model's own seed tree, so
// (seed, config) fully determines every trajectory, node trajectories are
// mutually independent, and no engine or trial stream is perturbed —
// exactly the derivation discipline of the fault layer (sim/fault_plan.hpp,
// salt 0xFA17) and the async clocks (salt 0xC10C).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/types.hpp"
#include "util/rng.hpp"

namespace m2hew::net {

/// Salt for the per-node mobility streams: node u's trajectory is drawn
/// from Rng(seeds.derive(u, kMobilityStreamSalt)). Disjoint from the node
/// policy streams derive(u), the loss stream derive(N+1), the churn salt
/// 0xFA17 and the async clock salt 0xC10C.
inline constexpr std::uint64_t kMobilityStreamSalt = 0x30B1;

/// Mobility workload description. Distances share the unit-disk
/// generator's units (positions in [0, side]², links iff distance <=
/// radius); speeds are distance units per epoch.
struct MobilityConfig {
  NodeId nodes = 0;
  double side = 1.0;    ///< deployment square side
  double radius = 0.35;  ///< radio range (unit-disk link threshold)
  double speed_min = 0.0;  ///< per-leg speed lower bound, units/epoch
  double speed_max = 0.05;  ///< per-leg speed upper bound, units/epoch
  /// Maximum pause at a reached waypoint; the actual pause is drawn
  /// uniformly from {0, ..., pause_epochs} per visit. 0 = never pause.
  std::uint64_t pause_epochs = 0;
  /// Number of epochs the workload spans (>= 1). Epoch 0 is the initial
  /// placement; epoch e is the state after e advance steps.
  std::size_t epochs = 1;
};

/// Validation shared by the provider and the front ends (CLI flag checks
/// reimplement the same ranges with exit-code-2 reporting).
void validate_mobility_config(const MobilityConfig& config);

/// The random-waypoint process itself. Exposed separately from the
/// topology provider so tests can pin trajectories (golden positions,
/// chi-squared waypoint uniformity) without building networks, and so
/// alternative mobility models can slot into EpochTopologyProvider — see
/// docs/EXTENDING.md "Adding a mobility model".
class RandomWaypointModel {
 public:
  RandomWaypointModel(const MobilityConfig& config, std::uint64_t seed);

  /// Positions at the current epoch, one per node.
  [[nodiscard]] std::span<const Point> positions() const noexcept {
    return positions_;
  }
  [[nodiscard]] std::size_t current_epoch() const noexcept { return epoch_; }

  /// Advances every node by one epoch of movement: walk toward the
  /// waypoint at the leg's speed; on arrival draw a pause from
  /// {0..pause_epochs}, then a fresh waypoint and speed. The per-epoch
  /// displacement of a node never exceeds its current leg speed (and so
  /// never exceeds speed_max).
  void advance_epoch();

 private:
  struct NodeMotion {
    util::Rng rng;
    Point waypoint;
    double speed = 0.0;          // distance units per epoch, current leg
    std::uint64_t pause_left = 0;  // epochs left parked at the waypoint
  };

  MobilityConfig config_;
  std::size_t epoch_ = 0;
  std::vector<Point> positions_;
  std::vector<NodeMotion> motion_;
};

}  // namespace m2hew::net
