#include "net/propagation.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace m2hew::net {

PropagationFilter full_propagation(ChannelId universe) {
  return [universe](NodeId, NodeId) { return ChannelSet::full(universe); };
}

PropagationFilter random_propagation_filter(ChannelId universe,
                                            double keep_probability,
                                            std::uint64_t seed) {
  M2HEW_CHECK(keep_probability > 0.0 && keep_probability <= 1.0);
  return [universe, keep_probability, seed](NodeId from, NodeId to) {
    const NodeId lo = std::min(from, to);
    const NodeId hi = std::max(from, to);
    // A fresh deterministic stream per unordered pair keeps the mask
    // symmetric and independent of evaluation order.
    util::Rng rng(util::SeedSequence(seed).derive(lo, hi));
    ChannelSet mask(universe);
    for (ChannelId c = 0; c < universe; ++c) {
      if (rng.bernoulli(keep_probability)) mask.insert(c);
    }
    return mask;
  };
}

PropagationFilter distance_lowpass_filter(ChannelId universe,
                                          NodeId node_count) {
  M2HEW_CHECK(universe >= 1);
  M2HEW_CHECK(node_count >= 1);
  return [universe, node_count](NodeId from, NodeId to) {
    const NodeId gap = from > to ? from - to : to - from;
    // Cutoff shrinks linearly from the full universe (adjacent ids) down
    // to a single channel (maximal gap).
    const double fraction =
        1.0 - static_cast<double>(gap) / static_cast<double>(node_count);
    const auto cutoff = std::max<ChannelId>(
        1, static_cast<ChannelId>(fraction * static_cast<double>(universe)));
    ChannelSet mask(universe);
    for (ChannelId c = 0; c < std::min(cutoff, universe); ++c) {
      mask.insert(c);
    }
    return mask;
  };
}

}  // namespace m2hew::net
