#include "net/topology_provider.hpp"

#include <unordered_set>
#include <utility>

#include "net/topology_gen.hpp"
#include "util/check.hpp"

namespace m2hew::net {

const Network& StaticTopologyProvider::epoch(std::size_t e) const {
  M2HEW_CHECK_MSG(e == 0, "static topology has a single epoch");
  return *network_;
}

EpochTopologyProvider::EpochTopologyProvider(const MobilityConfig& config,
                                             std::vector<ChannelSet> assignment,
                                             std::uint64_t seed)
    : config_(config) {
  validate_mobility_config(config);
  M2HEW_CHECK_MSG(assignment.size() == config.nodes,
                  "channel assignment must cover every mobile node");

  RandomWaypointModel model(config, seed);
  epochs_.reserve(config.epochs);
  positions_.reserve(config.epochs);
  // Union = every edge seen in any epoch, inserted in (epoch, discovery)
  // order so the arc list is reproducible. Keyed on the undirected pair.
  Topology union_topology(config.nodes);
  std::unordered_set<std::uint64_t> seen;
  auto edge_key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };

  for (std::size_t e = 0; e < config.epochs; ++e) {
    if (e > 0) model.advance_epoch();
    const std::span<const Point> pos = model.positions();
    positions_.emplace_back(pos.begin(), pos.end());
    Topology t = unit_disk_topology(pos, config.side, config.radius);
    for (const auto& [a, b] : t.edges()) {
      if (seen.insert(edge_key(a, b)).second) union_topology.add_edge(a, b);
    }
    epochs_.emplace_back(std::move(t), assignment);
  }

  if (config.epochs > 1) {
    union_topology.finalize();
    union_ = std::make_unique<Network>(std::move(union_topology),
                                       std::move(assignment));
  }
}

const Network& EpochTopologyProvider::epoch(std::size_t e) const {
  M2HEW_CHECK(e < epochs_.size());
  return epochs_[e];
}

const Network& EpochTopologyProvider::union_network() const {
  return union_ ? *union_ : epochs_.front();
}

std::span<const Point> EpochTopologyProvider::positions(std::size_t e) const {
  M2HEW_CHECK(e < positions_.size());
  return positions_[e];
}

}  // namespace m2hew::net
