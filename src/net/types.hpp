// Index types shared across the network, simulation and algorithm layers.
//
// Nodes and channels are dense 0-based indices. We use plain integral
// aliases (not wrapper classes) because these values index vectors in the
// simulator hot loops; the distinct alias names plus the kInvalid sentinels
// give most of the readability benefit without the arithmetic friction.
#pragma once

#include <cstdint>
#include <limits>

namespace m2hew::net {

using NodeId = std::uint32_t;
using ChannelId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr ChannelId kInvalidChannel =
    std::numeric_limits<ChannelId>::max();

/// A directed discovery link (v, u): u must discover v. The paper treats
/// (u, v) and (v, u) as separate links because discovery is directional.
struct Link {
  NodeId from = kInvalidNode;  ///< transmitter to be discovered
  NodeId to = kInvalidNode;    ///< receiver doing the discovering

  friend bool operator==(const Link&, const Link&) = default;
};

/// 2-D position for geometric topologies / primary-user placement.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

[[nodiscard]] inline double squared_distance(Point a, Point b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace m2hew::net
