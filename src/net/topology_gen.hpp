// Topology generators covering the workloads used by the benches:
// deterministic structures (line, ring, grid, star, clique) plus random
// models (Erdős–Rényi, unit-disk a.k.a. random geometric — the standard
// model for wireless ad-hoc deployments).
#pragma once

#include <span>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"
#include "util/rng.hpp"

namespace m2hew::net {

[[nodiscard]] Topology make_line(NodeId n);
[[nodiscard]] Topology make_ring(NodeId n);
/// rows×cols grid with 4-neighborhood.
[[nodiscard]] Topology make_grid(NodeId rows, NodeId cols);
/// Node 0 is the hub; nodes 1..n-1 are leaves.
[[nodiscard]] Topology make_star(NodeId n);
[[nodiscard]] Topology make_clique(NodeId n);

/// G(n, p): every pair is an edge independently with probability p.
[[nodiscard]] Topology make_erdos_renyi(NodeId n, double p, util::Rng& rng);

/// G(n, p) by Batagelj–Brandes geometric skip sampling: O(n + m) time, so
/// sparse million-node graphs are affordable. Same distribution as
/// make_erdos_renyi but a different (much shorter) RNG draw sequence, so
/// instances differ for the same seed.
[[nodiscard]] Topology make_erdos_renyi_sparse(NodeId n, double p,
                                               util::Rng& rng);

/// A topology together with node positions (used by the primary-user model).
struct GeometricTopology {
  Topology topology;
  std::vector<Point> positions;
};

/// Unit-disk graph: n nodes uniform in [0, side]², edge iff distance <=
/// radius.
[[nodiscard]] GeometricTopology make_unit_disk(NodeId n, double side,
                                               double radius, util::Rng& rng);

/// Unit-disk graph via spatial bucketing: identical node placement and edge
/// set to make_unit_disk for the same Rng state, but found in
/// O(n · density) by scanning only adjacent radius-sized cells. Use for
/// N ≥ 10⁴ where the all-pairs scan is prohibitive.
[[nodiscard]] GeometricTopology make_unit_disk_bucketed(NodeId n, double side,
                                                        double radius,
                                                        util::Rng& rng);

/// The edge-finding half of make_unit_disk_bucketed, over caller-supplied
/// positions (all in [0, side]²): cell-bucketed unit-disk topology, same
/// edge set and insertion order as the generator produces for those
/// positions. This is the per-epoch link recompute of the mobility layer
/// (net/topology_provider.hpp), which advances positions itself.
[[nodiscard]] Topology unit_disk_topology(std::span<const Point> positions,
                                          double side, double radius);

/// Unit-disk graph, retrying placement until connected (up to `attempts`
/// resamples; checks connectivity each time). Returns the first connected
/// instance; if none is connected after all attempts, returns the last one.
[[nodiscard]] GeometricTopology make_connected_unit_disk(NodeId n, double side,
                                                         double radius,
                                                         util::Rng& rng,
                                                         int attempts = 50);

/// Watts–Strogatz small world: a ring lattice where each node connects to
/// its k nearest neighbors (k even), with each edge's far endpoint rewired
/// with probability beta. Common model for irregular-but-clustered
/// deployments.
[[nodiscard]] Topology make_watts_strogatz(NodeId n, NodeId k, double beta,
                                           util::Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches to m
/// existing nodes with probability proportional to their degree. Produces
/// the hub-heavy degree distributions that stress per-channel degree Δ.
[[nodiscard]] Topology make_barabasi_albert(NodeId n, NodeId m,
                                            util::Rng& rng);

/// Asymmetric variant of a symmetric topology (§V extension (a)): for each
/// undirected edge, with probability `drop_probability` one direction
/// (chosen at random) is removed, modelling unequal transmit powers or
/// asymmetric interference. The remaining arcs are returned as a new
/// topology.
[[nodiscard]] Topology make_asymmetric(const Topology& symmetric,
                                       double drop_probability,
                                       util::Rng& rng);

}  // namespace m2hew::net
