#include "net/primary_user.hpp"

#include "util/check.hpp"

namespace m2hew::net {

PrimaryUserField::PrimaryUserField(ChannelId universe_size,
                                   std::vector<PrimaryUser> users)
    : universe_(universe_size), users_(std::move(users)) {
  for (const auto& pu : users_) {
    M2HEW_CHECK_MSG(pu.channel < universe_, "PU channel outside universe");
    M2HEW_CHECK(pu.radius >= 0.0);
  }
}

PrimaryUserField PrimaryUserField::random(ChannelId universe_size,
                                          std::size_t count, double side,
                                          double min_radius, double max_radius,
                                          util::Rng& rng) {
  M2HEW_CHECK(min_radius >= 0.0 && min_radius <= max_radius);
  std::vector<PrimaryUser> users;
  users.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    PrimaryUser pu;
    pu.position = {rng.uniform_double(0.0, side),
                   rng.uniform_double(0.0, side)};
    pu.radius = rng.uniform_double(min_radius, max_radius);
    pu.channel = static_cast<ChannelId>(rng.uniform(universe_size));
    users.push_back(pu);
  }
  return PrimaryUserField(universe_size, std::move(users));
}

ChannelSet PrimaryUserField::occupied_at(Point where) const {
  ChannelSet occupied(universe_);
  for (const auto& pu : users_) {
    if (squared_distance(pu.position, where) <= pu.radius * pu.radius) {
      occupied.insert(pu.channel);
    }
  }
  return occupied;
}

ChannelSet PrimaryUserField::available_at(
    Point where, const ChannelSet& hardware_capability) const {
  M2HEW_CHECK(hardware_capability.universe_size() == universe_);
  return hardware_capability.subtract(occupied_at(where));
}

std::vector<ChannelSet> PrimaryUserField::assignment_for(
    const std::vector<Point>& positions) const {
  const ChannelSet all = ChannelSet::full(universe_);
  std::vector<ChannelSet> out;
  out.reserve(positions.size());
  for (const Point p : positions) out.push_back(available_at(p, all));
  return out;
}

DynamicPrimaryUserField::DynamicPrimaryUserField(
    ChannelId universe_size, std::vector<DynamicPrimaryUser> users)
    : universe_(universe_size), users_(std::move(users)) {
  for (const auto& pu : users_) {
    M2HEW_CHECK_MSG(pu.user.channel < universe_, "PU channel outside universe");
    M2HEW_CHECK(pu.user.radius >= 0.0);
    M2HEW_CHECK(pu.period_slots >= 1);
    M2HEW_CHECK(pu.on_slots <= pu.period_slots);
  }
}

DynamicPrimaryUserField DynamicPrimaryUserField::random(
    ChannelId universe_size, std::size_t count, double side,
    double min_radius, double max_radius, std::uint64_t period_slots,
    double duty_cycle, util::Rng& rng) {
  M2HEW_CHECK(duty_cycle >= 0.0 && duty_cycle <= 1.0);
  M2HEW_CHECK(period_slots >= 1);
  std::vector<DynamicPrimaryUser> users;
  users.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    DynamicPrimaryUser pu;
    pu.user.position = {rng.uniform_double(0.0, side),
                        rng.uniform_double(0.0, side)};
    pu.user.radius = rng.uniform_double(min_radius, max_radius);
    pu.user.channel = static_cast<ChannelId>(rng.uniform(universe_size));
    pu.period_slots = period_slots;
    pu.on_slots = static_cast<std::uint64_t>(
        duty_cycle * static_cast<double>(period_slots) + 0.5);
    pu.phase_slots = rng.uniform(period_slots);
    users.push_back(pu);
  }
  return DynamicPrimaryUserField(universe_size, std::move(users));
}

bool DynamicPrimaryUserField::occupied(std::uint64_t slot, Point where,
                                       ChannelId c) const {
  for (const auto& pu : users_) {
    if (pu.user.channel != c || !pu.active_at(slot)) continue;
    if (squared_distance(pu.user.position, where) <=
        pu.user.radius * pu.user.radius) {
      return true;
    }
  }
  return false;
}

std::function<bool(std::uint64_t, NodeId, ChannelId)>
DynamicPrimaryUserField::interference_for(
    const std::vector<Point>& positions) const {
  // Precompute, per node, the indices of PUs whose disk covers it.
  std::vector<std::vector<std::size_t>> covering(positions.size());
  for (std::size_t p = 0; p < users_.size(); ++p) {
    const auto& pu = users_[p];
    for (std::size_t u = 0; u < positions.size(); ++u) {
      if (squared_distance(pu.user.position, positions[u]) <=
          pu.user.radius * pu.user.radius) {
        covering[u].push_back(p);
      }
    }
  }
  return [field = *this, covering = std::move(covering)](
             std::uint64_t slot, NodeId node, ChannelId channel) {
    M2HEW_DCHECK(node < covering.size());
    for (const std::size_t p : covering[node]) {
      const auto& pu = field.users_[p];
      if (pu.user.channel == channel && pu.active_at(slot)) return true;
    }
    return false;
  };
}

ScheduledPrimaryUserField::ScheduledPrimaryUserField(
    ChannelId universe_size, std::vector<ScheduledPrimaryUser> users)
    : universe_(universe_size), users_(std::move(users)) {
  for (const auto& pu : users_) {
    M2HEW_CHECK_MSG(pu.user.channel < universe_, "PU channel outside universe");
    M2HEW_CHECK(pu.user.radius >= 0.0);
    M2HEW_CHECK(pu.on_until >= pu.on_from);
  }
}

ScheduledPrimaryUserField ScheduledPrimaryUserField::random(
    ChannelId universe_size, std::size_t count, double side, double min_radius,
    double max_radius, double horizon, double min_on, double max_on,
    util::Rng& rng) {
  M2HEW_CHECK(min_radius >= 0.0 && min_radius <= max_radius);
  M2HEW_CHECK(horizon >= 0.0);
  M2HEW_CHECK(min_on >= 0.0 && min_on <= max_on);
  std::vector<ScheduledPrimaryUser> users;
  users.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ScheduledPrimaryUser pu;
    pu.user.position = {rng.uniform_double(0.0, side),
                        rng.uniform_double(0.0, side)};
    pu.user.radius = rng.uniform_double(min_radius, max_radius);
    pu.user.channel = static_cast<ChannelId>(rng.uniform(universe_size));
    pu.on_from = rng.uniform_double(0.0, horizon);
    pu.on_until = pu.on_from + rng.uniform_double(min_on, max_on);
    users.push_back(pu);
  }
  return ScheduledPrimaryUserField(universe_size, std::move(users));
}

bool ScheduledPrimaryUserField::occupied(double t, Point where,
                                         ChannelId c) const {
  for (const auto& pu : users_) {
    if (pu.user.channel != c || !pu.active_at(t)) continue;
    if (squared_distance(pu.user.position, where) <=
        pu.user.radius * pu.user.radius) {
      return true;
    }
  }
  return false;
}

ChannelSet ScheduledPrimaryUserField::occupied_at(double t,
                                                  Point where) const {
  ChannelSet occupied(universe_);
  for (const auto& pu : users_) {
    if (!pu.active_at(t)) continue;
    if (squared_distance(pu.user.position, where) <=
        pu.user.radius * pu.user.radius) {
      occupied.insert(pu.user.channel);
    }
  }
  return occupied;
}

std::function<bool(double, NodeId, ChannelId)>
ScheduledPrimaryUserField::interference_for(
    const std::vector<Point>& positions) const {
  // Precompute, per node, the indices of PUs whose disk covers it.
  std::vector<std::vector<std::size_t>> covering(positions.size());
  for (std::size_t p = 0; p < users_.size(); ++p) {
    const auto& pu = users_[p];
    for (std::size_t u = 0; u < positions.size(); ++u) {
      if (squared_distance(pu.user.position, positions[u]) <=
          pu.user.radius * pu.user.radius) {
        covering[u].push_back(p);
      }
    }
  }
  return [field = *this, covering = std::move(covering)](
             double t, NodeId node, ChannelId channel) {
    M2HEW_DCHECK(node < covering.size());
    for (const std::size_t p : covering[node]) {
      const auto& pu = field.users_[p];
      if (pu.user.channel == channel && pu.active_at(t)) return true;
    }
    return false;
  };
}

}  // namespace m2hew::net
