#include "net/network.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace m2hew::net {

Network::Network(Topology topology, std::vector<ChannelSet> assignment)
    : topology_(std::move(topology)), assignment_(std::move(assignment)) {
  build(nullptr);
}

Network::Network(Topology topology, std::vector<ChannelSet> assignment,
                 const PropagationFilter& propagation)
    : topology_(std::move(topology)), assignment_(std::move(assignment)) {
  M2HEW_CHECK_MSG(propagation != nullptr, "null propagation filter");
  build(&propagation);
}

void Network::build(const PropagationFilter* propagation) {
  topology_.finalize();
  const NodeId n = topology_.node_count();
  M2HEW_CHECK_MSG(assignment_.size() == n,
                  "assignment size must equal node count");
  M2HEW_CHECK(n > 0);

  universe_ = assignment_[0].universe_size();
  for (const auto& a : assignment_) {
    M2HEW_CHECK_MSG(a.universe_size() == universe_,
                    "all channel sets must share one universe");
    M2HEW_CHECK_MSG(!a.empty(), "node with empty available channel set");
    s_ = std::max(s_, a.size());
  }

  // Per-arc spans, discovery links and per-channel in-degrees.
  const auto arcs = topology_.arcs();
  spans_.reserve(arcs.size());
  arc_index_of_.assign(n, {});
  degree_on_channel_.assign(n, std::vector<std::size_t>(universe_, 0));
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    const auto& [from, to] = arcs[i];
    ChannelSet span = assignment_[from].intersect(assignment_[to]);
    if (propagation != nullptr) {
      const ChannelSet mask = (*propagation)(from, to);
      M2HEW_CHECK_MSG(mask.universe_size() == universe_,
                      "propagation mask universe mismatch");
      span = span.intersect(mask);
    }
    if (!span.empty()) {
      links_.push_back({from, to});
      for (const ChannelId c : span.to_vector()) {
        ++degree_on_channel_[to][c];
      }
    }
    arc_index_of_[from].emplace_back(to, i);
    spans_.push_back(std::move(span));
  }
  for (auto& list : arc_index_of_) {
    std::sort(list.begin(), list.end());
  }

  // Flat CSR of incoming arcs (span pointers are stable: spans_ is fully
  // built). Counting pass -> offsets, then fill each node's slice and sort
  // it by source id.
  in_link_offsets_.assign(n + 1, 0);
  for (const auto& [from, to] : arcs) {
    ++in_link_offsets_[to + 1];
  }
  for (NodeId u = 0; u < n; ++u) {
    in_link_offsets_[u + 1] += in_link_offsets_[u];
  }
  in_links_flat_.assign(arcs.size(), InLink{});
  {
    std::vector<std::size_t> cursor(in_link_offsets_.begin(),
                                    in_link_offsets_.end() - 1);
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      const auto& [from, to] = arcs[i];
      in_links_flat_[cursor[to]++] = {from, &spans_[i]};
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    std::sort(
        in_links_flat_.begin() + static_cast<std::ptrdiff_t>(
                                     in_link_offsets_[u]),
        in_links_flat_.begin() + static_cast<std::ptrdiff_t>(
                                     in_link_offsets_[u + 1]),
        [](const InLink& a, const InLink& b) { return a.from < b.from; });
  }

  // Dense arc matrix for O(1) in_span() on the sizes the engines sweep.
  if (n <= kDenseArcLimit) {
    arc_matrix_.assign(static_cast<std::size_t>(n) * n, -1);
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      const auto& [from, to] = arcs[i];
      arc_matrix_[static_cast<std::size_t>(to) * n + from] =
          static_cast<std::int32_t>(i);
    }
  }

  for (NodeId u = 0; u < n; ++u) {
    for (ChannelId c = 0; c < universe_; ++c) {
      delta_ = std::max(delta_, degree_on_channel_[u][c]);
    }
  }

  rho_ = 1.0;
  for (const Link link : links_) {
    rho_ = std::min(rho_, span_ratio(link));
  }
}

const ChannelSet& Network::available(NodeId u) const {
  M2HEW_CHECK(u < node_count());
  return assignment_[u];
}

std::size_t Network::arc_index(NodeId from, NodeId to) const {
  M2HEW_CHECK(from < node_count() && to < node_count());
  const auto& list = arc_index_of_[from];
  const auto it = std::lower_bound(
      list.begin(), list.end(), to,
      [](const auto& entry, NodeId key) { return entry.first < key; });
  M2HEW_CHECK_MSG(it != list.end() && it->first == to,
                  "span() on a non-arc");
  return it->second;
}

const ChannelSet& Network::span(NodeId from, NodeId to) const {
  return spans_[arc_index(from, to)];
}

std::span<const Network::InLink> Network::in_links(NodeId u) const {
  M2HEW_CHECK(u < node_count());
  return {in_links_flat_.data() + in_link_offsets_[u],
          in_link_offsets_[u + 1] - in_link_offsets_[u]};
}

const ChannelSet* Network::in_span(NodeId from, NodeId to) const {
  M2HEW_DCHECK(from < node_count() && to < node_count());
  if (!arc_matrix_.empty()) {
    const std::int32_t idx =
        arc_matrix_[static_cast<std::size_t>(to) * node_count() + from];
    return idx < 0 ? nullptr : &spans_[static_cast<std::size_t>(idx)];
  }
  const auto links = in_links(to);
  const auto it = std::lower_bound(
      links.begin(), links.end(), from,
      [](const InLink& entry, NodeId key) { return entry.from < key; });
  return it != links.end() && it->from == from ? it->span : nullptr;
}

double Network::span_ratio(Link link) const {
  const ChannelSet& s = span(link.from, link.to);
  return static_cast<double>(s.size()) /
         static_cast<double>(assignment_[link.to].size());
}

std::size_t Network::degree_on_channel(NodeId u, ChannelId c) const {
  M2HEW_CHECK(u < node_count());
  M2HEW_CHECK(c < universe_);
  return degree_on_channel_[u][c];
}

}  // namespace m2hew::net
