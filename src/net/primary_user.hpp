// Simulated cognitive-radio spectrum environment.
//
// The paper motivates heterogeneous available channel sets by primary users
// (licensed transmitters) occupying channels in parts of the deployment
// area. We simulate exactly that: primary users are disks in the plane,
// each occupying one channel; a secondary (CR) node's available channel set
// is its hardware capability minus the channels of all primary users whose
// disk covers the node. This substitutes for real spectrum sensing while
// producing the spatially-correlated heterogeneity the algorithms face.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/channel_set.hpp"
#include "net/types.hpp"
#include "util/rng.hpp"

namespace m2hew::net {

struct PrimaryUser {
  Point position;
  double radius = 0.0;
  ChannelId channel = kInvalidChannel;
};

class PrimaryUserField {
 public:
  PrimaryUserField(ChannelId universe_size, std::vector<PrimaryUser> users);

  /// Random field: `count` primary users uniform in [0, side]², radii
  /// uniform in [min_radius, max_radius], channels uniform in the universe.
  [[nodiscard]] static PrimaryUserField random(ChannelId universe_size,
                                               std::size_t count, double side,
                                               double min_radius,
                                               double max_radius,
                                               util::Rng& rng);

  [[nodiscard]] ChannelId universe_size() const noexcept { return universe_; }
  [[nodiscard]] const std::vector<PrimaryUser>& users() const noexcept {
    return users_;
  }

  /// Channels occupied by some primary user covering `where`.
  [[nodiscard]] ChannelSet occupied_at(Point where) const;

  /// Available set at `where` for a node whose transceiver supports
  /// `hardware_capability` (must be over the same universe).
  [[nodiscard]] ChannelSet available_at(
      Point where, const ChannelSet& hardware_capability) const;

  /// Per-node available channel sets for nodes at `positions`, all with
  /// full-universe hardware capability.
  [[nodiscard]] std::vector<ChannelSet> assignment_for(
      const std::vector<Point>& positions) const;

 private:
  ChannelId universe_;
  std::vector<PrimaryUser> users_;
};

/// A primary user with periodic on/off activity: active during the first
/// `on_slots` slots of every `period_slots`-slot period, shifted by
/// `phase_slots`. Models licensed transmitters that come and go, forcing
/// secondary users to vacate the channel intermittently.
struct DynamicPrimaryUser {
  PrimaryUser user;
  std::uint64_t period_slots = 100;
  std::uint64_t on_slots = 50;
  std::uint64_t phase_slots = 0;

  [[nodiscard]] bool active_at(std::uint64_t slot) const noexcept {
    return (slot + phase_slots) % period_slots < on_slots;
  }
};

class DynamicPrimaryUserField {
 public:
  DynamicPrimaryUserField(ChannelId universe_size,
                          std::vector<DynamicPrimaryUser> users);

  /// Random field: geometry as PrimaryUserField::random; every PU gets the
  /// given period and duty cycle with a uniformly random phase.
  [[nodiscard]] static DynamicPrimaryUserField random(
      ChannelId universe_size, std::size_t count, double side,
      double min_radius, double max_radius, std::uint64_t period_slots,
      double duty_cycle, util::Rng& rng);

  [[nodiscard]] ChannelId universe_size() const noexcept { return universe_; }
  [[nodiscard]] const std::vector<DynamicPrimaryUser>& users() const noexcept {
    return users_;
  }

  /// True iff some PU on channel c covering `where` is active in `slot`.
  [[nodiscard]] bool occupied(std::uint64_t slot, Point where,
                              ChannelId c) const;

  /// Per-(slot, node, channel) interference predicate for nodes at the
  /// given positions; assignable to sim::InterferenceSchedule. Coverage
  /// geometry is precomputed per node; the field is captured by value.
  [[nodiscard]] std::function<bool(std::uint64_t, NodeId, ChannelId)>
  interference_for(const std::vector<Point>& positions) const;

 private:
  ChannelId universe_;
  std::vector<DynamicPrimaryUser> users_;
};

/// A primary user with one explicit activation interval: active during
/// [on_from, on_until) on the engine's time axis (global slot index for the
/// slotted engines, real time for the async engine — the field is agnostic;
/// slot indices are exact in a double up to 2^53). Unlike DynamicPrimaryUser
/// this models one-shot spectrum dynamics — a licensed transmitter that
/// switches on (or off) mid-run and changes the effective A(u) while the
/// algorithm executes. The fault-injection layer (sim::FaultPlan) is the
/// main client.
struct ScheduledPrimaryUser {
  PrimaryUser user;
  double on_from = 0.0;
  double on_until = 0.0;

  [[nodiscard]] bool active_at(double t) const noexcept {
    return t >= on_from && t < on_until;
  }
};

class ScheduledPrimaryUserField {
 public:
  ScheduledPrimaryUserField(ChannelId universe_size,
                            std::vector<ScheduledPrimaryUser> users);

  /// Random field: geometry as PrimaryUserField::random; every PU gets one
  /// activation interval with start uniform in [0, horizon) and length
  /// uniform in [min_on, max_on).
  [[nodiscard]] static ScheduledPrimaryUserField random(
      ChannelId universe_size, std::size_t count, double side,
      double min_radius, double max_radius, double horizon, double min_on,
      double max_on, util::Rng& rng);

  [[nodiscard]] ChannelId universe_size() const noexcept { return universe_; }
  [[nodiscard]] const std::vector<ScheduledPrimaryUser>& users()
      const noexcept {
    return users_;
  }

  /// True iff some PU on channel c covering `where` is active at time t.
  [[nodiscard]] bool occupied(double t, Point where, ChannelId c) const;

  /// Channels occupied at `where` at time t (the instantaneous complement
  /// of the node's effective available set).
  [[nodiscard]] ChannelSet occupied_at(double t, Point where) const;

  /// Per-(time, node, channel) interference predicate for nodes at the
  /// given positions. Coverage geometry is precomputed per node; the field
  /// is captured by value, so the returned function is a pure function of
  /// its arguments and safe to share across trial threads.
  [[nodiscard]] std::function<bool(double, NodeId, ChannelId)>
  interference_for(const std::vector<Point>& positions) const;

 private:
  ChannelId universe_;
  std::vector<ScheduledPrimaryUser> users_;
};

}  // namespace m2hew::net
