// Network: the full M²HeW model of §II — a communication graph together
// with per-node available channel sets, plus all derived parameters the
// paper's analysis uses:
//
//   N          node count
//   S          max |A(u)|
//   span(v,u)  channels on which the arc v→u can actually carry a message:
//              A(v) ∩ A(u), further intersected with the propagation
//              filter for (v,u) when one is supplied (§V extension (c) —
//              diverse propagation characteristics)
//   Δ(u,c)     number of in-neighbors of u whose arc to u carries c
//   Δ          max over u, c of Δ(u,c)
//   span-ratio |span(v,u)| / |A(u)| for the directed link (v, u)
//   ρ          min span-ratio over all discovery links
//
// A *discovery link* (v, u) exists iff the arc v→u exists and span(v, u)
// is non-empty; the discovery ground truth is exactly the set of discovery
// links (u must learn ⟨v, span⟩ for each). On a symmetric graph with no
// propagation filter this reduces to the paper's base model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/channel_set.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"

namespace m2hew::net {

/// Optional per-arc channel usability mask (§V extension (c)): returns the
/// set of channels (over the network universe) on which a transmission
/// from `from` physically propagates to `to`. Must be deterministic.
using PropagationFilter =
    std::function<ChannelSet(NodeId from, NodeId to)>;

class Network {
 public:
  /// Base model: every arc propagates on every channel.
  Network(Topology topology, std::vector<ChannelSet> assignment);

  /// Diverse-propagation model: spans are additionally intersected with
  /// `propagation(from, to)` per arc.
  Network(Topology topology, std::vector<ChannelSet> assignment,
          const PropagationFilter& propagation);

  [[nodiscard]] NodeId node_count() const noexcept {
    return topology_.node_count();
  }
  [[nodiscard]] ChannelId universe_size() const noexcept { return universe_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const ChannelSet& available(NodeId u) const;

  /// Directed discovery links (ground truth for neighbor discovery).
  [[nodiscard]] std::span<const Link> links() const noexcept { return links_; }

  /// span(from, to); requires the arc from→to to exist.
  [[nodiscard]] const ChannelSet& span(NodeId from, NodeId to) const;

  /// An incoming arc of a node with its (possibly empty) span — the unit
  /// the simulation engines iterate to resolve receptions and interference.
  struct InLink {
    NodeId from = kInvalidNode;
    const ChannelSet* span = nullptr;
  };
  /// Incoming arcs of u, sorted by source id (a view into one flat
  /// CSR-style array shared by all nodes).
  [[nodiscard]] std::span<const InLink> in_links(NodeId u) const;

  /// span(from, to) if the arc from→to exists, nullptr otherwise. O(1)
  /// through a dense arc matrix when node_count() <= kDenseArcLimit,
  /// O(log indeg(to)) otherwise. This is the adjacency filter of the
  /// engines' reception hot path: a listener resolves the per-channel
  /// transmitter bucket against it instead of scanning all in-neighbors.
  [[nodiscard]] const ChannelSet* in_span(NodeId from, NodeId to) const;

  /// Largest node count for which the dense O(1) arc matrix is built
  /// (4 MiB of int32 at the limit; DiscoveryState is O(N²) anyway).
  static constexpr std::size_t kDenseArcLimit = 1024;

  /// |span(from, to)| / |A(to)| for a discovery link.
  [[nodiscard]] double span_ratio(Link link) const;

  /// Δ(u, c): in-neighbors of u on channel c; zero if c ∉ A(u).
  [[nodiscard]] std::size_t degree_on_channel(NodeId u, ChannelId c) const;

  // Derived scalar parameters (computed once at construction).
  [[nodiscard]] std::size_t max_channel_set_size() const noexcept {
    return s_;
  }  ///< S
  [[nodiscard]] std::size_t max_channel_degree() const noexcept {
    return delta_;
  }  ///< Δ
  [[nodiscard]] double min_span_ratio() const noexcept { return rho_; }  ///< ρ

  /// True iff every arc supports at least one usable channel (i.e. the
  /// communication graph equals the discovery graph).
  [[nodiscard]] bool all_edges_usable() const noexcept {
    return links_.size() == topology_.arc_count();
  }

 private:
  void build(const PropagationFilter* propagation);
  [[nodiscard]] std::size_t arc_index(NodeId from, NodeId to) const;

  Topology topology_;
  std::vector<ChannelSet> assignment_;
  ChannelId universe_ = 0;

  // Per-arc spans, parallel to topology_.arcs().
  std::vector<ChannelSet> spans_;
  // Flat in-neighbor adjacency (CSR): node u's incoming arcs, with span
  // pointers into spans_, live in
  // in_links_flat_[in_link_offsets_[u] .. in_link_offsets_[u+1]), sorted
  // by source id; used by the engines' reception loops.
  std::vector<InLink> in_links_flat_;
  std::vector<std::size_t> in_link_offsets_;
  // Dense (to, from) -> index into spans_ matrix (-1 = no arc), built only
  // for node counts up to kDenseArcLimit; makes in_span() O(1).
  std::vector<std::int32_t> arc_matrix_;
  // Per-node sorted (source, arc index) pairs for O(log indeg) lookup.
  std::vector<std::vector<std::pair<NodeId, std::size_t>>> arc_index_of_;
  std::vector<Link> links_;
  std::vector<std::vector<std::size_t>> degree_on_channel_;  // [u][c]

  std::size_t s_ = 0;
  std::size_t delta_ = 0;
  double rho_ = 1.0;
};

}  // namespace m2hew::net
