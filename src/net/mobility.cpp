#include "net/mobility.hpp"

#include <cmath>

#include "util/check.hpp"

namespace m2hew::net {

void validate_mobility_config(const MobilityConfig& config) {
  M2HEW_CHECK_MSG(config.nodes >= 1, "mobility needs at least one node");
  M2HEW_CHECK(config.side > 0.0 && config.radius > 0.0);
  M2HEW_CHECK(config.speed_min >= 0.0);
  M2HEW_CHECK(config.speed_max >= config.speed_min);
  M2HEW_CHECK_MSG(config.epochs >= 1, "mobility needs at least one epoch");
}

RandomWaypointModel::RandomWaypointModel(const MobilityConfig& config,
                                         std::uint64_t seed)
    : config_(config) {
  validate_mobility_config(config);
  const util::SeedSequence seeds(seed);
  positions_.reserve(config.nodes);
  motion_.reserve(config.nodes);
  for (NodeId u = 0; u < config.nodes; ++u) {
    NodeMotion m{util::Rng(seeds.derive(u, kMobilityStreamSalt)),
                 Point{}, 0.0, 0};
    positions_.push_back({m.rng.uniform_double(0.0, config.side),
                          m.rng.uniform_double(0.0, config.side)});
    m.waypoint = {m.rng.uniform_double(0.0, config.side),
                  m.rng.uniform_double(0.0, config.side)};
    m.speed = m.rng.uniform_double(config.speed_min, config.speed_max);
    motion_.push_back(std::move(m));
  }
}

void RandomWaypointModel::advance_epoch() {
  for (NodeId u = 0; u < config_.nodes; ++u) {
    NodeMotion& m = motion_[u];
    if (m.pause_left > 0) {
      --m.pause_left;
      continue;
    }
    Point& pos = positions_[u];
    double budget = m.speed;  // distance available this epoch
    // A leg may end mid-epoch; the remaining budget continues on the next
    // leg unless a pause was drawn at the waypoint.
    while (budget > 0.0) {
      const double dx = m.waypoint.x - pos.x;
      const double dy = m.waypoint.y - pos.y;
      const double dist = std::sqrt(dx * dx + dy * dy);
      if (dist > budget) {
        pos.x += dx * (budget / dist);
        pos.y += dy * (budget / dist);
        break;
      }
      pos = m.waypoint;
      budget -= dist;
      if (config_.pause_epochs > 0) {
        m.pause_left = static_cast<std::uint64_t>(m.rng.uniform_range(
            0, static_cast<std::int64_t>(config_.pause_epochs)));
      }
      m.waypoint = {m.rng.uniform_double(0.0, config_.side),
                    m.rng.uniform_double(0.0, config_.side)};
      m.speed = m.rng.uniform_double(config_.speed_min, config_.speed_max);
      if (m.pause_left > 0) break;  // parked: drop the rest of the budget
      if (m.speed <= 0.0) break;    // zero-speed leg: parked until redrawn
    }
  }
  ++epoch_;
}

}  // namespace m2hew::net
