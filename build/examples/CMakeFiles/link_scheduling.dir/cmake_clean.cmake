file(REMOVE_RECURSE
  "CMakeFiles/link_scheduling.dir/link_scheduling.cpp.o"
  "CMakeFiles/link_scheduling.dir/link_scheduling.cpp.o.d"
  "link_scheduling"
  "link_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
