# Empty dependencies file for link_scheduling.
# This may be replaced when dependencies are built.
