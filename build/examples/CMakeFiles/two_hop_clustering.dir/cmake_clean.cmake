file(REMOVE_RECURSE
  "CMakeFiles/two_hop_clustering.dir/two_hop_clustering.cpp.o"
  "CMakeFiles/two_hop_clustering.dir/two_hop_clustering.cpp.o.d"
  "two_hop_clustering"
  "two_hop_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_hop_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
