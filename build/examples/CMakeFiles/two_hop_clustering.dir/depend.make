# Empty dependencies file for two_hop_clustering.
# This may be replaced when dependencies are built.
