# Empty dependencies file for cognitive_radio_field.
# This may be replaced when dependencies are built.
