file(REMOVE_RECURSE
  "CMakeFiles/cognitive_radio_field.dir/cognitive_radio_field.cpp.o"
  "CMakeFiles/cognitive_radio_field.dir/cognitive_radio_field.cpp.o.d"
  "cognitive_radio_field"
  "cognitive_radio_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cognitive_radio_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
