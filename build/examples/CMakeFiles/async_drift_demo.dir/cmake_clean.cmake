file(REMOVE_RECURSE
  "CMakeFiles/async_drift_demo.dir/async_drift_demo.cpp.o"
  "CMakeFiles/async_drift_demo.dir/async_drift_demo.cpp.o.d"
  "async_drift_demo"
  "async_drift_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_drift_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
