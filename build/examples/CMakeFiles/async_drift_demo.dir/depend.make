# Empty dependencies file for async_drift_demo.
# This may be replaced when dependencies are built.
