# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cognitive_radio_field "/root/repo/build/examples/cognitive_radio_field")
set_tests_properties(example_cognitive_radio_field PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_async_drift_demo "/root/repo/build/examples/async_drift_demo")
set_tests_properties(example_async_drift_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heterogeneity_study "/root/repo/build/examples/heterogeneity_study")
set_tests_properties(example_heterogeneity_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_link_scheduling "/root/repo/build/examples/link_scheduling")
set_tests_properties(example_link_scheduling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_two_hop_clustering "/root/repo/build/examples/two_hop_clustering")
set_tests_properties(example_two_hop_clustering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
