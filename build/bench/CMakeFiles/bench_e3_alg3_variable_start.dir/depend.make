# Empty dependencies file for bench_e3_alg3_variable_start.
# This may be replaced when dependencies are built.
