file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_alg3_variable_start.dir/bench_e3_alg3_variable_start.cpp.o"
  "CMakeFiles/bench_e3_alg3_variable_start.dir/bench_e3_alg3_variable_start.cpp.o.d"
  "bench_e3_alg3_variable_start"
  "bench_e3_alg3_variable_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_alg3_variable_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
