file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_alg4_async.dir/bench_e5_alg4_async.cpp.o"
  "CMakeFiles/bench_e5_alg4_async.dir/bench_e5_alg4_async.cpp.o.d"
  "bench_e5_alg4_async"
  "bench_e5_alg4_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_alg4_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
