# Empty compiler generated dependencies file for bench_e5_alg4_async.
# This may be replaced when dependencies are built.
