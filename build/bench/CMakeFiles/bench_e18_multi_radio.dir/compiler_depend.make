# Empty compiler generated dependencies file for bench_e18_multi_radio.
# This may be replaced when dependencies are built.
