file(REMOVE_RECURSE
  "CMakeFiles/bench_e18_multi_radio.dir/bench_e18_multi_radio.cpp.o"
  "CMakeFiles/bench_e18_multi_radio.dir/bench_e18_multi_radio.cpp.o.d"
  "bench_e18_multi_radio"
  "bench_e18_multi_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e18_multi_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
