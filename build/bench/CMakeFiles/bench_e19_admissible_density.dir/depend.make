# Empty dependencies file for bench_e19_admissible_density.
# This may be replaced when dependencies are built.
