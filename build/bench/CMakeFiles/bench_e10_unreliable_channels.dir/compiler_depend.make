# Empty compiler generated dependencies file for bench_e10_unreliable_channels.
# This may be replaced when dependencies are built.
