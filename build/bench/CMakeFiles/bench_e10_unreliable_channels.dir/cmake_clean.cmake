file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_unreliable_channels.dir/bench_e10_unreliable_channels.cpp.o"
  "CMakeFiles/bench_e10_unreliable_channels.dir/bench_e10_unreliable_channels.cpp.o.d"
  "bench_e10_unreliable_channels"
  "bench_e10_unreliable_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_unreliable_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
