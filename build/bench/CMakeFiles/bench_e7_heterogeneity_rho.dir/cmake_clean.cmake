file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_heterogeneity_rho.dir/bench_e7_heterogeneity_rho.cpp.o"
  "CMakeFiles/bench_e7_heterogeneity_rho.dir/bench_e7_heterogeneity_rho.cpp.o.d"
  "bench_e7_heterogeneity_rho"
  "bench_e7_heterogeneity_rho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_heterogeneity_rho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
