# Empty dependencies file for bench_e7_heterogeneity_rho.
# This may be replaced when dependencies are built.
