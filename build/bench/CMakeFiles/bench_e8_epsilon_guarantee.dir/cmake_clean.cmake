file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_epsilon_guarantee.dir/bench_e8_epsilon_guarantee.cpp.o"
  "CMakeFiles/bench_e8_epsilon_guarantee.dir/bench_e8_epsilon_guarantee.cpp.o.d"
  "bench_e8_epsilon_guarantee"
  "bench_e8_epsilon_guarantee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_epsilon_guarantee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
