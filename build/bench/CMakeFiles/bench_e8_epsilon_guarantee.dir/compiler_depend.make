# Empty compiler generated dependencies file for bench_e8_epsilon_guarantee.
# This may be replaced when dependencies are built.
