file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_dynamic_spectrum.dir/bench_e17_dynamic_spectrum.cpp.o"
  "CMakeFiles/bench_e17_dynamic_spectrum.dir/bench_e17_dynamic_spectrum.cpp.o.d"
  "bench_e17_dynamic_spectrum"
  "bench_e17_dynamic_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_dynamic_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
