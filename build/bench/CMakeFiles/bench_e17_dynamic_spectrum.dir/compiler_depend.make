# Empty compiler generated dependencies file for bench_e17_dynamic_spectrum.
# This may be replaced when dependencies are built.
