file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_coverage_probability.dir/bench_e9_coverage_probability.cpp.o"
  "CMakeFiles/bench_e9_coverage_probability.dir/bench_e9_coverage_probability.cpp.o.d"
  "bench_e9_coverage_probability"
  "bench_e9_coverage_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_coverage_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
