# Empty compiler generated dependencies file for bench_e9_coverage_probability.
# This may be replaced when dependencies are built.
