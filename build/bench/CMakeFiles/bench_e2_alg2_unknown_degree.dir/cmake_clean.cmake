file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_alg2_unknown_degree.dir/bench_e2_alg2_unknown_degree.cpp.o"
  "CMakeFiles/bench_e2_alg2_unknown_degree.dir/bench_e2_alg2_unknown_degree.cpp.o.d"
  "bench_e2_alg2_unknown_degree"
  "bench_e2_alg2_unknown_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_alg2_unknown_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
