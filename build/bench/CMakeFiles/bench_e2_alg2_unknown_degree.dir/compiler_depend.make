# Empty compiler generated dependencies file for bench_e2_alg2_unknown_degree.
# This may be replaced when dependencies are built.
