# Empty dependencies file for bench_e6_baseline_universal.
# This may be replaced when dependencies are built.
