# Empty dependencies file for bench_e14_termination.
# This may be replaced when dependencies are built.
