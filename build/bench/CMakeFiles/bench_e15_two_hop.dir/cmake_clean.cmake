file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_two_hop.dir/bench_e15_two_hop.cpp.o"
  "CMakeFiles/bench_e15_two_hop.dir/bench_e15_two_hop.cpp.o.d"
  "bench_e15_two_hop"
  "bench_e15_two_hop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_two_hop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
