# Empty dependencies file for bench_e15_two_hop.
# This may be replaced when dependencies are built.
