# Empty compiler generated dependencies file for bench_e16_collision_detection.
# This may be replaced when dependencies are built.
