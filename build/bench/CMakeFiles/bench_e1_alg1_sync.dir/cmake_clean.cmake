file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_alg1_sync.dir/bench_e1_alg1_sync.cpp.o"
  "CMakeFiles/bench_e1_alg1_sync.dir/bench_e1_alg1_sync.cpp.o.d"
  "bench_e1_alg1_sync"
  "bench_e1_alg1_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_alg1_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
