# Empty compiler generated dependencies file for bench_e1_alg1_sync.
# This may be replaced when dependencies are built.
