# Empty compiler generated dependencies file for bench_e12_propagation.
# This may be replaced when dependencies are built.
