file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_propagation.dir/bench_e12_propagation.cpp.o"
  "CMakeFiles/bench_e12_propagation.dir/bench_e12_propagation.cpp.o.d"
  "bench_e12_propagation"
  "bench_e12_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
