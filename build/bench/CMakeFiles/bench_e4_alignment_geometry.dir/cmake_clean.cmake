file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_alignment_geometry.dir/bench_e4_alignment_geometry.cpp.o"
  "CMakeFiles/bench_e4_alignment_geometry.dir/bench_e4_alignment_geometry.cpp.o.d"
  "bench_e4_alignment_geometry"
  "bench_e4_alignment_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_alignment_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
