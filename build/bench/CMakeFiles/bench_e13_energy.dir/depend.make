# Empty dependencies file for bench_e13_energy.
# This may be replaced when dependencies are built.
