# Empty compiler generated dependencies file for bench_e20_deterministic_baseline.
# This may be replaced when dependencies are built.
