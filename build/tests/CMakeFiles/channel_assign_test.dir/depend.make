# Empty dependencies file for channel_assign_test.
# This may be replaced when dependencies are built.
