file(REMOVE_RECURSE
  "CMakeFiles/channel_assign_test.dir/channel_assign_test.cpp.o"
  "CMakeFiles/channel_assign_test.dir/channel_assign_test.cpp.o.d"
  "channel_assign_test"
  "channel_assign_test.pdb"
  "channel_assign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_assign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
