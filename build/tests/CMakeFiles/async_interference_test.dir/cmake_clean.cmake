file(REMOVE_RECURSE
  "CMakeFiles/async_interference_test.dir/async_interference_test.cpp.o"
  "CMakeFiles/async_interference_test.dir/async_interference_test.cpp.o.d"
  "async_interference_test"
  "async_interference_test.pdb"
  "async_interference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_interference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
