# Empty dependencies file for async_interference_test.
# This may be replaced when dependencies are built.
