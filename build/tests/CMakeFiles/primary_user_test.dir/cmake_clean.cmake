file(REMOVE_RECURSE
  "CMakeFiles/primary_user_test.dir/primary_user_test.cpp.o"
  "CMakeFiles/primary_user_test.dir/primary_user_test.cpp.o.d"
  "primary_user_test"
  "primary_user_test.pdb"
  "primary_user_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primary_user_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
