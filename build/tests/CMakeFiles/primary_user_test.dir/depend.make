# Empty dependencies file for primary_user_test.
# This may be replaced when dependencies are built.
