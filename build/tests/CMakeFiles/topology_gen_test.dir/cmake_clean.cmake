file(REMOVE_RECURSE
  "CMakeFiles/topology_gen_test.dir/topology_gen_test.cpp.o"
  "CMakeFiles/topology_gen_test.dir/topology_gen_test.cpp.o.d"
  "topology_gen_test"
  "topology_gen_test.pdb"
  "topology_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
