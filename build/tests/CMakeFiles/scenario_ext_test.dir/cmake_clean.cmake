file(REMOVE_RECURSE
  "CMakeFiles/scenario_ext_test.dir/scenario_ext_test.cpp.o"
  "CMakeFiles/scenario_ext_test.dir/scenario_ext_test.cpp.o.d"
  "scenario_ext_test"
  "scenario_ext_test.pdb"
  "scenario_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
