# Empty compiler generated dependencies file for scenario_ext_test.
# This may be replaced when dependencies are built.
