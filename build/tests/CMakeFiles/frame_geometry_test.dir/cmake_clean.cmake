file(REMOVE_RECURSE
  "CMakeFiles/frame_geometry_test.dir/frame_geometry_test.cpp.o"
  "CMakeFiles/frame_geometry_test.dir/frame_geometry_test.cpp.o.d"
  "frame_geometry_test"
  "frame_geometry_test.pdb"
  "frame_geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
