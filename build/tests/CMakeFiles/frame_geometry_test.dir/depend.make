# Empty dependencies file for frame_geometry_test.
# This may be replaced when dependencies are built.
