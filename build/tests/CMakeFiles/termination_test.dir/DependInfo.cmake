
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/termination_test.cpp" "tests/CMakeFiles/termination_test.dir/termination_test.cpp.o" "gcc" "tests/CMakeFiles/termination_test.dir/termination_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runner/CMakeFiles/m2hew_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/m2hew_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/m2hew_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/m2hew_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/m2hew_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
