file(REMOVE_RECURSE
  "CMakeFiles/transmit_probability_test.dir/transmit_probability_test.cpp.o"
  "CMakeFiles/transmit_probability_test.dir/transmit_probability_test.cpp.o.d"
  "transmit_probability_test"
  "transmit_probability_test.pdb"
  "transmit_probability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transmit_probability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
