# Empty compiler generated dependencies file for transmit_probability_test.
# This may be replaced when dependencies are built.
