file(REMOVE_RECURSE
  "CMakeFiles/fuzz_reference_test.dir/fuzz_reference_test.cpp.o"
  "CMakeFiles/fuzz_reference_test.dir/fuzz_reference_test.cpp.o.d"
  "fuzz_reference_test"
  "fuzz_reference_test.pdb"
  "fuzz_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
