file(REMOVE_RECURSE
  "CMakeFiles/admissible_test.dir/admissible_test.cpp.o"
  "CMakeFiles/admissible_test.dir/admissible_test.cpp.o.d"
  "admissible_test"
  "admissible_test.pdb"
  "admissible_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admissible_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
