# Empty dependencies file for admissible_test.
# This may be replaced when dependencies are built.
