# Empty dependencies file for baseline_deterministic_test.
# This may be replaced when dependencies are built.
