file(REMOVE_RECURSE
  "CMakeFiles/baseline_deterministic_test.dir/baseline_deterministic_test.cpp.o"
  "CMakeFiles/baseline_deterministic_test.dir/baseline_deterministic_test.cpp.o.d"
  "baseline_deterministic_test"
  "baseline_deterministic_test.pdb"
  "baseline_deterministic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_deterministic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
