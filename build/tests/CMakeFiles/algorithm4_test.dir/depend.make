# Empty dependencies file for algorithm4_test.
# This may be replaced when dependencies are built.
