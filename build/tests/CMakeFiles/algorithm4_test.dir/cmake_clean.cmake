file(REMOVE_RECURSE
  "CMakeFiles/algorithm4_test.dir/algorithm4_test.cpp.o"
  "CMakeFiles/algorithm4_test.dir/algorithm4_test.cpp.o.d"
  "algorithm4_test"
  "algorithm4_test.pdb"
  "algorithm4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
