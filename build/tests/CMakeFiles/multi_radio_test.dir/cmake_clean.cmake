file(REMOVE_RECURSE
  "CMakeFiles/multi_radio_test.dir/multi_radio_test.cpp.o"
  "CMakeFiles/multi_radio_test.dir/multi_radio_test.cpp.o.d"
  "multi_radio_test"
  "multi_radio_test.pdb"
  "multi_radio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_radio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
