# Empty compiler generated dependencies file for multi_radio_test.
# This may be replaced when dependencies are built.
