# Empty dependencies file for trials_test.
# This may be replaced when dependencies are built.
