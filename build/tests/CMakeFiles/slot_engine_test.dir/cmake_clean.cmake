file(REMOVE_RECURSE
  "CMakeFiles/slot_engine_test.dir/slot_engine_test.cpp.o"
  "CMakeFiles/slot_engine_test.dir/slot_engine_test.cpp.o.d"
  "slot_engine_test"
  "slot_engine_test.pdb"
  "slot_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slot_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
