file(REMOVE_RECURSE
  "CMakeFiles/channel_set_test.dir/channel_set_test.cpp.o"
  "CMakeFiles/channel_set_test.dir/channel_set_test.cpp.o.d"
  "channel_set_test"
  "channel_set_test.pdb"
  "channel_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
