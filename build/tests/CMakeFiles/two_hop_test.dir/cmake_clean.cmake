file(REMOVE_RECURSE
  "CMakeFiles/two_hop_test.dir/two_hop_test.cpp.o"
  "CMakeFiles/two_hop_test.dir/two_hop_test.cpp.o.d"
  "two_hop_test"
  "two_hop_test.pdb"
  "two_hop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_hop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
