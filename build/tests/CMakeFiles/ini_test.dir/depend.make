# Empty dependencies file for ini_test.
# This may be replaced when dependencies are built.
