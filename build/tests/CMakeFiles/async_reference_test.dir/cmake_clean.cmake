file(REMOVE_RECURSE
  "CMakeFiles/async_reference_test.dir/async_reference_test.cpp.o"
  "CMakeFiles/async_reference_test.dir/async_reference_test.cpp.o.d"
  "async_reference_test"
  "async_reference_test.pdb"
  "async_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
