# Empty compiler generated dependencies file for sync_reference_test.
# This may be replaced when dependencies are built.
