file(REMOVE_RECURSE
  "CMakeFiles/sync_reference_test.dir/sync_reference_test.cpp.o"
  "CMakeFiles/sync_reference_test.dir/sync_reference_test.cpp.o.d"
  "sync_reference_test"
  "sync_reference_test.pdb"
  "sync_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
