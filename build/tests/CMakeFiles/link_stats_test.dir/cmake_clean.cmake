file(REMOVE_RECURSE
  "CMakeFiles/link_stats_test.dir/link_stats_test.cpp.o"
  "CMakeFiles/link_stats_test.dir/link_stats_test.cpp.o.d"
  "link_stats_test"
  "link_stats_test.pdb"
  "link_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
