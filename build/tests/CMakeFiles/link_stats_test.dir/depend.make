# Empty dependencies file for link_stats_test.
# This may be replaced when dependencies are built.
