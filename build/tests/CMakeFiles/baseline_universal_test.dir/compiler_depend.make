# Empty compiler generated dependencies file for baseline_universal_test.
# This may be replaced when dependencies are built.
