file(REMOVE_RECURSE
  "CMakeFiles/baseline_universal_test.dir/baseline_universal_test.cpp.o"
  "CMakeFiles/baseline_universal_test.dir/baseline_universal_test.cpp.o.d"
  "baseline_universal_test"
  "baseline_universal_test.pdb"
  "baseline_universal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_universal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
