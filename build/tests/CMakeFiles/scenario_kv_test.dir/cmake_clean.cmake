file(REMOVE_RECURSE
  "CMakeFiles/scenario_kv_test.dir/scenario_kv_test.cpp.o"
  "CMakeFiles/scenario_kv_test.dir/scenario_kv_test.cpp.o.d"
  "scenario_kv_test"
  "scenario_kv_test.pdb"
  "scenario_kv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_kv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
