# Empty compiler generated dependencies file for scenario_kv_test.
# This may be replaced when dependencies are built.
