file(REMOVE_RECURSE
  "CMakeFiles/discovery_state_test.dir/discovery_state_test.cpp.o"
  "CMakeFiles/discovery_state_test.dir/discovery_state_test.cpp.o.d"
  "discovery_state_test"
  "discovery_state_test.pdb"
  "discovery_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discovery_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
