# Empty dependencies file for discovery_state_test.
# This may be replaced when dependencies are built.
