
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/m2hew_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/m2hew_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/algorithm1.cpp" "src/core/CMakeFiles/m2hew_core.dir/algorithm1.cpp.o" "gcc" "src/core/CMakeFiles/m2hew_core.dir/algorithm1.cpp.o.d"
  "/root/repo/src/core/algorithm2.cpp" "src/core/CMakeFiles/m2hew_core.dir/algorithm2.cpp.o" "gcc" "src/core/CMakeFiles/m2hew_core.dir/algorithm2.cpp.o.d"
  "/root/repo/src/core/algorithm3.cpp" "src/core/CMakeFiles/m2hew_core.dir/algorithm3.cpp.o" "gcc" "src/core/CMakeFiles/m2hew_core.dir/algorithm3.cpp.o.d"
  "/root/repo/src/core/algorithm4.cpp" "src/core/CMakeFiles/m2hew_core.dir/algorithm4.cpp.o" "gcc" "src/core/CMakeFiles/m2hew_core.dir/algorithm4.cpp.o.d"
  "/root/repo/src/core/algorithms.cpp" "src/core/CMakeFiles/m2hew_core.dir/algorithms.cpp.o" "gcc" "src/core/CMakeFiles/m2hew_core.dir/algorithms.cpp.o.d"
  "/root/repo/src/core/baseline_deterministic.cpp" "src/core/CMakeFiles/m2hew_core.dir/baseline_deterministic.cpp.o" "gcc" "src/core/CMakeFiles/m2hew_core.dir/baseline_deterministic.cpp.o.d"
  "/root/repo/src/core/baseline_universal.cpp" "src/core/CMakeFiles/m2hew_core.dir/baseline_universal.cpp.o" "gcc" "src/core/CMakeFiles/m2hew_core.dir/baseline_universal.cpp.o.d"
  "/root/repo/src/core/bounds.cpp" "src/core/CMakeFiles/m2hew_core.dir/bounds.cpp.o" "gcc" "src/core/CMakeFiles/m2hew_core.dir/bounds.cpp.o.d"
  "/root/repo/src/core/multi_radio.cpp" "src/core/CMakeFiles/m2hew_core.dir/multi_radio.cpp.o" "gcc" "src/core/CMakeFiles/m2hew_core.dir/multi_radio.cpp.o.d"
  "/root/repo/src/core/termination.cpp" "src/core/CMakeFiles/m2hew_core.dir/termination.cpp.o" "gcc" "src/core/CMakeFiles/m2hew_core.dir/termination.cpp.o.d"
  "/root/repo/src/core/transmit_probability.cpp" "src/core/CMakeFiles/m2hew_core.dir/transmit_probability.cpp.o" "gcc" "src/core/CMakeFiles/m2hew_core.dir/transmit_probability.cpp.o.d"
  "/root/repo/src/core/two_hop.cpp" "src/core/CMakeFiles/m2hew_core.dir/two_hop.cpp.o" "gcc" "src/core/CMakeFiles/m2hew_core.dir/two_hop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/m2hew_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/m2hew_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/m2hew_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
