file(REMOVE_RECURSE
  "libm2hew_core.a"
)
