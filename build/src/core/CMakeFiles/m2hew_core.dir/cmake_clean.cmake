file(REMOVE_RECURSE
  "CMakeFiles/m2hew_core.dir/adaptive.cpp.o"
  "CMakeFiles/m2hew_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/m2hew_core.dir/algorithm1.cpp.o"
  "CMakeFiles/m2hew_core.dir/algorithm1.cpp.o.d"
  "CMakeFiles/m2hew_core.dir/algorithm2.cpp.o"
  "CMakeFiles/m2hew_core.dir/algorithm2.cpp.o.d"
  "CMakeFiles/m2hew_core.dir/algorithm3.cpp.o"
  "CMakeFiles/m2hew_core.dir/algorithm3.cpp.o.d"
  "CMakeFiles/m2hew_core.dir/algorithm4.cpp.o"
  "CMakeFiles/m2hew_core.dir/algorithm4.cpp.o.d"
  "CMakeFiles/m2hew_core.dir/algorithms.cpp.o"
  "CMakeFiles/m2hew_core.dir/algorithms.cpp.o.d"
  "CMakeFiles/m2hew_core.dir/baseline_deterministic.cpp.o"
  "CMakeFiles/m2hew_core.dir/baseline_deterministic.cpp.o.d"
  "CMakeFiles/m2hew_core.dir/baseline_universal.cpp.o"
  "CMakeFiles/m2hew_core.dir/baseline_universal.cpp.o.d"
  "CMakeFiles/m2hew_core.dir/bounds.cpp.o"
  "CMakeFiles/m2hew_core.dir/bounds.cpp.o.d"
  "CMakeFiles/m2hew_core.dir/multi_radio.cpp.o"
  "CMakeFiles/m2hew_core.dir/multi_radio.cpp.o.d"
  "CMakeFiles/m2hew_core.dir/termination.cpp.o"
  "CMakeFiles/m2hew_core.dir/termination.cpp.o.d"
  "CMakeFiles/m2hew_core.dir/transmit_probability.cpp.o"
  "CMakeFiles/m2hew_core.dir/transmit_probability.cpp.o.d"
  "CMakeFiles/m2hew_core.dir/two_hop.cpp.o"
  "CMakeFiles/m2hew_core.dir/two_hop.cpp.o.d"
  "libm2hew_core.a"
  "libm2hew_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2hew_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
