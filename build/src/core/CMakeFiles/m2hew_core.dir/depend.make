# Empty dependencies file for m2hew_core.
# This may be replaced when dependencies are built.
