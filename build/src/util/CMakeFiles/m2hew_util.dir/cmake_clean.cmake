file(REMOVE_RECURSE
  "CMakeFiles/m2hew_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/m2hew_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/m2hew_util.dir/csv.cpp.o"
  "CMakeFiles/m2hew_util.dir/csv.cpp.o.d"
  "CMakeFiles/m2hew_util.dir/flags.cpp.o"
  "CMakeFiles/m2hew_util.dir/flags.cpp.o.d"
  "CMakeFiles/m2hew_util.dir/histogram.cpp.o"
  "CMakeFiles/m2hew_util.dir/histogram.cpp.o.d"
  "CMakeFiles/m2hew_util.dir/ini.cpp.o"
  "CMakeFiles/m2hew_util.dir/ini.cpp.o.d"
  "CMakeFiles/m2hew_util.dir/log.cpp.o"
  "CMakeFiles/m2hew_util.dir/log.cpp.o.d"
  "CMakeFiles/m2hew_util.dir/rng.cpp.o"
  "CMakeFiles/m2hew_util.dir/rng.cpp.o.d"
  "CMakeFiles/m2hew_util.dir/stats.cpp.o"
  "CMakeFiles/m2hew_util.dir/stats.cpp.o.d"
  "CMakeFiles/m2hew_util.dir/table.cpp.o"
  "CMakeFiles/m2hew_util.dir/table.cpp.o.d"
  "libm2hew_util.a"
  "libm2hew_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2hew_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
