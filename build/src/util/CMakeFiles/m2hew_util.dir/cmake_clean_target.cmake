file(REMOVE_RECURSE
  "libm2hew_util.a"
)
