# Empty dependencies file for m2hew_util.
# This may be replaced when dependencies are built.
