file(REMOVE_RECURSE
  "libm2hew_net.a"
)
