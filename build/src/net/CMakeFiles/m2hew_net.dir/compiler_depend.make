# Empty compiler generated dependencies file for m2hew_net.
# This may be replaced when dependencies are built.
