file(REMOVE_RECURSE
  "CMakeFiles/m2hew_net.dir/channel_assign.cpp.o"
  "CMakeFiles/m2hew_net.dir/channel_assign.cpp.o.d"
  "CMakeFiles/m2hew_net.dir/channel_set.cpp.o"
  "CMakeFiles/m2hew_net.dir/channel_set.cpp.o.d"
  "CMakeFiles/m2hew_net.dir/network.cpp.o"
  "CMakeFiles/m2hew_net.dir/network.cpp.o.d"
  "CMakeFiles/m2hew_net.dir/primary_user.cpp.o"
  "CMakeFiles/m2hew_net.dir/primary_user.cpp.o.d"
  "CMakeFiles/m2hew_net.dir/propagation.cpp.o"
  "CMakeFiles/m2hew_net.dir/propagation.cpp.o.d"
  "CMakeFiles/m2hew_net.dir/serialize.cpp.o"
  "CMakeFiles/m2hew_net.dir/serialize.cpp.o.d"
  "CMakeFiles/m2hew_net.dir/topology.cpp.o"
  "CMakeFiles/m2hew_net.dir/topology.cpp.o.d"
  "CMakeFiles/m2hew_net.dir/topology_gen.cpp.o"
  "CMakeFiles/m2hew_net.dir/topology_gen.cpp.o.d"
  "libm2hew_net.a"
  "libm2hew_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2hew_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
