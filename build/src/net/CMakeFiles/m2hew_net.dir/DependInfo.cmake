
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel_assign.cpp" "src/net/CMakeFiles/m2hew_net.dir/channel_assign.cpp.o" "gcc" "src/net/CMakeFiles/m2hew_net.dir/channel_assign.cpp.o.d"
  "/root/repo/src/net/channel_set.cpp" "src/net/CMakeFiles/m2hew_net.dir/channel_set.cpp.o" "gcc" "src/net/CMakeFiles/m2hew_net.dir/channel_set.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/m2hew_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/m2hew_net.dir/network.cpp.o.d"
  "/root/repo/src/net/primary_user.cpp" "src/net/CMakeFiles/m2hew_net.dir/primary_user.cpp.o" "gcc" "src/net/CMakeFiles/m2hew_net.dir/primary_user.cpp.o.d"
  "/root/repo/src/net/propagation.cpp" "src/net/CMakeFiles/m2hew_net.dir/propagation.cpp.o" "gcc" "src/net/CMakeFiles/m2hew_net.dir/propagation.cpp.o.d"
  "/root/repo/src/net/serialize.cpp" "src/net/CMakeFiles/m2hew_net.dir/serialize.cpp.o" "gcc" "src/net/CMakeFiles/m2hew_net.dir/serialize.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/m2hew_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/m2hew_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/topology_gen.cpp" "src/net/CMakeFiles/m2hew_net.dir/topology_gen.cpp.o" "gcc" "src/net/CMakeFiles/m2hew_net.dir/topology_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/m2hew_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
