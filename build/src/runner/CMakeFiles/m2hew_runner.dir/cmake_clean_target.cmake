file(REMOVE_RECURSE
  "libm2hew_runner.a"
)
