# Empty compiler generated dependencies file for m2hew_runner.
# This may be replaced when dependencies are built.
