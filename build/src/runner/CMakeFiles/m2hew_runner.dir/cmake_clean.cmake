file(REMOVE_RECURSE
  "CMakeFiles/m2hew_runner.dir/link_stats.cpp.o"
  "CMakeFiles/m2hew_runner.dir/link_stats.cpp.o.d"
  "CMakeFiles/m2hew_runner.dir/report.cpp.o"
  "CMakeFiles/m2hew_runner.dir/report.cpp.o.d"
  "CMakeFiles/m2hew_runner.dir/scenario.cpp.o"
  "CMakeFiles/m2hew_runner.dir/scenario.cpp.o.d"
  "CMakeFiles/m2hew_runner.dir/scenario_kv.cpp.o"
  "CMakeFiles/m2hew_runner.dir/scenario_kv.cpp.o.d"
  "CMakeFiles/m2hew_runner.dir/trials.cpp.o"
  "CMakeFiles/m2hew_runner.dir/trials.cpp.o.d"
  "libm2hew_runner.a"
  "libm2hew_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2hew_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
