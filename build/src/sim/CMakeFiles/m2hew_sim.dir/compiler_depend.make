# Empty compiler generated dependencies file for m2hew_sim.
# This may be replaced when dependencies are built.
