
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/admissible.cpp" "src/sim/CMakeFiles/m2hew_sim.dir/admissible.cpp.o" "gcc" "src/sim/CMakeFiles/m2hew_sim.dir/admissible.cpp.o.d"
  "/root/repo/src/sim/async_engine.cpp" "src/sim/CMakeFiles/m2hew_sim.dir/async_engine.cpp.o" "gcc" "src/sim/CMakeFiles/m2hew_sim.dir/async_engine.cpp.o.d"
  "/root/repo/src/sim/clock.cpp" "src/sim/CMakeFiles/m2hew_sim.dir/clock.cpp.o" "gcc" "src/sim/CMakeFiles/m2hew_sim.dir/clock.cpp.o.d"
  "/root/repo/src/sim/discovery_state.cpp" "src/sim/CMakeFiles/m2hew_sim.dir/discovery_state.cpp.o" "gcc" "src/sim/CMakeFiles/m2hew_sim.dir/discovery_state.cpp.o.d"
  "/root/repo/src/sim/multi_radio_engine.cpp" "src/sim/CMakeFiles/m2hew_sim.dir/multi_radio_engine.cpp.o" "gcc" "src/sim/CMakeFiles/m2hew_sim.dir/multi_radio_engine.cpp.o.d"
  "/root/repo/src/sim/slot_engine.cpp" "src/sim/CMakeFiles/m2hew_sim.dir/slot_engine.cpp.o" "gcc" "src/sim/CMakeFiles/m2hew_sim.dir/slot_engine.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/m2hew_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/m2hew_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/m2hew_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/m2hew_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
