file(REMOVE_RECURSE
  "CMakeFiles/m2hew_sim.dir/admissible.cpp.o"
  "CMakeFiles/m2hew_sim.dir/admissible.cpp.o.d"
  "CMakeFiles/m2hew_sim.dir/async_engine.cpp.o"
  "CMakeFiles/m2hew_sim.dir/async_engine.cpp.o.d"
  "CMakeFiles/m2hew_sim.dir/clock.cpp.o"
  "CMakeFiles/m2hew_sim.dir/clock.cpp.o.d"
  "CMakeFiles/m2hew_sim.dir/discovery_state.cpp.o"
  "CMakeFiles/m2hew_sim.dir/discovery_state.cpp.o.d"
  "CMakeFiles/m2hew_sim.dir/multi_radio_engine.cpp.o"
  "CMakeFiles/m2hew_sim.dir/multi_radio_engine.cpp.o.d"
  "CMakeFiles/m2hew_sim.dir/slot_engine.cpp.o"
  "CMakeFiles/m2hew_sim.dir/slot_engine.cpp.o.d"
  "CMakeFiles/m2hew_sim.dir/trace.cpp.o"
  "CMakeFiles/m2hew_sim.dir/trace.cpp.o.d"
  "libm2hew_sim.a"
  "libm2hew_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2hew_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
