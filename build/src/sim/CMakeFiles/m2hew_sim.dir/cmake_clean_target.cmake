file(REMOVE_RECURSE
  "libm2hew_sim.a"
)
