file(REMOVE_RECURSE
  "CMakeFiles/m2hew_experiment.dir/m2hew_experiment.cpp.o"
  "CMakeFiles/m2hew_experiment.dir/m2hew_experiment.cpp.o.d"
  "m2hew_experiment"
  "m2hew_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2hew_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
