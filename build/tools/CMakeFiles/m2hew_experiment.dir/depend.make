# Empty dependencies file for m2hew_experiment.
# This may be replaced when dependencies are built.
