# Empty dependencies file for m2hew_trace.
# This may be replaced when dependencies are built.
