file(REMOVE_RECURSE
  "CMakeFiles/m2hew_trace.dir/m2hew_trace.cpp.o"
  "CMakeFiles/m2hew_trace.dir/m2hew_trace.cpp.o.d"
  "m2hew_trace"
  "m2hew_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2hew_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
