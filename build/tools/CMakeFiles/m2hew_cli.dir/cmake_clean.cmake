file(REMOVE_RECURSE
  "CMakeFiles/m2hew_cli.dir/m2hew_cli.cpp.o"
  "CMakeFiles/m2hew_cli.dir/m2hew_cli.cpp.o.d"
  "m2hew_cli"
  "m2hew_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2hew_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
