# Empty dependencies file for m2hew_cli.
# This may be replaced when dependencies are built.
