# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(trace_tool_smoke "/root/repo/build/tools/m2hew_trace" "--topology=line" "--n=4" "--slots=30")
set_tests_properties(trace_tool_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(trace_tool_deterministic "/root/repo/build/tools/m2hew_trace" "--algorithm=deterministic" "--topology=clique" "--n=3" "--channels=homogeneous" "--universe=2" "--set-size=2" "--slots=12")
set_tests_properties(trace_tool_deterministic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(experiment_tool_smoke "/root/repo/build/tools/m2hew_experiment" "/root/repo/build/tools/smoke_sweep.ini")
set_tests_properties(experiment_tool_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;37;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_help "/root/repo/build/tools/m2hew_cli" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;41;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_alg1 "/root/repo/build/tools/m2hew_cli" "--topology=clique" "--n=6" "--algorithm=alg1" "--trials=3")
set_tests_properties(cli_alg1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;42;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_alg2 "/root/repo/build/tools/m2hew_cli" "--topology=ring" "--n=8" "--channels=homogeneous" "--algorithm=alg2" "--trials=3")
set_tests_properties(cli_alg2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;44;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_alg3_asym "/root/repo/build/tools/m2hew_cli" "--topology=erdos-renyi" "--n=10" "--algorithm=alg3" "--asymmetric-drop=0.5" "--trials=3")
set_tests_properties(cli_alg3_asym PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;46;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_alg4 "/root/repo/build/tools/m2hew_cli" "--topology=clique" "--n=6" "--algorithm=alg4" "--trials=2" "--drift=0.1")
set_tests_properties(cli_alg4 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;48;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_baseline "/root/repo/build/tools/m2hew_cli" "--topology=clique" "--n=6" "--algorithm=baseline" "--trials=2")
set_tests_properties(cli_baseline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;50;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_chain_termination "/root/repo/build/tools/m2hew_cli" "--channels=chain" "--n=8" "--set-size=6" "--overlap=2" "--algorithm=alg3" "--trials=3" "--terminate-after=5000")
set_tests_properties(cli_chain_termination PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;52;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_propagation "/root/repo/build/tools/m2hew_cli" "--topology=clique" "--n=8" "--channels=homogeneous" "--set-size=8" "--universe=8" "--propagation=random" "--prop-keep=0.6" "--algorithm=alg3" "--trials=3")
set_tests_properties(cli_propagation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;55;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_adaptive "/root/repo/build/tools/m2hew_cli" "--topology=clique" "--n=6" "--algorithm=adaptive" "--trials=3")
set_tests_properties(cli_adaptive PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;58;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_deterministic "/root/repo/build/tools/m2hew_cli" "--topology=clique" "--n=6" "--algorithm=deterministic" "--trials=2")
set_tests_properties(cli_deterministic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;60;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_multi_radio "/root/repo/build/tools/m2hew_cli" "--topology=clique" "--n=6" "--channels=homogeneous" "--set-size=6" "--universe=6" "--radios=3" "--trials=3")
set_tests_properties(cli_multi_radio PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;62;add_test;/root/repo/tools/CMakeLists.txt;0;")
