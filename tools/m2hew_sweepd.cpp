// m2hew_sweepd — the sharded sweep daemon.
//
//   $ m2hew_sweepd --dir=sweepd --workers=4 &
//   $ m2hew_sweep sweep.ini --dir=sweepd        # submit + wait (client)
//
// Watches <dir>/incoming/ for sweep specs (the m2hew_experiment INI
// format), runs each spec's trials sharded across --workers forked
// processes with streaming aggregation, and publishes one bench-schema
// JSON artifact per unique spec into the content-addressed cache at
// --cache-dir (default <dir>/cache). Resubmitting an unchanged spec with
// an unchanged binary is answered from the cache without simulating.
//
// Flags:
//   --dir=PATH       spool directory (default "sweepd"; created)
//   --cache-dir=PATH artifact cache (default <dir>/cache)
//   --workers=N      trial-shard processes per sweep point (default 1;
//                    results are bit-identical for every value)
//   --poll-ms=N      incoming/ scan interval (default 200)
//   --once           drain the current backlog, then exit (CI / tests)
//   --log-level=L    debug|info|warn|error (default info)
//
// Shutdown, two ways:
//   sentinel — create <dir>/shutdown (the client's --shutdown does this);
//     the daemon finishes the job in progress, removes the sentinel and
//     exits with status 0.
//   signal — SIGTERM or SIGINT (service managers, ^C). The in-flight job
//     is interrupted: shard workers are SIGTERMed and reaped, the job's
//     status becomes "interrupted" and its spec stays in incoming/, so a
//     restarted daemon re-runs it. The daemon then removes any stale
//     status/cache *.tmp files and exits with status 0. No orphan
//     processes and no half-written artifacts survive either path.
// See docs/OPERATIONS.md for the full operator guide.
#include <cstdio>
#include <string>

#include "service/daemon.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace m2hew;
  const util::Flags flags(argc, argv);

  const std::string level = flags.get_string("log-level", "info");
  if (level == "debug") {
    util::set_log_level(util::LogLevel::kDebug);
  } else if (level == "warn") {
    util::set_log_level(util::LogLevel::kWarn);
  } else if (level == "error") {
    util::set_log_level(util::LogLevel::kError);
  } else {
    util::set_log_level(util::LogLevel::kInfo);
  }

  service::DaemonConfig config;
  config.spool_dir = flags.get_string("dir", "sweepd");
  config.cache_dir = flags.get_string("cache-dir", "");
  config.workers = static_cast<std::size_t>(flags.get_int("workers", 1));
  config.poll_ms = static_cast<int>(flags.get_int("poll-ms", 200));
  config.once = flags.get_bool("once", false);
  if (config.workers == 0) config.workers = 1;
  if (config.poll_ms <= 0) config.poll_ms = 200;

  for (const std::string& unknown : flags.unconsumed()) {
    std::fprintf(stderr, "m2hew_sweepd: unknown flag --%s\n",
                 unknown.c_str());
    return 2;
  }
  if (!flags.positional().empty()) {
    std::fprintf(stderr,
                 "m2hew_sweepd takes no positional arguments (submit specs "
                 "with m2hew_sweep)\n");
    return 2;
  }
  return service::run_daemon(config);
}
