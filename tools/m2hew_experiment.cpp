// m2hew_experiment — run a parameter sweep described by an INI file.
//
//   $ m2hew_experiment sweep.ini
//
// Example file:
//
//   [experiment]
//   name        = rho_sweep
//   algorithm   = alg3          ; alg1 | alg2 | alg3 | alg4 | baseline |
//                               ; adaptive | mcdis | rendezvous |
//                               ; consistent-hop
//   delta-est   = 8
//   trials      = 30
//   threads     = 0             ; trial fan-out: 0 = all cores, 1 = serial
//   seed        = 1
//   max-slots   = 1000000
//   sweep-key   = overlap       ; any scenario key (see scenario_kv.hpp)
//   sweep-values = 8 4 2 1
//   plot        = 1             ; optional ascii plot of mean vs sweep value
//
//   [scenario]
//   topology  = line
//   channels  = chain
//   n         = 12
//   set-size  = 8
//
//   [faults]                  ; optional deterministic fault injection
//   crash-prob  = 0.3         ; per-node crash probability (node churn)
//   crash-from  = 200         ; crash window [crash-from, crash-until]
//   crash-until = 2000
//   down-min    = 100         ; downtime window [down-min, down-max]
//   down-max    = 1000
//   reset-on-recovery = 1     ; restart policy state after recovery
//   burst-loss  = 0.9         ; Gilbert-Elliott bad-state loss (bursty)
//   burst-p-gb  = 0.01        ; good->bad transition probability
//   burst-p-bg  = 0.1         ; bad->good transition probability
//
//   [mobility]                ; optional random-waypoint link dynamics
//   epochs      = 8           ; topology schedule length (epochs)
//   epoch-slots = 500         ; slots per epoch
//   speed-min   = 0.0         ; node speed range, units per epoch
//   speed-max   = 0.05
//   pause-epochs = 0          ; max pause at a reached waypoint
//   duty-on     = 1           ; policy active duty-on slots of every
//   duty-period = 1           ; duty-period window (1/1 = always on)
//
//   [adversary]               ; optional adversarial nodes + trust defence
//   fraction    = 0.2         ; fraction of nodes turned adversarial
//   attack      = mix         ; jam | byzantine | non-responder | mix
//   byzantine-tx = 0.45       ; Byzantine per-slot transmit probability
//   victim-fraction = 0.5     ; non-responder silent-victim fraction
//   trust       = 1           ; wrap the policy with the trust table
//   trust-threshold = 0.3     ; (and trust-reward, trust-rate-penalty,
//                             ; trust-decay, trust-rate-window,
//                             ; trust-max-per-window, trust-block-slots,
//                             ; trust-entry-window)
//
// [mobility] requires a unit-disk scenario with a position-independent
// channel kind (homogeneous / uniform / variable); runs then track
// per-contact detection latency, missed contacts and energy per detected
// contact (sim/encounter.hpp).
//
// Output: a table (one row per sweep value), optional plot, robustness
// metrics per sweep value when [faults] is present, encounter metrics per
// sweep value when [mobility] is present, and results/<name>.csv.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "core/algorithms.hpp"
#include "core/competitors.hpp"
#include "core/duty_cycle.hpp"
#include "core/trust.hpp"
#include "net/topology_provider.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/scenario_kv.hpp"
#include "runner/trials.hpp"
#include "sim/encounter.hpp"
#include "sim/fault_plan.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/ini.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

[[nodiscard]] std::string format_value(double value) {
  char buf[32];
  if (value == std::floor(value)) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", value);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: m2hew_experiment <file.ini>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  util::IniParseError parse_error;
  const util::IniFile ini = util::IniFile::parse(in, &parse_error);
  if (!parse_error.ok()) {
    std::fprintf(stderr, "%s:%zu: %s\n  %s\n", argv[1], parse_error.line,
                 parse_error.message.c_str(), parse_error.text.c_str());
    return 2;
  }

  const std::string name = ini.get("experiment", "name", "experiment");
  const std::string algorithm = ini.get("experiment", "algorithm", "alg3");
  const auto delta_est =
      static_cast<std::size_t>(ini.get_int("experiment", "delta-est", 8));
  const auto trials =
      static_cast<std::size_t>(ini.get_int("experiment", "trials", 30));
  const auto threads =
      static_cast<std::size_t>(ini.get_int("experiment", "threads", 0));
  const auto seed =
      static_cast<std::uint64_t>(ini.get_int("experiment", "seed", 1));
  const auto max_slots = static_cast<std::uint64_t>(
      ini.get_int("experiment", "max-slots", 1'000'000));
  const std::string sweep_key = ini.get("experiment", "sweep-key");
  std::vector<double> sweep_values =
      ini.get_list("experiment", "sweep-values");
  if (sweep_values.empty()) sweep_values.push_back(0.0);  // single run

  runner::ScenarioConfig base;
  for (const std::string& key : ini.keys("scenario")) {
    if (!runner::apply_scenario_setting(base, key,
                                        ini.get("scenario", key))) {
      std::fprintf(stderr, "unknown scenario key '%s'\n", key.c_str());
      return 2;
    }
  }

  // Optional [faults] section: deterministic fault injection for every run
  // in the sweep (docs/MODEL.md "Fault model"). The parser is shared with
  // the sweep daemon, which reads the same spec format.
  sim::SlotFaultPlan faults;
  {
    std::string fault_error;
    if (!runner::parse_faults_section(ini, faults, &fault_error)) {
      std::fprintf(stderr, "%s\n", fault_error.c_str());
      return 2;
    }
  }

  // Optional [mobility] section: random-waypoint epoch dynamics. Every
  // sweep point rebuilds the trajectory/link schedule from the same seed,
  // so a swept scenario key (say ud-radius) changes the link sets but not
  // the node paths.
  runner::MobilitySpec mobility;
  {
    std::string mobility_error;
    if (!runner::parse_mobility_section(ini, mobility, &mobility_error)) {
      std::fprintf(stderr, "%s\n", mobility_error.c_str());
      return 2;
    }
  }

  // Optional [adversary] section: seed-derived adversarial roles plus the
  // trust-scored neighbor maintenance defence (docs/MODEL.md "Adversary
  // model & trust maintenance"); same parser as the sweep daemon.
  core::TrustConfig trust;
  {
    std::string adversary_error;
    if (!runner::parse_adversary_section(ini, faults.adversary, trust,
                                         &adversary_error)) {
      std::fprintf(stderr, "%s\n", adversary_error.c_str());
      return 2;
    }
  }

  auto make_factory = [&]() -> sim::SyncPolicyFactory {
    if (algorithm == "alg1") return core::make_algorithm1(delta_est);
    if (algorithm == "alg2") return core::make_algorithm2();
    if (algorithm == "alg3") return core::make_algorithm3(delta_est);
    if (algorithm == "adaptive") return core::make_adaptive();
    if (algorithm == "baseline") {
      return core::make_universal_baseline(base.universe, 0.5);
    }
    if (algorithm == "mcdis") return core::make_mcdis();
    if (algorithm == "rendezvous") return core::make_blind_rendezvous();
    if (algorithm == "consistent-hop") return core::make_consistent_hop();
    std::fprintf(stderr,
                 "unknown/unsupported algorithm '%s' (alg4 needs the async "
                 "engine; use m2hew_cli)\n",
                 algorithm.c_str());
    std::exit(2);
  };

  std::printf("experiment: %s (%s, %zu trials/point)\n", name.c_str(),
              algorithm.c_str(), trials);
  std::printf("policy:     %s\n",
              runner::describe_policy(algorithm, delta_est).c_str());
  if (mobility.enabled) {
    std::printf("mobility:  %s\n", runner::describe_mobility(mobility).c_str());
  }

  auto csv_file = runner::open_results_csv(name);
  util::CsvWriter csv(csv_file);
  if (mobility.enabled) {
    csv.header({"sweep_value", "success_rate", "mean_slots", "p50_slots",
                "p95_slots", "trials_per_sec", "contacts",
                "detected_contacts", "mean_detection_latency",
                "mean_missed_fraction"});
  } else {
    csv.header({"sweep_value", "success_rate", "mean_slots", "p50_slots",
                "p95_slots", "trials_per_sec"});
  }

  util::Table table({sweep_key.empty() ? "run" : sweep_key, "success",
                     "mean slots", "p50", "p95", "trials/s"});
  std::vector<double> means;
  double total_seconds = 0.0;
  std::size_t total_trials = 0;
  std::size_t threads_used = 1;
  for (const double value : sweep_values) {
    runner::ScenarioConfig scenario = base;
    if (!sweep_key.empty()) {
      if (!runner::apply_scenario_setting(scenario, sweep_key,
                                          format_value(value))) {
        std::fprintf(stderr, "unknown sweep key '%s'\n", sweep_key.c_str());
        return 2;
      }
    }
    std::unique_ptr<net::EpochTopologyProvider> provider;
    std::optional<net::Network> static_network;
    if (mobility.enabled) {
      if (scenario.topology != runner::TopologyKind::kUnitDisk ||
          (scenario.channels != runner::ChannelKind::kHomogeneous &&
           scenario.channels != runner::ChannelKind::kUniformRandom &&
           scenario.channels != runner::ChannelKind::kVariableRandom)) {
        std::fprintf(stderr,
                     "[mobility] requires topology=unit-disk and "
                     "channels=homogeneous|uniform|variable\n");
        return 2;
      }
      provider = runner::build_mobility_provider(scenario, mobility, seed);
    } else {
      static_network.emplace(runner::build_scenario(scenario, seed));
    }
    const net::Network& network =
        provider != nullptr ? provider->union_network() : *static_network;
    runner::SyncTrialConfig trial;
    trial.trials = trials;
    trial.seed = seed;
    trial.threads = threads;
    trial.engine.max_slots = max_slots;
    trial.engine.faults = faults;
    std::optional<sim::EncounterIndex> encounter_index;
    if (provider != nullptr) {
      trial.engine.topology = provider.get();
      trial.engine.epoch_length = mobility.epoch_slots;
      encounter_index.emplace(*provider, mobility.epoch_slots, max_slots);
      trial.encounters = &*encounter_index;
    }
    sim::SyncPolicyFactory factory = make_factory();
    if (mobility.enabled) {
      factory = core::with_duty_cycle(std::move(factory), mobility.duty_on,
                                      mobility.duty_period);
    }
    // Identity when [adversary] trust is off.
    factory = core::with_trust(std::move(factory), trust);
    const auto stats = runner::run_sync_trials(network, factory, trial);
    if (stats.robustness.enabled() || stats.encounters.enabled()) {
      std::printf("[%s = %s]\n", sweep_key.empty() ? "run" : sweep_key.c_str(),
                  format_value(value).c_str());
      if (stats.robustness.enabled()) {
        runner::print_robustness(stats.robustness);
      }
      if (stats.encounters.enabled()) {
        runner::print_encounters(stats.encounters);
      }
    }
    const auto summary = stats.completion_slots.summarize();
    means.push_back(summary.mean);
    total_seconds += stats.elapsed_seconds;
    total_trials += stats.trials;
    threads_used = stats.threads_used;
    table.row()
        .cell(format_value(value))
        .cell(stats.success_rate(), 2)
        .cell(summary.mean, 1)
        .cell(summary.p50, 1)
        .cell(summary.p95, 1)
        .cell(stats.trials_per_second(), 1);
    csv.field(value).field(stats.success_rate()).field(summary.mean);
    csv.field(summary.p50).field(summary.p95);
    csv.field(stats.trials_per_second());
    if (mobility.enabled) {
      const auto& enc = stats.encounters;
      csv.field(static_cast<unsigned long long>(enc.contacts));
      csv.field(static_cast<unsigned long long>(enc.detected));
      csv.field(enc.detection_latency.summarize().mean);
      csv.field(enc.missed_fraction.summarize().mean);
    }
    csv.end_row();
  }
  std::printf("\n%s", table.render().c_str());
  std::printf("\n%zu trials in %.3f s (%.1f trials/s, %zu threads)\n",
              total_trials, total_seconds,
              total_seconds > 0.0
                  ? static_cast<double>(total_trials) / total_seconds
                  : 0.0,
              threads_used);

  if (ini.get_int("experiment", "plot", 0) != 0 && sweep_values.size() > 1) {
    util::PlotOptions plot;
    plot.x_label = sweep_key;
    plot.y_label = "mean slots";
    std::printf("\n%s", util::ascii_plot(sweep_values, means, plot).c_str());
  }
  std::printf("\nwrote %s/%s.csv\n", runner::results_dir().c_str(),
              name.c_str());
  return 0;
}
