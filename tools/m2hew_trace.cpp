// m2hew_trace — run a short discovery and print the execution timeline
// (the textual analogue of the paper's Fig. 1/2) plus the reception log.
// A debugging lens on the radio schedule: columns are slots, rows are
// nodes, T<c>/R<c>/. are transmit/receive/quiet on channel c.
//
//   $ m2hew_trace --topology=line --n=4 --slots=40
//   $ m2hew_trace --algorithm=alg1 --delta-est=16 --slots=60 --seed=3
#include <cstdio>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "core/algorithms.hpp"
#include "core/baseline_deterministic.hpp"
#include "runner/scenario.hpp"
#include "runner/scenario_kv.hpp"
#include "sim/slot_engine.hpp"
#include "sim/trace.hpp"
#include "util/flags.hpp"

namespace {

using namespace m2hew;

constexpr const char* kUsage = R"(m2hew_trace — execution timeline viewer

  --topology/--n/--channels/... any scenario key (see scenario_kv.hpp,
                                 dashes as in the CLI), defaults: line n=4,
                                 uniform channels |U|=6 |A|=3
  --algorithm=<alg1|alg2|alg3|adaptive|baseline|deterministic> (default alg3)
  --delta-est=<bound>            (default 8)
  --slots=<count>                timeline window (default 40)
  --seed=<seed>                  (default 1)
)";

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  if (flags.has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  runner::ScenarioConfig scenario;
  scenario.topology = runner::TopologyKind::kLine;
  scenario.n = 4;
  scenario.channels = runner::ChannelKind::kUniformRandom;
  scenario.universe = 6;
  scenario.set_size = 3;
  // Any flag that names a scenario key overrides the default.
  for (const char* key :
       {"topology", "n", "grid-rows", "er-p", "ud-side", "ud-radius",
        "ws-k", "ws-beta", "ba-m", "channels", "universe", "set-size",
        "min-size", "max-size", "overlap", "asymmetric-drop", "propagation",
        "prop-keep"}) {
    if (flags.has(key)) {
      if (!runner::apply_scenario_setting(scenario, key,
                                          flags.get_string(key))) {
        std::fprintf(stderr, "bad scenario key --%s\n", key);
        return 2;
      }
    }
  }

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto slots = static_cast<std::uint64_t>(flags.get_int("slots", 40));
  const auto delta_est =
      static_cast<std::size_t>(flags.get_int("delta-est", 8));
  const std::string algorithm = flags.get_string("algorithm", "alg3");

  const net::Network network = runner::build_scenario(scenario, seed);
  std::printf("scenario: %s\n", runner::describe(scenario).c_str());
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    std::printf("node %3u available:", u);
    for (const auto c : network.available(u).to_vector()) {
      std::printf(" %u", c);
    }
    std::printf("\n");
  }

  sim::SyncPolicyFactory factory;
  if (algorithm == "alg1") {
    factory = core::make_algorithm1(delta_est);
  } else if (algorithm == "alg2") {
    factory = core::make_algorithm2();
  } else if (algorithm == "alg3") {
    factory = core::make_algorithm3(delta_est);
  } else if (algorithm == "adaptive") {
    factory = core::make_adaptive();
  } else if (algorithm == "baseline") {
    factory = core::make_universal_baseline(network.universe_size(), 0.5);
  } else if (algorithm == "deterministic") {
    factory = core::make_deterministic_baseline(network.universe_size());
  } else {
    std::fprintf(stderr, "unknown --algorithm=%s\n", algorithm.c_str());
    return 2;
  }

  sim::Trace trace;
  sim::SlotEngineConfig engine;
  engine.max_slots = slots;
  engine.seed = seed;
  engine.stop_when_complete = false;
  struct Reception {
    std::uint64_t slot;
    net::NodeId from;
    net::NodeId to;
    net::ChannelId channel;
  };
  std::vector<Reception> receptions;
  engine.on_reception = [&receptions](std::uint64_t slot, net::NodeId from,
                                      net::NodeId to, net::ChannelId c) {
    receptions.push_back({slot, from, to, c});
  };
  const auto result =
      sim::run_slot_engine(network, sim::traced(factory, trace), engine);

  std::printf("\ntimeline (%s, %llu slots; T<c> transmit, R<c> receive, "
              "'.' quiet):\n\n%s",
              algorithm.c_str(), static_cast<unsigned long long>(slots),
              trace.render_timeline(0, slots).c_str());

  std::printf("\nreceptions (%zu):\n", receptions.size());
  for (const Reception& r : receptions) {
    std::printf("  slot %4llu: %u -> %u on channel %u\n",
                static_cast<unsigned long long>(r.slot), r.from, r.to,
                r.channel);
  }
  std::printf("\ncoverage after %llu slots: %zu / %zu links%s\n",
              static_cast<unsigned long long>(slots),
              result.state.covered_links(), result.state.total_links(),
              result.complete ? " (complete)" : "");
  return 0;
}
