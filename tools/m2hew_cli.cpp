// m2hew_cli — run neighbor-discovery experiments from the command line.
//
// Examples:
//   m2hew_cli --topology=clique --n=16 --algorithm=alg3 --trials=30
//   m2hew_cli --topology=unit-disk --n=24 --channels=primary-users
//             --algorithm=alg4 --delta-est=8 --drift=0.14   (one line)
//   m2hew_cli --topology=line --channels=chain --set-size=8 --overlap=2
//             --algorithm=alg1 --epsilon=0.05               (one line)
//
// Run with --help for the full flag list.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/adaptive.hpp"
#include "core/algorithms.hpp"
#include "core/baseline_deterministic.hpp"
#include "core/bounds.hpp"
#include "core/multi_radio.hpp"
#include "core/termination.hpp"
#include "core/transmit_probability.hpp"
#include "net/serialize.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "sim/clock.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace m2hew;

constexpr const char* kUsage = R"(m2hew_cli — M2HeW neighbor-discovery simulator

Network:
  --topology=<line|ring|grid|star|clique|erdos-renyi|unit-disk|
              watts-strogatz|barabasi-albert>   (default clique)
  --n=<nodes>                 (default 16)
  --channels=<homogeneous|uniform|variable|chain|primary-users>
                              (default uniform)
  --universe=<channels>       (default 10)
  --set-size=<|A(u)|>         (default 4)
  --overlap=<k>               chain overlap (default 2)
  --asymmetric-drop=<p>       drop one arc direction w.p. p (default 0)
  --propagation=<full|random|lowpass>  (default full)
  --prop-keep=<p>             random-mask keep probability (default 0.7)

Algorithm:
  --algorithm=<alg1|alg2|alg2x|alg3|alg4|baseline|deterministic|adaptive>
                              (default alg3)
  --delta-est=<bound>         degree bound for alg1/alg3/alg4 (default 8)
  --terminate-after=<slots>   optional silence-based termination
  --radios=<R>                multi-radio alg3 (R transceivers per node)

Network I/O:
  --save-network=<path>       write the generated network and exit
  --load-network=<path>       run on a previously saved network (overrides
                              all network flags)

Execution:
  --trials=<count>            (default 30)
  --threads=<workers>         trial fan-out; 0 = all cores, 1 = serial
                              (default 0; results identical either way)
  --seed=<seed>               (default 1)
  --epsilon=<eps>             for bound reporting (default 0.1)
  --max-slots=<budget>        sync slot budget (default 10000000)
  --loss=<p>                  per-reception loss probability (default 0)
  --drift=<delta>             alg4 max clock drift (default 1/7)
  --frame-length=<L>          alg4 frame length (default 3)
)";

[[nodiscard]] runner::ScenarioConfig scenario_from_flags(
    const util::Flags& flags) {
  runner::ScenarioConfig config;
  const std::string topology = flags.get_string("topology", "clique");
  if (topology == "line") {
    config.topology = runner::TopologyKind::kLine;
  } else if (topology == "ring") {
    config.topology = runner::TopologyKind::kRing;
  } else if (topology == "grid") {
    config.topology = runner::TopologyKind::kGrid;
    config.grid_rows = 2;
  } else if (topology == "star") {
    config.topology = runner::TopologyKind::kStar;
  } else if (topology == "clique") {
    config.topology = runner::TopologyKind::kClique;
  } else if (topology == "erdos-renyi") {
    config.topology = runner::TopologyKind::kErdosRenyi;
  } else if (topology == "unit-disk") {
    config.topology = runner::TopologyKind::kUnitDisk;
    config.ud_radius = 0.4;
  } else if (topology == "watts-strogatz") {
    config.topology = runner::TopologyKind::kWattsStrogatz;
  } else if (topology == "barabasi-albert") {
    config.topology = runner::TopologyKind::kBarabasiAlbert;
  } else {
    std::fprintf(stderr, "unknown --topology=%s\n", topology.c_str());
    std::exit(2);
  }

  config.n = static_cast<net::NodeId>(flags.get_int("n", 16));
  config.universe =
      static_cast<net::ChannelId>(flags.get_int("universe", 10));
  config.set_size =
      static_cast<net::ChannelId>(flags.get_int("set-size", 4));
  config.chain_overlap =
      static_cast<net::ChannelId>(flags.get_int("overlap", 2));

  const std::string channels = flags.get_string("channels", "uniform");
  if (channels == "homogeneous") {
    config.channels = runner::ChannelKind::kHomogeneous;
  } else if (channels == "uniform") {
    config.channels = runner::ChannelKind::kUniformRandom;
  } else if (channels == "variable") {
    config.channels = runner::ChannelKind::kVariableRandom;
    config.min_size = 2;
    config.max_size = config.set_size;
  } else if (channels == "chain") {
    config.channels = runner::ChannelKind::kChainOverlap;
    config.topology = runner::TopologyKind::kLine;
  } else if (channels == "primary-users") {
    config.channels = runner::ChannelKind::kPrimaryUsers;
    config.topology = runner::TopologyKind::kUnitDisk;
    config.ud_radius = 0.4;
  } else {
    std::fprintf(stderr, "unknown --channels=%s\n", channels.c_str());
    std::exit(2);
  }

  config.asymmetric_drop = flags.get_double("asymmetric-drop", 0.0);
  const std::string propagation = flags.get_string("propagation", "full");
  if (propagation == "full") {
    config.propagation = runner::PropagationKind::kFull;
  } else if (propagation == "random") {
    config.propagation = runner::PropagationKind::kRandomMask;
  } else if (propagation == "lowpass") {
    config.propagation = runner::PropagationKind::kLowpass;
  } else {
    std::fprintf(stderr, "unknown --propagation=%s\n", propagation.c_str());
    std::exit(2);
  }
  config.prop_keep = flags.get_double("prop-keep", 0.7);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  if (flags.has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto delta_est =
      static_cast<std::size_t>(flags.get_int("delta-est", 8));
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 30));
  const std::size_t threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));
  const double epsilon = flags.get_double("epsilon", 0.1);
  const double loss = flags.get_double("loss", 0.0);
  const std::string algorithm = flags.get_string("algorithm", "alg3");
  const auto terminate_after =
      static_cast<std::uint64_t>(flags.get_int("terminate-after", 0));

  std::string scenario_text;
  const net::Network network = [&]() -> net::Network {
    const std::string load_path = flags.get_string("load-network");
    if (!load_path.empty()) {
      // Consume (and ignore) the network-shape flags so they do not show
      // up as typos when a file overrides them.
      (void)scenario_from_flags(flags);
      scenario_text = "loaded from " + load_path;
      return net::load_network_file(load_path);
    }
    const runner::ScenarioConfig scenario = scenario_from_flags(flags);
    sim::SlotEngineCommon engine_knobs;
    engine_knobs.loss_probability = loss;
    scenario_text = runner::describe(scenario, engine_knobs);
    return runner::build_scenario(scenario, seed);
  }();

  const std::string save_path = flags.get_string("save-network");
  if (!save_path.empty()) {
    net::save_network_file(save_path, network);
    std::printf("network written to %s\n", save_path.c_str());
    return 0;
  }

  core::BoundParams params;
  params.n = network.node_count();
  params.s = network.max_channel_set_size();
  params.delta = std::max<std::size_t>(1, network.max_channel_degree());
  params.delta_est = delta_est;
  params.rho = network.min_span_ratio();
  params.epsilon = epsilon;

  std::printf("scenario: %s\n", scenario_text.c_str());
  std::printf("network:  N=%u S=%zu Delta=%zu rho=%.4f links=%zu arcs=%zu\n",
              network.node_count(), params.s, params.delta, params.rho,
              network.links().size(), network.topology().arc_count());

  util::Table table({"metric", "value"});
  auto report_throughput = [&](const auto& stats) {
    table.row().cell("threads").cell(stats.threads_used);
    table.row().cell("wall time (s)").cell(stats.elapsed_seconds, 3);
    table.row().cell("trials/sec").cell(stats.trials_per_second(), 1);
  };
  auto report_sync = [&](const runner::SyncTrialStats& stats, double bound,
                         const char* bound_name) {
    const auto summary = stats.completion_slots.summarize();
    table.row().cell("trials").cell(stats.trials);
    table.row().cell("completed").cell(stats.completed);
    table.row().cell("success rate").cell(stats.success_rate(), 3);
    table.row().cell("mean slots").cell(summary.mean, 1);
    table.row().cell("p50 slots").cell(summary.p50, 1);
    table.row().cell("p95 slots").cell(summary.p95, 1);
    table.row().cell("max slots").cell(summary.max, 1);
    table.row().cell(bound_name).cell(bound, 0);
    report_throughput(stats);
  };

  const auto radios = static_cast<unsigned>(flags.get_int("radios", 1));
  if (radios > 1) {
    // Multi-radio Algorithm 3 (extension; cf. related work [19]), through
    // the same trial runner as the single-radio engines — so it shares
    // the loss model, the worker pool and the bench run log.
    runner::MultiRadioTrialConfig trial;
    trial.trials = trials;
    trial.seed = seed;
    trial.threads = threads;
    trial.engine.max_slots = static_cast<std::uint64_t>(
        flags.get_int("max-slots", 10'000'000));
    trial.engine.loss_probability = loss;
    const auto stats = runner::run_multi_radio_trials(
        network, core::make_multi_radio_alg3(radios, delta_est), trial);
    const auto summary = stats.completion_slots.summarize();
    table.row().cell("radios").cell(static_cast<std::size_t>(radios));
    table.row().cell("trials").cell(stats.trials);
    table.row().cell("completed").cell(stats.completed);
    table.row().cell("success rate").cell(stats.success_rate(), 3);
    table.row().cell("mean slots").cell(summary.mean, 1);
    table.row().cell("max slots").cell(summary.max, 1);
    report_throughput(stats);
    std::printf("\n%s", table.render().c_str());
    return 0;
  }

  if (algorithm == "alg4") {
    runner::AsyncTrialConfig trial;
    trial.trials = trials;
    trial.seed = seed;
    trial.threads = threads;
    trial.engine.frame_length = flags.get_double("frame-length", 3.0);
    trial.engine.max_real_time = 1e8;
    trial.engine.loss_probability = loss;
    const double drift = flags.get_double("drift", 1.0 / 7.0);
    if (drift > 0.0) {
      trial.engine.clock_builder = [drift](net::NodeId,
                                           std::uint64_t clock_seed) {
        return std::make_unique<sim::PiecewiseDriftClock>(
            sim::PiecewiseDriftClock::Config{.max_drift = drift,
                                             .min_segment = 15.0,
                                             .max_segment = 60.0},
            clock_seed);
      };
    }
    auto factory = core::make_algorithm4(delta_est);
    if (terminate_after > 0) {
      factory = core::with_termination(std::move(factory), terminate_after);
    }
    const auto stats = runner::run_async_trials(network, factory, trial);
    const auto frames = stats.max_full_frames.summarize();
    table.row().cell("trials").cell(stats.trials);
    table.row().cell("completed").cell(stats.completed);
    table.row().cell("success rate").cell(stats.success_rate(), 3);
    table.row().cell("mean full frames").cell(frames.mean, 1);
    table.row().cell("p95 full frames").cell(frames.p95, 1);
    table.row().cell("thm9 frame bound")
        .cell(core::theorem9_frame_bound(params), 0);
    report_throughput(stats);
  } else {
    runner::SyncTrialConfig trial;
    trial.trials = trials;
    trial.seed = seed;
    trial.threads = threads;
    trial.engine.max_slots = static_cast<std::uint64_t>(
        flags.get_int("max-slots", 10'000'000));
    trial.engine.loss_probability = loss;

    sim::SyncPolicyFactory factory;
    double bound = 0.0;
    const char* bound_name = "bound";
    if (algorithm == "alg1") {
      factory = core::make_algorithm1(delta_est);
      bound = core::theorem1_slot_bound(params);
      bound_name = "thm1 slot bound";
    } else if (algorithm == "alg2") {
      factory = core::make_algorithm2();
      bound = core::theorem2_slot_bound(params);
      bound_name = "thm2 slot bound";
    } else if (algorithm == "alg2x") {
      factory = core::make_algorithm2(core::EstimateSchedule::kDouble);
      bound = core::theorem2_slot_bound(params);
      bound_name = "thm2 slot bound (d+=1 schedule)";
    } else if (algorithm == "alg3") {
      factory = core::make_algorithm3(delta_est);
      bound = core::theorem3_slot_bound(params);
      bound_name = "thm3 slot bound";
    } else if (algorithm == "baseline") {
      factory = core::make_universal_baseline(network.universe_size(), 0.5);
      bound_name = "(no closed-form bound)";
    } else if (algorithm == "deterministic") {
      factory = core::make_deterministic_baseline(network.universe_size());
      bound = static_cast<double>(network.node_count()) *
              network.universe_size();
      bound_name = "N x |U| sweep (deterministic guarantee)";
    } else if (algorithm == "adaptive") {
      factory = core::make_adaptive();
      bound_name = "(adaptive; no closed-form bound)";
    } else {
      std::fprintf(stderr, "unknown --algorithm=%s\n", algorithm.c_str());
      return 2;
    }
    if (terminate_after > 0) {
      factory = core::with_termination(std::move(factory), terminate_after);
    }
    const auto stats = runner::run_sync_trials(network, factory, trial);
    report_sync(stats, bound, bound_name);
  }

  std::printf("\n%s", table.render().c_str());

  const auto leftovers = flags.unconsumed();
  if (!leftovers.empty()) {
    for (const auto& name : leftovers) {
      std::fprintf(stderr, "warning: unknown flag --%s ignored\n",
                   name.c_str());
    }
  }
  return 0;
}
