// m2hew_cli — run neighbor-discovery experiments from the command line.
//
// Examples:
//   m2hew_cli --topology=clique --n=16 --algorithm=alg3 --trials=30
//   m2hew_cli --topology=unit-disk --n=24 --channels=primary-users
//             --algorithm=alg4 --delta-est=8 --drift=0.14   (one line)
//   m2hew_cli --topology=line --channels=chain --set-size=8 --overlap=2
//             --algorithm=alg1 --epsilon=0.05               (one line)
//
// Run with --help for the full flag list.
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <memory>
#include <string>

#include "core/adaptive.hpp"
#include "core/algorithms.hpp"
#include "core/baseline_deterministic.hpp"
#include "core/bounds.hpp"
#include "core/competitors.hpp"
#include "core/duty_cycle.hpp"
#include "core/multi_radio.hpp"
#include "core/policy_spec.hpp"
#include "core/termination.hpp"
#include "core/transmit_probability.hpp"
#include "core/trust.hpp"
#include "net/serialize.hpp"
#include "net/topology_provider.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "sim/clock.hpp"
#include "sim/encounter.hpp"
#include "sim/fault_plan.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace m2hew;

constexpr const char* kUsage = R"(m2hew_cli — M2HeW neighbor-discovery simulator

Network:
  --topology=<line|ring|grid|star|clique|erdos-renyi|unit-disk|
              watts-strogatz|barabasi-albert>   (default clique)
  --n=<nodes>                 (default 16)
  --channels=<homogeneous|uniform|variable|chain|primary-users>
                              (default uniform)
  --universe=<channels>       (default 10)
  --set-size=<|A(u)|>         (default 4)
  --overlap=<k>               chain overlap (default 2)
  --asymmetric-drop=<p>       drop one arc direction w.p. p (default 0)
  --propagation=<full|random|lowpass>  (default full)
  --prop-keep=<p>             random-mask keep probability (default 0.7)

Algorithm:
  --algorithm=<alg1|alg2|alg2x|alg3|alg4|baseline|deterministic|adaptive|
               mcdis|rendezvous|consistent-hop>   (default alg3)
  --policy=<same values>      alias for --algorithm (competitor-tournament
                              spelling; --algorithm wins when both given)
  --delta-est=<bound>         degree bound for alg1/alg3/alg4 (default 8)
  --terminate-after=<slots>   optional silence-based termination
  --radios=<R>                multi-radio alg3 (R transceivers per node)

Network I/O:
  --save-network=<path>       write the generated network and exit
  --load-network=<path>       run on a previously saved network (overrides
                              all network flags)

Execution:
  --kernel=<engine|soa>       sync inner loop: classic slot engine or the
                              structure-of-arrays kernel (default engine;
                              soa supports alg1/alg2/alg2x/alg3, identical
                              results, built for large N)
  --trials=<count>            (default 30)
  --threads=<workers>         trial fan-out; 0 = all cores, 1 = serial
                              (default 0; results identical either way)
  --seed=<seed>               (default 1)
  --epsilon=<eps>             for bound reporting (default 0.1)
  --max-slots=<budget>        sync slot budget (default 10000000)
  --loss=<p>                  per-reception loss probability (default 0)
  --drift=<delta>             alg4 max clock drift (default 1/7)
  --frame-length=<L>          alg4 frame length (default 3)

Mobility (random waypoint over the unit-disk square; slotted only):
  --mobility=<off|rwp>        epoch-based link dynamics (default off;
                              requires --topology=unit-disk and a
                              position-independent channel kind)
  --mobility-epochs=<E>       epochs in the topology schedule (default 8)
  --mobility-epoch-slots=<S>  slots per epoch (default 500)
  --mobility-speed-min=<v>    min node speed, units/epoch (default 0)
  --mobility-speed-max=<v>    max node speed, units/epoch (default 0.05)
  --mobility-pause=<E>        max pause epochs at a waypoint (default 0)
  --duty-on=<k>               policy active k slots out of every
  --duty-period=<p>           p slots (default 1/1 = always on; k < p
                              requires --mobility=rwp and --kernel=engine)

Fault injection (sim::FaultPlan; all off by default):
  --churn-prob=<p>            per-node crash probability
  --churn-from=<t>            earliest crash time   (default 200)
  --churn-until=<t>           latest crash time     (default 2000)
  --churn-down-min=<t>        min downtime          (default 100)
  --churn-down-max=<t>        max downtime          (default 1000)
  --churn-reset=<0|1>         reset policy state on recovery (default 1)
  --burst-loss=<p>            Gilbert-Elliott bad-state loss (enables the
                              bursty model; mutually exclusive with --loss)
  --burst-p-gb=<p>            good->bad transition prob (default 0.01)
  --burst-p-bg=<p>            bad->good transition prob (default 0.1)
  --burst-loss-good=<p>       good-state loss prob (default 0)
  --drift-wander=<delta>      alg4 drift re-drawn per segment within delta
                              (replaces --drift's fixed-rate clock)

Adversarial nodes (seed-derived roles; all off by default):
  --adversary-fraction=<p>    fraction of nodes turned adversarial
  --adversary-attack=<jam|byzantine|non-responder|mix>   (default mix)
  --adversary-byzantine-tx=<p>  Byzantine per-slot transmit prob
                              (default 0.45)
  --adversary-victim-fraction=<p>  fraction of a non-responder's
                              neighbors it stays silent toward (default 0.5)

Trust-scored neighbor maintenance (requires --kernel=engine):
  --trust=<0|1>               wrap the policy with the trust table
  --trust-threshold=<s>       block below this score     (default 0.3)
  --trust-reward=<r>          score per clean admission  (default 0.02)
  --trust-rate-penalty=<r>    score cost of an anomaly   (default 0.35)
  --trust-decay=<d>           per-slot pull toward 1     (default 0.999)
  --trust-rate-window=<k>     rate window, slots         (default 128)
  --trust-max-per-window=<k>  anomaly threshold          (default 6)
  --trust-block-slots=<k>     blocklist lifetime         (default 2048)
  --trust-entry-window=<k>    last-seen expiry, slots    (default 16384)
)";

/// One-line flag-validation diagnostic; exits 2 (usage error) on failure so
/// bad knobs fail fast instead of tripping a CHECK deep in the engine.
void require_flag(bool ok, const char* message) {
  if (ok) return;
  std::fprintf(stderr, "m2hew_cli: %s\n", message);
  std::exit(2);
}

/// Builds the engine fault plan from the --churn-*/--burst-* flags. Shared
/// by the slotted and async paths; Time is uint64_t slots or real seconds.
template <typename Time>
void apply_fault_flags(const util::Flags& flags,
                       sim::FaultPlan<Time>& faults) {
  const double churn_prob = flags.get_double("churn-prob", 0.0);
  require_flag(churn_prob >= 0.0 && churn_prob <= 1.0,
               "--churn-prob must be in [0, 1]");
  if (churn_prob > 0.0) {
    const double from = flags.get_double("churn-from", 200.0);
    const double until = flags.get_double("churn-until", 2000.0);
    const double down_min = flags.get_double("churn-down-min", 100.0);
    const double down_max = flags.get_double("churn-down-max", 1000.0);
    require_flag(from >= 0.0 && until >= from,
                 "--churn-from/--churn-until must satisfy 0 <= from <= "
                 "until");
    require_flag(down_min >= 0.0 && down_max >= down_min,
                 "--churn-down-min/--churn-down-max must satisfy 0 <= min "
                 "<= max");
    faults.churn.crash_probability = churn_prob;
    faults.churn.earliest_crash = static_cast<Time>(from);
    faults.churn.latest_crash = static_cast<Time>(until);
    faults.churn.min_down = static_cast<Time>(down_min);
    faults.churn.max_down = static_cast<Time>(down_max);
    faults.churn.reset_policy_on_recovery =
        flags.get_int("churn-reset", 1) != 0;
  }
  const double burst_bad = flags.get_double("burst-loss", 0.0);
  require_flag(burst_bad >= 0.0 && burst_bad <= 1.0,
               "--burst-loss must be in [0, 1]");
  if (burst_bad > 0.0) {
    const double p_gb = flags.get_double("burst-p-gb", 0.01);
    const double p_bg = flags.get_double("burst-p-bg", 0.1);
    const double loss_good = flags.get_double("burst-loss-good", 0.0);
    require_flag(p_gb >= 0.0 && p_gb <= 1.0 && p_bg >= 0.0 && p_bg <= 1.0,
                 "--burst-p-gb/--burst-p-bg must be in [0, 1]");
    require_flag(loss_good >= 0.0 && loss_good <= 1.0,
                 "--burst-loss-good must be in [0, 1]");
    faults.burst_loss.enabled = true;
    faults.burst_loss.loss_bad = burst_bad;
    faults.burst_loss.p_good_to_bad = p_gb;
    faults.burst_loss.p_bad_to_good = p_bg;
    faults.burst_loss.loss_good = loss_good;
  }
  const double adv_fraction = flags.get_double("adversary-fraction", 0.0);
  require_flag(adv_fraction >= 0.0 && adv_fraction <= 1.0,
               "--adversary-fraction must be in [0, 1]");
  if (adv_fraction > 0.0) {
    faults.adversary.fraction = adv_fraction;
    const std::string attack = flags.get_string("adversary-attack", "mix");
    if (attack == "jam") {
      faults.adversary.attack = sim::AdversaryAttack::kJam;
    } else if (attack == "byzantine") {
      faults.adversary.attack = sim::AdversaryAttack::kByzantine;
    } else if (attack == "non-responder") {
      faults.adversary.attack = sim::AdversaryAttack::kNonResponder;
    } else if (attack == "mix") {
      faults.adversary.attack = sim::AdversaryAttack::kMix;
    } else {
      require_flag(false,
                   "--adversary-attack must be jam, byzantine, "
                   "non-responder or mix");
    }
    const double byz_tx = flags.get_double("adversary-byzantine-tx", 0.45);
    require_flag(byz_tx > 0.0 && byz_tx <= 1.0,
                 "--adversary-byzantine-tx must be in (0, 1]");
    const double victim =
        flags.get_double("adversary-victim-fraction", 0.5);
    require_flag(victim >= 0.0 && victim <= 1.0,
                 "--adversary-victim-fraction must be in [0, 1]");
    faults.adversary.byzantine_tx = byz_tx;
    faults.adversary.victim_fraction = victim;
  }
}

/// Reads the --trust-* flags into a TrustConfig, range-checking every knob
/// (exit 2). All flags are consumed even when --trust is off, so they
/// never surface as typo warnings.
[[nodiscard]] core::TrustConfig trust_from_flags(const util::Flags& flags) {
  core::TrustConfig trust;
  trust.enabled = flags.get_bool("trust", false);
  trust.threshold = flags.get_double("trust-threshold", trust.threshold);
  trust.reward = flags.get_double("trust-reward", trust.reward);
  trust.rate_penalty =
      flags.get_double("trust-rate-penalty", trust.rate_penalty);
  trust.decay = flags.get_double("trust-decay", trust.decay);
  trust.rate_window = static_cast<std::uint64_t>(flags.get_int(
      "trust-rate-window", static_cast<std::int64_t>(trust.rate_window)));
  trust.max_per_window = static_cast<std::uint64_t>(
      flags.get_int("trust-max-per-window",
                    static_cast<std::int64_t>(trust.max_per_window)));
  trust.block_slots = static_cast<std::uint64_t>(flags.get_int(
      "trust-block-slots", static_cast<std::int64_t>(trust.block_slots)));
  trust.entry_window = static_cast<std::uint64_t>(flags.get_int(
      "trust-entry-window", static_cast<std::int64_t>(trust.entry_window)));
  require_flag(trust.threshold >= 0.0 && trust.threshold < 1.0,
               "--trust-threshold must be in [0, 1)");
  require_flag(trust.reward >= 0.0, "--trust-reward must be >= 0");
  require_flag(trust.rate_penalty > 0.0,
               "--trust-rate-penalty must be > 0");
  require_flag(trust.decay > 0.0 && trust.decay <= 1.0,
               "--trust-decay must be in (0, 1]");
  require_flag(trust.rate_window >= 1 && trust.max_per_window >= 1 &&
                   trust.block_slots >= 1 && trust.entry_window >= 1,
               "--trust-rate-window/--trust-max-per-window/"
               "--trust-block-slots/--trust-entry-window must be >= 1");
  return trust;
}

[[nodiscard]] runner::ScenarioConfig scenario_from_flags(
    const util::Flags& flags) {
  runner::ScenarioConfig config;
  const std::string topology = flags.get_string("topology", "clique");
  if (topology == "line") {
    config.topology = runner::TopologyKind::kLine;
  } else if (topology == "ring") {
    config.topology = runner::TopologyKind::kRing;
  } else if (topology == "grid") {
    config.topology = runner::TopologyKind::kGrid;
    config.grid_rows = 2;
  } else if (topology == "star") {
    config.topology = runner::TopologyKind::kStar;
  } else if (topology == "clique") {
    config.topology = runner::TopologyKind::kClique;
  } else if (topology == "erdos-renyi") {
    config.topology = runner::TopologyKind::kErdosRenyi;
  } else if (topology == "unit-disk") {
    config.topology = runner::TopologyKind::kUnitDisk;
    config.ud_radius = 0.4;
  } else if (topology == "watts-strogatz") {
    config.topology = runner::TopologyKind::kWattsStrogatz;
  } else if (topology == "barabasi-albert") {
    config.topology = runner::TopologyKind::kBarabasiAlbert;
  } else {
    std::fprintf(stderr, "unknown --topology=%s\n", topology.c_str());
    std::exit(2);
  }

  config.n = static_cast<net::NodeId>(flags.get_int("n", 16));
  config.universe =
      static_cast<net::ChannelId>(flags.get_int("universe", 10));
  config.set_size =
      static_cast<net::ChannelId>(flags.get_int("set-size", 4));
  config.chain_overlap =
      static_cast<net::ChannelId>(flags.get_int("overlap", 2));

  const std::string channels = flags.get_string("channels", "uniform");
  if (channels == "homogeneous") {
    config.channels = runner::ChannelKind::kHomogeneous;
  } else if (channels == "uniform") {
    config.channels = runner::ChannelKind::kUniformRandom;
  } else if (channels == "variable") {
    config.channels = runner::ChannelKind::kVariableRandom;
    config.min_size = 2;
    config.max_size = config.set_size;
  } else if (channels == "chain") {
    config.channels = runner::ChannelKind::kChainOverlap;
    config.topology = runner::TopologyKind::kLine;
  } else if (channels == "primary-users") {
    config.channels = runner::ChannelKind::kPrimaryUsers;
    config.topology = runner::TopologyKind::kUnitDisk;
    config.ud_radius = 0.4;
  } else {
    std::fprintf(stderr, "unknown --channels=%s\n", channels.c_str());
    std::exit(2);
  }

  config.asymmetric_drop = flags.get_double("asymmetric-drop", 0.0);
  const std::string propagation = flags.get_string("propagation", "full");
  if (propagation == "full") {
    config.propagation = runner::PropagationKind::kFull;
  } else if (propagation == "random") {
    config.propagation = runner::PropagationKind::kRandomMask;
  } else if (propagation == "lowpass") {
    config.propagation = runner::PropagationKind::kLowpass;
  } else {
    std::fprintf(stderr, "unknown --propagation=%s\n", propagation.c_str());
    std::exit(2);
  }
  config.prop_keep = flags.get_double("prop-keep", 0.7);
  return config;
}

/// Reads the --mobility-*/--duty-* flags into a MobilitySpec, range-checking
/// every knob (exit 2) so a bad value never reaches a CHECK in the builder.
[[nodiscard]] runner::MobilitySpec mobility_from_flags(
    const util::Flags& flags) {
  runner::MobilitySpec mobility;
  const std::string mode = flags.get_string("mobility", "off");
  require_flag(mode == "off" || mode == "rwp",
               "--mobility must be off or rwp");
  mobility.enabled = mode == "rwp";
  require_flag(flags.get_int("mobility-epochs", 8) >= 1,
               "--mobility-epochs must be >= 1");
  require_flag(flags.get_int("mobility-epoch-slots", 500) >= 1,
               "--mobility-epoch-slots must be >= 1");
  require_flag(flags.get_int("mobility-pause", 0) >= 0,
               "--mobility-pause must be >= 0");
  require_flag(flags.get_int("duty-on", 1) >= 1, "--duty-on must be >= 1");
  require_flag(flags.get_int("duty-period", 1) >= 1,
               "--duty-period must be >= 1");
  mobility.epochs =
      static_cast<std::size_t>(flags.get_int("mobility-epochs", 8));
  mobility.epoch_slots =
      static_cast<std::uint64_t>(flags.get_int("mobility-epoch-slots", 500));
  mobility.speed_min = flags.get_double("mobility-speed-min", 0.0);
  mobility.speed_max = flags.get_double("mobility-speed-max", 0.05);
  mobility.pause_epochs =
      static_cast<std::uint64_t>(flags.get_int("mobility-pause", 0));
  mobility.duty_on = static_cast<std::uint64_t>(flags.get_int("duty-on", 1));
  mobility.duty_period =
      static_cast<std::uint64_t>(flags.get_int("duty-period", 1));
  require_flag(mobility.speed_min >= 0.0 &&
                   mobility.speed_max >= mobility.speed_min,
               "--mobility-speed-min/--mobility-speed-max must satisfy "
               "0 <= min <= max");
  require_flag(mobility.duty_on <= mobility.duty_period,
               "--duty-on/--duty-period must satisfy on <= period");
  // Duty cycling's kernel/mobility prerequisites are validated in main(),
  // where the --kernel flag is in scope, so one message can name every
  // flag involved.
  return mobility;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  // A malformed value (--duty-on=abc) is a usage error like any other
  // flag-validation failure: one-line diagnostic, exit 2 — never a CHECK
  // abort.
  flags.on_parse_error([](const std::string& message) {
    std::fprintf(stderr, "m2hew_cli: %s\n", message.c_str());
    std::exit(2);
  });
  if (flags.has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  // Range-check every numeric knob up front (exit 2 with a one-line
  // diagnostic) so a typo'd flag cannot reach a CHECK deep in the engine.
  require_flag(flags.get_int("n", 16) >= 1, "--n must be >= 1");
  require_flag(flags.get_int("universe", 10) >= 1,
               "--universe must be >= 1");
  require_flag(flags.get_int("set-size", 4) >= 1,
               "--set-size must be >= 1");
  require_flag(flags.get_int("trials", 30) >= 1, "--trials must be >= 1");
  require_flag(flags.get_int("threads", 0) >= 0,
               "--threads must be >= 0 (0 = all cores)");
  require_flag(flags.get_int("seed", 1) >= 0, "--seed must be >= 0");
  require_flag(flags.get_int("delta-est", 8) >= 1,
               "--delta-est must be >= 1");
  require_flag(flags.get_int("max-slots", 10'000'000) >= 1,
               "--max-slots must be >= 1");
  require_flag(flags.get_int("radios", 1) >= 1, "--radios must be >= 1");
  require_flag(flags.get_int("terminate-after", 0) >= 0,
               "--terminate-after must be >= 0");
  {
    const double loss_p = flags.get_double("loss", 0.0);
    require_flag(loss_p >= 0.0 && loss_p <= 1.0,
                 "--loss must be in [0, 1]");
    const double eps = flags.get_double("epsilon", 0.1);
    require_flag(eps > 0.0 && eps < 1.0, "--epsilon must be in (0, 1)");
    const double drift = flags.get_double("drift", 1.0 / 7.0);
    require_flag(drift >= 0.0 && drift < 1.0,
                 "--drift must be in [0, 1)");
    const double wander = flags.get_double("drift-wander", 0.0);
    require_flag(wander >= 0.0 && wander < 1.0,
                 "--drift-wander must be in [0, 1)");
    require_flag(flags.get_double("frame-length", 3.0) > 0.0,
                 "--frame-length must be > 0");
    const double drop = flags.get_double("asymmetric-drop", 0.0);
    require_flag(drop >= 0.0 && drop <= 1.0,
                 "--asymmetric-drop must be in [0, 1]");
    const double keep = flags.get_double("prop-keep", 0.7);
    require_flag(keep >= 0.0 && keep <= 1.0,
                 "--prop-keep must be in [0, 1]");
    require_flag(!(loss_p > 0.0 && flags.get_double("burst-loss", 0.0) > 0.0),
                 "--loss and --burst-loss are mutually exclusive (i.i.d. vs "
                 "Gilbert-Elliott loss)");
  }

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto delta_est =
      static_cast<std::size_t>(flags.get_int("delta-est", 8));
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 30));
  const std::size_t threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));
  const double epsilon = flags.get_double("epsilon", 0.1);
  const double loss = flags.get_double("loss", 0.0);
  // --policy= is an alias for --algorithm= (the tournament bench and the
  // related-work docs spell it "policy"); --algorithm wins when both are
  // given. Both flags are always consumed so neither shows up as a typo.
  const std::string algorithm_flag = flags.get_string("algorithm", "");
  const std::string policy_flag = flags.get_string("policy", "");
  const std::string algorithm =
      !algorithm_flag.empty() ? algorithm_flag
                              : (!policy_flag.empty() ? policy_flag
                                                      : std::string("alg3"));
  const auto terminate_after =
      static_cast<std::uint64_t>(flags.get_int("terminate-after", 0));
  const std::string kernel = flags.get_string("kernel", "engine");
  require_flag(kernel == "engine" || kernel == "soa",
               "--kernel must be engine or soa");
  const runner::MobilitySpec mobility = mobility_from_flags(flags);
  // SoA check first, so --kernel=soa with a duty cycle gets the message
  // naming every flag involved whether or not --mobility was given.
  require_flag(!(kernel == "soa" && mobility.duty_on != mobility.duty_period),
               "--duty-on < --duty-period requires --kernel=engine (duty "
               "cycling wraps policy objects, not SoA policy tables)");
  require_flag(mobility.enabled || mobility.duty_on == mobility.duty_period,
               "--duty-on < --duty-period requires --mobility=rwp");
  const core::TrustConfig trust = trust_from_flags(flags);
  require_flag(!trust.enabled || kernel == "engine",
               "--trust requires --kernel=engine (trust wraps policy "
               "objects, not SoA policy tables)");
  require_flag(!trust.enabled || algorithm != "alg4",
               "--trust is slotted-only (alg4 runs on real time)");
  require_flag(!trust.enabled || flags.get_int("radios", 1) == 1,
               "--trust supports single-radio runs only");

  std::string scenario_text;
  std::optional<net::Network> owned_network;
  std::unique_ptr<net::EpochTopologyProvider> provider;
  if (mobility.enabled) {
    // Mobile runs own their network through the epoch provider: engines
    // run on the union network and swap per-epoch adjacency internally.
    require_flag(flags.get_string("load-network").empty(),
                 "--mobility=rwp cannot run on a loaded network "
                 "(trajectories need the unit-disk scenario)");
    require_flag(flags.get_string("save-network").empty(),
                 "--mobility=rwp has no single link set to --save-network");
    require_flag(algorithm != "alg4",
                 "--mobility=rwp is slotted-only (alg4 runs on real time)");
    require_flag(flags.get_int("radios", 1) == 1,
                 "--mobility=rwp supports single-radio runs only");
    const runner::ScenarioConfig scenario = scenario_from_flags(flags);
    require_flag(scenario.topology == runner::TopologyKind::kUnitDisk,
                 "--mobility=rwp requires --topology=unit-disk");
    require_flag(
        scenario.channels == runner::ChannelKind::kHomogeneous ||
            scenario.channels == runner::ChannelKind::kUniformRandom ||
            scenario.channels == runner::ChannelKind::kVariableRandom,
        "--mobility=rwp requires --channels=homogeneous|uniform|variable");
    provider = runner::build_mobility_provider(scenario, mobility, seed);
    sim::SlotEngineCommon engine_knobs;
    engine_knobs.loss_probability = loss;
    apply_fault_flags(flags, engine_knobs.faults);
    scenario_text =
        runner::describe(scenario, engine_knobs,
                         kernel == "soa" ? runner::SyncKernel::kSoa
                                         : runner::SyncKernel::kEngine) +
        runner::describe_mobility(mobility);
  } else {
    owned_network.emplace([&]() -> net::Network {
      const std::string load_path = flags.get_string("load-network");
      if (!load_path.empty()) {
        // Consume (and ignore) the network-shape flags so they do not show
        // up as typos when a file overrides them.
        (void)scenario_from_flags(flags);
        scenario_text = "loaded from " + load_path;
        try {
          return net::load_network_file(load_path);
        } catch (const std::runtime_error& e) {
          std::fprintf(stderr, "m2hew_cli: %s: %s\n", load_path.c_str(),
                       e.what());
          std::exit(2);
        }
      }
      const runner::ScenarioConfig scenario = scenario_from_flags(flags);
      sim::SlotEngineCommon engine_knobs;
      engine_knobs.loss_probability = loss;
      apply_fault_flags(flags, engine_knobs.faults);
      scenario_text = runner::describe(scenario, engine_knobs,
                                       kernel == "soa"
                                           ? runner::SyncKernel::kSoa
                                           : runner::SyncKernel::kEngine);
      return runner::build_scenario(scenario, seed);
    }());
  }
  const net::Network& network =
      provider != nullptr ? provider->union_network() : *owned_network;

  const std::string save_path = flags.get_string("save-network");
  if (!save_path.empty()) {
    net::save_network_file(save_path, network);
    std::printf("network written to %s\n", save_path.c_str());
    return 0;
  }

  core::BoundParams params;
  params.n = network.node_count();
  params.s = network.max_channel_set_size();
  params.delta = std::max<std::size_t>(1, network.max_channel_degree());
  params.delta_est = delta_est;
  params.rho = network.min_span_ratio();
  params.epsilon = epsilon;

  std::printf("scenario: %s\n", scenario_text.c_str());
  std::printf("policy:   %s\n",
              runner::describe_policy(algorithm, delta_est).c_str());
  std::printf("network:  N=%u S=%zu Delta=%zu rho=%.4f links=%zu arcs=%zu\n",
              network.node_count(), params.s, params.delta, params.rho,
              network.links().size(), network.topology().arc_count());

  util::Table table({"metric", "value"});
  auto report_throughput = [&](const auto& stats) {
    table.row().cell("threads").cell(stats.threads_used);
    table.row().cell("wall time (s)").cell(stats.elapsed_seconds, 3);
    table.row().cell("trials/sec").cell(stats.trials_per_second(), 1);
  };
  auto report_sync = [&](const runner::SyncTrialStats& stats, double bound,
                         const char* bound_name) {
    const auto summary = stats.completion_slots.summarize();
    table.row().cell("trials").cell(stats.trials);
    table.row().cell("completed").cell(stats.completed);
    table.row().cell("success rate").cell(stats.success_rate(), 3);
    table.row().cell("mean slots").cell(summary.mean, 1);
    table.row().cell("p50 slots").cell(summary.p50, 1);
    table.row().cell("p95 slots").cell(summary.p95, 1);
    table.row().cell("max slots").cell(summary.max, 1);
    table.row().cell(bound_name).cell(bound, 0);
    report_throughput(stats);
  };

  const auto radios = static_cast<unsigned>(flags.get_int("radios", 1));
  if (radios > 1) {
    // Multi-radio Algorithm 3 (extension; cf. related work [19]), through
    // the same trial runner as the single-radio engines — so it shares
    // the loss model, the worker pool and the bench run log.
    runner::MultiRadioTrialConfig trial;
    trial.trials = trials;
    trial.seed = seed;
    trial.threads = threads;
    trial.engine.max_slots = static_cast<std::uint64_t>(
        flags.get_int("max-slots", 10'000'000));
    trial.engine.loss_probability = loss;
    apply_fault_flags(flags, trial.engine.faults);
    const auto stats = runner::run_multi_radio_trials(
        network, core::make_multi_radio_alg3(radios, delta_est), trial);
    const auto summary = stats.completion_slots.summarize();
    table.row().cell("radios").cell(static_cast<std::size_t>(radios));
    table.row().cell("trials").cell(stats.trials);
    table.row().cell("completed").cell(stats.completed);
    table.row().cell("success rate").cell(stats.success_rate(), 3);
    table.row().cell("mean slots").cell(summary.mean, 1);
    table.row().cell("max slots").cell(summary.max, 1);
    report_throughput(stats);
    std::printf("\n%s", table.render().c_str());
    runner::print_robustness(stats.robustness);
    return 0;
  }

  runner::RobustnessStats robustness;
  runner::EncounterStats encounter_stats;
  if (algorithm == "alg4") {
    runner::AsyncTrialConfig trial;
    trial.trials = trials;
    trial.seed = seed;
    trial.threads = threads;
    trial.engine.frame_length = flags.get_double("frame-length", 3.0);
    trial.engine.max_real_time = 1e8;
    trial.engine.loss_probability = loss;
    apply_fault_flags(flags, trial.engine.faults);
    const double wander = flags.get_double("drift-wander", 0.0);
    if (wander > 0.0) {
      trial.engine.faults.drift_wander.enabled = true;
      trial.engine.faults.drift_wander.max_drift = wander;
    }
    const double drift = flags.get_double("drift", 1.0 / 7.0);
    if (drift > 0.0) {
      trial.engine.clock_builder = [drift](net::NodeId,
                                           std::uint64_t clock_seed) {
        return std::make_unique<sim::PiecewiseDriftClock>(
            sim::PiecewiseDriftClock::Config{.max_drift = drift,
                                             .min_segment = 15.0,
                                             .max_segment = 60.0},
            clock_seed);
      };
    }
    auto factory = core::make_algorithm4(delta_est);
    if (terminate_after > 0) {
      factory = core::with_termination(std::move(factory), terminate_after);
    }
    const auto stats = runner::run_async_trials(network, factory, trial);
    const auto frames = stats.max_full_frames.summarize();
    table.row().cell("trials").cell(stats.trials);
    table.row().cell("completed").cell(stats.completed);
    table.row().cell("success rate").cell(stats.success_rate(), 3);
    table.row().cell("mean full frames").cell(frames.mean, 1);
    table.row().cell("p95 full frames").cell(frames.p95, 1);
    table.row().cell("thm9 frame bound")
        .cell(core::theorem9_frame_bound(params), 0);
    report_throughput(stats);
    robustness = stats.robustness;
  } else {
    runner::SyncTrialConfig trial;
    trial.trials = trials;
    trial.seed = seed;
    trial.threads = threads;
    trial.engine.max_slots = static_cast<std::uint64_t>(
        flags.get_int("max-slots", 10'000'000));
    trial.engine.loss_probability = loss;
    apply_fault_flags(flags, trial.engine.faults);

    // Mobile run: point the engines at the epoch schedule and track
    // per-contact detection through the reception hook.
    std::optional<sim::EncounterIndex> encounter_index;
    if (provider != nullptr) {
      trial.engine.topology = provider.get();
      trial.engine.epoch_length = mobility.epoch_slots;
      encounter_index.emplace(*provider, mobility.epoch_slots,
                              trial.engine.max_slots);
      trial.encounters = &*encounter_index;
    }

    if (kernel == "soa") {
      // The SoA kernel consumes a policy-as-data table, so it covers
      // exactly the spec-representable algorithms.
      core::SyncPolicySpec spec;
      double bound = 0.0;
      const char* bound_name = "bound";
      if (algorithm == "alg1") {
        spec = core::SyncPolicySpec::algorithm1(delta_est);
        bound = core::theorem1_slot_bound(params);
        bound_name = "thm1 slot bound";
      } else if (algorithm == "alg2") {
        spec = core::SyncPolicySpec::algorithm2();
        bound = core::theorem2_slot_bound(params);
        bound_name = "thm2 slot bound";
      } else if (algorithm == "alg2x") {
        spec = core::SyncPolicySpec::algorithm2(core::EstimateSchedule::kDouble);
        bound = core::theorem2_slot_bound(params);
        bound_name = "thm2 slot bound (d+=1 schedule)";
      } else if (algorithm == "alg3") {
        spec = core::SyncPolicySpec::algorithm3(delta_est);
        bound = core::theorem3_slot_bound(params);
        bound_name = "thm3 slot bound";
      } else if (algorithm == "consistent-hop") {
        spec = core::SyncPolicySpec::consistent_hop();
        bound_name = "(competitor hop; no closed-form bound)";
      } else {
        std::fprintf(stderr,
                     "--kernel=soa supports only "
                     "alg1/alg2/alg2x/alg3/consistent-hop "
                     "(got --algorithm=%s)\n",
                     algorithm.c_str());
        return 2;
      }
      require_flag(terminate_after == 0,
                   "--terminate-after requires --kernel=engine");
      trial.kernel = runner::SyncKernel::kSoa;
      const auto stats = runner::run_sync_trials(network, spec, trial);
      report_sync(stats, bound, bound_name);
      std::printf("\n%s", table.render().c_str());
      runner::print_robustness(stats.robustness);
      if (stats.encounters.enabled()) {
        runner::print_encounters(stats.encounters);
      }
      return 0;
    }

    sim::SyncPolicyFactory factory;
    double bound = 0.0;
    const char* bound_name = "bound";
    if (algorithm == "alg1") {
      factory = core::make_algorithm1(delta_est);
      bound = core::theorem1_slot_bound(params);
      bound_name = "thm1 slot bound";
    } else if (algorithm == "alg2") {
      factory = core::make_algorithm2();
      bound = core::theorem2_slot_bound(params);
      bound_name = "thm2 slot bound";
    } else if (algorithm == "alg2x") {
      factory = core::make_algorithm2(core::EstimateSchedule::kDouble);
      bound = core::theorem2_slot_bound(params);
      bound_name = "thm2 slot bound (d+=1 schedule)";
    } else if (algorithm == "alg3") {
      factory = core::make_algorithm3(delta_est);
      bound = core::theorem3_slot_bound(params);
      bound_name = "thm3 slot bound";
    } else if (algorithm == "baseline") {
      factory = core::make_universal_baseline(network.universe_size(), 0.5);
      bound_name = "(no closed-form bound)";
    } else if (algorithm == "deterministic") {
      factory = core::make_deterministic_baseline(network.universe_size());
      bound = static_cast<double>(network.node_count()) *
              network.universe_size();
      bound_name = "N x |U| sweep (deterministic guarantee)";
    } else if (algorithm == "adaptive") {
      factory = core::make_adaptive();
      bound_name = "(adaptive; no closed-form bound)";
    } else if (algorithm == "mcdis") {
      factory = core::make_mcdis();
      bound_name = "(competitor Mc-Dis; no closed-form bound)";
    } else if (algorithm == "rendezvous") {
      factory = core::make_blind_rendezvous();
      bound_name = "(competitor jump-stay; no closed-form bound)";
    } else if (algorithm == "consistent-hop") {
      factory = core::make_consistent_hop();
      bound_name = "(competitor hop; no closed-form bound)";
    } else {
      std::fprintf(stderr, "unknown --algorithm=%s\n", algorithm.c_str());
      return 2;
    }
    if (terminate_after > 0) {
      factory = core::with_termination(std::move(factory), terminate_after);
    }
    if (mobility.enabled) {
      factory = core::with_duty_cycle(std::move(factory), mobility.duty_on,
                                      mobility.duty_period);
    }
    // Identity when --trust is off, so untrusted runs are untouched.
    factory = core::with_trust(std::move(factory), trust);
    const auto stats = runner::run_sync_trials(network, factory, trial);
    report_sync(stats, bound, bound_name);
    robustness = stats.robustness;
    encounter_stats = stats.encounters;
  }

  std::printf("\n%s", table.render().c_str());
  runner::print_robustness(robustness);
  if (encounter_stats.enabled()) runner::print_encounters(encounter_stats);

  const auto leftovers = flags.unconsumed();
  if (!leftovers.empty()) {
    for (const auto& name : leftovers) {
      std::fprintf(stderr, "warning: unknown flag --%s ignored\n",
                   name.c_str());
    }
  }
  return 0;
}
