// m2hew_sweep — client for the m2hew_sweepd spool: submit a sweep spec,
// wait for its status document, and report the artifact location.
//
//   $ m2hew_sweep sweep.ini --dir=sweepd
//   submitted job 'sweep' (spec rho_sweep)
//   done: cache miss, artifact sweepd/cache/a1b2....json
//
//   $ m2hew_sweep --shutdown --dir=sweepd      # ask the daemon to exit
//
// Flags:
//   --dir=PATH      daemon spool directory (default "sweepd")
//   --job=NAME      job name (default: spec file stem)
//   --timeout-s=N   how long to wait for completion (default 600)
//   --no-wait       submit and exit without polling
//   --shutdown      create the shutdown sentinel instead of submitting
//
// Exit status: 0 = job done (or submitted with --no-wait / sentinel
// created), 1 = job failed, 2 = usage or I/O error, 3 = timeout.
#include <cstdio>
#include <fstream>
#include <poll.h>
#include <sstream>
#include <string>
#include <string_view>

#include "util/flags.hpp"

namespace {

using namespace m2hew;

/// Minimal status-field reader: finds "name": "value" in the daemon's own
/// status JSON (fields the daemon writes are always escaped strings).
[[nodiscard]] std::string json_field(const std::string& doc,
                                     std::string_view name) {
  const std::string needle = "\"" + std::string(name) + "\": \"";
  const auto at = doc.find(needle);
  if (at == std::string::npos) return "";
  const auto begin = at + needle.size();
  const auto end = doc.find('"', begin);
  if (end == std::string::npos) return "";
  return doc.substr(begin, end - begin);
}

[[nodiscard]] std::string read_file(const std::string& path, bool* ok) {
  std::ifstream in(path);
  *ok = static_cast<bool>(in);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

[[nodiscard]] std::string job_stem(std::string_view path) {
  const auto slash = path.find_last_of('/');
  std::string_view name =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  if (name.size() > 4 && name.substr(name.size() - 4) == ".ini") {
    name = name.substr(0, name.size() - 4);
  }
  return std::string(name);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::string dir = flags.get_string("dir", "sweepd");

  if (flags.get_bool("shutdown", false)) {
    const std::string sentinel = dir + "/shutdown";
    std::ofstream out(sentinel);
    if (!out) {
      std::fprintf(stderr, "cannot create %s\n", sentinel.c_str());
      return 2;
    }
    std::printf("shutdown requested (%s)\n", sentinel.c_str());
    return 0;
  }

  if (flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: m2hew_sweep <spec.ini> [--dir=SPOOL] [--job=NAME] "
                 "[--timeout-s=N] [--no-wait] | --shutdown [--dir=SPOOL]\n");
    return 2;
  }
  const std::string spec_path = flags.positional().front();
  const std::string job =
      flags.get_string("job", job_stem(spec_path).c_str());
  if (job.empty()) {
    std::fprintf(stderr, "empty job name\n");
    return 2;
  }
  const auto timeout_s = flags.get_int("timeout-s", 600);
  const bool wait = !flags.get_bool("no-wait", false);
  for (const std::string& unknown : flags.unconsumed()) {
    std::fprintf(stderr, "m2hew_sweep: unknown flag --%s\n",
                 unknown.c_str());
    return 2;
  }

  bool ok = false;
  const std::string spec_text = read_file(spec_path, &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", spec_path.c_str());
    return 2;
  }

  // Submit atomically: write next to the final name, then rename, so the
  // daemon can never scan a half-written spec.
  const std::string final_path = dir + "/incoming/" + job + ".ini";
  const std::string tmp_path = dir + "/incoming/." + job + ".ini.tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr,
                   "cannot write under %s/incoming — is the daemon's spool "
                   "there?\n",
                   dir.c_str());
      return 2;
    }
    out << spec_text;
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::fprintf(stderr, "cannot rename spec into %s\n", final_path.c_str());
    std::remove(tmp_path.c_str());
    return 2;
  }
  std::printf("submitted job '%s' -> %s\n", job.c_str(), final_path.c_str());
  if (!wait) return 0;

  const std::string status_path = dir + "/status/" + job + ".json";
  const int poll_ms = 100;
  for (long waited_ms = 0; waited_ms <= timeout_s * 1000;
       waited_ms += poll_ms) {
    bool have_status = false;
    const std::string doc = read_file(status_path, &have_status);
    if (have_status) {
      const std::string state = json_field(doc, "state");
      if (state == "done") {
        std::printf("done: cache %s, artifact %s\n",
                    json_field(doc, "cache").c_str(),
                    json_field(doc, "artifact").c_str());
        return 0;
      }
      if (state == "failed") {
        std::fprintf(stderr, "job failed: %s\n",
                     json_field(doc, "error").c_str());
        return 1;
      }
    }
    ::poll(nullptr, 0, poll_ms);
  }
  std::fprintf(stderr, "timed out after %lld s waiting for %s\n",
               static_cast<long long>(timeout_s), status_path.c_str());
  return 3;
}
