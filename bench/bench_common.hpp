// Shared helpers for the experiment bench binaries (DESIGN.md §4).
//
// Each bench binary has two parts:
//   1. google-benchmark timed sections measuring simulator throughput on
//      the experiment's workload (one engine run per iteration), and
//   2. a post-run reproduction section that prints the paper-vs-measured
//      table for the experiment and writes results/<exp>.csv.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/bounds.hpp"
#include "net/network.hpp"
#include "runner/trials.hpp"

namespace m2hew::benchx {

/// Strips --threads=N from argv (call *before* benchmark::Initialize so it
/// is not reported as unrecognized) and installs it as the process-wide
/// default for every trial config in the binary. 0 = all cores (also the
/// default when the flag is absent), 1 = serial. Aggregate results are
/// identical at any value — only wall-clock changes.
inline void strip_threads_flag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      runner::set_default_trial_threads(
          static_cast<std::size_t>(std::strtoull(argv[i] + 10, nullptr, 10)));
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
}

/// One-line throughput report for a SyncTrialStats/AsyncTrialStats, so a
/// bench can show what a specific run sustained.
template <typename Stats>
void report_throughput(const char* label, const Stats& stats) {
  std::printf("[throughput] %-24s %4zu trials in %7.3f s  "
              "(%8.1f trials/s, %zu threads)\n",
              label, stats.trials, stats.elapsed_seconds,
              stats.trials_per_second(), stats.threads_used);
}

/// Cumulative trial-layer throughput for the whole binary; call at the end
/// of main so every bench report closes with its own throughput line.
inline void print_trial_throughput() {
  const runner::TrialThroughput totals = runner::trial_throughput_totals();
  if (totals.trials == 0) return;
  std::printf("\n[throughput] trial layer: %zu trials across %zu runs in "
              "%.3f s (%.1f trials/s, default %zu threads)\n",
              totals.trials, totals.runs, totals.busy_seconds,
              totals.trials_per_second(),
              runner::default_trial_threads());
}

/// Extracts the paper's bound parameters from a built network.
[[nodiscard]] inline core::BoundParams bound_params(
    const net::Network& network, std::size_t delta_est, double epsilon) {
  core::BoundParams p;
  p.n = network.node_count();
  p.s = network.max_channel_set_size();
  p.delta = std::max<std::size_t>(1, network.max_channel_degree());
  p.delta_est = delta_est;
  p.rho = network.min_span_ratio();
  p.epsilon = epsilon;
  return p;
}

/// Ratio formatter for "measured / bound" columns.
[[nodiscard]] inline double ratio(double measured, double bound) {
  return bound == 0.0 ? 0.0 : measured / bound;
}

}  // namespace m2hew::benchx
