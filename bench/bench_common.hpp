// Shared helpers for the experiment bench binaries (DESIGN.md §4).
//
// Each bench binary has two parts:
//   1. google-benchmark timed sections measuring simulator throughput on
//      the experiment's workload (one engine run per iteration), and
//   2. a post-run reproduction section that prints the paper-vs-measured
//      table for the experiment and writes results/<exp>.csv.
#pragma once

#include <algorithm>
#include <cstdio>

#include "core/bounds.hpp"
#include "net/network.hpp"

namespace m2hew::benchx {

/// Extracts the paper's bound parameters from a built network.
[[nodiscard]] inline core::BoundParams bound_params(
    const net::Network& network, std::size_t delta_est, double epsilon) {
  core::BoundParams p;
  p.n = network.node_count();
  p.s = network.max_channel_set_size();
  p.delta = std::max<std::size_t>(1, network.max_channel_degree());
  p.delta_est = delta_est;
  p.rho = network.min_span_ratio();
  p.epsilon = epsilon;
  return p;
}

/// Ratio formatter for "measured / bound" columns.
[[nodiscard]] inline double ratio(double measured, double bound) {
  return bound == 0.0 ? 0.0 : measured / bound;
}

}  // namespace m2hew::benchx
