// Shared helpers for the experiment bench binaries (DESIGN.md §4).
//
// Each bench binary has two parts:
//   1. google-benchmark timed sections measuring simulator throughput on
//      the experiment's workload (one engine run per iteration), and
//   2. a post-run reproduction section that prints the paper-vs-measured
//      table for the experiment and writes results/<exp>.csv.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/bounds.hpp"
#include "net/network.hpp"
#include "runner/report.hpp"
#include "runner/trials.hpp"

namespace m2hew::benchx {

/// A scenario parameter recorded into the bench's JSON artifact. Values
/// are kept as strings; numeric parameters are formatted by the caller.
using BenchParam = std::pair<const char*, std::string>;

/// Strips --threads=N from argv (call *before* benchmark::Initialize so it
/// is not reported as unrecognized) and installs it as the process-wide
/// default for every trial config in the binary. 0 = all cores (also the
/// default when the flag is absent), 1 = serial. Aggregate results are
/// identical at any value — only wall-clock changes.
inline void strip_threads_flag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      runner::set_default_trial_threads(
          static_cast<std::size_t>(std::strtoull(argv[i] + 10, nullptr, 10)));
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
}

/// One-line throughput report for a SyncTrialStats/AsyncTrialStats, so a
/// bench can show what a specific run sustained.
template <typename Stats>
void report_throughput(const char* label, const Stats& stats) {
  std::printf("[throughput] %-24s %4zu trials in %7.3f s  "
              "(%8.1f trials/s, %zu threads)\n",
              label, stats.trials, stats.elapsed_seconds,
              stats.trials_per_second(), stats.threads_used);
}

/// Cumulative trial-layer throughput for the whole binary; call at the end
/// of main so every bench report closes with its own throughput line.
inline void print_trial_throughput() {
  const runner::TrialThroughput totals = runner::trial_throughput_totals();
  if (totals.trials == 0) return;
  std::printf("\n[throughput] trial layer: %zu trials across %zu runs in "
              "%.3f s (%.1f trials/s, default %zu threads)\n",
              totals.trials, totals.runs, totals.busy_seconds,
              totals.trials_per_second(),
              runner::default_trial_threads());
}

/// Extracts the paper's bound parameters from a built network.
[[nodiscard]] inline core::BoundParams bound_params(
    const net::Network& network, std::size_t delta_est, double epsilon) {
  core::BoundParams p;
  p.n = network.node_count();
  p.s = network.max_channel_set_size();
  p.delta = std::max<std::size_t>(1, network.max_channel_degree());
  p.delta_est = delta_est;
  p.rho = network.min_span_ratio();
  p.epsilon = epsilon;
  return p;
}

/// Ratio formatter for "measured / bound" columns.
[[nodiscard]] inline double ratio(double measured, double bound) {
  return bound == 0.0 ? 0.0 : measured / bound;
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] inline std::string json_escape(std::string_view text) {
  return runner::json_escape(text);
}

/// Parameters registered while reproduce() runs — values that only exist
/// after the simulations (energy per discovery, measured quantiles, ...).
/// bench_main's params list is fixed at the call site before anything has
/// run; this registry is the escape hatch for computed results, appended
/// after the static params in the JSON artifact.
inline std::vector<runner::BenchJsonParam>& computed_bench_params() {
  static std::vector<runner::BenchJsonParam> params;
  return params;
}

inline void add_bench_param(std::string name, std::string value) {
  computed_bench_params().emplace_back(std::move(name), std::move(value));
}

/// Writes results/BENCH_<id>.json: the machine-readable artifact for one
/// bench run — scenario parameters (static ones first, then any
/// registered via add_bench_param), per-run completion statistics (from
/// runner::trial_run_log(), in call order), and the binary's cumulative
/// trials/sec. The document itself comes from the shared serializer in
/// runner/report.hpp — the same one the sweep daemon's cached artifacts
/// use — so CI's bench-smoke validator covers both producers.
inline void write_bench_json(const char* bench_id,
                             std::initializer_list<BenchParam> params) {
  std::filesystem::create_directories(runner::results_dir());
  const std::string path =
      runner::results_dir() + "/BENCH_" + bench_id + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot open %s\n", path.c_str());
    return;
  }
  std::vector<runner::BenchJsonParam> doc_params;
  doc_params.reserve(params.size() + computed_bench_params().size());
  for (const BenchParam& p : params) doc_params.emplace_back(p);
  for (const runner::BenchJsonParam& p : computed_bench_params()) {
    doc_params.push_back(p);
  }
  const std::vector<runner::TrialRunRecord> runs = runner::trial_run_log();
  runner::write_bench_json_doc(out, bench_id, doc_params, runs,
                               runner::trial_throughput_totals(),
                               runner::default_trial_threads());
  std::printf("[artifact] wrote %s\n", path.c_str());
}

/// Shared main for every bench binary: strips --threads, runs the
/// google-benchmark timed sections, then the reproduction section, then
/// prints the throughput line and emits results/BENCH_<id>.json. `params`
/// are the scenario parameters embedded in the artifact.
inline int bench_main(int argc, char** argv, const char* bench_id,
                      void (*reproduce)(),
                      std::initializer_list<BenchParam> params = {}) {
  strip_threads_flag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  reproduce();
  print_trial_throughput();
  write_bench_json(bench_id, params);
  return 0;
}

}  // namespace m2hew::benchx
