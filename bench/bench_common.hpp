// Shared helpers for the experiment bench binaries (DESIGN.md §4).
//
// Each bench binary has two parts:
//   1. google-benchmark timed sections measuring simulator throughput on
//      the experiment's workload (one engine run per iteration), and
//   2. a post-run reproduction section that prints the paper-vs-measured
//      table for the experiment and writes results/<exp>.csv.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>

#include "core/bounds.hpp"
#include "net/network.hpp"
#include "runner/report.hpp"
#include "runner/trials.hpp"

namespace m2hew::benchx {

/// A scenario parameter recorded into the bench's JSON artifact. Values
/// are kept as strings; numeric parameters are formatted by the caller.
using BenchParam = std::pair<const char*, std::string>;

/// Strips --threads=N from argv (call *before* benchmark::Initialize so it
/// is not reported as unrecognized) and installs it as the process-wide
/// default for every trial config in the binary. 0 = all cores (also the
/// default when the flag is absent), 1 = serial. Aggregate results are
/// identical at any value — only wall-clock changes.
inline void strip_threads_flag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      runner::set_default_trial_threads(
          static_cast<std::size_t>(std::strtoull(argv[i] + 10, nullptr, 10)));
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
}

/// One-line throughput report for a SyncTrialStats/AsyncTrialStats, so a
/// bench can show what a specific run sustained.
template <typename Stats>
void report_throughput(const char* label, const Stats& stats) {
  std::printf("[throughput] %-24s %4zu trials in %7.3f s  "
              "(%8.1f trials/s, %zu threads)\n",
              label, stats.trials, stats.elapsed_seconds,
              stats.trials_per_second(), stats.threads_used);
}

/// Cumulative trial-layer throughput for the whole binary; call at the end
/// of main so every bench report closes with its own throughput line.
inline void print_trial_throughput() {
  const runner::TrialThroughput totals = runner::trial_throughput_totals();
  if (totals.trials == 0) return;
  std::printf("\n[throughput] trial layer: %zu trials across %zu runs in "
              "%.3f s (%.1f trials/s, default %zu threads)\n",
              totals.trials, totals.runs, totals.busy_seconds,
              totals.trials_per_second(),
              runner::default_trial_threads());
}

/// Extracts the paper's bound parameters from a built network.
[[nodiscard]] inline core::BoundParams bound_params(
    const net::Network& network, std::size_t delta_est, double epsilon) {
  core::BoundParams p;
  p.n = network.node_count();
  p.s = network.max_channel_set_size();
  p.delta = std::max<std::size_t>(1, network.max_channel_degree());
  p.delta_est = delta_est;
  p.rho = network.min_span_ratio();
  p.epsilon = epsilon;
  return p;
}

/// Ratio formatter for "measured / bound" columns.
[[nodiscard]] inline double ratio(double measured, double bound) {
  return bound == 0.0 ? 0.0 : measured / bound;
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] inline std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Writes results/BENCH_<id>.json: the machine-readable artifact for one
/// bench run — scenario parameters, per-run completion statistics (from
/// runner::trial_run_log(), in call order), and the binary's cumulative
/// trials/sec. CI and the checked-in artifacts both come from this.
inline void write_bench_json(const char* bench_id,
                             std::initializer_list<BenchParam> params) {
  std::filesystem::create_directories(runner::results_dir());
  const std::string path =
      runner::results_dir() + "/BENCH_" + bench_id + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot open %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"" << json_escape(bench_id) << "\",\n";
  out << "  \"params\": {";
  bool first = true;
  for (const BenchParam& p : params) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(p.first)
        << "\": \"" << json_escape(p.second) << "\"";
    first = false;
  }
  out << (first ? "},\n" : "\n  },\n");
  char buf[512];
  out << "  \"runs\": [";
  first = true;
  for (const runner::TrialRunRecord& run : runner::trial_run_log()) {
    std::snprintf(buf, sizeof buf,
                  "{\"async\": %s, \"trials\": %zu, \"completed\": %zu, "
                  "\"success_rate\": %.6g, \"mean_completion\": %.6g, "
                  "\"p90_completion\": %.6g, \"elapsed_seconds\": %.6g, "
                  "\"threads\": %zu}",
                  run.async ? "true" : "false", run.trials, run.completed,
                  run.success_rate(), run.mean_completion,
                  run.p90_completion, run.elapsed_seconds, run.threads_used);
    out << (first ? "\n" : ",\n") << "    " << buf;
    if (run.fault_trials > 0) {
      // Robustness block for faulted runs: rewrite the closing brace into
      // a nested object so fault-free artifacts stay byte-stable.
      out.seekp(-1, std::ios_base::cur);
      std::snprintf(buf, sizeof buf,
                    ", \"robustness\": {\"fault_trials\": %zu, "
                    "\"mean_surviving_recall\": %.6g, "
                    "\"mean_ghost_entries\": %.6g, "
                    "\"mean_rediscovery\": %.6g, "
                    "\"recovered_links\": %zu, "
                    "\"rediscovered_links\": %zu}}",
                    run.fault_trials, run.mean_surviving_recall,
                    run.mean_ghost_entries, run.mean_rediscovery,
                    run.recovered_links, run.rediscovered_links);
      out << buf;
    }
    first = false;
  }
  out << (first ? "],\n" : "\n  ],\n");
  const runner::TrialThroughput totals = runner::trial_throughput_totals();
  std::snprintf(buf, sizeof buf,
                "  \"throughput\": {\"runs\": %zu, \"trials\": %zu, "
                "\"busy_seconds\": %.6g, \"trials_per_second\": %.6g, "
                "\"default_threads\": %zu}\n",
                totals.runs, totals.trials, totals.busy_seconds,
                totals.trials_per_second(), runner::default_trial_threads());
  out << buf << "}\n";
  std::printf("[artifact] wrote %s\n", path.c_str());
}

/// Shared main for every bench binary: strips --threads, runs the
/// google-benchmark timed sections, then the reproduction section, then
/// prints the throughput line and emits results/BENCH_<id>.json. `params`
/// are the scenario parameters embedded in the artifact.
inline int bench_main(int argc, char** argv, const char* bench_id,
                      void (*reproduce)(),
                      std::initializer_list<BenchParam> params = {}) {
  strip_threads_flag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  reproduce();
  print_trial_throughput();
  write_bench_json(bench_id, params);
  return 0;
}

}  // namespace m2hew::benchx
