// E12 — §V extension (c): diverse propagation characteristics. The base
// model assumes all channels propagate identically on every link; here a
// random per-(pair, channel) mask thins the usable spans. The effective ρ
// shrinks with the keep probability, and discovery time must track the
// 1/ρ_effective law — the same mechanism as E7 but driven by propagation
// rather than channel availability.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr std::size_t kDeltaEst = 16;

[[nodiscard]] runner::ScenarioConfig base_config(double keep) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kClique;
  config.n = 10;
  config.channels = runner::ChannelKind::kHomogeneous;
  config.universe = 8;
  config.set_size = 8;
  config.propagation = keep >= 1.0 ? runner::PropagationKind::kFull
                                   : runner::PropagationKind::kRandomMask;
  config.prop_keep = keep;
  return config;
}

void BM_Propagation_Alg3(benchmark::State& state) {
  const double keep = static_cast<double>(state.range(0)) / 100.0;
  const net::Network network = runner::build_scenario(base_config(keep), 1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 10'000'000;
    engine.seed = seed++;
    const auto result = sim::run_slot_engine(
        network, core::make_algorithm3(kDeltaEst), engine);
    benchmark::DoNotOptimize(result.completion_slot);
  }
}
BENCHMARK(BM_Propagation_Alg3)->Arg(100)->Arg(50);

void reproduce_table() {
  runner::print_banner(
      "E12 / diverse propagation (SV extension c)",
      "per-(link, channel) propagation masks shrink effective rho; "
      "discovery time follows the 1/rho_eff law",
      "clique n=10, homogeneous channels |U|=|A|=8, random masks swept");

  auto csv_file = runner::open_results_csv("e12_propagation");
  util::CsvWriter csv(csv_file);
  csv.header({"keep", "rho_eff", "links", "alg3_mean", "alg3_times_rho",
              "alg4_mean_frames"});

  util::Table table({"keep p", "rho_eff", "links", "alg3 mean",
                     "alg3 mean x rho_eff", "alg4 mean frames"});
  std::vector<double> normalized;
  bool all_complete = true;
  for (const double keep : {1.0, 0.8, 0.6, 0.4, 0.25}) {
    const net::Network network = runner::build_scenario(base_config(keep), 2);

    runner::SyncTrialConfig sync_trial;
    sync_trial.trials = 30;
    sync_trial.seed = 20 + static_cast<std::uint64_t>(keep * 100);
    sync_trial.engine.max_slots = 10'000'000;
    const auto alg3 = runner::run_sync_trials(
        network, core::make_algorithm3(kDeltaEst), sync_trial);

    runner::AsyncTrialConfig async_trial;
    async_trial.trials = 15;
    async_trial.seed = sync_trial.seed;
    async_trial.engine.frame_length = 3.0;
    async_trial.engine.max_real_time = 1e7;
    const auto alg4 = runner::run_async_trials(
        network, core::make_algorithm4(kDeltaEst), async_trial);

    all_complete &=
        alg3.completed == alg3.trials && alg4.completed == alg4.trials;
    const double rho = network.min_span_ratio();
    const double m3 = alg3.completion_slots.summarize().mean;
    normalized.push_back(m3 * rho);
    table.row()
        .cell(keep, 2)
        .cell(rho, 3)
        .cell(network.links().size())
        .cell(m3, 1)
        .cell(m3 * rho, 1)
        .cell(alg4.max_full_frames.summarize().mean, 1);
    csv.field(keep).field(rho).field(network.links().size());
    csv.field(m3).field(m3 * rho);
    csv.field(alg4.max_full_frames.summarize().mean);
    csv.end_row();
  }
  std::printf("%s\n", table.render().c_str());
  runner::print_verdict(all_complete,
                        "discovery completes at every propagation density");
  const double norm_max =
      *std::max_element(normalized.begin(), normalized.end());
  const double norm_min =
      *std::min_element(normalized.begin(), normalized.end());
  runner::print_verdict(norm_max <= 4.0 * norm_min,
                        "alg3 mean x rho_eff within 4x across the mask sweep "
                        "(1/rho_eff law, mask-induced)");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e12_propagation", reproduce_table,
      {{"experiment", "E12"},
       {"topology", "clique n=10"},
       {"channels", "homogeneous |U|=8"},
       {"masks", "random swept"}});
}
