// E5 — Theorems 9 & 10: Algorithm 4 (asynchronous, drifting clocks,
// δ ≤ 1/7) discovers all neighbors w.p. ≥ 1−ε by the time every node has
// executed (48·max(2S,3Δ_est)/ρ)·ln(N²/ε) full frames after T_s, which is
// at most {M+1}·L/(1−δ) real time.
//
// Reproduced series:
//   (a) drift sweep δ ∈ [0, 1/7]: measured full frames and real time vs
//       the theorem bounds (bounds never violated; measured far below —
//       the bounds are worst-case).
//   (b) start-offset sweep: latency after T_s insensitive to offsets.
//   (c) ablation: slots-per-frame ∈ {2, 3, 4, 5} — the paper's 3-slot
//       frame is what Lemma 7 needs at δ = 1/7; more slots waste airtime.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr double kEpsilon = 0.1;
constexpr std::size_t kDeltaEst = 8;
constexpr double kL = 3.0;

[[nodiscard]] net::Network workload(std::uint64_t seed) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kUnitDisk;
  config.n = 12;
  config.ud_radius = 0.4;
  config.channels = runner::ChannelKind::kUniformRandom;
  config.universe = 8;
  config.set_size = 4;
  return runner::build_scenario(config, seed);
}

[[nodiscard]] auto drift_clock_builder(double delta) {
  return [delta](net::NodeId, std::uint64_t seed) {
    return std::make_unique<sim::PiecewiseDriftClock>(
        sim::PiecewiseDriftClock::Config{.max_drift = delta,
                                         .min_segment = 15.0,
                                         .max_segment = 60.0},
        seed);
  };
}

void BM_Alg4_Discover(benchmark::State& state) {
  const double delta = static_cast<double>(state.range(0)) / 100.0;
  const net::Network network = workload(1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::AsyncEngineConfig engine;
    engine.frame_length = kL;
    engine.max_real_time = 1e7;
    engine.seed = seed++;
    engine.clock_builder = drift_clock_builder(delta);
    const auto result = sim::run_async_engine(
        network, core::make_algorithm4(kDeltaEst), engine);
    benchmark::DoNotOptimize(result.completion_time);
  }
}
BENCHMARK(BM_Alg4_Discover)->Arg(0)->Arg(14);

void reproduce_table() {
  runner::print_banner(
      "E5 / Theorems 9 & 10",
      "Alg 4 completes w.p. >= 1-eps within (48 max(2S,3D_est)/rho) "
      "ln(N^2/eps) full frames per node; real time <= (M+1) L/(1-delta)",
      "unit disk n=12, uniform-random channels |U|=8 |A|=4, L=3, eps=0.1");

  auto csv_file = runner::open_results_csv("e5_alg4_async");
  util::CsvWriter csv(csv_file);
  csv.header({"series", "x", "completed", "mean_frames", "p95_frames",
              "thm9_frame_bound", "mean_time_after_ts",
              "thm10_realtime_bound"});

  const net::Network network = workload(2);
  const auto params = benchx::bound_params(network, kDeltaEst, kEpsilon);
  const double frame_bound = core::theorem9_frame_bound(params);

  // (a) drift sweep.
  util::Table table_drift({"delta", "completed", "mean frames", "p95 frames",
                           "thm9 bound", "mean t-T_s", "thm10 bound"});
  bool frames_within_bound = true;
  for (const double delta : {0.0, 0.02, 0.07, 0.10, 1.0 / 7.0}) {
    runner::AsyncTrialConfig trial;
    trial.trials = 25;
    trial.seed = 500 + static_cast<std::uint64_t>(delta * 1000);
    trial.engine.frame_length = kL;
    trial.engine.max_real_time = 1e7;
    trial.engine.clock_builder = drift_clock_builder(delta);
    const auto stats = runner::run_async_trials(
        network, core::make_algorithm4(kDeltaEst), trial);
    const auto frames = stats.max_full_frames.summarize();
    const auto times = stats.completion_after_ts.summarize();
    const double rt_bound =
        core::theorem10_realtime_bound(params, kL, delta);
    frames_within_bound &= frames.p95 <= frame_bound;
    table_drift.row()
        .cell(delta, 4)
        .cell(stats.completed)
        .cell(frames.mean, 1)
        .cell(frames.p95, 1)
        .cell(frame_bound, 0)
        .cell(times.mean, 1)
        .cell(rt_bound, 0);
    csv.field("vs_delta").field(delta).field(stats.completed);
    csv.field(frames.mean).field(frames.p95).field(frame_bound);
    csv.field(times.mean).field(rt_bound);
    csv.end_row();
  }
  std::printf("(a) drift sweep (bounds are worst-case; measured must stay "
              "below):\n%s\n",
              table_drift.render().c_str());
  runner::print_verdict(frames_within_bound,
                        "p95 full frames within the Theorem 9 budget at "
                        "every delta <= 1/7");

  // (b) start-offset sweep at delta = 1/7.
  util::Table table_offset({"max offset (frames)", "completed",
                            "mean t-T_s"});
  double flat_min = 1e300;
  double flat_max = 0.0;
  for (const double offset_frames : {0.0, 2.0, 8.0, 32.0}) {
    runner::AsyncTrialConfig trial;
    trial.trials = 25;
    trial.seed = 900 + static_cast<std::uint64_t>(offset_frames);
    trial.engine.frame_length = kL;
    trial.engine.max_real_time = 1e7;
    trial.engine.clock_builder = drift_clock_builder(1.0 / 7.0);
    trial.per_trial = [offset_frames, &network](
                          std::size_t t, sim::AsyncEngineConfig& engine) {
      util::Rng rng(util::SeedSequence(31).derive(t));
      engine.starts.assign(network.node_count(), 0.0);
      for (net::NodeId u = 0; u < network.node_count(); ++u) {
        engine.starts[u] =
            rng.uniform_double(0.0, offset_frames * kL + 1e-9);
      }
    };
    const auto stats = runner::run_async_trials(
        network, core::make_algorithm4(kDeltaEst), trial);
    const auto times = stats.completion_after_ts.summarize();
    flat_min = std::min(flat_min, times.mean);
    flat_max = std::max(flat_max, times.mean);
    table_offset.row()
        .cell(offset_frames, 1)
        .cell(stats.completed)
        .cell(times.mean, 1);
    csv.field("vs_offset").field(offset_frames).field(stats.completed);
    csv.field(0.0).field(0.0).field(frame_bound);
    csv.field(times.mean).field(0.0);
    csv.end_row();
  }
  std::printf("(b) start offsets at delta=1/7 (latency after T_s stays "
              "flat):\n%s\n",
              table_offset.render().c_str());
  runner::print_verdict(flat_max <= 3.0 * flat_min,
                        "latency after T_s within 3x across offset spreads");

  // (c) slots-per-frame ablation at delta = 1/7.
  util::Table table_slots({"slots/frame", "completed", "mean t-T_s",
                           "mean frames"});
  for (const unsigned slots : {2u, 3u, 4u, 5u}) {
    runner::AsyncTrialConfig trial;
    trial.trials = 25;
    trial.seed = 1300 + slots;
    trial.engine.frame_length = kL;
    trial.engine.slots_per_frame = slots;
    trial.engine.max_real_time = 1e7;
    trial.engine.clock_builder = drift_clock_builder(1.0 / 7.0);
    const auto stats = runner::run_async_trials(
        network, core::make_algorithm4(kDeltaEst, slots), trial);
    const auto times = stats.completion_after_ts.summarize();
    table_slots.row()
        .cell(static_cast<std::size_t>(slots))
        .cell(stats.completed)
        .cell(times.mean, 1)
        .cell(stats.max_full_frames.summarize().mean, 1);
    csv.field("vs_slots").field(static_cast<std::size_t>(slots));
    csv.field(stats.completed);
    csv.field(stats.max_full_frames.summarize().mean).field(0.0);
    csv.field(frame_bound);
    csv.field(times.mean).field(0.0);
    csv.end_row();
  }
  std::printf("(c) slots-per-frame ablation (the paper's 3 balances "
              "alignment guarantees vs airtime):\n%s\n",
              table_slots.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e5_alg4_async", reproduce_table,
      {{"experiment", "E5"},
       {"topology", "unit_disk n=12"},
       {"universe", "8"},
       {"set_size", "4"},
       {"frame_length", "3"},
       {"epsilon", "0.1"}});
}
