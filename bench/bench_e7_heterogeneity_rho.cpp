// E7 — §II claim: "The running time of our algorithms is inversely
// proportional to ρ" — the minimum span-ratio, the paper's measure of
// heterogeneity.
//
// Reproduced series: the chain-overlap construction gives exact
// ρ = k/S on a line; sweep k and verify mean discovery slots scale like
// 1/ρ for Algorithms 1 and 3 (fit slots·ρ ≈ const).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include <cstdio>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "runner/link_stats.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr net::ChannelId kSetSize = 8;
constexpr std::size_t kDeltaEst = 32;

[[nodiscard]] net::Network workload(net::ChannelId overlap) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kLine;
  config.n = 12;
  config.channels = runner::ChannelKind::kChainOverlap;
  config.set_size = kSetSize;
  config.chain_overlap = overlap;
  return runner::build_scenario(config, 7);
}

void BM_Alg3_Rho(benchmark::State& state) {
  const auto overlap = static_cast<net::ChannelId>(state.range(0));
  const net::Network network = workload(overlap);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 50'000'000;
    engine.seed = seed++;
    const auto result = sim::run_slot_engine(
        network, core::make_algorithm3(kDeltaEst), engine);
    benchmark::DoNotOptimize(result.completion_slot);
  }
}
BENCHMARK(BM_Alg3_Rho)->Arg(8)->Arg(2)->Arg(1);

void reproduce_table() {
  runner::print_banner(
      "E7 / heterogeneity cost",
      "running time is inversely proportional to rho (the min span-ratio)",
      "line n=12, chain-overlap channels S=8, span k swept (rho = k/S)");

  auto csv_file = runner::open_results_csv("e7_heterogeneity_rho");
  util::CsvWriter csv(csv_file);
  csv.header({"overlap_k", "rho", "alg1_mean_slots", "alg3_mean_slots",
              "alg3_slots_times_rho"});

  util::Table table({"k", "rho", "alg1 mean", "alg3 mean",
                     "alg3 mean x rho"});
  std::vector<double> normalized;  // alg3 slots × ρ — should be ~constant
  std::vector<double> inverse_rho;
  std::vector<double> alg3_means;
  for (const net::ChannelId overlap : {8u, 6u, 4u, 2u, 1u}) {
    const net::Network network = workload(overlap);
    runner::SyncTrialConfig trial;
    trial.trials = 40;
    trial.seed = 20 + overlap;
    trial.engine.max_slots = 50'000'000;
    const auto alg1 = runner::run_sync_trials(
        network, core::make_algorithm1(kDeltaEst), trial);
    const auto alg3 = runner::run_sync_trials(
        network, core::make_algorithm3(kDeltaEst), trial);
    const double rho = network.min_span_ratio();
    const double m1 = alg1.completion_slots.summarize().mean;
    const double m3 = alg3.completion_slots.summarize().mean;
    normalized.push_back(m3 * rho);
    inverse_rho.push_back(1.0 / rho);
    alg3_means.push_back(m3);
    table.row()
        .cell(static_cast<std::size_t>(overlap))
        .cell(rho, 3)
        .cell(m1, 1)
        .cell(m3, 1)
        .cell(m3 * rho, 1);
    csv.field(static_cast<std::size_t>(overlap)).field(rho);
    csv.field(m1).field(m3).field(m3 * rho);
    csv.end_row();
  }
  std::printf("%s\n", table.render().c_str());

  util::PlotOptions plot;
  plot.x_label = "1/rho";
  plot.y_label = "alg3 mean slots (expect a straight line)";
  std::printf("%s\n",
              util::ascii_plot(inverse_rho, alg3_means, plot).c_str());

  const double norm_max =
      *std::max_element(normalized.begin(), normalized.end());
  const double norm_min =
      *std::min_element(normalized.begin(), normalized.end());
  runner::print_verdict(
      norm_max <= 3.0 * norm_min,
      "alg3 slots x rho stays within 3x across an 8x rho range (the "
      "1/rho law)");
  runner::print_verdict(normalized.size() >= 2 &&
                            normalized.front() < normalized.back() * 3.0,
                        "no super-1/rho blowup at the heterogeneous end");

  // Mechanism check: on a network with one deliberately narrow link, the
  // per-link latency must concentrate on the low-span-ratio links (that is
  // *why* the bounds carry a 1/rho factor).
  net::Topology star(4);
  star.add_edge(0, 1);
  star.add_edge(0, 2);
  star.add_edge(0, 3);
  const net::Network mechanism_net(
      std::move(star), {net::ChannelSet(5, {0, 1, 2, 3}),
                        net::ChannelSet(5, {0, 1, 2, 3}),
                        net::ChannelSet(5, {0, 1, 2, 3}),
                        net::ChannelSet(5, {3, 4})});
  sim::SlotEngineConfig engine;
  engine.max_slots = 1'000'000;
  const auto link_report = runner::measure_link_latencies(
      mechanism_net, core::make_algorithm3(4), engine, 60, 4242);
  util::Table mech({"link", "span ratio", "mean 1st coverage"});
  for (const auto& entry : link_report.links) {
    char name[16];
    std::snprintf(name, sizeof(name), "%u->%u", entry.link.from,
                  entry.link.to);
    mech.row()
        .cell(name)
        .cell(entry.span_ratio, 3)
        .cell(entry.mean_first_coverage, 1);
  }
  std::printf(
      "\nmechanism (star with one narrow link; corr(1/ratio, latency) = "
      "%.2f):\n%s\n",
      link_report.inverse_ratio_correlation, mech.render().c_str());
  runner::print_verdict(link_report.inverse_ratio_correlation > 0.5,
                        "per-link latency correlates with 1/span-ratio "
                        "(the links that set rho are the slow ones)");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e7_heterogeneity_rho", reproduce_table,
      {{"experiment", "E7"},
       {"topology", "line n=12"},
       {"channels", "chain_overlap S=8"},
       {"rho", "k/S swept"}});
}
