// E26 — attack resilience (extension; adversarial nodes and trust-scored
// neighbor maintenance). A seed-derived fraction of the deployment turns
// malicious — always-on channel jammers, Byzantine advertisers announcing
// fake IDs at an elevated rate, selective non-responders — and the bench
// asks two questions the paper's static honest-node model cannot: how much
// recall on honest links survives each attack (jammer/Byzantine arcs are
// blind by construction and excluded from the denominator), and how badly
// Byzantine ghosts pollute the tables (precision under attack). A final
// pair of rows replays the Byzantine cell with core::with_trust wrapped
// around the same policy factory: the rate-anomaly trust table should
// isolate the fake IDs (time-to-isolation) and lift precision back up at
// the same adversary fraction — the tentpole comparison of this
// experiment.
//
// The attacked cells never "complete" (blind links are undiscoverable), so
// every row runs to the same fixed slot budget and the verdicts are about
// end-state table quality, not completion time. Δ_est is deliberately
// loose (24 > |U| = 6, so honest p = 1/4) and the Byzantine transmit
// probability deliberately hot (0.9): the per-ID decode-rate gap is what
// the trust window detects.
//
// CI smoke caps trials per row with M2HEW_E26_TRIALS (e.g. 4); without
// the cap each row runs 20 trials.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/trust.hpp"
#include "net/topology_gen.hpp"
#include "runner/report.hpp"
#include "runner/trials.hpp"
#include "sim/fault_plan.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr net::NodeId kN = 16;
constexpr net::ChannelId kUniverse = 6;
constexpr std::size_t kDeltaEst = 24;  // honest p = min(1/2, 6/24) = 1/4
constexpr double kByzantineTx = 0.9;
constexpr std::uint64_t kMaxSlots = 12'000;
constexpr std::uint64_t kRootSeed = 61;

[[nodiscard]] std::size_t trials_per_row() {
  const char* env = std::getenv("M2HEW_E26_TRIALS");
  return env == nullptr ? 20 : std::strtoull(env, nullptr, 10);
}

[[nodiscard]] net::Network make_deployment(std::uint64_t seed) {
  util::Rng rng(seed);
  auto geo = net::make_connected_unit_disk(kN, 1.0, 0.45, rng);
  return net::Network(
      geo.topology,
      std::vector<net::ChannelSet>(kN, net::ChannelSet::full(kUniverse)));
}

[[nodiscard]] sim::SlotFaultPlan adversary_plan(double fraction,
                                                sim::AdversaryAttack attack) {
  sim::SlotFaultPlan plan;
  plan.adversary.fraction = fraction;
  plan.adversary.attack = attack;
  plan.adversary.byzantine_tx = kByzantineTx;
  plan.adversary.victim_fraction = 0.5;
  return plan;
}

/// Scenario-matched trust knobs: an honest (listener, sender) pair decodes
/// ~p(1-p)/|U| ≈ 3 announcements per 128-slot window here; the Byzantine
/// fake lands ~3.5x that. max_per_window = 6 sits between the two, and
/// block_slots outlives the run so an isolated fake stays isolated.
[[nodiscard]] core::TrustConfig trust_config() {
  core::TrustConfig trust;
  trust.enabled = true;
  trust.threshold = 0.3;
  trust.reward = 0.02;
  trust.rate_penalty = 0.35;
  trust.decay = 0.999;
  trust.rate_window = 128;
  trust.max_per_window = 6;
  trust.block_slots = kMaxSlots;
  trust.entry_window = 2 * kMaxSlots;
  return trust;
}

/// Timed section: one fixed-budget run per iteration, Arg = adversary
/// percent (0 = honest baseline; the delta is the per-slot cost of the
/// role checks plus the Byzantine decode bookkeeping).
void BM_AdversaryEngine(benchmark::State& state) {
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  const net::Network network = make_deployment(1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = kMaxSlots;
    engine.seed = seed++;
    if (fraction > 0.0) {
      engine.faults = adversary_plan(fraction, sim::AdversaryAttack::kMix);
    }
    const auto result = sim::run_slot_engine(
        network, core::make_algorithm3(kDeltaEst), engine);
    benchmark::DoNotOptimize(result.slots_executed);
  }
}
BENCHMARK(BM_AdversaryEngine)->Arg(0)->Arg(25);

/// Timed section: the same Byzantine run with the trust wrapper attached —
/// measures the admission-gate overhead on the decode path.
void BM_TrustedEngine(benchmark::State& state) {
  const net::Network network = make_deployment(1);
  const auto factory =
      core::with_trust(core::make_algorithm3(kDeltaEst), trust_config());
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = kMaxSlots;
    engine.seed = seed++;
    engine.faults = adversary_plan(0.25, sim::AdversaryAttack::kByzantine);
    const auto result = sim::run_slot_engine(network, factory, engine);
    benchmark::DoNotOptimize(result.slots_executed);
  }
}
BENCHMARK(BM_TrustedEngine);

struct Row {
  std::string label;
  std::string attack;
  double fraction = 0.0;
  bool trust = false;
  sim::SlotFaultPlan plan;
};

void reproduce_table() {
  const std::size_t trials = trials_per_row();
  runner::print_banner(
      "E26 / adversarial nodes + trust maintenance (extension)",
      "jammers, Byzantine advertisers and non-responders degrade recall "
      "only on blind arcs; trust-scored admission isolates fake IDs and "
      "restores table precision at the same adversary fraction",
      "unit disk n=16 r=0.45, |U|=6 all channels, alg3 Δ_est=24 (p=1/4), "
      "byzantine tx=0.9, " + std::to_string(kMaxSlots) + " slots/run, " +
          std::to_string(trials) + " trials/row");

  const net::Network network = make_deployment(3);

  std::vector<Row> rows;
  rows.push_back({"baseline", "none", 0.0, false, {}});
  rows.push_back({"frozen f=0", "none", 0.0, false,
                  adversary_plan(0.0, sim::AdversaryAttack::kMix)});
  rows.push_back({"jam f=0.25", "jam", 0.25, false,
                  adversary_plan(0.25, sim::AdversaryAttack::kJam)});
  for (const double f : {0.1, 0.25, 0.4}) {
    rows.push_back({"byzantine f=" + std::to_string(f).substr(0, 4),
                    "byzantine", f, false,
                    adversary_plan(f, sim::AdversaryAttack::kByzantine)});
  }
  rows.push_back({"non-resp f=0.25", "non-responder", 0.25, false,
                  adversary_plan(0.25, sim::AdversaryAttack::kNonResponder)});
  rows.push_back({"mix f=0.25", "mix", 0.25, false,
                  adversary_plan(0.25, sim::AdversaryAttack::kMix)});
  rows.push_back({"byz f=0.25 +trust", "byzantine", 0.25, true,
                  adversary_plan(0.25, sim::AdversaryAttack::kByzantine)});
  rows.push_back({"mix f=0.25 +trust", "mix", 0.25, true,
                  adversary_plan(0.25, sim::AdversaryAttack::kMix)});

  auto csv_file = runner::open_results_csv("e26_adversary");
  util::CsvWriter csv(csv_file);
  csv.header({"regime", "attack", "fraction", "trust", "completed",
              "mean_slots", "surviving_recall", "precision", "fake_entries",
              "isolated_fakes", "honest_isolated", "mean_isolation"});

  util::Table table({"regime", "completed", "recall", "precision", "fakes",
                     "isolated", "fp", "t-isolate"});

  double baseline_completed = -1.0;
  double baseline_mean_slots = -1.0;
  bool frozen_identical = false;
  bool recall_floor = true;
  bool pollution_real = true;
  bool trust_lifts_precision = true;
  bool trust_isolates = true;
  // Untrusted mean precision per (attack, fraction), for the trust rows.
  double untrusted_precision[2] = {-1.0, -1.0};  // [0]=byzantine, [1]=mix

  for (const Row& row : rows) {
    runner::SyncTrialConfig trial;
    trial.trials = trials;
    trial.seed = kRootSeed;
    trial.engine.max_slots = kMaxSlots;
    trial.engine.faults = row.plan;
    auto factory = core::make_algorithm3(kDeltaEst);
    if (row.trust) factory = core::with_trust(std::move(factory),
                                              trust_config());
    const auto stats = runner::run_sync_trials(network, factory, trial);
    const runner::RobustnessStats& robust = stats.robustness;
    const util::Summary recall = robust.surviving_recall.summarize();
    const util::Summary precision = robust.precision_under_attack.summarize();
    const double mean_slots = stats.completion_slots.count() > 0
                                  ? stats.completion_slots.summarize().mean
                                  : 0.0;
    const double isolation = robust.isolation_times.count() > 0
                                 ? robust.isolation_times.summarize().mean
                                 : 0.0;
    const double recall_mean = robust.enabled() ? recall.mean : 1.0;
    const double precision_mean = robust.adversarial() ? precision.mean : 1.0;

    if (row.label == "baseline") {
      baseline_completed = static_cast<double>(stats.completed);
      baseline_mean_slots = mean_slots;
      frozen_identical = stats.completed == stats.trials;
    }
    if (row.label.rfind("frozen", 0) == 0) {
      // fraction = 0 must be bit-identical to no adversary block at all.
      frozen_identical =
          frozen_identical &&
          static_cast<double>(stats.completed) == baseline_completed &&
          mean_slots == baseline_mean_slots;
    }
    if (!row.trust && (row.attack == "jam" || row.attack == "byzantine") &&
        row.fraction > 0.0) {
      recall_floor &= recall_mean >= 0.95;
    }
    if (!row.trust && row.attack == "byzantine" && row.fraction > 0.0) {
      pollution_real &= robust.fake_entries > 0 && precision_mean < 1.0;
      if (row.fraction == 0.25) untrusted_precision[0] = precision_mean;
    }
    if (!row.trust && row.attack == "mix" && row.fraction == 0.25) {
      untrusted_precision[1] = precision_mean;
    }
    if (row.trust) {
      const double untrusted =
          untrusted_precision[row.attack == "mix" ? 1 : 0];
      trust_lifts_precision &= untrusted >= 0.0 && precision_mean > untrusted;
      trust_isolates &= robust.isolated_fakes > 0 &&
                        robust.isolation_times.count() > 0;
    }

    table.row()
        .cell(row.label)
        .cell(stats.completed)
        .cell(recall_mean, 3)
        .cell(precision_mean, 3)
        .cell(robust.fake_entries)
        .cell(robust.isolated_fakes)
        .cell(robust.honest_isolated)
        .cell(isolation, 1);
    csv.field(row.label).field(row.attack).field(row.fraction);
    csv.field(row.trust ? 1 : 0);
    csv.field(stats.completed).field(mean_slots);
    csv.field(recall_mean).field(precision_mean);
    csv.field(static_cast<unsigned long long>(robust.fake_entries));
    csv.field(static_cast<unsigned long long>(robust.isolated_fakes));
    csv.field(static_cast<unsigned long long>(robust.honest_isolated));
    csv.field(isolation);
    csv.end_row();
  }
  std::printf("%s\n", table.render().c_str());
  runner::print_verdict(frozen_identical,
                        "adversary fraction 0 completes every trial and is "
                        "bit-identical to the no-adversary baseline");
  runner::print_verdict(recall_floor,
                        "surviving recall on non-blind links stays >= 0.95 "
                        "under jamming and Byzantine attack");
  runner::print_verdict(pollution_real,
                        "untrusted Byzantine rows admit surviving fake "
                        "entries (precision under attack < 1)");
  runner::print_verdict(trust_lifts_precision,
                        "trust-scored admission yields higher precision "
                        "under attack than the untrusted cell at the same "
                        "adversary fraction");
  runner::print_verdict(trust_isolates,
                        "trust rows isolate at least one fake ID and record "
                        "a finite time-to-isolation");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e26_adversary", reproduce_table,
      {{"experiment", "E26"},
       {"topology", "unit_disk n=16 r=0.45"},
       {"universe", "6"},
       {"algorithm", "alg3 delta_est=24 (p=1/4)"},
       {"grid", "attack {jam,byzantine,non-responder,mix} x fraction "
                "{0,0.1,0.25,0.4}; trust replay of byzantine+mix f=0.25"},
       {"byzantine_tx", "0.9"},
       {"max_slots", "12000"}});
}
