// E10 — §V extension (b): unreliable channels. The paper states its
// algorithms/analysis extend to lossy channels; the intuition is that an
// i.i.d. per-reception loss probability q simply scales every coverage
// probability by (1−q), so discovery time should scale like 1/(1−q) and
// the guarantee survives with the budget inflated accordingly.
//
// Reproduced series: loss q ∈ {0 … 0.5} for Algorithms 1, 3 and 4; check
// mean discovery time × (1−q) stays ~constant.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr std::size_t kDeltaEst = 24;

[[nodiscard]] net::Network workload(std::uint64_t seed) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kErdosRenyi;
  config.n = 12;
  config.er_edge_probability = 0.5;
  config.channels = runner::ChannelKind::kUniformRandom;
  config.universe = 8;
  config.set_size = 4;
  return runner::build_scenario(config, seed);
}

void BM_Alg3_Lossy(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  const net::Network network = workload(1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 50'000'000;
    engine.seed = seed++;
    engine.loss_probability = loss;
    const auto result = sim::run_slot_engine(
        network, core::make_algorithm3(kDeltaEst), engine);
    benchmark::DoNotOptimize(result.completion_slot);
  }
}
BENCHMARK(BM_Alg3_Lossy)->Arg(0)->Arg(30);

void reproduce_table() {
  runner::print_banner(
      "E10 / unreliable channels (SV extension b)",
      "i.i.d. loss q scales coverage by (1-q): discovery time grows like "
      "1/(1-q), completeness is preserved",
      "Erdos-Renyi n=12 p=0.5, uniform-random channels |U|=8 |A|=4");

  auto csv_file = runner::open_results_csv("e10_unreliable_channels");
  util::CsvWriter csv(csv_file);
  csv.header({"loss", "alg1_mean_slots", "alg3_mean_slots",
              "alg4_mean_time", "alg3_normalized"});

  const net::Network network = workload(2);

  util::Table table({"loss q", "alg1 mean slots", "alg3 mean slots",
                     "alg4 mean t-T_s", "alg3 mean x (1-q)"});
  std::vector<double> normalized;
  for (const double loss : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    runner::SyncTrialConfig sync_trial;
    sync_trial.trials = 30;
    sync_trial.seed = 40 + static_cast<std::uint64_t>(loss * 100);
    sync_trial.engine.max_slots = 50'000'000;
    sync_trial.engine.loss_probability = loss;

    const auto alg1 = runner::run_sync_trials(
        network, core::make_algorithm1(kDeltaEst), sync_trial);
    const auto alg3 = runner::run_sync_trials(
        network, core::make_algorithm3(kDeltaEst), sync_trial);

    runner::AsyncTrialConfig async_trial;
    async_trial.trials = 20;
    async_trial.seed = sync_trial.seed;
    async_trial.engine.frame_length = 3.0;
    async_trial.engine.max_real_time = 1e7;
    async_trial.engine.loss_probability = loss;
    const auto alg4 = runner::run_async_trials(
        network, core::make_algorithm4(kDeltaEst), async_trial);

    const double m1 = alg1.completion_slots.summarize().mean;
    const double m3 = alg3.completion_slots.summarize().mean;
    const double m4 = alg4.completion_after_ts.summarize().mean;
    normalized.push_back(m3 * (1.0 - loss));
    table.row()
        .cell(loss, 2)
        .cell(m1, 1)
        .cell(m3, 1)
        .cell(m4, 1)
        .cell(m3 * (1.0 - loss), 1);
    csv.field(loss).field(m1).field(m3).field(m4);
    csv.field(m3 * (1.0 - loss));
    csv.end_row();
  }
  std::printf("%s\n", table.render().c_str());

  const double norm_max =
      *std::max_element(normalized.begin(), normalized.end());
  const double norm_min =
      *std::min_element(normalized.begin(), normalized.end());
  runner::print_verdict(norm_max <= 2.0 * norm_min,
                        "alg3 mean slots x (1-q) within 2x across the loss "
                        "sweep (the 1/(1-q) law)");
  runner::print_verdict(normalized.size() == 6,
                        "all loss levels completed every trial (discovery "
                        "remains complete, only slower)");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e10_unreliable_channels", reproduce_table,
      {{"experiment", "E10"},
       {"topology", "erdos_renyi n=12 p=0.5"},
       {"universe", "8"},
       {"set_size", "4"},
       {"loss_q", "swept"}});
}
