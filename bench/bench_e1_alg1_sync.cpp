// E1 — Theorem 1: Algorithm 1 (synchronous, identical starts, known Δ_est)
// completes with probability ≥ 1−ε within
// O((max(S,Δ)/ρ)·log Δ_est·log(N/ε)) slots.
//
// Reproduced series:
//   (a) discovery slots vs N        — must grow ~log N (clique, fixed S)
//   (b) discovery slots vs Δ_est    — must grow ~log Δ_est (stage length)
//   (c) measured slots vs theorem slot budget — measured ≤ bound, with the
//       ε-quantile of the empirical distribution well under the bound.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/transmit_probability.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr double kEpsilon = 0.1;
constexpr std::size_t kDeltaEst = 16;

[[nodiscard]] net::Network clique_network(net::NodeId n, std::uint64_t seed) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kClique;
  config.n = n;
  config.channels = runner::ChannelKind::kUniformRandom;
  config.universe = 12;
  config.set_size = 4;
  return runner::build_scenario(config, seed);
}

void BM_Alg1_DiscoverClique(benchmark::State& state) {
  const auto n = static_cast<net::NodeId>(state.range(0));
  const net::Network network = clique_network(n, 1);
  std::uint64_t seed = 1;
  util::RunningStats slots;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 10'000'000;
    engine.seed = seed++;
    const auto result =
        sim::run_slot_engine(network, core::make_algorithm1(kDeltaEst),
                             engine);
    benchmark::DoNotOptimize(result.completion_slot);
    slots.add(static_cast<double>(result.completion_slot));
  }
  state.counters["mean_slots"] = slots.mean();
  state.counters["links"] = static_cast<double>(network.links().size());
}
BENCHMARK(BM_Alg1_DiscoverClique)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void reproduce_table() {
  runner::print_banner(
      "E1 / Theorem 1",
      "Alg 1 finishes w.p. >= 1-eps within "
      "O((max(S,D)/rho) log(D_est) log(N/eps)) slots",
      "clique, uniform-random channels |U|=12 |A|=4, eps=0.1");

  auto csv_file = runner::open_results_csv("e1_alg1_sync");
  util::CsvWriter csv(csv_file);
  csv.header({"series", "x", "trials", "success_rate", "mean_slots",
              "p90_slots", "theorem_slot_bound"});

  // (a) scaling in N at fixed Δ_est, on a ring with homogeneous channels:
  // S, Δ and ρ stay constant so only the log(N/ε) union bound grows.
  util::Table table_n({"N", "trials", "success", "mean slots", "p90 slots",
                       "thm1 bound", "measured/bound"});
  for (const net::NodeId n : {8u, 16u, 32u, 64u, 128u}) {
    runner::ScenarioConfig ring;
    ring.topology = runner::TopologyKind::kRing;
    ring.n = n;
    ring.channels = runner::ChannelKind::kHomogeneous;
    ring.universe = 12;
    ring.set_size = 4;
    const net::Network network = runner::build_scenario(ring, 2);
    runner::SyncTrialConfig trial;
    trial.trials = 30;
    trial.seed = 10 + n;
    trial.engine.max_slots = 10'000'000;
    const auto stats = runner::run_sync_trials(
        network, core::make_algorithm1(kDeltaEst), trial);
    const auto summary = stats.completion_slots.summarize();
    const double bound = core::theorem1_slot_bound(
        benchx::bound_params(network, kDeltaEst, kEpsilon));
    table_n.row()
        .cell(static_cast<std::size_t>(n))
        .cell(stats.trials)
        .cell(stats.success_rate(), 2)
        .cell(summary.mean, 1)
        .cell(summary.p90, 1)
        .cell(bound, 0)
        .cell(benchx::ratio(summary.p90, bound), 4);
    csv.field("vs_n").field(static_cast<std::size_t>(n)).field(stats.trials);
    csv.field(stats.success_rate()).field(summary.mean).field(summary.p90);
    csv.field(bound);
    csv.end_row();
  }
  std::printf("(a) scaling in N on a ring, S/Delta/rho fixed (expect ~log N "
              "growth, bound never violated):\n%s\n",
              table_n.render().c_str());

  // (a') same sweep on a clique, where Δ = N-1 grows with N: the bound's
  // max(S,Δ) factor takes over and growth is super-logarithmic — included
  // to show the bound tracks the right parameter.
  util::Table table_clique({"N", "Delta", "mean slots", "thm1 bound",
                            "measured/bound"});
  for (const net::NodeId n : {8u, 16u, 32u, 64u}) {
    const net::Network network = clique_network(n, 2);
    runner::SyncTrialConfig trial;
    trial.trials = 20;
    trial.seed = 50 + n;
    trial.engine.max_slots = 10'000'000;
    const auto stats = runner::run_sync_trials(
        network, core::make_algorithm1(kDeltaEst), trial);
    const auto summary = stats.completion_slots.summarize();
    const double bound = core::theorem1_slot_bound(
        benchx::bound_params(network, kDeltaEst, kEpsilon));
    table_clique.row()
        .cell(static_cast<std::size_t>(n))
        .cell(network.max_channel_degree())
        .cell(summary.mean, 1)
        .cell(bound, 0)
        .cell(benchx::ratio(summary.p90, bound), 4);
    csv.field("vs_n_clique").field(static_cast<std::size_t>(n));
    csv.field(stats.trials).field(stats.success_rate());
    csv.field(summary.mean).field(summary.p90).field(bound);
    csv.end_row();
  }
  std::printf("(a') scaling in N on a clique (Delta grows with N; bound "
              "tracks it):\n%s\n",
              table_clique.render().c_str());

  // (b) scaling in Δ_est at fixed N: the log(Δ_est) stage-length factor.
  util::Table table_d({"D_est", "stage slots", "mean slots", "p90 slots",
                       "thm1 bound"});
  const net::Network network = clique_network(16, 3);
  for (const std::size_t dest : {4ul, 16ul, 64ul, 256ul, 1024ul}) {
    runner::SyncTrialConfig trial;
    trial.trials = 30;
    trial.seed = 400 + dest;
    trial.engine.max_slots = 10'000'000;
    const auto stats = runner::run_sync_trials(
        network, core::make_algorithm1(dest), trial);
    const auto summary = stats.completion_slots.summarize();
    const double bound = core::theorem1_slot_bound(
        benchx::bound_params(network, dest, kEpsilon));
    table_d.row()
        .cell(dest)
        .cell(static_cast<std::size_t>(core::stage_length(dest)))
        .cell(summary.mean, 1)
        .cell(summary.p90, 1)
        .cell(bound, 0);
    csv.field("vs_dest").field(dest).field(stats.trials);
    csv.field(stats.success_rate()).field(summary.mean).field(summary.p90);
    csv.field(bound);
    csv.end_row();
  }
  std::printf("(b) scaling in D_est (expect ~log D_est growth via stage "
              "length):\n%s\n",
              table_d.render().c_str());

  // (c) verdicts.
  const net::Network verdict_net = clique_network(32, 4);
  runner::SyncTrialConfig trial;
  trial.trials = 50;
  trial.seed = 999;
  const double bound = core::theorem1_slot_bound(
      benchx::bound_params(verdict_net, kDeltaEst, kEpsilon));
  trial.engine.max_slots = static_cast<std::uint64_t>(std::ceil(bound));
  const auto stats = runner::run_sync_trials(
      verdict_net, core::make_algorithm1(kDeltaEst), trial);
  runner::print_verdict(stats.success_rate() >= 1.0 - kEpsilon,
                        "success rate at the theorem budget >= 1 - eps");

  // Distribution of completion slots across the verdict trials: the tail
  // (p99 vs median) is what the union bound over links pays for.
  const auto summary = stats.completion_slots.summarize();
  util::Histogram histogram(summary.min, summary.max + 1.0, 10);
  for (const double slots : stats.completion_slots.values()) {
    histogram.add(slots);
  }
  std::printf("\ncompletion-slot distribution (clique n=32, %zu trials):\n%s",
              stats.completed, histogram.render(40).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e1_alg1_sync", reproduce_table,
      {{"experiment", "E1"},
       {"topology", "clique+ring"},
       {"universe", "12"},
       {"set_size", "4"},
       {"delta_est", "16"},
       {"epsilon", "0.1"}});
}
