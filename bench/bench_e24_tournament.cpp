// E24 — competitor policy tournament (extension; ROADMAP item 2). Races
// the paper's Algorithms 1-4 against three rivals from the related
// literature — Mc-Dis prime-pair duty cycling (arXiv:1307.3630),
// deterministic blind rendezvous (arXiv:1401.7313) and consistent channel
// hopping (arXiv:2506.18381) — across a ρ-heterogeneity × churn ×
// spectrum-dynamics grid on a unit-disk deployment. Each paper claims an
// edge in its own regime (see docs/BENCHMARKS.md); this bench puts them
// on one engine, one radio model and one fault plan, reporting
// discovery-latency CDF quantiles and energy per discovered link.
//
// CI smoke caps trials per cell with M2HEW_E24_TRIALS (e.g. 4); without
// the env var the full tournament runs and regenerates
// results/BENCH_e24_tournament.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/competitors.hpp"
#include "net/channel_assign.hpp"
#include "net/primary_user.hpp"
#include "net/topology_gen.hpp"
#include "runner/report.hpp"
#include "runner/trials.hpp"
#include "sim/fault_plan.hpp"
#include "sim/slot_engine.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr net::NodeId kN = 12;
constexpr net::ChannelId kUniverse = 8;
constexpr net::ChannelId kSetSize = 4;     // uniform-ρ cells
constexpr net::ChannelId kMinSize = 2;     // variable-ρ cells
constexpr net::ChannelId kMaxSize = 6;
constexpr std::size_t kDeltaEst = 8;
constexpr std::uint64_t kMaxSlots = 2'000'000;
constexpr std::uint64_t kRootSeed = 60;
constexpr std::size_t kEnergyTrials = 5;  // direct engine runs per row

[[nodiscard]] std::size_t trials_per_cell() {
  const char* env = std::getenv("M2HEW_E24_TRIALS");
  return env == nullptr ? 20 : std::strtoull(env, nullptr, 10);
}

struct Deployment {
  net::Network network;
  std::vector<net::Point> positions;
};

/// Unit-disk deployment with either uniform |A(u)| = kSetSize or variable
/// |A(u)| in [kMinSize, kMaxSize] channel sets (the ρ-heterogeneity leg of
/// the grid); spans are regenerated non-empty so every link is
/// discoverable by construction.
[[nodiscard]] Deployment make_deployment(bool variable_sets,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  auto geo = net::make_connected_unit_disk(kN, 1.0, 0.45, rng);
  auto gen = [&] {
    return variable_sets
               ? net::variable_size_random_assignment(kN, kUniverse,
                                                      kMinSize, kMaxSize,
                                                      rng)
               : net::uniform_random_assignment(kN, kUniverse, kSetSize,
                                                rng);
  };
  net::ChannelAssignment assignment =
      net::generate_with_nonempty_spans(geo.topology, 100, gen);
  return {net::Network(geo.topology, std::move(assignment)),
          std::move(geo.positions)};
}

// Fault windows sit inside the fast policies' discovery span (p50 of the
// paper algorithms is a few hundred slots here): crashes land from slot
// 50, primary users activate within the first 800 slots. Later windows
// would mostly fire after completion and leave the fault cells
// indistinguishable from the clean ones.
[[nodiscard]] sim::SlotFaultPlan cell_faults(
    bool churn, bool spectrum, const std::vector<net::Point>& positions) {
  sim::SlotFaultPlan plan;
  if (churn) {
    plan.churn.crash_probability = 0.3;
    plan.churn.earliest_crash = 50;
    plan.churn.latest_crash = 1'000;
    plan.churn.min_down = 100;
    plan.churn.max_down = 400;
    plan.churn.reset_policy_on_recovery = true;
  }
  if (spectrum) {
    util::Rng rng(7);
    const auto field = net::ScheduledPrimaryUserField::random(
        kUniverse, 6, 1.0, 0.2, 0.4, 800.0, 100.0, 400.0, rng);
    plan.spectrum = field.users();
  }
  if (plan.any()) plan.positions = positions;
  return plan;
}

/// The async mirror of cell_faults: Algorithm 4 runs in real time with
/// frame_length 1.0, so one frame ≈ one slot-engine slot and the same
/// window constants describe the same regime.
[[nodiscard]] sim::AsyncFaultPlan cell_faults_async(
    bool churn, bool spectrum, const std::vector<net::Point>& positions) {
  const sim::SlotFaultPlan slots = cell_faults(churn, spectrum, positions);
  sim::AsyncFaultPlan plan;
  if (churn) {
    plan.churn.crash_probability = slots.churn.crash_probability;
    plan.churn.earliest_crash =
        static_cast<double>(slots.churn.earliest_crash);
    plan.churn.latest_crash = static_cast<double>(slots.churn.latest_crash);
    plan.churn.min_down = static_cast<double>(slots.churn.min_down);
    plan.churn.max_down = static_cast<double>(slots.churn.max_down);
    plan.churn.reset_policy_on_recovery = true;
  }
  plan.spectrum = slots.spectrum;
  if (plan.any()) plan.positions = positions;
  return plan;
}

struct SyncEntry {
  const char* name;
  sim::SyncPolicyFactory (*make)(const net::Network&);
  bool paper;  ///< one of the paper's algorithms (vs competitor/baseline)
};

const SyncEntry kSyncEntries[] = {
    {"alg1",
     [](const net::Network&) { return core::make_algorithm1(kDeltaEst); },
     true},
    {"alg2",
     [](const net::Network&) { return core::make_algorithm2(); }, true},
    {"alg3",
     [](const net::Network&) { return core::make_algorithm3(kDeltaEst); },
     true},
    {"baseline",
     [](const net::Network& network) {
       return core::make_universal_baseline(network.universe_size(), 0.5);
     },
     false},
    {"mcdis",
     [](const net::Network&) { return core::make_mcdis(); }, false},
    {"rendezvous",
     [](const net::Network&) { return core::make_blind_rendezvous(); },
     false},
    {"consistent-hop",
     [](const net::Network&) { return core::make_consistent_hop(); },
     false},
};

constexpr const char* kCompetitors[] = {"mcdis", "rendezvous",
                                        "consistent-hop"};

[[nodiscard]] bool is_competitor(const std::string& name) {
  for (const char* c : kCompetitors) {
    if (name == c) return true;
  }
  return false;
}

struct Quantiles {
  double p10 = 0, p25 = 0, p50 = 0, p75 = 0, p90 = 0, max = 0;
};

[[nodiscard]] Quantiles latency_cdf(const util::Samples& samples) {
  std::vector<double> sorted(samples.values().begin(),
                             samples.values().end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.empty()) return {};
  Quantiles q;
  q.p10 = util::quantile_sorted(sorted, 0.10);
  q.p25 = util::quantile_sorted(sorted, 0.25);
  q.p50 = util::quantile_sorted(sorted, 0.50);
  q.p75 = util::quantile_sorted(sorted, 0.75);
  q.p90 = util::quantile_sorted(sorted, 0.90);
  q.max = sorted.back();
  return q;
}

/// Mean energy per discovered link over kEnergyTrials direct engine runs
/// seeded exactly like run_sync_trials' first kEnergyTrials trials (the
/// trial layer aggregates completion only, so energy comes from replaying
/// a prefix of the same trial sequence).
[[nodiscard]] double sync_energy_per_discovery(
    const net::Network& network, const sim::SyncPolicyFactory& factory,
    const sim::SlotFaultPlan& faults) {
  const util::SeedSequence seeds(kRootSeed);
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t t = 0; t < kEnergyTrials; ++t) {
    sim::SlotEngineConfig engine;
    engine.max_slots = kMaxSlots;
    engine.seed = seeds.derive(t);
    engine.faults = faults;
    const auto result = sim::run_slot_engine(network, factory, engine);
    const std::size_t covered = result.state.covered_links();
    if (covered == 0) continue;
    total += sim::total_activity(result.activity).energy() /
             static_cast<double>(covered);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

[[nodiscard]] double async_energy_per_discovery(
    const net::Network& network, const sim::AsyncFaultPlan& faults) {
  const util::SeedSequence seeds(kRootSeed);
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t t = 0; t < kEnergyTrials; ++t) {
    sim::AsyncEngineConfig engine;
    engine.max_real_time = static_cast<double>(kMaxSlots);
    engine.seed = seeds.derive(t);
    engine.faults = faults;
    const auto result = sim::run_async_engine(
        network, core::make_algorithm4(kDeltaEst), engine);
    const std::size_t covered = result.state.covered_links();
    if (covered == 0) continue;
    total += sim::total_activity(result.activity).energy() /
             static_cast<double>(covered);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

void BM_Competitor(benchmark::State& state) {
  const Deployment dep = make_deployment(/*variable_sets=*/false, 1);
  const char* name = kCompetitors[state.range(0)];
  sim::SyncPolicyFactory factory;
  if (std::string(name) == "mcdis") {
    factory = core::make_mcdis();
  } else if (std::string(name) == "rendezvous") {
    factory = core::make_blind_rendezvous();
  } else {
    factory = core::make_consistent_hop();
  }
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = kMaxSlots;
    engine.seed = seed++;
    const auto result = sim::run_slot_engine(dep.network, factory, engine);
    benchmark::DoNotOptimize(result.completion_slot);
  }
  state.SetLabel(name);
}
BENCHMARK(BM_Competitor)->Arg(0)->Arg(1)->Arg(2);

struct Cell {
  std::string label;
  bool variable_sets;
  bool churn;
  bool spectrum;
};

void reproduce_table() {
  const std::size_t trials = trials_per_cell();
  runner::print_banner(
      "E24 / competitor tournament (extension)",
      "the paper's randomized schedules stay competitive with Mc-Dis, "
      "blind rendezvous and consistent hopping across heterogeneity, "
      "churn and spectrum dynamics on one engine",
      "unit disk n=12, |U|=8, uniform |A|=4 vs variable |A| in [2,6], "
      "churn p=0.3 window [100,1500], 4 scheduled PUs");

  std::vector<Cell> cells;
  for (const bool variable_sets : {false, true}) {
    for (const bool churn : {false, true}) {
      for (const bool spectrum : {false, true}) {
        std::string label = variable_sets ? "var" : "uni";
        if (churn) label += "+churn";
        if (spectrum) label += "+pu";
        cells.push_back({std::move(label), variable_sets, churn, spectrum});
      }
    }
  }

  auto csv_file = runner::open_results_csv("e24_tournament");
  util::CsvWriter csv(csv_file);
  csv.header({"cell", "policy", "trials", "completed", "success_rate",
              "mean_slots", "p10", "p25", "p50", "p75", "p90", "max",
              "energy_per_discovery"});

  util::Table table({"cell", "policy", "completed", "p50", "p90",
                     "energy/disc"});
  bool paper_complete = true;
  bool competitors_discover = true;
  bool paper_within_2x = true;
  std::map<std::string, std::vector<double>> p50_by_policy;
  std::map<std::string, std::vector<double>> energy_by_policy;

  for (const Cell& cell : cells) {
    const Deployment dep = make_deployment(cell.variable_sets, 3);
    const sim::SlotFaultPlan faults =
        cell_faults(cell.churn, cell.spectrum, dep.positions);

    double best_paper_p50 = 0.0;
    double best_rival_p50 = 0.0;
    for (const SyncEntry& entry : kSyncEntries) {
      const sim::SyncPolicyFactory factory = entry.make(dep.network);
      runner::SyncTrialConfig trial;
      trial.trials = trials;
      trial.seed = kRootSeed;
      trial.engine.max_slots = kMaxSlots;
      trial.engine.faults = faults;
      const auto stats = runner::run_sync_trials(dep.network, factory,
                                                 trial);
      const Quantiles q = latency_cdf(stats.completion_slots);
      const double energy =
          sync_energy_per_discovery(dep.network, factory, faults);
      const double mean = stats.completion_slots.summarize().mean;

      if (entry.paper) {
        paper_complete &= stats.completed == stats.trials;
        if (best_paper_p50 == 0.0 || q.p50 < best_paper_p50) {
          best_paper_p50 = q.p50;
        }
      }
      if (is_competitor(entry.name)) {
        competitors_discover &= stats.completed > 0;
        if (stats.completed > 0 &&
            (best_rival_p50 == 0.0 || q.p50 < best_rival_p50)) {
          best_rival_p50 = q.p50;
        }
      }
      p50_by_policy[entry.name].push_back(q.p50);
      energy_by_policy[entry.name].push_back(energy);

      table.row()
          .cell(cell.label)
          .cell(entry.name)
          .cell(stats.completed)
          .cell(q.p50, 1)
          .cell(q.p90, 1)
          .cell(energy, 1);
      csv.field(cell.label).field(entry.name).field(stats.trials);
      csv.field(stats.completed).field(stats.success_rate()).field(mean);
      csv.field(q.p10).field(q.p25).field(q.p50).field(q.p75).field(q.p90);
      csv.field(q.max).field(energy);
      csv.end_row();
    }

    // Algorithm 4 rides the async engine: latency is completion after
    // T_s in real-time units (frame_length 1.0 ≈ one slot per frame
    // third), energy is per-frame activity — comparable in shape, not in
    // absolute units, and labeled as such in the artifact.
    {
      const sim::AsyncFaultPlan async_faults =
          cell_faults_async(cell.churn, cell.spectrum, dep.positions);
      runner::AsyncTrialConfig trial;
      trial.trials = trials;
      trial.seed = kRootSeed;
      trial.engine.max_real_time = static_cast<double>(kMaxSlots);
      trial.engine.faults = async_faults;
      const auto stats = runner::run_async_trials(
          dep.network, core::make_algorithm4(kDeltaEst), trial);
      const Quantiles q = latency_cdf(stats.completion_after_ts);
      const double energy =
          async_energy_per_discovery(dep.network, async_faults);
      const double mean = stats.completion_after_ts.summarize().mean;
      paper_complete &= stats.completed == stats.trials;
      p50_by_policy["alg4"].push_back(q.p50);
      energy_by_policy["alg4"].push_back(energy);
      table.row()
          .cell(cell.label)
          .cell("alg4 (async)")
          .cell(stats.completed)
          .cell(q.p50, 1)
          .cell(q.p90, 1)
          .cell(energy, 1);
      csv.field(cell.label).field("alg4").field(stats.trials);
      csv.field(stats.completed).field(stats.success_rate()).field(mean);
      csv.field(q.p10).field(q.p25).field(q.p50).field(q.p75).field(q.p90);
      csv.field(q.max).field(energy);
      csv.end_row();
    }

    if (best_rival_p50 > 0.0) {
      // A tuned rival can edge out the paper at n=12 (rendezvous does, in
      // the variable cells) — the defensible cross-regime claim is that
      // the paper's best stays within 2x of the best rival everywhere.
      paper_within_2x &= best_paper_p50 <= 2.0 * best_rival_p50;
    }
  }
  std::printf("%s\n", table.render().c_str());

  const auto mean_of = [](const std::vector<double>& v) {
    double sum = 0.0;
    for (const double x : v) sum += x;
    return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
  };
  for (const auto& [policy, values] : p50_by_policy) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", mean_of(values));
    benchx::add_bench_param("p50_slots_" + policy, buf);
  }
  for (const auto& [policy, values] : energy_by_policy) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", mean_of(values));
    benchx::add_bench_param(policy == "alg4"
                                ? "energy_per_discovery_alg4_frames"
                                : "energy_per_discovery_" + policy,
                            buf);
  }

  runner::print_verdict(paper_complete,
                        "paper algorithms (1-4) complete every trial in "
                        "every cell");
  runner::print_verdict(competitors_discover,
                        "every competitor completes discovery in every "
                        "cell");
  runner::print_verdict(paper_within_2x,
                        "best paper p50 latency within 2x of the best "
                        "competitor in every cell");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e24_tournament", reproduce_table,
      {{"experiment", "E24"},
       {"topology", "unit_disk n=12"},
       {"universe", "8"},
       {"heterogeneity", "uniform |A|=4 vs variable |A| in [2,6]"},
       {"faults", "churn p=0.3 window [100,1500] down [100,600]; 4 "
                  "scheduled PUs"},
       {"policies", "alg1 alg2 alg3 alg4 baseline mcdis rendezvous "
                    "consistent-hop"}});
}
