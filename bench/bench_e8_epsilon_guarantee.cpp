// E8 — the ε-guarantee common to Theorems 1, 3 and 9: running each
// algorithm for exactly its theorem budget must fail with probability at
// most ε.
//
// Reproduced series: ε ∈ {0.5, 0.2, 0.1, 0.05} × {Alg 1, Alg 3, Alg 4};
// report empirical failure rates with Wilson 95% intervals and check the
// interval's lower end does not exceed ε.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr std::size_t kDeltaEst = 8;

[[nodiscard]] net::Network workload(std::uint64_t seed) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kClique;
  config.n = 6;
  config.channels = runner::ChannelKind::kUniformRandom;
  config.universe = 8;
  config.set_size = 4;
  return runner::build_scenario(config, seed);
}

void BM_EpsilonBudgetRun(benchmark::State& state) {
  const net::Network network = workload(1);
  const double epsilon = 0.1;
  const auto budget = static_cast<std::uint64_t>(std::ceil(
      core::theorem3_slot_bound(
          benchx::bound_params(network, kDeltaEst, epsilon))));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = budget;
    engine.seed = seed++;
    const auto result = sim::run_slot_engine(
        network, core::make_algorithm3(kDeltaEst), engine);
    benchmark::DoNotOptimize(result.complete);
  }
}
BENCHMARK(BM_EpsilonBudgetRun);

void reproduce_table() {
  runner::print_banner(
      "E8 / epsilon guarantee",
      "running for the theorem budget fails with probability <= eps "
      "(Theorems 1, 3, 9)",
      "clique n=6, uniform-random channels |U|=8 |A|=4, 200 trials/cell");

  auto csv_file = runner::open_results_csv("e8_epsilon_guarantee");
  util::CsvWriter csv(csv_file);
  csv.header({"algorithm", "epsilon", "budget", "trials", "failures",
              "failure_rate", "wilson_lo", "wilson_hi"});

  const net::Network network = workload(2);
  constexpr std::size_t kTrials = 200;

  util::Table table({"algorithm", "eps", "budget", "failures",
                     "failure rate", "95% interval", "ok?"});
  bool all_ok = true;

  for (const double epsilon : {0.5, 0.2, 0.1, 0.05}) {
    const auto params = benchx::bound_params(network, kDeltaEst, epsilon);

    // Algorithm 1 at the Theorem 1 slot budget.
    {
      const auto budget = static_cast<std::uint64_t>(
          std::ceil(core::theorem1_slot_bound(params)));
      runner::SyncTrialConfig trial;
      trial.trials = kTrials;
      trial.seed = 11;
      trial.engine.max_slots = budget;
      const auto stats = runner::run_sync_trials(
          network, core::make_algorithm1(kDeltaEst), trial);
      const std::size_t failures = stats.trials - stats.completed;
      const auto iv = util::wilson_interval(failures, stats.trials);
      const bool ok = iv.lo <= epsilon;
      all_ok &= ok;
      char interval[40];
      std::snprintf(interval, sizeof(interval), "[%.3f, %.3f]", iv.lo, iv.hi);
      table.row()
          .cell("alg1 / thm1")
          .cell(epsilon, 2)
          .cell(budget)
          .cell(failures)
          .cell(1.0 - stats.success_rate(), 3)
          .cell(interval)
          .cell(ok ? "yes" : "NO");
      csv.field("alg1").field(epsilon).field(budget).field(stats.trials);
      csv.field(failures).field(1.0 - stats.success_rate());
      csv.field(iv.lo).field(iv.hi);
      csv.end_row();
    }

    // Algorithm 3 at the Theorem 3 slot budget.
    {
      const auto budget = static_cast<std::uint64_t>(
          std::ceil(core::theorem3_slot_bound(params)));
      runner::SyncTrialConfig trial;
      trial.trials = kTrials;
      trial.seed = 12;
      trial.engine.max_slots = budget;
      const auto stats = runner::run_sync_trials(
          network, core::make_algorithm3(kDeltaEst), trial);
      const std::size_t failures = stats.trials - stats.completed;
      const auto iv = util::wilson_interval(failures, stats.trials);
      const bool ok = iv.lo <= epsilon;
      all_ok &= ok;
      char interval[40];
      std::snprintf(interval, sizeof(interval), "[%.3f, %.3f]", iv.lo, iv.hi);
      table.row()
          .cell("alg3 / thm3")
          .cell(epsilon, 2)
          .cell(budget)
          .cell(failures)
          .cell(1.0 - stats.success_rate(), 3)
          .cell(interval)
          .cell(ok ? "yes" : "NO");
      csv.field("alg3").field(epsilon).field(budget).field(stats.trials);
      csv.field(failures).field(1.0 - stats.success_rate());
      csv.field(iv.lo).field(iv.hi);
      csv.end_row();
    }

    // Algorithm 4, budgeted in full frames per node via max_real_time:
    // the Theorem 10 real-time bound from T_s = 0 with ideal clocks.
    {
      const double rt_budget =
          core::theorem10_realtime_bound(params, 3.0, 1.0 / 7.0);
      runner::AsyncTrialConfig trial;
      trial.trials = 50;  // async trials are costlier
      trial.seed = 13;
      trial.engine.frame_length = 3.0;
      trial.engine.max_real_time = rt_budget;
      trial.engine.clock_builder = [](net::NodeId, std::uint64_t seed) {
        return std::make_unique<sim::PiecewiseDriftClock>(
            sim::PiecewiseDriftClock::Config{.max_drift = 1.0 / 7.0,
                                             .min_segment = 15.0,
                                             .max_segment = 60.0},
            seed);
      };
      const auto stats = runner::run_async_trials(
          network, core::make_algorithm4(kDeltaEst), trial);
      const std::size_t failures = stats.trials - stats.completed;
      const auto iv = util::wilson_interval(failures, stats.trials);
      const bool ok = iv.lo <= epsilon;
      all_ok &= ok;
      char interval[40];
      std::snprintf(interval, sizeof(interval), "[%.3f, %.3f]", iv.lo, iv.hi);
      table.row()
          .cell("alg4 / thm9+10")
          .cell(epsilon, 2)
          .cell(static_cast<std::size_t>(rt_budget))
          .cell(failures)
          .cell(1.0 - stats.success_rate(), 3)
          .cell(interval)
          .cell(ok ? "yes" : "NO");
      csv.field("alg4").field(epsilon)
          .field(static_cast<std::size_t>(rt_budget)).field(stats.trials);
      csv.field(failures).field(1.0 - stats.success_rate());
      csv.field(iv.lo).field(iv.hi);
      csv.end_row();
    }
  }
  std::printf("%s\n", table.render().c_str());
  runner::print_verdict(all_ok,
                        "every empirical failure rate consistent with <= eps "
                        "(Wilson lower bound)");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e8_epsilon_guarantee", reproduce_table,
      {{"experiment", "E8"},
       {"topology", "clique n=6"},
       {"universe", "8"},
       {"set_size", "4"},
       {"trials_per_cell", "200"}});
}
