// E13 — energy-to-discovery. The neighbor-discovery line of work the paper
// builds on (birthday protocols [1], asynchronous wakeup [12], probing
// [17]) treats radio energy as the first-class cost. This bench compares
// the algorithms and the universal-set baseline on total radio energy spent
// until discovery completes (tx = 1.0, rx = 0.8, idle = 0.05 per slot).
//
// Expected shape: the baseline wastes energy in proportion to |U| (it must
// idle through foreign channels but still burns slots); Algorithm 4's lower
// duty cycle (the extra 1/3 in its transmit probability) trades time for
// energy efficiency per frame.
#include <benchmark/benchmark.h>

#include <map>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "sim/slot_engine.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr std::size_t kDeltaEst = 24;

// Channel sets live in a fixed 12-channel pool embedded into the agreed
// universe, so spans and ρ are identical across universe sizes (see E6).
[[nodiscard]] net::Network workload(net::ChannelId universe,
                                    std::uint64_t seed) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kClique;
  config.n = 8;
  config.channels = runner::ChannelKind::kUniformRandom;
  config.universe = 12;
  config.set_size = 4;
  const net::Network pool_net = runner::build_scenario(config, seed);
  std::vector<net::ChannelSet> embedded;
  embedded.reserve(pool_net.node_count());
  for (net::NodeId u = 0; u < pool_net.node_count(); ++u) {
    net::ChannelSet s(universe);
    for (const net::ChannelId c : pool_net.available(u).to_vector()) {
      s.insert(c);
    }
    embedded.push_back(std::move(s));
  }
  return net::Network(pool_net.topology(), std::move(embedded));
}

struct EnergyStats {
  util::RunningStats slots;
  util::RunningStats energy;
  std::size_t completed = 0;
};

[[nodiscard]] EnergyStats measure(const net::Network& network,
                                  const sim::SyncPolicyFactory& factory,
                                  std::size_t trials, std::uint64_t seed) {
  EnergyStats stats;
  const util::SeedSequence seeds(seed);
  for (std::size_t t = 0; t < trials; ++t) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 50'000'000;
    engine.seed = seeds.derive(t);
    const auto result = sim::run_slot_engine(network, factory, engine);
    if (!result.complete) continue;
    ++stats.completed;
    stats.slots.add(static_cast<double>(result.completion_slot));
    stats.energy.add(sim::total_activity(result.activity).energy());
  }
  return stats;
}

void BM_Energy_Alg3(benchmark::State& state) {
  const net::Network network = workload(12, 1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 50'000'000;
    engine.seed = seed++;
    const auto result = sim::run_slot_engine(
        network, core::make_algorithm3(kDeltaEst), engine);
    benchmark::DoNotOptimize(
        sim::total_activity(result.activity).energy());
  }
}
BENCHMARK(BM_Energy_Alg3);

void reproduce_table() {
  runner::print_banner(
      "E13 / energy to discovery",
      "baseline energy grows with |U| (idling through foreign channels); "
      "the paper's algorithms spend energy proportional to their slot "
      "count only",
      "clique n=8, uniform-random channels |A|=4, tx=1.0 rx=0.8 idle=0.05");

  auto csv_file = runner::open_results_csv("e13_energy");
  util::CsvWriter csv(csv_file);
  csv.header({"universe", "algorithm", "mean_slots", "mean_energy",
              "energy_per_link"});

  util::Table table({"|U|", "algorithm", "mean slots", "mean energy",
                     "energy/link"});
  std::map<net::ChannelId, double> baseline_energy;
  std::map<net::ChannelId, double> alg3_energy;
  for (const net::ChannelId universe : {12u, 96u, 384u}) {
    const net::Network network = workload(universe, 2);
    const double links = static_cast<double>(network.links().size());

    struct Entry {
      const char* name;
      sim::SyncPolicyFactory factory;
    };
    const Entry entries[] = {
        {"alg1", core::make_algorithm1(kDeltaEst)},
        {"alg3", core::make_algorithm3(kDeltaEst)},
        {"baseline", core::make_universal_baseline(universe, 0.5)},
    };
    for (const Entry& entry : entries) {
      const EnergyStats stats =
          measure(network, entry.factory, 25, 50 + universe);
      table.row()
          .cell(static_cast<std::size_t>(universe))
          .cell(entry.name)
          .cell(stats.slots.mean(), 1)
          .cell(stats.energy.mean(), 1)
          .cell(stats.energy.mean() / links, 2);
      csv.field(static_cast<std::size_t>(universe)).field(entry.name);
      csv.field(stats.slots.mean()).field(stats.energy.mean());
      csv.field(stats.energy.mean() / links);
      csv.end_row();
      if (std::string_view(entry.name) == "baseline") {
        baseline_energy[universe] = stats.energy.mean();
      } else if (std::string_view(entry.name) == "alg3") {
        alg3_energy[universe] = stats.energy.mean();
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  runner::print_verdict(
      baseline_energy[384] > 3.0 * baseline_energy[12],
      "baseline energy grows unboundedly with |U| (idle slots are cheap "
      "but not free)");
  runner::print_verdict(alg3_energy[384] < 2.0 * alg3_energy[12],
                        "alg3 energy roughly independent of |U|");
  runner::print_verdict(alg3_energy[384] < baseline_energy[384] / 2.0,
                        "at |U|=384 the paper's algorithm is >2x more "
                        "energy-efficient (and ~30x faster)");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e13_energy", reproduce_table,
      {{"experiment", "E13"},
       {"topology", "clique n=8"},
       {"set_size", "4"},
       {"energy", "tx=1.0 rx=0.8 idle=0.05"}});
}
