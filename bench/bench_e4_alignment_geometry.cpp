// E4 — Lemmas 4 & 7 (the frame geometry of Figures 1–4): with drift bound
// δ ≤ 1/7, (i) a frame of one node overlaps at most 3 frames of another,
// and (ii) for any instant T, among the first two full frames of two nodes
// after T some pair is aligned. Past the lemmas' thresholds (1/3 resp.
// 1/7) violations appear.
//
// Reproduced series: violation rates of both lemmas as δ sweeps across
// 0 … 0.45, sampled over random piecewise-drift clocks and offsets.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <algorithm>
#include <memory>

#include "runner/report.hpp"
#include "sim/clock.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr double kL = 3.0;

struct NodeTimeline {
  std::unique_ptr<sim::Clock> clock;
  double start = 0.0;

  [[nodiscard]] double frame_boundary(int k) const {
    const double local0 = clock->local_at_real(start);
    return clock->real_at_local(local0 + kL * k);
  }
  [[nodiscard]] double slot_boundary(int k, int j) const {
    const double local0 = clock->local_at_real(start);
    return clock->real_at_local(local0 + kL * k + kL / 3.0 * j);
  }
};

[[nodiscard]] NodeTimeline make_timeline(double delta, std::uint64_t seed,
                                         util::Rng& rng) {
  NodeTimeline t;
  t.clock = std::make_unique<sim::PiecewiseDriftClock>(
      sim::PiecewiseDriftClock::Config{.max_drift = delta,
                                       .min_segment = 2.0,
                                       .max_segment = 9.0,
                                       .offset = rng.uniform_double(-5.0,
                                                                    5.0)},
      seed);
  t.start = rng.uniform_double(0.0, kL);
  return t;
}

[[nodiscard]] int overlaps_of_frame(const NodeTimeline& self,
                                    const NodeTimeline& other, int k) {
  const double lo = self.frame_boundary(k);
  const double hi = self.frame_boundary(k + 1);
  int overlaps = 0;
  for (int m = 0; m < 100000; ++m) {
    const double g_lo = other.frame_boundary(m);
    if (g_lo >= hi) break;
    const double g_hi = other.frame_boundary(m + 1);
    if (g_lo < hi && g_hi > lo) ++overlaps;
  }
  return overlaps;
}

[[nodiscard]] bool aligned(const NodeTimeline& f, int kf,
                           const NodeTimeline& g, int kg) {
  const double g_lo = g.frame_boundary(kg);
  const double g_hi = g.frame_boundary(kg + 1);
  for (int j = 0; j < 3; ++j) {
    if (f.slot_boundary(kf, j) >= g_lo && f.slot_boundary(kf, j + 1) <= g_hi) {
      return true;
    }
  }
  return false;
}

[[nodiscard]] int first_full_frame_after(const NodeTimeline& t, double when) {
  for (int k = 0; k < 1000000; ++k) {
    if (t.frame_boundary(k) >= when) return k;
  }
  return 0;
}

struct ViolationRates {
  double lemma4 = 0.0;  // fraction of frames overlapping > 3 frames
  double lemma7 = 0.0;  // fraction of instants with no aligned pair in 2x2
};

[[nodiscard]] ViolationRates measure(double delta, int samples) {
  util::Rng rng(991);
  int lemma4_violations = 0;
  int lemma7_violations = 0;
  int lemma4_checks = 0;
  int lemma7_checks = 0;
  for (int s = 0; s < samples; ++s) {
    const NodeTimeline u =
        make_timeline(delta, 2 * static_cast<std::uint64_t>(s) + 1, rng);
    const NodeTimeline v =
        make_timeline(delta, 2 * static_cast<std::uint64_t>(s) + 2, rng);
    for (int k = 0; k < 40; ++k) {
      ++lemma4_checks;
      if (overlaps_of_frame(u, v, k) > 3) ++lemma4_violations;
    }
    for (int i = 0; i < 40; ++i) {
      const double t =
          std::max(u.start, v.start) + rng.uniform_double(0.0, 100.0);
      const int fv = first_full_frame_after(v, t);
      const int gu = first_full_frame_after(u, t);
      bool ok = false;
      for (int a = 0; a < 2 && !ok; ++a) {
        for (int b = 0; b < 2 && !ok; ++b) {
          ok = aligned(v, fv + a, u, gu + b);
        }
      }
      ++lemma7_checks;
      if (!ok) ++lemma7_violations;
    }
  }
  return {static_cast<double>(lemma4_violations) / lemma4_checks,
          static_cast<double>(lemma7_violations) / lemma7_checks};
}

void BM_AlignmentGeometry(benchmark::State& state) {
  const double delta = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    const auto rates = measure(delta, 5);
    benchmark::DoNotOptimize(rates.lemma4);
  }
}
BENCHMARK(BM_AlignmentGeometry)->Arg(0)->Arg(14)->Arg(33);

void reproduce_table() {
  runner::print_banner(
      "E4 / Lemmas 4 & 7",
      "delta <= 1/7: frame overlap <= 3 and an aligned pair exists among "
      "the first 2x2 frames after any instant",
      "random piecewise-drift clocks, random offsets, L=3, 3 slots/frame");

  auto csv_file = runner::open_results_csv("e4_alignment_geometry");
  util::CsvWriter csv(csv_file);
  csv.header({"delta", "lemma4_violation_rate", "lemma7_violation_rate"});

  util::Table table({"delta", "lemma4 violations", "lemma7 violations",
                     "within assumption?"});
  bool lemmas_hold_within_assumption = true;
  for (const double delta : {0.0, 0.05, 0.10, 1.0 / 7.0, 0.20, 1.0 / 3.0,
                             0.45}) {
    const auto rates = measure(delta, 50);
    const bool within = delta <= 1.0 / 7.0 + 1e-12;
    if (within && (rates.lemma4 > 0.0 || rates.lemma7 > 0.0)) {
      lemmas_hold_within_assumption = false;
    }
    table.row()
        .cell(delta, 4)
        .cell(rates.lemma4, 4)
        .cell(rates.lemma7, 4)
        .cell(within ? "yes" : "no");
    csv.field(delta).field(rates.lemma4).field(rates.lemma7);
    csv.end_row();
  }
  std::printf("%s\n", table.render().c_str());
  runner::print_verdict(lemmas_hold_within_assumption,
                        "zero violations of Lemma 4 and Lemma 7 for all "
                        "delta <= 1/7");
  std::printf(
      "expected shape: violation columns are exactly 0 up to 1/7; Lemma 7\n"
      "violations appear between 1/7 and 1/3; Lemma 4 violations appear\n"
      "beyond 1/3 (cf. the contradiction thresholds in the proofs).\n");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e4_alignment_geometry", reproduce_table,
      {{"experiment", "E4"},
       {"clocks", "piecewise_drift"},
       {"frame_length", "3"},
       {"slots_per_frame", "3"}});
}
