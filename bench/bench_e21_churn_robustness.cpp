// E21 — discovery under churn and bursty loss (extension; robustness of
// the paper's randomized schedules when the static-network assumptions of
// §III are violated). Nodes crash and recover on seed-derived schedules,
// links lose messages in Gilbert–Elliott bursts instead of i.i.d., and a
// combined row adds scheduled primary users switching on/off mid-run.
// Because every transmission slot is an independent random draw, the
// algorithms have no schedule state to corrupt: discovery should degrade
// smoothly with churn probability and burst severity, surviving-neighbor
// recall should stay near 1, and recovered nodes should be re-heard
// (time-to-rediscovery) without any protocol changes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "net/primary_user.hpp"
#include "net/topology_gen.hpp"
#include "runner/report.hpp"
#include "runner/trials.hpp"
#include "sim/fault_plan.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr std::size_t kDeltaEst = 8;
constexpr net::ChannelId kUniverse = 6;
constexpr std::size_t kTrials = 20;
constexpr std::uint64_t kMaxSlots = 2'000'000;

struct Deployment {
  net::Network network;
  std::vector<net::Point> positions;
};

[[nodiscard]] Deployment make_deployment(std::uint64_t seed) {
  util::Rng rng(seed);
  auto geo = net::make_connected_unit_disk(14, 1.0, 0.45, rng);
  net::Network network(
      geo.topology,
      std::vector<net::ChannelSet>(14, net::ChannelSet::full(kUniverse)));
  return {std::move(network), std::move(geo.positions)};
}

[[nodiscard]] sim::SlotFaultPlan churn_plan(double crash_probability) {
  sim::SlotFaultPlan plan;
  plan.churn.crash_probability = crash_probability;
  plan.churn.earliest_crash = 100;
  plan.churn.latest_crash = 1'500;
  plan.churn.min_down = 100;
  plan.churn.max_down = 600;
  plan.churn.reset_policy_on_recovery = true;
  return plan;
}

[[nodiscard]] sim::SlotFaultPlan burst_plan(double loss_bad) {
  sim::SlotFaultPlan plan;
  plan.burst_loss.enabled = true;
  plan.burst_loss.p_good_to_bad = 0.02;
  plan.burst_loss.p_bad_to_good = 0.1;
  plan.burst_loss.loss_good = 0.0;
  plan.burst_loss.loss_bad = loss_bad;
  return plan;
}

void BM_ChurnRobustness(benchmark::State& state) {
  const double crash = static_cast<double>(state.range(0)) / 100.0;
  const Deployment dep = make_deployment(1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = kMaxSlots;
    engine.seed = seed++;
    engine.faults = churn_plan(crash);
    const auto result = sim::run_slot_engine(
        dep.network, core::make_algorithm3(kDeltaEst), engine);
    benchmark::DoNotOptimize(result.completion_slot);
  }
}
BENCHMARK(BM_ChurnRobustness)->Arg(0)->Arg(40);

struct Row {
  std::string label;
  sim::SlotFaultPlan plan;
};

void reproduce_table() {
  runner::print_banner(
      "E21 / churn + bursty loss (extension)",
      "memoryless randomized schedules degrade smoothly under node churn "
      "and Gilbert-Elliott burst loss; recovered nodes are rediscovered",
      "unit disk n=14, |U|=6 all channels, alg3, crash window [100,1500] "
      "down [100,600], GE p_gb=0.02 p_bg=0.1, 20 trials/row");

  const Deployment dep = make_deployment(3);

  std::vector<Row> rows;
  rows.push_back({"fault-free", {}});
  for (const double p : {0.2, 0.4, 0.6}) {
    rows.push_back({"churn p=" + std::to_string(p).substr(0, 3),
                    churn_plan(p)});
  }
  for (const double bad : {0.5, 0.8, 0.95}) {
    rows.push_back({"burst bad=" + std::to_string(bad).substr(0, 4),
                    burst_plan(bad)});
  }
  {
    // Combined: churn + bursts + 6 licensed users switching on/off.
    Row combined{"combined", churn_plan(0.3)};
    combined.plan.burst_loss = burst_plan(0.8).burst_loss;
    util::Rng rng(7);
    const auto field = net::ScheduledPrimaryUserField::random(
        kUniverse, 6, 1.0, 0.2, 0.4, 3'000.0, 200.0, 800.0, rng);
    combined.plan.spectrum = field.users();
    combined.plan.positions = dep.positions;
    rows.push_back(std::move(combined));
  }

  auto csv_file = runner::open_results_csv("e21_churn_robustness");
  util::CsvWriter csv(csv_file);
  csv.header({"regime", "completed", "mean_slots", "surviving_recall",
              "ghost_entries", "recovered_links", "rediscovered_links",
              "mean_rediscovery"});

  util::Table table({"regime", "completed", "mean slots", "recall",
                     "ghosts", "rediscovered", "t-rediscover"});
  bool recall_high = true;
  bool clean_complete = true;
  bool some_rediscovery = false;
  for (const Row& row : rows) {
    runner::SyncTrialConfig trial;
    trial.trials = kTrials;
    trial.seed = 60;
    trial.engine.max_slots = kMaxSlots;
    trial.engine.faults = row.plan;
    const auto stats = runner::run_sync_trials(
        dep.network, core::make_algorithm3(kDeltaEst), trial);
    const runner::RobustnessStats& robust = stats.robustness;
    const util::Summary recall = robust.surviving_recall.summarize();
    const util::Summary ghosts = robust.ghost_entries.summarize();
    const util::Summary redisc = robust.rediscovery_times.summarize();
    const double mean_slots = stats.completion_slots.summarize().mean;
    if (!row.plan.any()) {
      clean_complete &= stats.completed == stats.trials;
    } else {
      recall_high &= recall.mean >= 0.9;
    }
    if (row.plan.churn.enabled()) {
      some_rediscovery |= robust.rediscovered_links > 0;
    }
    table.row()
        .cell(row.label)
        .cell(stats.completed)
        .cell(mean_slots, 1)
        .cell(robust.enabled() ? recall.mean : 1.0, 3)
        .cell(robust.enabled() ? ghosts.mean : 0.0, 1)
        .cell(robust.rediscovered_links)
        .cell(robust.rediscovery_times.count() > 0 ? redisc.mean : 0.0, 1);
    csv.field(row.label).field(stats.completed).field(mean_slots);
    csv.field(robust.enabled() ? recall.mean : 1.0);
    csv.field(robust.enabled() ? ghosts.mean : 0.0);
    csv.field(robust.recovered_links).field(robust.rediscovered_links);
    csv.field(robust.rediscovery_times.count() > 0 ? redisc.mean : 0.0);
    csv.end_row();
  }
  std::printf("%s\n", table.render().c_str());
  runner::print_verdict(clean_complete,
                        "fault-free row completes in every trial");
  runner::print_verdict(recall_high,
                        "surviving-neighbor recall stays >= 0.9 in every "
                        "fault regime");
  runner::print_verdict(some_rediscovery,
                        "recovered nodes are rediscovered under churn");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e21_churn_robustness", reproduce_table,
      {{"experiment", "E21"},
       {"topology", "unit_disk n=14"},
       {"universe", "6"},
       {"faults", "churn window [100,1500] down [100,600]; GE bursts; "
                  "6 scheduled PUs (combined row)"},
       {"trials_per_row", "20"}});
}
