// E20 — the deterministic comparison of §I: related work [20]–[22] gives
// deterministic algorithms whose time depends on the *product* of network
// size and universal-channel-set size (and needs ids, a known universe and
// synchronized starts). The randomized Algorithm 3 needs none of that and
// its time depends on S = max|A(u)|, not |U| or N·|U|.
//
// Reproduced series:
//   (a) sweep N at fixed |U|: deterministic time ∝ N, alg3 ~flat-ish;
//   (b) sweep |U| at fixed N (available sets in a fixed pool):
//       deterministic time ∝ |U|, alg3 flat. The product law in full.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/baseline_deterministic.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr std::size_t kDeltaEst = 16;

[[nodiscard]] net::Network pooled_workload(net::NodeId n,
                                           net::ChannelId universe,
                                           std::uint64_t seed) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kClique;
  config.n = n;
  config.channels = runner::ChannelKind::kUniformRandom;
  config.universe = 8;  // fixed pool; embedded into the agreed universe
  config.set_size = 4;
  const net::Network pool_net = runner::build_scenario(config, seed);
  std::vector<net::ChannelSet> embedded;
  embedded.reserve(pool_net.node_count());
  // Spread the pool across the universe (channel c -> c·|U|/8): available
  // channels are arbitrary ids, not the lowest ones, so the deterministic
  // round-robin really has to sweep the whole universal set.
  const net::ChannelId stride = universe / 8;
  for (net::NodeId u = 0; u < pool_net.node_count(); ++u) {
    net::ChannelSet s(universe);
    for (const net::ChannelId c : pool_net.available(u).to_vector()) {
      s.insert(c * stride);
    }
    embedded.push_back(std::move(s));
  }
  return net::Network(pool_net.topology(), std::move(embedded));
}

void BM_Deterministic(benchmark::State& state) {
  const auto n = static_cast<net::NodeId>(state.range(0));
  const net::Network network = pooled_workload(n, 32, 1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 10'000'000;
    engine.seed = seed++;
    const auto result = sim::run_slot_engine(
        network, core::make_deterministic_baseline(32), engine);
    benchmark::DoNotOptimize(result.completion_slot);
  }
}
BENCHMARK(BM_Deterministic)->Arg(8)->Arg(32);

void reproduce_table() {
  runner::print_banner(
      "E20 / deterministic baseline (cf. [20], [21], [22])",
      "deterministic discovery time follows the N x |U| product law; the "
      "randomized Alg 3 depends on S only",
      "clique, channel pool of 8 with |A|=4, 20 trials/row (deterministic "
      "rows have zero variance)");

  auto csv_file = runner::open_results_csv("e20_deterministic_baseline");
  util::CsvWriter csv(csv_file);
  csv.header({"series", "x", "det_mean_slots", "alg3_mean_slots",
              "product_nu"});

  auto run_pair = [&](const net::Network& network, net::ChannelId universe) {
    runner::SyncTrialConfig trial;
    trial.trials = 20;
    trial.seed = 5;
    trial.engine.max_slots = 10'000'000;
    const auto det = runner::run_sync_trials(
        network, core::make_deterministic_baseline(universe), trial);
    const auto alg3 = runner::run_sync_trials(
        network, core::make_algorithm3(kDeltaEst), trial);
    return std::make_pair(det.completion_slots.summarize().mean,
                          alg3.completion_slots.summarize().mean);
  };

  // (a) N sweep at fixed |U| = 32.
  util::Table table_n({"N", "deterministic slots", "alg3 slots",
                       "N x |U|"});
  std::vector<double> ns;
  std::vector<double> det_means_n;
  for (const net::NodeId n : {8u, 16u, 32u, 64u}) {
    const net::Network network = pooled_workload(n, 32, 2);
    const auto [det, alg3] = run_pair(network, 32);
    ns.push_back(n);
    det_means_n.push_back(det);
    table_n.row()
        .cell(static_cast<std::size_t>(n))
        .cell(det, 1)
        .cell(alg3, 1)
        .cell(static_cast<std::size_t>(n) * 32);
    csv.field("vs_n").field(static_cast<std::size_t>(n)).field(det);
    csv.field(alg3).field(static_cast<std::size_t>(n) * 32);
    csv.end_row();
  }
  std::printf("(a) N sweep at |U|=32:\n%s\n", table_n.render().c_str());

  // (b) |U| sweep at fixed N = 16.
  util::Table table_u({"|U|", "deterministic slots", "alg3 slots",
                       "N x |U|"});
  std::vector<double> us;
  std::vector<double> det_means_u;
  std::vector<double> alg3_means_u;
  for (const net::ChannelId universe : {8u, 16u, 32u, 64u}) {
    const net::Network network = pooled_workload(16, universe, 3);
    const auto [det, alg3] = run_pair(network, universe);
    us.push_back(universe);
    det_means_u.push_back(det);
    alg3_means_u.push_back(alg3);
    table_u.row()
        .cell(static_cast<std::size_t>(universe))
        .cell(det, 1)
        .cell(alg3, 1)
        .cell(16ul * universe);
    csv.field("vs_u").field(static_cast<std::size_t>(universe)).field(det);
    csv.field(alg3).field(16ul * universe);
    csv.end_row();
  }
  std::printf("(b) |U| sweep at N=16:\n%s\n", table_u.render().c_str());

  const auto fit_n = util::linear_fit(ns, det_means_n);
  const auto fit_u = util::linear_fit(us, det_means_u);
  runner::print_verdict(fit_n.r2 > 0.95 && fit_n.slope > 0.0,
                        "deterministic slots linear in N (r2 > 0.95)");
  runner::print_verdict(fit_u.r2 > 0.95 && fit_u.slope > 0.0,
                        "deterministic slots linear in |U| (r2 > 0.95)");
  const double alg3_spread =
      *std::max_element(alg3_means_u.begin(), alg3_means_u.end()) /
      *std::min_element(alg3_means_u.begin(), alg3_means_u.end());
  runner::print_verdict(alg3_spread < 2.0,
                        "alg3 unaffected by |U| (max/min < 2)");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e20_deterministic_baseline", reproduce_table,
      {{"experiment", "E20"},
       {"topology", "clique"},
       {"universe", "8"},
       {"set_size", "4"},
       {"trials_per_row", "20"}});
}
