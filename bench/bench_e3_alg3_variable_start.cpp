// E3 — Theorem 3: Algorithm 3 handles variable start times, completing
// within O((max(2S, Δ_est)/ρ)·log(N/ε)) slots after the last node starts —
// with NO log(Δ_est) factor (no stages), but a linear dependence on Δ_est.
//
// Reproduced series:
//   (a) robustness to start-time spread: slots-after-T_s stays flat as the
//       spread grows (Algorithm 1, which assumes identical starts, is run
//       alongside to show it degrades).
//   (b) dependence on Δ_est: Alg 3 grows ~linearly in Δ_est while Alg 1
//       grows ~log Δ_est — the trade the paper calls out ("the running
//       time... depends linearly on the value of the upper bound").
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr double kEpsilon = 0.1;
constexpr std::size_t kDeltaEst = 16;

[[nodiscard]] net::Network workload(std::uint64_t seed) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kUnitDisk;
  config.n = 24;
  config.ud_radius = 0.35;
  config.channels = runner::ChannelKind::kUniformRandom;
  config.universe = 10;
  config.set_size = 4;
  return runner::build_scenario(config, seed);
}

// Random start slots in [0, spread], derived from the trial index.
void randomize_starts(const net::Network& network, std::uint64_t spread,
                      std::uint64_t trial, sim::SlotEngineConfig& engine) {
  util::Rng rng(util::SeedSequence(4711).derive(trial, spread));
  engine.starts.assign(network.node_count(), 0);
  std::uint64_t latest = 0;
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    engine.starts[u] = spread == 0 ? 0 : rng.uniform(spread + 1);
    latest = std::max(latest, engine.starts[u]);
  }
  // Ensure the spread is actually realized so "slots after T_s" compares
  // like with like.
  if (network.node_count() > 0) engine.starts[0] = spread;
}

void BM_Alg3_Discover(benchmark::State& state) {
  const auto spread = static_cast<std::uint64_t>(state.range(0));
  const net::Network network = workload(1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 10'000'000;
    engine.seed = seed++;
    randomize_starts(network, spread, seed, engine);
    const auto result = sim::run_slot_engine(
        network, core::make_algorithm3(kDeltaEst), engine);
    benchmark::DoNotOptimize(result.completion_slot);
  }
}
BENCHMARK(BM_Alg3_Discover)->Arg(0)->Arg(64)->Arg(512);

// Mean slots from T_s (the last start) to completion.
[[nodiscard]] double mean_slots_after_ts(const net::Network& network,
                                         const sim::SyncPolicyFactory& factory,
                                         std::uint64_t spread,
                                         std::uint64_t seed_base) {
  util::RunningStats stats;
  for (std::uint64_t t = 0; t < 30; ++t) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 20'000'000;
    engine.seed = seed_base + t;
    randomize_starts(network, spread, t, engine);
    const auto result = sim::run_slot_engine(network, factory, engine);
    if (result.complete) {
      stats.add(static_cast<double>(result.completion_slot) -
                static_cast<double>(spread));
    }
  }
  return stats.mean();
}

void reproduce_table() {
  runner::print_banner(
      "E3 / Theorem 3",
      "Alg 3 completes within O((max(2S,D_est)/rho) log(N/eps)) slots after "
      "T_s, for any start-time spread",
      "unit disk n=24, uniform-random channels |U|=10 |A|=4, eps=0.1");

  auto csv_file = runner::open_results_csv("e3_alg3_variable_start");
  util::CsvWriter csv(csv_file);
  csv.header({"series", "x", "alg3_slots_after_ts", "alg1_slots_after_ts",
              "thm3_bound"});

  const net::Network network = workload(2);
  const double bound = core::theorem3_slot_bound(
      benchx::bound_params(network, kDeltaEst, kEpsilon));

  // (a) start-time spread sweep.
  util::Table table_spread({"spread (slots)", "alg3 after T_s",
                            "alg1 after T_s", "thm3 bound"});
  double alg3_flatness_min = 1e300;
  double alg3_flatness_max = 0.0;
  for (const std::uint64_t spread : {0ull, 16ull, 64ull, 256ull, 1024ull}) {
    const double alg3 = mean_slots_after_ts(
        network, core::make_algorithm3(kDeltaEst), spread, 100);
    const double alg1 = mean_slots_after_ts(
        network, core::make_algorithm1(kDeltaEst), spread, 200);
    alg3_flatness_min = std::min(alg3_flatness_min, alg3);
    alg3_flatness_max = std::max(alg3_flatness_max, alg3);
    table_spread.row()
        .cell(spread)
        .cell(alg3, 1)
        .cell(alg1, 1)
        .cell(bound, 0);
    csv.field("vs_spread").field(spread).field(alg3).field(alg1).field(bound);
    csv.end_row();
  }
  std::printf("(a) start-time spread (alg3 must stay flat):\n%s\n",
              table_spread.render().c_str());
  runner::print_verdict(
      alg3_flatness_max <= 3.0 * alg3_flatness_min,
      "alg3 slots-after-T_s roughly flat across spreads (within 3x)");

  // (b) Δ_est sweep with identical starts: linear (alg3) vs log (alg1).
  util::Table table_dest({"D_est", "alg3 mean slots", "alg1 mean slots"});
  std::vector<double> dests;
  std::vector<double> alg3_means;
  for (const std::size_t dest : {8ul, 16ul, 32ul, 64ul, 128ul}) {
    runner::SyncTrialConfig trial;
    trial.trials = 30;
    trial.seed = 300 + dest;
    trial.engine.max_slots = 20'000'000;
    const auto alg3 = runner::run_sync_trials(
        network, core::make_algorithm3(dest), trial);
    const auto alg1 = runner::run_sync_trials(
        network, core::make_algorithm1(dest), trial);
    const double m3 = alg3.completion_slots.summarize().mean;
    const double m1 = alg1.completion_slots.summarize().mean;
    dests.push_back(static_cast<double>(dest));
    alg3_means.push_back(m3);
    table_dest.row().cell(dest).cell(m3, 1).cell(m1, 1);
    csv.field("vs_dest").field(dest).field(m3).field(m1).field(bound);
    csv.end_row();
  }
  std::printf("(b) D_est dependence (alg3 linear, alg1 logarithmic):\n%s\n",
              table_dest.render().c_str());
  const auto fit = util::linear_fit(dests, alg3_means);
  runner::print_verdict(fit.r2 > 0.95 && fit.slope > 0.0,
                        "alg3 mean slots fit a linear trend in D_est "
                        "(r2 > 0.95)");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e3_alg3_variable_start", reproduce_table,
      {{"experiment", "E3"},
       {"topology", "unit_disk n=24"},
       {"universe", "10"},
       {"set_size", "4"},
       {"epsilon", "0.1"}});
}
