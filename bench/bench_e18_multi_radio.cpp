// E18 — multiple transceivers (extension; model of related work [19]).
// The paper's single-transceiver model (§II) is the hard case; [19]
// assumes several interfaces per node. Striping the spectrum across R
// radios runs R parallel Algorithm-3 instances:
//   - each stripe has ≈ S/R channels, so per-stripe rendezvous is R× more
//     likely, and
//   - R stripes progress simultaneously,
// predicting a superlinear (up to R²-ish, until contention saturates)
// latency reduction. This bench measures the speedup curve.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "core/multi_radio.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr std::size_t kDeltaEst = 12;

[[nodiscard]] net::Network workload(std::uint64_t seed) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kClique;
  config.n = 10;
  config.channels = runner::ChannelKind::kHomogeneous;
  config.universe = 8;
  config.set_size = 8;
  return runner::build_scenario(config, seed);
}

void BM_MultiRadio(benchmark::State& state) {
  const auto radios = static_cast<unsigned>(state.range(0));
  const net::Network network = workload(1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::MultiRadioEngineConfig engine;
    engine.max_slots = 5'000'000;
    engine.seed = seed++;
    const auto result = sim::run_multi_radio_engine(
        network, core::make_multi_radio_alg3(radios, kDeltaEst), engine);
    benchmark::DoNotOptimize(result.completion_slot);
  }
}
BENCHMARK(BM_MultiRadio)->Arg(1)->Arg(2)->Arg(4);

void reproduce_table() {
  runner::print_banner(
      "E18 / multiple transceivers (extension; cf. [19])",
      "R spectrum-striped radios run R parallel Alg-3 instances: latency "
      "drops superlinearly in R until contention saturates",
      "clique n=10, homogeneous channels |U|=|A|=8, 30 trials/row");

  auto csv_file = runner::open_results_csv("e18_multi_radio");
  util::CsvWriter csv(csv_file);
  csv.header({"radios", "mean_slots", "p95_slots", "speedup_vs_r1"});

  const net::Network network = workload(2);

  util::Table table({"radios R", "mean slots", "p95 slots",
                     "speedup vs R=1"});
  std::vector<double> radio_counts;
  std::vector<double> means;
  double r1_mean = 0.0;
  bool monotone = true;
  double previous = 1e300;
  for (const unsigned radios : {1u, 2u, 4u, 8u}) {
    // The root seed 80+radios reproduces the per-trial seeds of earlier
    // revisions (the runner derives trial t's seed the same way), so the
    // completion statistics are bit-identical to the direct-loop version.
    runner::MultiRadioTrialConfig trial;
    trial.trials = 30;
    trial.seed = 80 + radios;
    trial.engine.max_slots = 5'000'000;
    const auto stats = runner::run_multi_radio_trials(
        network, core::make_multi_radio_alg3(radios, kDeltaEst), trial);
    const auto summary = stats.completion_slots.summarize();
    if (radios == 1) r1_mean = summary.mean;
    monotone &= summary.mean <= previous * 1.1;  // noise margin
    previous = summary.mean;
    radio_counts.push_back(radios);
    means.push_back(summary.mean);
    table.row()
        .cell(static_cast<std::size_t>(radios))
        .cell(summary.mean, 1)
        .cell(summary.p95, 1)
        .cell(benchx::ratio(r1_mean, summary.mean), 2);
    csv.field(static_cast<std::size_t>(radios)).field(summary.mean);
    csv.field(summary.p95).field(benchx::ratio(r1_mean, summary.mean));
    csv.end_row();
  }
  std::printf("%s\n", table.render().c_str());

  util::PlotOptions plot;
  plot.x_label = "radios per node";
  plot.y_label = "mean discovery slots";
  std::printf("%s\n", util::ascii_plot(radio_counts, means, plot).c_str());

  runner::print_verdict(monotone, "latency non-increasing in R");
  runner::print_verdict(means.front() > 2.5 * means[1],
                        "R=2 beats R=1 by more than 2.5x (superlinear: "
                        "stripes shrink AND parallelize)");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e18_multi_radio", reproduce_table,
      {{"experiment", "E18"},
       {"topology", "clique n=10"},
       {"channels", "homogeneous |U|=8"},
       {"radios", "swept"},
       {"trials_per_row", "30"}});
}
