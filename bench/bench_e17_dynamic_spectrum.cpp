// E17 — dynamic primary users (extension; the CR motivation of §I/§II made
// temporal). Licensed users appear and disappear with a duty cycle d;
// while active near a node they jam reception and force the node to vacate
// the channel for transmission. A channel is usable for a link only when
// free at both ends, so the effective per-slot coverage probability scales
// roughly with the probability both endpoints see the channel free —
// discovery time should grow smoothly with duty cycle and remain complete
// as long as some spectrum is free often enough.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "net/primary_user.hpp"
#include "net/topology_gen.hpp"
#include "runner/report.hpp"
#include "sim/slot_engine.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr std::size_t kDeltaEst = 8;
constexpr net::ChannelId kUniverse = 6;

struct Deployment {
  net::Network network;
  std::vector<net::Point> positions;
};

[[nodiscard]] Deployment make_deployment(std::uint64_t seed) {
  util::Rng rng(seed);
  auto geo = net::make_connected_unit_disk(14, 1.0, 0.45, rng);
  net::Network network(
      geo.topology,
      std::vector<net::ChannelSet>(14, net::ChannelSet::full(kUniverse)));
  return {std::move(network), std::move(geo.positions)};
}

void BM_DynamicSpectrum(benchmark::State& state) {
  const double duty = static_cast<double>(state.range(0)) / 100.0;
  const Deployment dep = make_deployment(1);
  util::Rng rng(2);
  const auto field = net::DynamicPrimaryUserField::random(
      kUniverse, 10, 1.0, 0.2, 0.4, 300, duty, rng);
  const auto schedule = field.interference_for(dep.positions);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 5'000'000;
    engine.seed = seed++;
    engine.interference = schedule;
    const auto result = sim::run_slot_engine(
        dep.network, core::make_algorithm3(kDeltaEst), engine);
    benchmark::DoNotOptimize(result.completion_slot);
  }
}
BENCHMARK(BM_DynamicSpectrum)->Arg(0)->Arg(50);

void reproduce_table() {
  runner::print_banner(
      "E17 / dynamic primary users (extension)",
      "discovery stays complete under on/off licensed users; latency grows "
      "smoothly with PU duty cycle",
      "unit disk n=14, |U|=6 all channels, 10 PUs period=300 slots, "
      "25 trials/row");

  auto csv_file = runner::open_results_csv("e17_dynamic_spectrum");
  util::CsvWriter csv(csv_file);
  csv.header({"duty", "completed", "mean_slots", "p95_slots",
              "mean_vs_clean"});

  const Deployment dep = make_deployment(3);

  util::Table table({"PU duty", "completed", "mean slots", "p95 slots",
                     "vs duty=0"});
  double clean_mean = 0.0;
  double previous_mean = 0.0;
  bool monotone = true;
  bool all_complete = true;
  for (const double duty : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    util::Rng rng(4);  // same PU geometry per row; only duty varies
    const auto field = net::DynamicPrimaryUserField::random(
        kUniverse, 10, 1.0, 0.2, 0.4, 300, duty, rng);
    const auto schedule = field.interference_for(dep.positions);

    util::Samples slots;
    std::size_t completed = 0;
    constexpr std::size_t kTrials = 25;
    const util::SeedSequence seeds(60);
    for (std::size_t t = 0; t < kTrials; ++t) {
      sim::SlotEngineConfig engine;
      engine.max_slots = 5'000'000;
      engine.seed = seeds.derive(t);
      engine.interference = schedule;
      const auto result = sim::run_slot_engine(
          dep.network, core::make_algorithm3(kDeltaEst), engine);
      if (!result.complete) continue;
      ++completed;
      slots.add(static_cast<double>(result.completion_slot));
    }
    all_complete &= completed == kTrials;
    const auto summary = slots.summarize();
    if (duty == 0.0) clean_mean = summary.mean;
    // Allow small non-monotone wiggle from noise.
    if (summary.mean < previous_mean * 0.7) monotone = false;
    previous_mean = summary.mean;
    table.row()
        .cell(duty, 1)
        .cell(completed)
        .cell(summary.mean, 1)
        .cell(summary.p95, 1)
        .cell(benchx::ratio(summary.mean, clean_mean), 2);
    csv.field(duty).field(completed).field(summary.mean).field(summary.p95);
    csv.field(benchx::ratio(summary.mean, clean_mean));
    csv.end_row();
  }
  std::printf("%s\n", table.render().c_str());
  runner::print_verdict(all_complete,
                        "discovery completes at every PU duty cycle up to "
                        "0.8");
  runner::print_verdict(monotone,
                        "latency grows (within noise) with duty cycle");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e17_dynamic_spectrum", reproduce_table,
      {{"experiment", "E17"},
       {"topology", "unit_disk n=14"},
       {"universe", "6"},
       {"primary_users", "10 period=300 duty swept"},
       {"trials_per_row", "25"}});
}
