// E11 — §V extension (a): asymmetric communication graphs. The paper claims
// the algorithms extend to asymmetric graphs; here every undirected edge
// loses one direction with probability p_asym and we verify discovery of
// the *directed* ground truth still completes, with latency comparable to
// the symmetric baseline (per remaining link there is no structural
// penalty — only fewer links to cover).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr std::size_t kDeltaEst = 16;

[[nodiscard]] runner::ScenarioConfig base_config(double drop) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kErdosRenyi;
  config.n = 16;
  config.er_edge_probability = 0.5;
  config.channels = runner::ChannelKind::kUniformRandom;
  config.universe = 10;
  config.set_size = 4;
  config.asymmetric_drop = drop;
  return config;
}

void BM_Asymmetric_Alg3(benchmark::State& state) {
  const double drop = static_cast<double>(state.range(0)) / 100.0;
  const net::Network network = runner::build_scenario(base_config(drop), 1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 10'000'000;
    engine.seed = seed++;
    const auto result = sim::run_slot_engine(
        network, core::make_algorithm3(kDeltaEst), engine);
    benchmark::DoNotOptimize(result.completion_slot);
  }
}
BENCHMARK(BM_Asymmetric_Alg3)->Arg(0)->Arg(50)->Arg(100);

void reproduce_table() {
  runner::print_banner(
      "E11 / asymmetric communication graphs (SV extension a)",
      "discovery of the directed ground truth completes on asymmetric "
      "graphs; per-link latency comparable to the symmetric case",
      "Erdos-Renyi n=16 p=0.5, uniform-random channels |U|=10 |A|=4");

  auto csv_file = runner::open_results_csv("e11_asymmetric");
  util::CsvWriter csv(csv_file);
  csv.header({"asym_drop", "links", "success_rate", "alg1_mean", "alg3_mean",
              "alg4_mean_frames"});

  util::Table table({"p_asym", "links", "success", "alg1 mean", "alg3 mean",
                     "alg4 mean frames"});
  bool all_complete = true;
  double sym_per_link = 0.0;
  double worst_per_link_ratio = 0.0;
  for (const double drop : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const net::Network network = runner::build_scenario(base_config(drop), 2);

    runner::SyncTrialConfig sync_trial;
    sync_trial.trials = 30;
    sync_trial.seed = 30 + static_cast<std::uint64_t>(drop * 100);
    sync_trial.engine.max_slots = 10'000'000;
    const auto alg1 = runner::run_sync_trials(
        network, core::make_algorithm1(kDeltaEst), sync_trial);
    const auto alg3 = runner::run_sync_trials(
        network, core::make_algorithm3(kDeltaEst), sync_trial);

    runner::AsyncTrialConfig async_trial;
    async_trial.trials = 15;
    async_trial.seed = sync_trial.seed;
    async_trial.engine.frame_length = 3.0;
    async_trial.engine.max_real_time = 1e7;
    const auto alg4 = runner::run_async_trials(
        network, core::make_algorithm4(kDeltaEst), async_trial);

    all_complete &= alg1.completed == alg1.trials &&
                    alg3.completed == alg3.trials &&
                    alg4.completed == alg4.trials;

    const double m1 = alg1.completion_slots.summarize().mean;
    const double m3 = alg3.completion_slots.summarize().mean;
    const double m4 = alg4.max_full_frames.summarize().mean;
    const double per_link =
        m3 / static_cast<double>(network.links().size());
    if (drop == 0.0) {
      sym_per_link = per_link;
    } else {
      worst_per_link_ratio =
          std::max(worst_per_link_ratio, per_link / sym_per_link);
    }
    table.row()
        .cell(drop, 2)
        .cell(network.links().size())
        .cell(alg3.success_rate(), 2)
        .cell(m1, 1)
        .cell(m3, 1)
        .cell(m4, 1);
    csv.field(drop).field(network.links().size());
    csv.field(alg3.success_rate()).field(m1).field(m3).field(m4);
    csv.end_row();
  }
  std::printf("%s\n", table.render().c_str());
  runner::print_verdict(all_complete,
                        "all three algorithms complete on every asymmetry "
                        "level");
  runner::print_verdict(worst_per_link_ratio < 4.0,
                        "per-link discovery cost stays within 4x of the "
                        "symmetric case");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e11_asymmetric", reproduce_table,
      {{"experiment", "E11"},
       {"topology", "erdos_renyi n=16 p=0.5 asymmetric"},
       {"universe", "10"},
       {"set_size", "4"}});
}
