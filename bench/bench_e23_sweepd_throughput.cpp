// E23 — sweep-service throughput (docs/BENCHMARKS.md).
//
// The sweep daemon's value proposition is operational: shard a spec's
// trials across forked workers without changing a single output bit, and
// answer repeated submissions from the artifact cache without re-running
// anything. This bench puts numbers on both claims:
//
//   1. a trials/sec-vs-workers curve for the in-process sharded executor
//      (service::run_sweep) at workers 1, 2, 4, 8. On a multi-core host
//      this is a scaling curve; on a single core (CI) it isolates the
//      fork/pipe/streaming overhead a worker costs, which is the number
//      that must stay small for sharding to ever pay off. And
//   2. end-to-end spool throughput through run_daemon(--once): J specs
//      submitted cold (every job executes) and then warm (every job is a
//      cache hit), reported as specs/sec for each worker count.
//
// Bit-identity of the sharded results is pinned by
// tests/sweep_service_test.cpp; this binary only asserts the cheap
// proxies (all jobs reach done/, warm submissions all hit) and reports
// throughput.
//
// CI smoke caps the sweep with M2HEW_E23_MAX_WORKERS (e.g. 2); without
// the env var the full curve runs and regenerates results/BENCH_e23.json.
#include <benchmark/benchmark.h>

#include <stdlib.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/artifact_cache.hpp"
#include "service/daemon.hpp"
#include "service/sweep_runner.hpp"
#include "service/sweep_spec.hpp"
#include "util/csv.hpp"
#include "util/ini.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

// The workload: a faulted two-point overlap sweep on the chain scenario —
// small enough that a cold batch finishes in seconds, faulted so the
// streaming reduction carries the full RobustnessStats record layout.
constexpr const char* kSpecText = R"(
[experiment]
name = e23_sweepd
algorithm = alg3
delta-est = 4
trials = 24
seed = 3
max-slots = 60000
sweep-key = overlap
sweep-values = 4 2

[scenario]
topology = line
channels = chain
n = 8
set-size = 4

[faults]
crash-prob = 0.4
crash-from = 50
crash-until = 2000
down-min = 50
down-max = 500
burst-loss = 0.8
burst-p-gb = 0.05
burst-p-bg = 0.2
)";

constexpr std::size_t kJobs = 4;  // specs per daemon batch

[[nodiscard]] std::size_t max_workers() {
  const char* env = std::getenv("M2HEW_E23_MAX_WORKERS");
  return env == nullptr ? 8 : std::strtoull(env, nullptr, 10);
}

/// The base spec with a distinct seed, so each job is a distinct cache
/// entry (ini parsing keeps the last assignment of a repeated key).
[[nodiscard]] service::SweepSpec make_spec(std::uint64_t seed) {
  const std::string text = std::string(kSpecText) + "[experiment]\nseed = " +
                           std::to_string(seed) + "\n";
  const util::IniFile ini = util::IniFile::parse_string(text);
  service::SweepSpec spec;
  std::string error;
  if (!service::parse_sweep_spec(ini, spec, &error)) {
    std::fprintf(stderr, "e23: bad embedded spec: %s\n", error.c_str());
    std::exit(1);
  }
  return spec;
}

[[nodiscard]] double seconds_since(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Timed section 1: the sharded executor itself, one full sweep per
// iteration. trials_per_s is the headline scaling number.
void BM_ShardedSweep(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const service::SweepSpec spec = make_spec(3);
  const std::size_t trials_per_sweep = spec.trials * spec.sweep_values.size();
  for (auto _ : state) {
    service::SweepResult result;
    std::string error;
    if (!service::run_sweep(spec, workers, result, &error)) {
      state.SkipWithError(error.c_str());
      return;
    }
    benchmark::DoNotOptimize(result.points.data());
  }
  state.counters["trials_per_s"] = benchmark::Counter(
      static_cast<double>(trials_per_sweep),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ShardedSweep)->ArgNames({"workers"})->Arg(1)->Arg(2)->Arg(4);

// Timed section 2: the warm path — canonicalize, hash, probe the cache.
// This is all a cache-hit submission costs besides spool bookkeeping.
void BM_CacheProbe(benchmark::State& state) {
  char tmpl[] = "/tmp/m2hew_e23_probe_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  const service::ArtifactCache cache(std::string(tmpl) + "/cache");
  const service::SweepSpec spec = make_spec(3);
  if (!cache.store(service::scenario_hash_hex(spec), "{}\n")) {
    state.SkipWithError("cache store failed");
    return;
  }
  for (auto _ : state) {
    const std::string key = service::scenario_hash_hex(spec);
    benchmark::DoNotOptimize(cache.contains(key));
  }
}
BENCHMARK(BM_CacheProbe);

/// Submits `count` distinct-seed copies of the base spec into the spool
/// under the given job-name prefix.
void submit_jobs(const std::string& spool, const std::string& prefix,
                 std::size_t count) {
  for (std::size_t j = 0; j < count; ++j) {
    std::ofstream out(spool + "/incoming/" + prefix + std::to_string(j) +
                      ".ini");
    out << kSpecText << "[experiment]\nseed = " << (100 + j) << "\n";
  }
}

/// Reads status/<job>.json and reports whether it reached `state` with the
/// given cache disposition.
[[nodiscard]] bool job_finished(const std::string& spool,
                                const std::string& job, const char* cache) {
  std::ifstream in(spool + "/status/" + job + ".json");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str().find("\"state\": \"done\"") != std::string::npos &&
         text.str().find(std::string("\"cache\": \"") + cache + "\"") !=
             std::string::npos;
}

void reproduce_table() {
  runner::print_banner(
      "E23 / sweep-daemon throughput",
      "sharded streaming execution costs only modest per-worker overhead "
      "(and scales with available cores), while resubmissions are answered "
      "from the artifact cache at near-zero cost",
      "chain scenario n=8, Alg 3 D_est=4, 24 trials x 2 sweep points per "
      "spec, churn+burst faults, 4 specs per daemon batch");

  auto csv_file = runner::open_results_csv("e23_sweepd_throughput");
  util::CsvWriter csv(csv_file);
  csv.header({"workers", "jobs", "trials_total", "cold_s", "cold_specs_per_s",
              "cold_trials_per_s", "warm_s", "warm_specs_per_s"});

  char tmpl[] = "/tmp/m2hew_e23_spool_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    runner::print_verdict(false, "mkdtemp failed; no daemon runs executed");
    return;
  }
  const std::string root = tmpl;

  const service::SweepSpec probe = make_spec(100);
  const std::size_t trials_total =
      kJobs * probe.trials * probe.sweep_values.size();
  const std::size_t cap = max_workers();

  util::Table table({"workers", "mode", "specs/sec", "trials/sec",
                     "elapsed s"});
  bool all_ok = true;

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    if (workers > cap) continue;
    // A fresh spool per worker count: the cold pass must actually be cold.
    const std::string spool = root + "/w" + std::to_string(workers);
    service::DaemonConfig config;
    config.spool_dir = spool;
    config.workers = workers;
    config.once = true;

    // First --once run on the empty spool creates the directory layout.
    if (service::run_daemon(config) != 0) {
      all_ok = false;
      continue;
    }
    submit_jobs(spool, "cold", kJobs);
    auto start = std::chrono::steady_clock::now();
    all_ok = all_ok && service::run_daemon(config) == 0;
    const double cold_s = seconds_since(start);

    submit_jobs(spool, "warm", kJobs);
    start = std::chrono::steady_clock::now();
    all_ok = all_ok && service::run_daemon(config) == 0;
    const double warm_s = seconds_since(start);

    for (std::size_t j = 0; j < kJobs; ++j) {
      all_ok =
          all_ok && job_finished(spool, "cold" + std::to_string(j), "miss");
      all_ok =
          all_ok && job_finished(spool, "warm" + std::to_string(j), "hit");
    }

    const double cold_specs = static_cast<double>(kJobs) / cold_s;
    const double cold_trials = static_cast<double>(trials_total) / cold_s;
    const double warm_specs = static_cast<double>(kJobs) / warm_s;
    csv.field(workers).field(kJobs).field(trials_total);
    csv.field(cold_s).field(cold_specs).field(cold_trials);
    csv.field(warm_s).field(warm_specs);
    csv.end_row();
    table.row().cell(workers).cell("cold").cell(cold_specs, 1)
        .cell(cold_trials, 0).cell(cold_s, 3);
    table.row().cell(workers).cell("warm").cell(warm_specs, 1)
        .cell(0.0, 0).cell(warm_s, 3);
  }

  std::printf("\n%s\n", table.render().c_str());
  runner::print_verdict(
      all_ok,
      "every cold job executed to done/miss and every warm resubmission "
      "was answered done/hit from the artifact cache");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cap = std::to_string(max_workers());
  return m2hew::benchx::bench_main(
      argc, argv, "e23_sweepd_throughput", reproduce_table,
      {{"scenario", "line/chain n=8 set-size=4"},
       {"policy", "algorithm3 delta_est=4"},
       {"faults", "churn crash-prob=0.4 + burst-loss=0.8"},
       {"trials_per_spec", "24 x 2 sweep points"},
       {"jobs_per_batch", std::to_string(kJobs)},
       {"workers", "1,2,4,8 (capped at " + cap + ")"},
       {"cache", "cold (execute) vs warm (artifact-cache hit)"}});
}
