// E19 — Lemma 8's admissible-sequence density. The lemma guarantees that
// any M full frames of two nodes contain an admissible sequence of ≥ M/6
// frame pairs; Theorem 9 inherits its 48 = 8·6 constant from this 1/6.
// We run the proof's construction on random drifting clocks and measure
// the density actually achieved — showing how much of Theorem 9's headroom
// (cf. E5: ~40–100×) comes from this combinatorial step alone.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <memory>

#include "runner/report.hpp"
#include "sim/admissible.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr double kL = 3.0;
constexpr std::size_t kFrames = 600;

struct DensitySample {
  double density = 0.0;  // |sigma| / frames
  bool admissible = false;
};

[[nodiscard]] DensitySample sample_density(double delta, std::uint64_t seed) {
  util::Rng rng(seed);
  auto make_clock = [&](std::uint64_t clock_seed) {
    return std::make_unique<sim::PiecewiseDriftClock>(
        sim::PiecewiseDriftClock::Config{.max_drift = delta,
                                         .min_segment = 5.0,
                                         .max_segment = 20.0,
                                         .offset =
                                             rng.uniform_double(-9.0, 9.0)},
        clock_seed);
  };
  const auto cv = make_clock(seed * 4 + 1);
  const auto cu = make_clock(seed * 4 + 2);
  const auto cw = make_clock(seed * 4 + 3);
  const auto v = sim::build_frames(*cv, rng.uniform_double(0.0, kL), kL,
                                   kFrames);
  const auto u = sim::build_frames(*cu, rng.uniform_double(0.0, kL), kL,
                                   kFrames);
  const auto w = sim::build_frames(*cw, rng.uniform_double(0.0, kL), kL,
                                   kFrames);
  const auto sigma = sim::construct_admissible_sequence(v, u);
  DensitySample out;
  out.density =
      static_cast<double>(sigma.size()) / static_cast<double>(kFrames);
  out.admissible = sim::verify_admissible_sequence(sigma, v, u, {v, u, w});
  return out;
}

void BM_AdmissibleConstruction(benchmark::State& state) {
  const double delta = static_cast<double>(state.range(0)) / 100.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto sample = sample_density(delta, seed++);
    benchmark::DoNotOptimize(sample.density);
  }
}
BENCHMARK(BM_AdmissibleConstruction)->Arg(0)->Arg(14);

void reproduce_table() {
  runner::print_banner(
      "E19 / Lemma 8 admissible-sequence density",
      "any M full frames contain an admissible sequence of >= M/6 pairs; "
      "measured density shows the 1/6 is conservative",
      "random piecewise-drift clocks, 600 frames/node, 40 instances/row");

  auto csv_file = runner::open_results_csv("e19_admissible_density");
  util::CsvWriter csv(csv_file);
  csv.header({"delta", "mean_density", "min_density", "lemma_bound",
              "all_admissible"});

  util::Table table({"delta", "mean density", "min density", "lemma bound",
                     "all admissible?"});
  bool all_above_bound = true;
  bool all_admissible = true;
  for (const double delta : {0.0, 0.05, 0.1, 1.0 / 7.0}) {
    util::RunningStats density;
    bool admissible = true;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
      const auto sample = sample_density(delta, seed);
      density.add(sample.density);
      admissible &= sample.admissible;
    }
    // Edge effects at the horizon cost at most ~2 pairs out of 100+.
    all_above_bound &= density.min() >= 1.0 / 6.0 - 0.01;
    all_admissible &= admissible;
    table.row()
        .cell(delta, 4)
        .cell(density.mean(), 4)
        .cell(density.min(), 4)
        .cell(1.0 / 6.0, 4)
        .cell(admissible ? "yes" : "NO");
    csv.field(delta).field(density.mean()).field(density.min());
    csv.field(1.0 / 6.0).field(admissible ? 1.0 : 0.0);
    csv.end_row();
  }
  std::printf("%s\n", table.render().c_str());
  runner::print_verdict(all_admissible,
                        "every constructed sequence satisfies Definition 4 "
                        "(checked against a third party's frames too)");
  runner::print_verdict(all_above_bound,
                        "measured density always >= the Lemma 8 bound of "
                        "1/6");
  std::printf(
      "reading: the construction achieves ~2x the guaranteed density "
      "(~1/3),\nwhich accounts for a factor ~2 of Theorem 9's measured "
      "headroom in E5;\nthe rest comes from Lemma 5's per-pair coverage "
      "slack (E9: ~10x).\n");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e19_admissible_density", reproduce_table,
      {{"experiment", "E19"},
       {"clocks", "piecewise_drift"},
       {"frames_per_node", "600"},
       {"instances_per_row", "40"}});
}
