// E22 — SoA slot-kernel scaling (docs/BENCHMARKS.md).
//
// The paper's asymptotic claims live at node counts the object-per-node
// slot engine cannot reach: its DiscoveryState alone is an N² matrix. The
// structure-of-arrays kernel (sim/soa_kernel.hpp) replaces it with flat
// per-node arrays and CSR coverage, which is what this bench measures:
//
//   1. a slots/sec-vs-N curve, N = 10³..10⁶, on the two sparse families
//      the large-N story needs (bucketed unit-disk and skip-sampled
//      Erdős–Rényi, both O(n+m) generators), and
//   2. full discovery runs to completion at N >= 10⁵ on both families —
//      the paper's termination event, executed end to end.
//
// Every run goes through runner::run_sync_trials with kernel=soa, so each
// point lands in the BENCH_e22 JSON artifact's run log. The kernel's
// results are pinned bit-identical to the slot engine by
// tests/soa_kernel_test.cpp; this binary only asserts the cheap proxy
// (completion at N >= 10⁵) and reports throughput.
//
// CI smoke caps the sweep with M2HEW_E22_MAX_N (e.g. 20000); without the
// env var the full curve runs and regenerates results/BENCH_e22.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/policy_spec.hpp"
#include "net/channel_assign.hpp"
#include "net/topology_gen.hpp"
#include "runner/report.hpp"
#include "runner/trials.hpp"
#include "sim/soa_kernel.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr net::ChannelId kUniverse = 4;   // homogeneous channels
constexpr std::size_t kDeltaEst = 32;     // Algorithm 3 degree bound
constexpr double kMeanDegree = 6.0;

[[nodiscard]] std::uint64_t max_sweep_n() {
  const char* env = std::getenv("M2HEW_E22_MAX_N");
  return env == nullptr ? 1'000'000 : std::strtoull(env, nullptr, 10);
}

// Both families target mean degree ~6 at every N, so the per-slot work per
// node is N-independent and the curve isolates the kernel's scaling.
[[nodiscard]] net::Network sparse_network(const std::string& family,
                                          net::NodeId n, std::uint64_t seed) {
  util::Rng rng(seed);
  net::Topology topology =
      family == "unit-disk"
          // side √n keeps density constant; πr² ≈ 6 neighbors.
          ? net::make_unit_disk_bucketed(n, std::sqrt(static_cast<double>(n)),
                                         1.382, rng)
                .topology
          : net::make_erdos_renyi_sparse(
                n, kMeanDegree / static_cast<double>(n), rng);
  auto assignment = net::homogeneous_assignment(n, kUniverse, kUniverse);
  return net::Network(std::move(topology), std::move(assignment));
}

[[nodiscard]] core::SyncPolicySpec spec() {
  return core::SyncPolicySpec::algorithm3(kDeltaEst);
}

// Timed section: fixed-slot kernel runs at a mid-size N (the full curve is
// the reproduction section's job; benchmark timing stays CI-friendly).
void BM_SoaKernelSlots(benchmark::State& state) {
  const auto n = static_cast<net::NodeId>(state.range(0));
  const net::Network network = sparse_network("unit-disk", n, 22);
  const sim::SoaPolicyTable table =
      core::build_soa_policy_table(network, spec());
  sim::SoaSlotKernel kernel(network);
  sim::SlotEngineConfig config;
  config.max_slots = 50;
  config.stop_when_complete = false;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    const auto result = kernel.run(table, config);
    benchmark::DoNotOptimize(result.receptions);
  }
  state.counters["slots_per_s"] = benchmark::Counter(
      static_cast<double>(config.max_slots),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SoaKernelSlots)->ArgNames({"n"})->Arg(4096)->Arg(16384);

void reproduce_table() {
  runner::print_banner(
      "E22 / SoA kernel scaling",
      "the structure-of-arrays kernel sustains fixed-slot throughput to "
      "N = 10^6 and completes discovery end to end at N >= 10^5",
      "unit-disk (bucketed) and Erdos-Renyi (skip-sampled), mean degree "
      "~6, homogeneous |U|=4, Alg 3 D_est=32, serial trials");

  auto csv_file = runner::open_results_csv("e22_soa_scaling");
  util::CsvWriter csv(csv_file);
  csv.header({"family", "n", "mode", "slots", "trials", "completed",
              "mean_completion_slot", "elapsed_s", "slots_per_s"});

  const std::uint64_t cap = max_sweep_n();
  util::Table table(
      {"family", "N", "mode", "slots/run", "completed", "slots/sec"});

  // 1. Fixed-slot throughput curve. The slot budget shrinks with N so
  // every point does comparable total work (~2e7 node-slots minimum).
  const std::vector<std::uint64_t> curve_ns = {1'000, 10'000, 100'000,
                                               1'000'000};
  for (const std::string family : {"unit-disk", "erdos-renyi"}) {
    for (const std::uint64_t n : curve_ns) {
      if (n > cap) continue;
      const std::uint64_t slots =
          std::max<std::uint64_t>(50, 20'000'000 / n);
      const net::Network network =
          sparse_network(family, static_cast<net::NodeId>(n), 22 + n);

      runner::SyncTrialConfig trial;
      trial.trials = 1;
      trial.seed = 7;
      trial.threads = 1;
      trial.kernel = runner::SyncKernel::kSoa;
      trial.engine.max_slots = slots;
      trial.engine.stop_when_complete = false;
      const auto stats = runner::run_sync_trials(network, spec(), trial);

      const double slots_per_s =
          stats.elapsed_seconds <= 0.0
              ? 0.0
              : static_cast<double>(slots) / stats.elapsed_seconds;
      csv.field(family).field(n).field("curve").field(slots);
      csv.field(stats.trials).field(stats.completed).field(0.0);
      csv.field(stats.elapsed_seconds).field(slots_per_s);
      csv.end_row();
      table.row()
          .cell(family)
          .cell(static_cast<std::size_t>(n))
          .cell("curve")
          .cell(static_cast<std::size_t>(slots))
          .cell(stats.completed)
          .cell(slots_per_s, 0);
    }
  }

  // 2. Completion runs: full discovery at the largest N the cap allows
  // (>= 10⁵ in the checked-in artifact).
  bool completion_ok = true;
  const auto completion_n =
      static_cast<std::uint64_t>(std::min<std::uint64_t>(cap, 100'000));
  for (const std::string family : {"unit-disk", "erdos-renyi"}) {
    const net::Network network =
        sparse_network(family, static_cast<net::NodeId>(completion_n), 99);

    runner::SyncTrialConfig trial;
    trial.trials = 2;
    trial.seed = 13;
    trial.threads = 1;
    trial.kernel = runner::SyncKernel::kSoa;
    trial.engine.max_slots = 200'000;
    trial.engine.stop_when_complete = true;
    const auto stats = runner::run_sync_trials(network, spec(), trial);
    benchx::report_throughput(family.c_str(), stats);
    completion_ok = completion_ok && stats.completed == stats.trials;

    const double mean_slot =
        stats.completed == 0 ? 0.0 : stats.completion_slots.summarize().mean;
    const double slots_per_s =
        stats.elapsed_seconds <= 0.0
            ? 0.0
            : mean_slot * static_cast<double>(stats.completed) /
                  stats.elapsed_seconds;
    csv.field(family).field(completion_n).field("completion").field(0);
    csv.field(stats.trials).field(stats.completed).field(mean_slot);
    csv.field(stats.elapsed_seconds).field(slots_per_s);
    csv.end_row();
    table.row()
        .cell(family)
        .cell(static_cast<std::size_t>(completion_n))
        .cell("completion")
        .cell(static_cast<std::size_t>(0))
        .cell(stats.completed)
        .cell(slots_per_s, 0);
  }

  std::printf("\n%s\n", table.render().c_str());
  runner::print_verdict(
      completion_ok,
      "every completion trial finished discovery within the slot budget");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cap = std::to_string(max_sweep_n());
  return m2hew::benchx::bench_main(
      argc, argv, "e22_soa_scaling", reproduce_table,
      {{"families", "unit-disk (bucketed), erdos-renyi (skip-sampled)"},
       {"mean_degree", "6"},
       {"channels", "homogeneous |U|=4"},
       {"policy", "algorithm3 delta_est=32"},
       {"kernel", "soa"},
       {"curve_n", "1e3,1e4,1e5,1e6 (capped at " + cap + ")"},
       {"completion_n", "min(1e5, cap), 2 trials/family"},
       {"threads", "1 (serial timing)"}});
}
