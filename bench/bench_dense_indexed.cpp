// Dense-regime microbenchmark for the indexed reception hot path.
//
// In a dense network (N >= 256, mean degree Δ ≈ N/4) the reference
// resolution scans every in-neighbor of every listener in every slot:
// O(N·Δ) span checks per slot. The per-channel transmitter index instead
// buckets the slot's transmitters once (O(N)) and each listener scans only
// its channel's bucket — a handful of entries when the transmit
// probability is low (Algorithm 3 with a large Δ_est). This bench measures
// both paths on the same workload, checks they agree bit-for-bit, and
// passes iff the indexed path sustains >= 2x the reference throughput.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr double kEdgeProbability = 0.25;  // mean in-degree ≈ N/4
constexpr std::size_t kDeltaEst = 256;     // low transmit probability
constexpr std::uint64_t kSlots = 300;      // fixed work per engine run

[[nodiscard]] net::Network dense_network(net::NodeId n) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kErdosRenyi;
  config.n = n;
  config.er_edge_probability = kEdgeProbability;
  config.channels = runner::ChannelKind::kHomogeneous;
  config.universe = 8;
  config.set_size = 8;
  return runner::build_scenario(config, 11);
}

[[nodiscard]] sim::SlotEngineConfig dense_engine(bool indexed) {
  sim::SlotEngineConfig engine;
  engine.max_slots = kSlots;
  engine.stop_when_complete = false;
  engine.indexed_reception = indexed;
  return engine;
}

void BM_DenseReception(benchmark::State& state) {
  const auto n = static_cast<net::NodeId>(state.range(0));
  const bool indexed = state.range(1) != 0;
  const net::Network network = dense_network(n);
  const auto factory = core::make_algorithm3(kDeltaEst);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine = dense_engine(indexed);
    engine.seed = seed++;
    const auto result = sim::run_slot_engine(network, factory, engine);
    benchmark::DoNotOptimize(result.state.reception_count());
  }
  state.counters["slots_per_s"] = benchmark::Counter(
      static_cast<double>(kSlots), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_DenseReception)
    ->ArgNames({"n", "indexed"})
    ->Args({256, 0})
    ->Args({256, 1});

void reproduce_table() {
  runner::print_banner(
      "DENSE / indexed reception",
      "per-channel transmitter indexing beats the per-listener in-link "
      "scan by >= 2x in dense networks (N >= 256, Delta ~ N/4)",
      "Erdos-Renyi p=0.25, homogeneous channels |U|=|A|=8, Alg 3 "
      "D_est=256, 300 slots/run, serial trials");

  auto csv_file = runner::open_results_csv("dense_indexed");
  util::CsvWriter csv(csv_file);
  csv.header({"n", "path", "trials", "elapsed_s", "trials_per_s"});

  util::Table table({"N", "mean deg", "ref s", "indexed s", "speedup",
                     "identical"});
  double speedup_at_256 = 0.0;
  bool all_identical = true;
  for (const net::NodeId n : {256u, 384u}) {
    const net::Network network = dense_network(n);
    const auto factory = core::make_algorithm3(kDeltaEst);

    // Bit-identity spot check on one shared seed before timing.
    sim::SlotEngineConfig check_a = dense_engine(true);
    sim::SlotEngineConfig check_b = dense_engine(false);
    check_a.seed = check_b.seed = 99;
    const auto ra = sim::run_slot_engine(network, factory, check_a);
    const auto rb = sim::run_slot_engine(network, factory, check_b);
    const bool identical =
        ra.state.reception_count() == rb.state.reception_count() &&
        ra.state.covered_links() == rb.state.covered_links();
    all_identical = all_identical && identical;

    double elapsed[2] = {0.0, 0.0};
    for (const bool indexed : {false, true}) {
      runner::SyncTrialConfig trial;
      trial.trials = 5;
      trial.seed = 7;
      trial.threads = 1;  // serial: wall-clock compares engine work only
      trial.engine = dense_engine(indexed);
      const auto stats = runner::run_sync_trials(network, factory, trial);
      elapsed[indexed ? 1 : 0] = stats.elapsed_seconds;
      benchx::report_throughput(indexed ? "indexed" : "reference", stats);
      csv.field(static_cast<std::size_t>(n));
      csv.field(indexed ? "indexed" : "reference").field(stats.trials);
      csv.field(stats.elapsed_seconds).field(stats.trials_per_second());
      csv.end_row();
    }
    const double speedup =
        elapsed[1] <= 0.0 ? 0.0 : elapsed[0] / elapsed[1];
    if (n == 256) speedup_at_256 = speedup;
    const double mean_degree =
        static_cast<double>(network.links().size()) / n;
    table.row()
        .cell(static_cast<std::size_t>(n))
        .cell(mean_degree, 1)
        .cell(elapsed[0], 3)
        .cell(elapsed[1], 3)
        .cell(speedup, 2)
        .cell(identical ? 1 : 0);
  }
  std::printf("\n%s\n", table.render().c_str());

  runner::print_verdict(all_identical,
                        "indexed path reproduces the reference exactly");
  std::printf("speedup at N=256: %.2fx\n", speedup_at_256);
  runner::print_verdict(speedup_at_256 >= 2.0,
                        "indexed >= 2x reference throughput at N=256, "
                        "Delta ~ N/4");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "dense_indexed", reproduce_table,
      {{"topology", "erdos_renyi p=0.25"},
       {"n", "256,384"},
       {"channels", "homogeneous |U|=|A|=8"},
       {"policy", "algorithm3 delta_est=256"},
       {"slots_per_run", "300"},
       {"threads", "1 (serial timing)"}});
}
