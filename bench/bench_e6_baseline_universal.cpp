// E6 — §I claim: the universal-channel-set extension of a single-channel
// protocol is linear in |U| no matter how small the nodes' available sets
// are; the paper's algorithms depend on S = max|A(u)|, not |U|.
//
// Reproduced series: fix |A(u)| = 4 and sweep the universe size |U| from 4
// to 256. The baseline's discovery time must grow ~linearly with |U| while
// Algorithm 3's stays flat.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr std::size_t kDeltaEst = 8;

// The available channel sets live in a fixed 8-channel sub-pool regardless
// of |U| (spectrum is congested: most of the universal set is busy, exactly
// the situation §I argues makes the baseline wasteful). The sub-pool keeps
// S, spans and ρ identical across the sweep; only the universe the baseline
// must round-robin over grows.
[[nodiscard]] net::Network workload(net::ChannelId universe,
                                    std::uint64_t seed) {
  constexpr net::ChannelId kPool = 8;
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kClique;
  config.n = 8;
  config.channels = runner::ChannelKind::kUniformRandom;
  config.universe = kPool;
  config.set_size = 4;
  const net::Network pool_net = runner::build_scenario(config, seed);
  // Re-embed every channel set into the larger universe unchanged.
  std::vector<net::ChannelSet> embedded;
  embedded.reserve(pool_net.node_count());
  for (net::NodeId u = 0; u < pool_net.node_count(); ++u) {
    net::ChannelSet s(universe);
    for (const net::ChannelId c : pool_net.available(u).to_vector()) {
      s.insert(c);
    }
    embedded.push_back(std::move(s));
  }
  return net::Network(pool_net.topology(), std::move(embedded));
}

void BM_Baseline_Universe(benchmark::State& state) {
  const auto universe = static_cast<net::ChannelId>(state.range(0));
  const net::Network network = workload(universe, 1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 50'000'000;
    engine.seed = seed++;
    const auto result = sim::run_slot_engine(
        network, core::make_universal_baseline(universe, 0.5), engine);
    benchmark::DoNotOptimize(result.completion_slot);
  }
}
BENCHMARK(BM_Baseline_Universe)->Arg(8)->Arg(64);

void reproduce_table() {
  runner::print_banner(
      "E6 / universal-channel-set baseline",
      "baseline time grows linearly in |U| even with |A(u)| fixed at 4; "
      "Alg 3 is independent of |U|",
      "clique n=8, uniform-random channels |A|=4, |U| swept");

  auto csv_file = runner::open_results_csv("e6_baseline_universal");
  util::CsvWriter csv(csv_file);
  csv.header({"universe", "baseline_mean_slots", "alg3_mean_slots",
              "speedup"});

  util::Table table({"|U|", "baseline mean slots", "alg3 mean slots",
                     "alg3 speedup"});
  std::vector<double> universes;
  std::vector<double> baseline_means;
  std::vector<double> alg3_means;
  for (const net::ChannelId universe : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const net::Network network = workload(universe, 2);

    runner::SyncTrialConfig trial;
    trial.trials = 25;
    trial.seed = 60 + universe;
    trial.engine.max_slots = 50'000'000;

    const auto baseline = runner::run_sync_trials(
        network, core::make_universal_baseline(universe, 0.5), trial);
    const auto alg3 = runner::run_sync_trials(
        network, core::make_algorithm3(kDeltaEst), trial);

    const double mb = baseline.completion_slots.summarize().mean;
    const double m3 = alg3.completion_slots.summarize().mean;
    universes.push_back(static_cast<double>(universe));
    baseline_means.push_back(mb);
    alg3_means.push_back(m3);
    table.row()
        .cell(static_cast<std::size_t>(universe))
        .cell(mb, 1)
        .cell(m3, 1)
        .cell(benchx::ratio(mb, m3), 2);
    csv.field(static_cast<std::size_t>(universe)).field(mb).field(m3);
    csv.field(benchx::ratio(mb, m3));
    csv.end_row();
  }
  std::printf("%s\n", table.render().c_str());

  util::PlotOptions plot;
  plot.x_label = "|U| (universal channel set size)";
  plot.y_label = "baseline mean slots";
  std::printf("%s\n", util::ascii_plot(universes, baseline_means,
                                       plot).c_str());

  const auto baseline_fit = util::linear_fit(universes, baseline_means);
  const double alg3_spread =
      *std::max_element(alg3_means.begin(), alg3_means.end()) /
      *std::min_element(alg3_means.begin(), alg3_means.end());
  runner::print_verdict(baseline_fit.slope > 0.0 && baseline_fit.r2 > 0.9,
                        "baseline mean slots grow linearly in |U| "
                        "(r2 > 0.9)");
  runner::print_verdict(alg3_spread < 2.0,
                        "alg3 mean slots flat in |U| (max/min < 2)");
  runner::print_verdict(baseline_means.back() > 5.0 * alg3_means.back(),
                        "at |U|=256 the paper's algorithm wins by > 5x");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e6_baseline_universal", reproduce_table,
      {{"experiment", "E6"},
       {"topology", "clique n=8"},
       {"set_size", "4"},
       {"universe", "swept"}});
}
