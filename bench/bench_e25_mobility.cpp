// E25 — encounter discovery under mobility (extension; time-varying
// topology core). Nodes follow seed-derived random-waypoint trajectories
// over the unit-disk square; the link set is recomputed at epoch
// boundaries (net/topology_provider.hpp) and discovery runs against the
// union network with per-epoch adjacency swapped inside the engines. The
// contact-tracing questions replace plain completion: how fast after a
// contact opens is the neighbor first heard (detection latency vs contact
// duration), what fraction of contacts is missed outright, and what each
// detected contact costs in radio energy — swept over node speed, epoch
// length and the duty cycle (core/duty_cycle.hpp).
//
// CI smoke caps trials per cell with M2HEW_E25_TRIALS (e.g. 4); without
// the cap each of the 24 cells runs 20 trials.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/duty_cycle.hpp"
#include "net/topology_provider.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "sim/encounter.hpp"
#include "sim/slot_engine.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr net::NodeId kN = 16;
constexpr net::ChannelId kUniverse = 8;
constexpr net::ChannelId kSetSize = 4;
constexpr std::size_t kDeltaEst = 8;
constexpr std::size_t kEpochs = 8;
constexpr std::uint64_t kRootSeed = 60;

[[nodiscard]] std::size_t trials_per_cell() {
  const char* env = std::getenv("M2HEW_E25_TRIALS");
  return env == nullptr ? 20 : std::strtoull(env, nullptr, 10);
}

[[nodiscard]] runner::ScenarioConfig deployment() {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kUnitDisk;
  config.n = kN;
  config.ud_side = 1.0;
  config.ud_radius = 0.35;
  config.channels = runner::ChannelKind::kUniformRandom;
  config.universe = kUniverse;
  config.set_size = kSetSize;
  return config;
}

/// Speeds are per-leg uniform in [speed/2, speed] units per epoch — the
/// classic RWP speed band, avoiding the near-zero-speed decay pathology.
[[nodiscard]] runner::MobilitySpec mobility_spec(double speed,
                                                 std::uint64_t epoch_slots,
                                                 std::uint64_t duty_on,
                                                 std::uint64_t duty_period) {
  runner::MobilitySpec mobility;
  mobility.enabled = true;
  mobility.epochs = kEpochs;
  mobility.epoch_slots = epoch_slots;
  mobility.speed_min = speed / 2.0;
  mobility.speed_max = speed;
  mobility.pause_epochs = 0;
  mobility.duty_on = duty_on;
  mobility.duty_period = duty_period;
  return mobility;
}

/// Timed section: one full mobile run per iteration — measures the cost
/// of the per-slot epoch check plus the per-epoch adjacency swap on top
/// of the classic engine (Arg = speed in hundredths of a unit/epoch;
/// Arg(0) is the degenerate all-epochs-identical schedule).
void BM_MobileEngine(benchmark::State& state) {
  const double speed = static_cast<double>(state.range(0)) / 100.0;
  const auto mobility = mobility_spec(speed, 500, 1, 1);
  const auto provider =
      runner::build_mobility_provider(deployment(), mobility, 1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = kEpochs * 500;
    engine.seed = seed++;
    engine.topology = provider.get();
    engine.epoch_length = mobility.epoch_slots;
    const auto result = sim::run_slot_engine(
        provider->union_network(), core::make_algorithm3(kDeltaEst), engine);
    benchmark::DoNotOptimize(result.completion_slot);
  }
}
BENCHMARK(BM_MobileEngine)->Arg(0)->Arg(10);

void reproduce_table() {
  const std::size_t trials = trials_per_cell();
  runner::print_banner(
      "E25 / encounter discovery under mobility (extension)",
      "random-waypoint link dynamics: detection latency tracks contact "
      "duration, missed contacts and energy per contact trade off against "
      "the duty cycle",
      "unit disk n=16 r=0.35, |U|=8 |A(u)|=4, alg3, 8 epochs, speeds x "
      "epoch lengths x duty cycles, " +
          std::to_string(trials) + " trials/cell");

  auto csv_file = runner::open_results_csv("e25_mobility");
  util::CsvWriter csv(csv_file);
  csv.header({"speed", "epoch_slots", "duty", "success_rate", "contacts",
              "detected", "detection_rate", "mean_latency",
              "mean_latency_fraction", "mean_missed_fraction",
              "energy_per_detected"});

  util::Table table({"speed", "eslots", "duty", "success", "contacts",
                     "det-rate", "latency", "lat/dur", "missed",
                     "energy/det"});

  const double speeds[] = {0.0, 0.02, 0.05, 0.1};
  const std::uint64_t epoch_lengths[] = {200, 500};
  const std::pair<std::uint64_t, std::uint64_t> duties[] = {
      {1, 1}, {1, 2}, {1, 4}};

  bool static_completes = false;
  bool all_cells_detect = true;
  bool duty_never_gains = true;
  // detection rate per (speed, epoch_slots) at full duty, for the
  // duty-monotonicity verdict.
  std::map<std::pair<double, std::uint64_t>, double> full_duty_rate;

  for (const double speed : speeds) {
    for (const std::uint64_t epoch_slots : epoch_lengths) {
      for (const auto& [duty_on, duty_period] : duties) {
        const auto mobility =
            mobility_spec(speed, epoch_slots, duty_on, duty_period);
        const auto provider =
            runner::build_mobility_provider(deployment(), mobility,
                                            kRootSeed);
        runner::SyncTrialConfig trial;
        trial.trials = trials;
        trial.seed = kRootSeed;
        trial.engine.max_slots = kEpochs * epoch_slots;
        trial.engine.topology = provider.get();
        trial.engine.epoch_length = epoch_slots;
        const sim::EncounterIndex index(*provider, epoch_slots,
                                        trial.engine.max_slots);
        trial.encounters = &index;
        const auto stats = runner::run_sync_trials(
            provider->union_network(),
            core::with_duty_cycle(core::make_algorithm3(kDeltaEst), duty_on,
                                  duty_period),
            trial);

        const runner::EncounterStats& enc = stats.encounters;
        const double latency = enc.detection_latency.count() > 0
                                   ? enc.detection_latency.summarize().mean
                                   : 0.0;
        const double fraction =
            enc.latency_over_duration.count() > 0
                ? enc.latency_over_duration.summarize().mean
                : 0.0;
        const double missed = enc.missed_fraction.count() > 0
                                  ? enc.missed_fraction.summarize().mean
                                  : 0.0;
        const double energy = enc.energy_per_detected.count() > 0
                                  ? enc.energy_per_detected.summarize().mean
                                  : 0.0;
        const std::string duty_label =
            std::to_string(duty_on) + "/" + std::to_string(duty_period);

        if (speed == 0.0 && duty_period == 1 && epoch_slots == 500) {
          static_completes = stats.completed == stats.trials &&
                             enc.detected == enc.contacts;
        }
        all_cells_detect &= enc.contacts > 0 && enc.detected > 0;
        if (duty_period == 1) {
          full_duty_rate[{speed, epoch_slots}] = enc.detection_rate();
        } else {
          duty_never_gains &= enc.detection_rate() <=
                              full_duty_rate[{speed, epoch_slots}] + 0.05;
        }

        table.row()
            .cell(speed, 2)
            .cell(epoch_slots)
            .cell(duty_label)
            .cell(stats.success_rate(), 2)
            .cell(enc.contacts)
            .cell(enc.detection_rate(), 3)
            .cell(latency, 1)
            .cell(fraction, 3)
            .cell(missed, 3)
            .cell(energy, 1);
        csv.field(speed).field(epoch_slots).field(duty_label);
        csv.field(stats.success_rate());
        csv.field(static_cast<unsigned long long>(enc.contacts));
        csv.field(static_cast<unsigned long long>(enc.detected));
        csv.field(enc.detection_rate()).field(latency).field(fraction);
        csv.field(missed).field(energy);
        csv.end_row();
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  runner::print_verdict(static_completes,
                        "zero-speed full-duty cell completes every trial "
                        "and detects every contact (static degenerate "
                        "case of the epoch machinery)");
  runner::print_verdict(all_cells_detect,
                        "every cell observes and detects at least one "
                        "contact");
  runner::print_verdict(duty_never_gains,
                        "duty cycling never raises the detection rate "
                        "above the always-on cell (tolerance 0.05)");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e25_mobility", reproduce_table,
      {{"experiment", "E25"},
       {"topology", "unit_disk n=16 r=0.35, random waypoint"},
       {"universe", "8"},
       {"epochs", "8"},
       {"grid", "speed {0,0.02,0.05,0.1} x epoch_slots {200,500} x duty "
                "{1/1,1/2,1/4}"},
       {"algorithm", "alg3 (duty-cycled)"}});
}
