// E9 — the per-round coverage lower bounds inside the proofs:
//   eq. (6):   a stage of Algorithm 1 covers a link w.p. >= rho/(16 max(S,Δ))
//   Alg 3:     a slot covers a link w.p. >= rho/(8 max(2S, Δ_est))
//   Lemma 5:   an aligned frame pair covers a link w.p. >=
//              rho/(8 max(2S, 3Δ_est))
// plus the ablation DESIGN.md calls out: removing the min(1/2, ·) cap on
// the transmission probability destroys coverage in dense neighborhoods.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/transmit_probability.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "sim/async_engine.hpp"
#include "sim/slot_engine.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr std::size_t kDeltaEst = 4;

[[nodiscard]] net::Network workload(std::uint64_t seed) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kClique;
  config.n = 5;
  config.channels = runner::ChannelKind::kUniformRandom;
  config.universe = 6;
  config.set_size = 3;
  return runner::build_scenario(config, seed);
}

// Uncapped-probability ablation policy: transmit w.p. min(1, |A|/Δ_est)
// with NO 1/2 cap — in dense channels nodes talk constantly and never
// listen, so coverage collapses. (Δ_est below the true degree exaggerates
// the effect, which is the point of the cap.)
class UncappedPolicy final : public sim::SyncPolicy {
 public:
  UncappedPolicy(const net::ChannelSet& available, std::size_t delta_est)
      : channels_(available.to_vector()),
        p_(std::min(1.0, static_cast<double>(available.size()) /
                             static_cast<double>(delta_est))) {}

  sim::SlotAction next_slot(util::Rng& rng) override {
    sim::SlotAction action;
    action.channel = rng.pick(std::span<const net::ChannelId>(channels_));
    action.mode = rng.bernoulli(p_) ? sim::Mode::kTransmit
                                    : sim::Mode::kReceive;
    return action;
  }

 private:
  std::vector<net::ChannelId> channels_;
  double p_;
};

// Fraction of single-round trials in which the first listed link is
// covered; `slots` is the round length.
[[nodiscard]] double measure_coverage(const net::Network& network,
                                      const sim::SyncPolicyFactory& factory,
                                      std::uint64_t slots,
                                      std::size_t trials) {
  const net::Link link = network.links()[0];
  std::size_t covered = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    sim::SlotEngineConfig engine;
    engine.max_slots = slots;
    engine.seed = 10'000 + t;
    engine.stop_when_complete = false;
    const auto result = sim::run_slot_engine(network, factory, engine);
    if (result.state.is_covered(link)) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(trials);
}

void BM_SingleStage(benchmark::State& state) {
  const net::Network network = workload(1);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = core::stage_length(kDeltaEst);
    engine.seed = seed++;
    engine.stop_when_complete = false;
    const auto result = sim::run_slot_engine(
        network, core::make_algorithm1(kDeltaEst), engine);
    benchmark::DoNotOptimize(result.state.covered_links());
  }
}
BENCHMARK(BM_SingleStage);

void reproduce_table() {
  runner::print_banner(
      "E9 / coverage probability lower bounds",
      "per-stage (eq. 6), per-slot (Alg 3) and per-aligned-pair (Lemma 5) "
      "coverage >= the proofs' lower bounds",
      "clique n=5, uniform-random channels |U|=6 |A|=3, 6000 trials each");

  auto csv_file = runner::open_results_csv("e9_coverage_probability");
  util::CsvWriter csv(csv_file);
  csv.header({"round_kind", "measured", "lower_bound", "measured_over_bound"});

  const net::Network network = workload(2);
  const auto params = benchx::bound_params(network, kDeltaEst, 0.1);
  constexpr std::size_t kTrials = 6000;

  util::Table table({"round", "measured coverage", "proof lower bound",
                     "measured/bound"});
  bool all_above = true;

  // (a) eq. (6): one stage of Algorithm 1.
  {
    const double measured = measure_coverage(
        network, core::make_algorithm1(kDeltaEst),
        core::stage_length(kDeltaEst), kTrials);
    const double bound = core::eq6_stage_coverage_lower_bound(params);
    all_above &= measured >= bound;
    table.row().cell("alg1 stage (eq 6)").cell(measured, 4).cell(bound, 4)
        .cell(benchx::ratio(measured, bound), 2);
    csv.field("alg1_stage").field(measured).field(bound);
    csv.field(benchx::ratio(measured, bound));
    csv.end_row();
  }

  // (b) Algorithm 3: one slot.
  {
    const double measured = measure_coverage(
        network, core::make_algorithm3(kDeltaEst), 1, kTrials);
    const double bound = core::alg3_slot_coverage_lower_bound(params);
    all_above &= measured >= bound;
    table.row().cell("alg3 slot").cell(measured, 4).cell(bound, 4)
        .cell(benchx::ratio(measured, bound), 2);
    csv.field("alg3_slot").field(measured).field(bound);
    csv.field(benchx::ratio(measured, bound));
    csv.end_row();
  }

  // (c) Lemma 5: one aligned frame pair — ideal aligned clocks make every
  // frame pair aligned, so one frame per node is one aligned pair.
  {
    const net::Link link = network.links()[0];
    std::size_t covered = 0;
    for (std::size_t t = 0; t < kTrials; ++t) {
      sim::AsyncEngineConfig engine;
      engine.frame_length = 3.0;
      engine.max_real_time = 3.0;  // exactly one frame per node
      engine.seed = 20'000 + t;
      engine.stop_when_complete = false;
      const auto result = sim::run_async_engine(
          network, core::make_algorithm4(kDeltaEst), engine);
      if (result.state.is_covered(link)) ++covered;
    }
    const double measured =
        static_cast<double>(covered) / static_cast<double>(kTrials);
    const double bound = core::lemma5_pair_coverage_lower_bound(params);
    all_above &= measured >= bound;
    table.row().cell("alg4 aligned pair (lem 5)").cell(measured, 4)
        .cell(bound, 4).cell(benchx::ratio(measured, bound), 2);
    csv.field("alg4_pair").field(measured).field(bound);
    csv.field(benchx::ratio(measured, bound));
    csv.end_row();
  }

  // (d) ablation: uncapped transmission probability vs the paper's cap.
  {
    const auto uncapped_factory = [](const net::Network& net_ref,
                                     net::NodeId u)
        -> std::unique_ptr<sim::SyncPolicy> {
      return std::make_unique<UncappedPolicy>(net_ref.available(u), 2);
    };
    const double uncapped =
        measure_coverage(network, uncapped_factory, 1, kTrials);
    const double capped = measure_coverage(
        network, core::make_algorithm3(2), 1, kTrials);
    table.row().cell("ablation: uncapped p").cell(uncapped, 4)
        .cell(0.0, 4).cell(0.0, 2);
    table.row().cell("ablation: capped p (paper)").cell(capped, 4)
        .cell(0.0, 4).cell(0.0, 2);
    csv.field("ablation_uncapped").field(uncapped).field(0.0).field(0.0);
    csv.end_row();
    csv.field("ablation_capped").field(capped).field(0.0).field(0.0);
    csv.end_row();
    runner::print_verdict(capped > uncapped,
                          "the min(1/2, .) cap outperforms uncapped "
                          "transmission probability");
  }

  std::printf("%s\n", table.render().c_str());
  runner::print_verdict(all_above,
                        "all measured coverage probabilities above the "
                        "proofs' lower bounds");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e9_coverage_probability", reproduce_table,
      {{"experiment", "E9"},
       {"topology", "clique n=5"},
       {"universe", "6"},
       {"set_size", "3"},
       {"trials", "6000"}});
}
