// E16 — what does collision detection buy? (extension study)
//
// The paper's model forbids distinguishing collisions from silence (§II);
// related work [21], [22] assumes the stronger collision-detecting radio.
// We compare, with no degree knowledge anywhere:
//   - Algorithm 2 (paper): blind estimate sweep d = 2, 3, 4, ...
//   - adaptive (extension): AIMD degree estimation from listen feedback
//   - Algorithm 3 given an oracle Δ (the information-limit reference)
//
// Expected shape (measured): the adaptive controller beats the sweep on
// small/sparse instances where its estimate converges quickly, and loses
// on dense cliques where Algorithm 2's sweep is already near-optimal —
// collision detection is NOT a free win, matching the paper's choice to
// analyze the weaker model.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "core/adaptive.hpp"
#include "core/algorithms.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

[[nodiscard]] net::Network clique_workload(net::NodeId n) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kClique;
  config.n = n;
  config.channels = runner::ChannelKind::kHomogeneous;
  config.universe = 4;
  config.set_size = 4;
  return runner::build_scenario(config, 1);
}

[[nodiscard]] net::Network disk_workload(net::NodeId n) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kUnitDisk;
  config.n = n;
  config.ud_radius = 0.35;
  config.channels = runner::ChannelKind::kUniformRandom;
  config.universe = 8;
  config.set_size = 4;
  return runner::build_scenario(config, 2);
}

void BM_Adaptive(benchmark::State& state) {
  const net::Network network = clique_workload(
      static_cast<net::NodeId>(state.range(0)));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 5'000'000;
    engine.seed = seed++;
    const auto result =
        sim::run_slot_engine(network, core::make_adaptive(), engine);
    benchmark::DoNotOptimize(result.completion_slot);
  }
}
BENCHMARK(BM_Adaptive)->Arg(8)->Arg(16);

void run_row(const net::Network& network, const char* label,
             util::Table& table, util::CsvWriter& csv, bool& adaptive_ok) {
  runner::SyncTrialConfig trial;
  trial.trials = 30;
  trial.seed = 99;
  trial.engine.max_slots = 5'000'000;

  const std::size_t oracle_delta =
      std::max<std::size_t>(1, network.max_channel_degree());
  const auto alg2 = runner::run_sync_trials(
      network, core::make_algorithm2(), trial);
  const auto adaptive = runner::run_sync_trials(
      network, core::make_adaptive(), trial);
  const auto oracle = runner::run_sync_trials(
      network, core::make_algorithm3(oracle_delta), trial);

  adaptive_ok &= adaptive.completed == adaptive.trials;
  const double m2 = alg2.completion_slots.summarize().mean;
  const double ma = adaptive.completion_slots.summarize().mean;
  const double mo = oracle.completion_slots.summarize().mean;
  table.row()
      .cell(label)
      .cell(network.max_channel_degree())
      .cell(m2, 1)
      .cell(ma, 1)
      .cell(mo, 1)
      .cell(benchx::ratio(ma, m2), 2);
  csv.field(label).field(network.max_channel_degree());
  csv.field(m2).field(ma).field(mo).field(benchx::ratio(ma, m2));
  csv.end_row();
}

void reproduce_table() {
  runner::print_banner(
      "E16 / collision detection (extension; cf. [21], [22])",
      "AIMD adaptation from collision feedback vs the paper's blind sweep "
      "(Alg 2) vs an oracle-degree Alg 3",
      "cliques (dense, homogeneous) and unit disks (sparse, "
      "heterogeneous), 30 trials/row");

  auto csv_file = runner::open_results_csv("e16_collision_detection");
  util::CsvWriter csv(csv_file);
  csv.header({"workload", "delta", "alg2_mean", "adaptive_mean",
              "oracle_mean", "adaptive_over_alg2"});

  util::Table table({"workload", "Delta", "alg2 (paper)", "adaptive (CD)",
                     "oracle alg3", "adaptive/alg2"});
  bool adaptive_ok = true;
  run_row(clique_workload(6), "clique n=6", table, csv, adaptive_ok);
  run_row(clique_workload(10), "clique n=10", table, csv, adaptive_ok);
  run_row(clique_workload(16), "clique n=16", table, csv, adaptive_ok);
  run_row(disk_workload(16), "unit-disk n=16", table, csv, adaptive_ok);
  run_row(disk_workload(32), "unit-disk n=32", table, csv, adaptive_ok);
  std::printf("%s\n", table.render().c_str());
  runner::print_verdict(adaptive_ok,
                        "the adaptive policy completes on every workload");
  std::printf(
      "reading: collision detection helps where contention feedback is\n"
      "informative (sparse/heterogeneous), but the paper's blind d+=1\n"
      "sweep is already near-optimal on dense cliques — consistent with\n"
      "the paper analyzing the weaker no-collision-detection model.\n");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e16_collision_detection", reproduce_table,
      {{"experiment", "E16"},
       {"topology", "clique+unit_disk"},
       {"trials_per_row", "30"}});
}
