// E14 — termination detection (extension; the paper's algorithms never
// halt, related work [22] adds explicit termination under stronger
// assumptions). The silence heuristic of core/termination.hpp stops a node
// after T slots with no new neighbor.
//
// Reproduced trade-off: sweeping T shows the completeness/energy frontier —
// small T saves energy but starves neighbors that had not yet heard the
// stopped node; T of the order of the per-link coverage time (≈ the
// theorem budget divided by ln(N²/ε)) restores completeness while still
// halting the network.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/termination.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "sim/slot_engine.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr std::size_t kDeltaEst = 8;

[[nodiscard]] net::Network workload(std::uint64_t seed) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kUnitDisk;
  config.n = 16;
  config.ud_radius = 0.4;
  config.channels = runner::ChannelKind::kUniformRandom;
  config.universe = 8;
  config.set_size = 4;
  return runner::build_scenario(config, seed);
}

void BM_Termination_Alg3(benchmark::State& state) {
  const auto threshold = static_cast<std::uint64_t>(state.range(0));
  const net::Network network = workload(1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 200'000;
    engine.seed = seed++;
    const auto result = sim::run_slot_engine(
        network,
        core::with_termination(core::make_algorithm3(kDeltaEst), threshold),
        engine);
    benchmark::DoNotOptimize(result.complete);
  }
}
BENCHMARK(BM_Termination_Alg3)->Arg(64)->Arg(1024);

void reproduce_table() {
  runner::print_banner(
      "E14 / termination detection (extension)",
      "silence-threshold T trades energy for completeness; T ~ per-link "
      "coverage time restores completeness while halting the network",
      "unit disk n=16, uniform-random channels |U|=8 |A|=4, 40 trials/row");

  auto csv_file = runner::open_results_csv("e14_termination");
  util::CsvWriter csv(csv_file);
  csv.header({"threshold", "completion_rate", "mean_active_slots_per_node",
              "mean_energy", "mean_links_covered_frac"});

  const net::Network network = workload(2);
  const double total_links = static_cast<double>(network.links().size());
  // Reference scale: theorem budget / ln(N²/ε) ≈ expected per-link
  // coverage time.
  const auto params = benchx::bound_params(network, kDeltaEst, 0.1);
  const double per_link_scale =
      core::theorem3_slot_bound(params) /
      std::log(static_cast<double>(params.n * params.n) / params.epsilon);

  util::Table table({"threshold T", "completion rate", "links covered",
                     "active slots/node", "energy"});
  double loose_rate = 0.0;
  double tight_rate = 1.0;
  for (const std::uint64_t threshold :
       {16ull, 64ull, 256ull, 1024ull, 4096ull}) {
    std::size_t completed = 0;
    util::RunningStats active;
    util::RunningStats energy;
    util::RunningStats covered;
    constexpr std::size_t kTrials = 40;
    const util::SeedSequence seeds(900);
    for (std::size_t t = 0; t < kTrials; ++t) {
      sim::SlotEngineConfig engine;
      engine.max_slots = 500'000;
      engine.seed = seeds.derive(t, threshold);
      engine.stop_when_complete = true;
      const auto result = sim::run_slot_engine(
          network,
          core::with_termination(core::make_algorithm3(kDeltaEst),
                                 threshold),
          engine);
      if (result.complete) ++completed;
      const auto total = sim::total_activity(result.activity);
      active.add(static_cast<double>(total.transmit + total.receive) /
                 static_cast<double>(network.node_count()));
      energy.add(total.energy());
      covered.add(static_cast<double>(result.state.covered_links()) /
                  total_links);
    }
    const double rate =
        static_cast<double>(completed) / static_cast<double>(40);
    if (threshold == 16) tight_rate = rate;
    if (threshold == 4096) loose_rate = rate;
    table.row()
        .cell(threshold)
        .cell(rate, 2)
        .cell(covered.mean(), 3)
        .cell(active.mean(), 1)
        .cell(energy.mean(), 1);
    csv.field(threshold).field(rate).field(active.mean());
    csv.field(energy.mean()).field(covered.mean());
    csv.end_row();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("per-link coverage-time scale for this network: %.0f slots\n\n",
              per_link_scale);
  runner::print_verdict(loose_rate >= 0.95,
                        "a threshold of a few thousand slots (>= per-link "
                        "scale) completes reliably");
  runner::print_verdict(tight_rate < loose_rate,
                        "aggressive thresholds lose completeness (the "
                        "frontier exists)");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e14_termination", reproduce_table,
      {{"experiment", "E14"},
       {"topology", "unit_disk n=16"},
       {"universe", "8"},
       {"set_size", "4"},
       {"trials_per_row", "40"}});
}
