// E2 — Theorem 2: Algorithm 2 needs no degree knowledge and completes in
// O(M log M) slots, where M = (16·max(S,Δ)/ρ)·ln(N²/ε).
//
// Reproduced series:
//   (a) Alg 2 vs Alg 1 (which is told Δ): the price of ignorance. The
//       overhead must stay a modest multiplicative factor (the extra log).
//   (b) ablation: the paper's d ← d+1 schedule vs the geometric d ← 2d
//       schedule rejected in §III-A2.
//   (c) measured slots vs the theorem's O(M log M) budget.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr double kEpsilon = 0.1;

[[nodiscard]] net::Network workload(net::NodeId n, std::uint64_t seed) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kErdosRenyi;
  config.n = n;
  config.er_edge_probability = 0.4;
  config.channels = runner::ChannelKind::kUniformRandom;
  config.universe = 10;
  config.set_size = 4;
  return runner::build_scenario(config, seed);
}

void BM_Alg2_Discover(benchmark::State& state) {
  const auto n = static_cast<net::NodeId>(state.range(0));
  const net::Network network = workload(n, 1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 10'000'000;
    engine.seed = seed++;
    const auto result =
        sim::run_slot_engine(network, core::make_algorithm2(), engine);
    benchmark::DoNotOptimize(result.completion_slot);
  }
}
BENCHMARK(BM_Alg2_Discover)->Arg(8)->Arg(16)->Arg(32);

void reproduce_table() {
  runner::print_banner(
      "E2 / Theorem 2",
      "Alg 2 (no degree knowledge) completes in O(M log M) slots",
      "Erdos-Renyi p=0.4, uniform-random channels |U|=10 |A|=4, eps=0.1");

  auto csv_file = runner::open_results_csv("e2_alg2_unknown_degree");
  util::CsvWriter csv(csv_file);
  csv.header({"n", "delta", "alg1_mean", "alg2_mean", "alg2_double_mean",
              "overhead", "thm2_slot_bound"});

  util::Table table({"N", "Delta", "alg1 (knows D)", "alg2 (d+=1)",
                     "alg2 (d*=2)", "overhead", "thm2 bound"});

  bool all_within_bound = true;
  for (const net::NodeId n : {8u, 16u, 32u, 64u}) {
    const net::Network network = workload(n, 2);
    const std::size_t delta =
        std::max<std::size_t>(1, network.max_channel_degree());

    runner::SyncTrialConfig trial;
    trial.trials = 25;
    trial.seed = 70 + n;
    trial.engine.max_slots = 20'000'000;

    // Algorithm 1 given the exact Δ as its estimate.
    const auto alg1 = runner::run_sync_trials(
        network, core::make_algorithm1(delta), trial);
    const auto alg2 = runner::run_sync_trials(
        network, core::make_algorithm2(core::EstimateSchedule::kIncrement),
        trial);
    const auto alg2x = runner::run_sync_trials(
        network, core::make_algorithm2(core::EstimateSchedule::kDouble),
        trial);

    const double m1 = alg1.completion_slots.summarize().mean;
    const double m2 = alg2.completion_slots.summarize().mean;
    const double m2x = alg2x.completion_slots.summarize().mean;
    const double bound = core::theorem2_slot_bound(
        benchx::bound_params(network, delta, kEpsilon));
    all_within_bound &=
        alg2.completion_slots.summarize().p90 <= bound;

    table.row()
        .cell(static_cast<std::size_t>(n))
        .cell(delta)
        .cell(m1, 1)
        .cell(m2, 1)
        .cell(m2x, 1)
        .cell(benchx::ratio(m2, m1), 2)
        .cell(bound, 0);
    csv.field(static_cast<std::size_t>(n)).field(delta);
    csv.field(m1).field(m2).field(m2x).field(benchx::ratio(m2, m1));
    csv.field(bound);
    csv.end_row();
  }
  std::printf("%s\n", table.render().c_str());
  runner::print_verdict(all_within_bound,
                        "alg2 p90 slots within the O(M log M) budget");
  std::printf(
      "note: the geometric d*=2 schedule reaches large estimates sooner, "
      "paying\nlonger stages early; the paper's d+=1 schedule is what "
      "Theorem 2 analyzes.\n");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e2_alg2_unknown_degree", reproduce_table,
      {{"experiment", "E2"},
       {"topology", "erdos_renyi p=0.4"},
       {"universe", "10"},
       {"set_size", "4"},
       {"epsilon", "0.1"}});
}
