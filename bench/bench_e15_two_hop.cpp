// E15 — two-hop neighbor discovery (§I: protocols "implicitly assume that
// all nodes know their one-hop and sometimes even two-hop neighbors").
// Phase 2 re-runs the Algorithm-3 schedule with tables as payloads, so the
// two-hop extension should cost roughly one more Theorem-3 budget: the
// phase-2/phase-1 slot ratio stays O(1) across network sizes.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/two_hop.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr std::size_t kDeltaEst = 8;

[[nodiscard]] net::Network workload(net::NodeId n, std::uint64_t seed) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kUnitDisk;
  config.n = n;
  config.ud_radius = 0.45;
  config.channels = runner::ChannelKind::kUniformRandom;
  config.universe = 8;
  config.set_size = 4;
  return runner::build_scenario(config, seed);
}

void BM_TwoHop(benchmark::State& state) {
  const auto n = static_cast<net::NodeId>(state.range(0));
  const net::Network network = workload(n, 1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SlotEngineConfig engine;
    engine.max_slots = 10'000'000;
    engine.seed = seed++;
    const auto result =
        core::run_two_hop_discovery(network, kDeltaEst, engine);
    benchmark::DoNotOptimize(result.complete);
  }
}
BENCHMARK(BM_TwoHop)->Arg(8)->Arg(16);

void reproduce_table() {
  runner::print_banner(
      "E15 / two-hop neighbor discovery (SI motivation)",
      "a table-exchange phase re-running the Alg 3 schedule yields two-hop "
      "knowledge for ~one more Theorem-3 budget (phase ratio O(1))",
      "unit disk, uniform-random channels |U|=8 |A|=4, 25 trials/row");

  auto csv_file = runner::open_results_csv("e15_two_hop");
  util::CsvWriter csv(csv_file);
  csv.header({"n", "success_rate", "phase1_mean", "phase2_mean", "ratio",
              "two_hop_correct_rate"});

  util::Table table({"N", "success", "phase1 slots", "phase2 slots",
                     "phase2/phase1", "2-hop sets correct"});
  bool ratios_bounded = true;
  bool always_correct = true;
  for (const net::NodeId n : {8u, 12u, 16u, 24u, 32u}) {
    const net::Network network = workload(n, 2);
    const auto ground_truth = core::two_hop_ground_truth(network);

    util::RunningStats phase1;
    util::RunningStats phase2;
    std::size_t completed = 0;
    std::size_t correct = 0;
    constexpr std::size_t kTrials = 25;
    const util::SeedSequence seeds(70 + n);
    for (std::size_t t = 0; t < kTrials; ++t) {
      sim::SlotEngineConfig engine;
      engine.max_slots = 10'000'000;
      engine.seed = seeds.derive(t);
      const auto result =
          core::run_two_hop_discovery(network, kDeltaEst, engine);
      if (!result.complete) continue;
      ++completed;
      phase1.add(static_cast<double>(result.phase1_slots));
      phase2.add(static_cast<double>(result.phase2_slots));
      if (result.two_hop == ground_truth) ++correct;
    }
    const double ratio = phase2.mean() / phase1.mean();
    ratios_bounded &= ratio < 3.0;
    always_correct &= correct == completed;
    table.row()
        .cell(static_cast<std::size_t>(n))
        .cell(static_cast<double>(completed) / kTrials, 2)
        .cell(phase1.mean(), 1)
        .cell(phase2.mean(), 1)
        .cell(ratio, 2)
        .cell(static_cast<double>(correct) / static_cast<double>(completed),
              2);
    csv.field(static_cast<std::size_t>(n));
    csv.field(static_cast<double>(completed) / kTrials);
    csv.field(phase1.mean()).field(phase2.mean()).field(ratio);
    csv.field(static_cast<double>(correct) /
              static_cast<double>(completed));
    csv.end_row();
  }
  std::printf("%s\n", table.render().c_str());
  runner::print_verdict(ratios_bounded,
                        "phase2/phase1 slot ratio stays O(1) (< 3x) across "
                        "sizes");
  runner::print_verdict(always_correct,
                        "every completed run assembles exactly the "
                        "ground-truth two-hop sets");
}

}  // namespace

int main(int argc, char** argv) {
  return m2hew::benchx::bench_main(
      argc, argv, "e15_two_hop", reproduce_table,
      {{"experiment", "E15"},
       {"topology", "unit_disk"},
       {"universe", "8"},
       {"set_size", "4"},
       {"trials_per_row", "25"}});
}
