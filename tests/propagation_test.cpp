#include "net/propagation.hpp"

#include <gtest/gtest.h>

#include "net/topology_gen.hpp"

namespace m2hew::net {
namespace {

TEST(FullPropagation, KeepsEverything) {
  const PropagationFilter filter = full_propagation(6);
  EXPECT_EQ(filter(0, 1), ChannelSet::full(6));
  EXPECT_EQ(filter(3, 2), ChannelSet::full(6));
}

TEST(RandomPropagation, DeterministicAndSymmetric) {
  const PropagationFilter filter = random_propagation_filter(16, 0.5, 99);
  EXPECT_EQ(filter(2, 7), filter(2, 7));  // deterministic
  EXPECT_EQ(filter(2, 7), filter(7, 2));  // symmetric
  EXPECT_EQ(filter(2, 7).universe_size(), 16u);
}

TEST(RandomPropagation, DifferentPairsDiffer) {
  const PropagationFilter filter = random_propagation_filter(32, 0.5, 7);
  // With 32 channels at p = 0.5, two pairs sharing a mask is a 2^-32 event.
  EXPECT_FALSE(filter(0, 1) == filter(0, 2));
}

TEST(RandomPropagation, KeepProbabilityControlsDensity) {
  const PropagationFilter sparse = random_propagation_filter(64, 0.2, 1);
  const PropagationFilter dense = random_propagation_filter(64, 0.9, 1);
  std::size_t sparse_total = 0;
  std::size_t dense_total = 0;
  for (NodeId u = 0; u < 20; ++u) {
    sparse_total += sparse(u, u + 1).size();
    dense_total += dense(u, u + 1).size();
  }
  EXPECT_LT(sparse_total, dense_total);
  // Rough densities: 20 pairs × 64 channels.
  EXPECT_NEAR(static_cast<double>(sparse_total) / (20.0 * 64.0), 0.2, 0.08);
  EXPECT_NEAR(static_cast<double>(dense_total) / (20.0 * 64.0), 0.9, 0.08);
}

TEST(RandomPropagation, KeepOneIsFull) {
  const PropagationFilter filter = random_propagation_filter(8, 1.0, 3);
  EXPECT_EQ(filter(1, 2), ChannelSet::full(8));
}

TEST(DistanceLowpass, AdjacentPairsKeepEverything) {
  const PropagationFilter filter = distance_lowpass_filter(8, 10);
  EXPECT_EQ(filter(3, 4).size(), 7u);  // gap 1 of 10 -> 90% of 8 -> 7
}

TEST(DistanceLowpass, FarPairsKeepOnlyLowChannels) {
  const PropagationFilter filter = distance_lowpass_filter(8, 10);
  const ChannelSet far = filter(0, 9);
  EXPECT_GE(far.size(), 1u);  // never empty
  EXPECT_TRUE(far.contains(0));
  EXPECT_LT(far.size(), filter(0, 1).size());
}

TEST(NetworkWithPropagation, SpansAreMasked) {
  Topology t(2);
  t.add_edge(0, 1);
  const ChannelSet all = ChannelSet::full(4);
  // Mask keeps only channels {0, 1} on every arc.
  const PropagationFilter filter = [](NodeId, NodeId) {
    return ChannelSet(4, {0, 1});
  };
  const Network network(std::move(t), {all, all}, filter);
  EXPECT_EQ(network.span(0, 1), ChannelSet(4, {0, 1}));
  EXPECT_EQ(network.max_channel_set_size(), 4u);  // S is about A(u), not span
  EXPECT_DOUBLE_EQ(network.min_span_ratio(), 0.5);
  EXPECT_EQ(network.degree_on_channel(0, 2), 0u);  // masked out
  EXPECT_EQ(network.degree_on_channel(0, 1), 1u);
}

TEST(NetworkWithPropagation, FullyMaskedArcIsNotALink) {
  Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(1, 2);
  const ChannelSet all = ChannelSet::full(2);
  // Arcs touching node 2 propagate nothing.
  const PropagationFilter filter = [](NodeId from, NodeId to) {
    if (from == 2 || to == 2) return ChannelSet(2);
    return ChannelSet::full(2);
  };
  const Network network(std::move(t), {all, all, all}, filter);
  EXPECT_EQ(network.links().size(), 2u);  // only 0<->1
  EXPECT_FALSE(network.all_edges_usable());
}

TEST(NetworkWithPropagationDeath, WrongUniverseMaskAborts) {
  Topology t(2);
  t.add_edge(0, 1);
  const ChannelSet all = ChannelSet::full(4);
  const PropagationFilter filter = [](NodeId, NodeId) {
    return ChannelSet(5);  // wrong universe
  };
  EXPECT_DEATH(Network(std::move(t), {all, all}, filter), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::net
