#include "sim/slot_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/topology_gen.hpp"

namespace m2hew::sim {
namespace {

// Scripted policy: plays a fixed sequence of actions, then repeats the last
// one forever. Lets tests pin exact slot-by-slot behaviour.
class ScriptedPolicy final : public SyncPolicy {
 public:
  explicit ScriptedPolicy(std::vector<SlotAction> script)
      : script_(std::move(script)) {}

  SlotAction next_slot(util::Rng&) override {
    const SlotAction a =
        script_[std::min(index_, script_.size() - 1)];
    ++index_;
    return a;
  }

 private:
  std::vector<SlotAction> script_;
  std::size_t index_ = 0;
};

constexpr SlotAction kTx0{Mode::kTransmit, 0};
constexpr SlotAction kRx0{Mode::kReceive, 0};
constexpr SlotAction kTx1{Mode::kTransmit, 1};
constexpr SlotAction kRx1{Mode::kReceive, 1};
constexpr SlotAction kQuiet{Mode::kQuiet, net::kInvalidChannel};

[[nodiscard]] net::Network two_node_net() {
  net::Topology t(2);
  t.add_edge(0, 1);
  return net::Network(std::move(t), std::vector<net::ChannelSet>(
                                        2, net::ChannelSet(2, {0, 1})));
}

[[nodiscard]] SyncPolicyFactory scripted(
    std::vector<std::vector<SlotAction>> per_node) {
  auto shared =
      std::make_shared<std::vector<std::vector<SlotAction>>>(
          std::move(per_node));
  return [shared](const net::Network&, net::NodeId u) {
    return std::make_unique<ScriptedPolicy>((*shared)[u]);
  };
}

TEST(SlotEngine, SingleTransmissionIsHeard) {
  const net::Network network = two_node_net();
  SlotEngineConfig config;
  config.max_slots = 10;
  // Slot 0: 0 transmits, 1 listens -> (0,1) covered.
  // Slot 1: roles swap -> (1,0) covered.
  const auto result = run_slot_engine(
      network, scripted({{kTx0, kRx0}, {kRx0, kTx0}}), config);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.completion_slot, 1u);
  EXPECT_DOUBLE_EQ(result.state.first_coverage_time({0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(result.state.first_coverage_time({1, 0}), 1.0);
  EXPECT_EQ(result.slots_executed, 2u);  // stopped at completion
}

TEST(SlotEngine, ListeningOnWrongChannelHearsNothing) {
  const net::Network network = two_node_net();
  SlotEngineConfig config;
  config.max_slots = 5;
  const auto result = run_slot_engine(
      network, scripted({{kTx0}, {kRx1}}), config);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.state.covered_links(), 0u);
  EXPECT_EQ(result.slots_executed, 5u);
}

TEST(SlotEngine, CollisionDestroysBothMessages) {
  // Star: 1 and 2 both transmit to the hub 0 on channel 0.
  net::Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(0, 2);
  const net::Network network(
      std::move(t),
      std::vector<net::ChannelSet>(3, net::ChannelSet(1, {0})));
  SlotEngineConfig config;
  config.max_slots = 3;
  const auto result = run_slot_engine(
      network, scripted({{kRx0}, {kTx0}, {kTx0}}), config);
  EXPECT_EQ(result.state.covered_links(), 0u);
}

TEST(SlotEngine, SimultaneousTransmissionsOnDifferentChannelsBothHeard) {
  // Line 1 -- 0 -- 2 with two channels; 1 sends on c0, 2 sends on c1.
  net::Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(0, 2);
  const net::Network network(
      std::move(t),
      std::vector<net::ChannelSet>(3, net::ChannelSet(2, {0, 1})));
  SlotEngineConfig config;
  config.max_slots = 2;
  config.stop_when_complete = false;
  // Slot 0: hub listens on 0, hears 1. Slot 1: hub listens on 1, hears 2.
  const auto result = run_slot_engine(
      network, scripted({{kRx0, kRx1}, {kTx0, kTx0}, {kTx1, kTx1}}), config);
  EXPECT_TRUE(result.state.is_covered({1, 0}));
  EXPECT_TRUE(result.state.is_covered({2, 0}));
}

TEST(SlotEngine, TransmitterCannotReceive) {
  const net::Network network = two_node_net();
  SlotEngineConfig config;
  config.max_slots = 1;
  // Both transmit: nobody listens, nothing covered (half-duplex).
  const auto result =
      run_slot_engine(network, scripted({{kTx0}, {kTx0}}), config);
  EXPECT_EQ(result.state.covered_links(), 0u);
}

TEST(SlotEngine, QuietNodeNeitherSendsNorReceives) {
  const net::Network network = two_node_net();
  SlotEngineConfig config;
  config.max_slots = 2;
  const auto result = run_slot_engine(
      network, scripted({{kQuiet, kTx0}, {kRx0, kRx0}}), config);
  // Slot 0: node 0 quiet while 1 listens: nothing. Slot 1: 0 sends, 1
  // hears.
  EXPECT_TRUE(result.state.is_covered({0, 1}));
  EXPECT_FALSE(result.state.is_covered({1, 0}));
}

TEST(SlotEngine, StartSlotsDelayParticipation) {
  const net::Network network = two_node_net();
  SlotEngineConfig config;
  config.max_slots = 10;
  config.starts = {3, 0};
  // Node 0's script begins at global slot 3 (node-local slot 0 = Tx).
  const auto result = run_slot_engine(
      network, scripted({{kTx0}, {kRx0}}), config);
  EXPECT_TRUE(result.state.is_covered({0, 1}));
  EXPECT_DOUBLE_EQ(result.state.first_coverage_time({0, 1}), 3.0);
}

TEST(SlotEngine, BeforeStartNodeDoesNotInterfere) {
  // Hub 0 listens; 1 transmits from slot 0; 2 would transmit but starts at
  // slot 5 — so no collision in early slots.
  net::Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(0, 2);
  const net::Network network(
      std::move(t),
      std::vector<net::ChannelSet>(3, net::ChannelSet(1, {0})));
  SlotEngineConfig config;
  config.max_slots = 1;
  config.starts = {0, 0, 5};
  const auto result = run_slot_engine(
      network, scripted({{kRx0}, {kTx0}, {kTx0}}), config);
  EXPECT_TRUE(result.state.is_covered({1, 0}));
}

TEST(SlotEngine, CertainLossBlocksDiscovery) {
  const net::Network network = two_node_net();
  SlotEngineConfig config;
  config.max_slots = 50;
  config.loss_probability = 0.999999;
  const auto result = run_slot_engine(
      network, scripted({{kTx0}, {kRx0}}), config);
  EXPECT_FALSE(result.state.is_covered({0, 1}));
}

TEST(SlotEngine, ReceptionObserverFires) {
  const net::Network network = two_node_net();
  SlotEngineConfig config;
  config.max_slots = 5;
  std::vector<std::tuple<std::uint64_t, net::NodeId, net::NodeId>> seen;
  config.on_reception = [&seen](std::uint64_t slot, net::NodeId from,
                                net::NodeId to, net::ChannelId channel) {
    EXPECT_EQ(channel, 0u);
    seen.emplace_back(slot, from, to);
  };
  (void)run_slot_engine(network, scripted({{kTx0, kRx0}, {kRx0, kTx0}}),
                        config);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::make_tuple(std::uint64_t{0}, net::NodeId{0},
                                     net::NodeId{1}));
}

TEST(SlotEngine, BudgetExhaustionReportsIncomplete) {
  const net::Network network = two_node_net();
  SlotEngineConfig config;
  config.max_slots = 4;
  const auto result = run_slot_engine(
      network, scripted({{kRx0}, {kRx1}}), config);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.slots_executed, 4u);
}

TEST(SlotEngineDeath, WrongStartSlotsSizeAborts) {
  const net::Network network = two_node_net();
  SlotEngineConfig config;
  config.starts = {0};
  EXPECT_DEATH(
      (void)run_slot_engine(network, scripted({{kRx0}, {kRx0}}), config),
      "CHECK failed");
}

}  // namespace
}  // namespace m2hew::sim
